"""The acceptance bar: a chaos campaign finishes bit-identical to a
fault-free one.

One plan drives worker crashes, injected task errors, torn cache writes
and torn journal appends across a 24-job sweep -- serial and pooled --
and every variant must settle every job with exactly the fault-free
results.  Zero faults must mean zero behavior change.
"""

import pytest

from repro.core.config import RunnerConfig
from repro.resilience.faults import FaultPlan
from repro.runner.cache import ResultCache
from repro.runner.executor import run_sweep
from repro.runner.jobs import Job
from repro.runner.journal import Journal

WORKERS = "tests.runner._workers"
NUM_JOBS = 24

#: Every state-touching fault site at once.  Rates are moderate so both
#: faulted and healthy jobs exist; the seed makes the mix reproducible.
CHAOS_DOC = {
    "seed": 1337,
    "points": [
        {"site": "worker.crash", "rate": 0.3},
        {"site": "worker.error", "rate": 0.3},
        {"site": "cache.torn_write", "rate": 0.4},
        {"site": "journal.torn_append", "rate": 0.3},
    ],
}


def _jobs() -> list[Job]:
    return [
        Job({"task": f"{WORKERS}:echo_task", "instance": {},
             "params": {"value": i}})
        for i in range(NUM_JOBS)
    ]


def _config() -> RunnerConfig:
    return RunnerConfig(retries=2, backoff_seconds=0.0, backoff_jitter=0.0)


def _fingerprint(outcome):
    """Everything that must be bit-identical (timings excluded)."""
    return [(o.job.key, o.status in ("done", "cached", "resumed"), o.result)
            for o in outcome.outcomes]


@pytest.fixture
def clean_outcome():
    return run_sweep(_jobs(), num_workers=1, config=_config())


class TestBitIdenticalUnderChaos:
    def test_serial_chaos_campaign(self, clean_outcome, tmp_path):
        chaos = run_sweep(
            _jobs(), num_workers=1, config=_config(),
            cache=ResultCache(tmp_path / "cache"),
            journal=Journal(tmp_path / "journal.jsonl"),
            chaos=FaultPlan.from_dict(CHAOS_DOC),
        )
        assert chaos.num_errors == 0
        assert _fingerprint(chaos) == _fingerprint(clean_outcome)
        # The plan genuinely fired: some jobs needed more than one try.
        attempts = [o.attempts for o in chaos.outcomes]
        assert sum(attempts) > NUM_JOBS
        assert max(attempts) >= 2

    def test_pooled_chaos_campaign(self, clean_outcome, tmp_path):
        """Hard worker crashes break real pools; the campaign must still
        settle everything with the fault-free numbers."""
        chaos = run_sweep(
            _jobs(), num_workers=2, config=_config(),
            cache=ResultCache(tmp_path / "cache"),
            journal=Journal(tmp_path / "journal.jsonl"),
            chaos=CHAOS_DOC,  # the dict form works too
        )
        assert chaos.num_errors == 0
        assert _fingerprint(chaos) == _fingerprint(clean_outcome)

    def test_serial_chaos_is_deterministic(self, tmp_path):
        """Same plan, same jobs -> the same faults fire: statuses,
        results, and attempt counts all repeat exactly."""
        def run(tag):
            return run_sweep(
                _jobs(), num_workers=1, config=_config(),
                cache=ResultCache(tmp_path / tag / "cache"),
                journal=Journal(tmp_path / tag / "journal.jsonl"),
                chaos=FaultPlan.from_dict(CHAOS_DOC),
            )

        first, second = run("one"), run("two")
        assert _fingerprint(first) == _fingerprint(second)
        assert [o.attempts for o in first.outcomes] \
            == [o.attempts for o in second.outcomes]
        assert [o.status for o in first.outcomes] \
            == [o.status for o in second.outcomes]


class TestStateFilesSurvive:
    def test_torn_cache_heals_on_the_next_campaign(self, clean_outcome,
                                                   tmp_path):
        """Chaos tears some cache writes; the next (fault-free) campaign
        over the same cache quarantines the wreckage, re-runs those
        jobs, and still produces fault-free results."""
        cache = ResultCache(tmp_path / "cache")
        run_sweep(_jobs(), num_workers=1, config=_config(), cache=cache,
                  chaos=FaultPlan.from_dict(CHAOS_DOC))

        healed = run_sweep(_jobs(), num_workers=1, config=_config(),
                           cache=cache)
        assert healed.num_errors == 0
        assert _fingerprint(healed) == _fingerprint(clean_outcome)
        # Torn entries were quarantined (not served); their jobs re-ran.
        assert cache.quarantined() != []
        assert any(o.status == "done" for o in healed.outcomes)
        assert any(o.status == "cached" for o in healed.outcomes)
        # Third pass: everything healed is served from cache.
        third = run_sweep(_jobs(), num_workers=1, config=_config(),
                          cache=cache)
        assert all(o.status == "cached" for o in third.outcomes)
        assert _fingerprint(third) == _fingerprint(clean_outcome)

    def test_torn_journal_resumes(self, clean_outcome, tmp_path):
        """Chaos tears some journal appends; --resume over that journal
        replays what survived and re-runs the rest to the same end."""
        journal = Journal(tmp_path / "journal.jsonl")
        chaos = run_sweep(_jobs(), num_workers=1, config=_config(),
                          journal=journal,
                          chaos=FaultPlan.from_dict(CHAOS_DOC))
        assert chaos.num_errors == 0
        settled = journal.settled()
        # Torn appends lost records: not every done job is in the journal.
        assert 0 < len(settled) < NUM_JOBS

        resumed = run_sweep(_jobs(), num_workers=1, config=_config(),
                            journal=journal, resume=True)
        assert resumed.num_errors == 0
        assert _fingerprint(resumed) == _fingerprint(clean_outcome)
        counts = resumed.counts()
        assert counts.get("resumed", 0) == len(settled)
        assert counts.get("done", 0) == NUM_JOBS - len(settled)


class TestZeroFaultsZeroChange:
    def test_no_plan_no_difference(self, clean_outcome, tmp_path):
        outcome = run_sweep(
            _jobs(), num_workers=1, config=_config(),
            cache=ResultCache(tmp_path / "cache"),
            journal=Journal(tmp_path / "journal.jsonl"),
        )
        assert _fingerprint(outcome) == _fingerprint(clean_outcome)
        assert all(o.attempts == 1 for o in outcome.outcomes)
        assert ResultCache(tmp_path / "cache").quarantined() == []

    def test_empty_plan_no_difference(self, clean_outcome):
        outcome = run_sweep(_jobs(), num_workers=1, config=_config(),
                            chaos=FaultPlan(seed=5, points=[]))
        assert _fingerprint(outcome) == _fingerprint(clean_outcome)
        assert all(o.attempts == 1 for o in outcome.outcomes)
