"""Cache integrity: checksummed entries, quarantine-on-corruption.

Serving a wrong cached number silently is the worst failure mode a
result cache can have; these tests prove any detectable corruption is
quarantined and reported as a miss instead.
"""

import json

from repro.resilience.faults import FaultPlan, FaultPoint, injected
from repro.runner.cache import FOOTER_PREFIX, ResultCache


def test_round_trip_entries_carry_a_checksum_footer(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("k1", {"degradation": 4.5})
    assert cache.get("k1") == {"degradation": 4.5}
    lines = cache.path_for("k1").read_text().splitlines()
    assert len(lines) == 2
    assert lines[1].startswith(FOOTER_PREFIX)


def test_truncated_entry_is_quarantined_and_missed(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("k1", {"degradation": 4.5})
    text = cache.path_for("k1").read_text()
    # Tear mid-document (a truncation that happens to end exactly at
    # the first newline instead looks like a legacy footer-less entry,
    # which is served by design).
    cache.path_for("k1").write_text(text[: text.index("\n") // 2])

    assert cache.get("k1") is None
    assert "k1" not in cache
    assert cache.quarantine_path_for("k1").exists()
    assert cache.quarantined() == [cache.quarantine_path_for("k1")]


def test_bit_flip_is_caught_by_the_checksum(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("k1", {"degradation": 4.5})
    path = cache.path_for("k1")
    # Flip the stored number; the JSON stays perfectly parseable, so
    # only the footer can catch it.
    path.write_text(path.read_text().replace("4.5", "9.5", 1))
    assert cache.get("k1") is None
    assert path.with_suffix(".corrupt").exists()


def test_quarantined_key_recovers_on_the_next_put(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("k1", {"v": 1})
    cache.path_for("k1").write_text("garbage")
    assert cache.get("k1") is None
    cache.put("k1", {"v": 2})
    assert cache.get("k1") == {"v": 2}
    # The corpse stays for post-mortems; it never blocks the key.
    assert cache.quarantined() != []


def test_legacy_footerless_entries_are_still_served(tmp_path):
    cache = ResultCache(tmp_path)
    document = {"key": "old", "salt": "whatever", "result": {"v": 7}}
    cache.path_for("old").write_text(json.dumps(document) + "\n")
    assert cache.get("old") == {"v": 7}


def test_unparseable_legacy_entry_is_a_miss_not_a_crash(tmp_path):
    cache = ResultCache(tmp_path)
    cache.path_for("bad").write_text("{not json")
    assert cache.get("bad") is None


def test_chaos_torn_write_is_detected_on_read(tmp_path):
    """The cache.torn_write site leaves a truncated entry under the
    final name; get() must quarantine it rather than serve or raise."""
    cache = ResultCache(tmp_path)
    plan = FaultPlan(seed=0, points=[FaultPoint("cache.torn_write")])
    with injected(plan):
        cache.put("k1", {"degradation": 4.5})
    assert cache.get("k1") is None
    assert cache.quarantine_path_for("k1").exists()
    # A clean re-put (the job re-ran) heals the key.
    cache.put("k1", {"degradation": 4.5})
    assert cache.get("k1") == {"degradation": 4.5}


def test_chaos_torn_write_targets_only_matching_keys(tmp_path):
    cache = ResultCache(tmp_path)
    plan = FaultPlan(seed=0, points=[
        FaultPoint("cache.torn_write", match="victim")])
    with injected(plan):
        cache.put("victim-key", {"v": 1})
        cache.put("healthy-key", {"v": 2})
    assert cache.get("victim-key") is None
    assert cache.get("healthy-key") == {"v": 2}
