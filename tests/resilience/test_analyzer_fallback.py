"""The solver fallback ladder: escalate, then bound, then (only then) fail.

An incumbent-free ``TIME_LIMIT`` used to be a dead end.  These tests
drive that exact shape through the ``solver.time_limit`` chaos site on
models that would otherwise solve instantly, and check each rung:
escalated retries recover the exact answer, ``allow_partial`` degrades
to a sound LP-relaxation bound, and the default still fails loudly.
"""

import pytest

from repro import PathSet, RahaAnalyzer, RahaConfig
from repro.core.config import ResilienceConfig
from repro.core.degradation import PartialResult
from repro.exceptions import SolverError
from repro.network.builder import from_edges
from repro.resilience.faults import FaultPlan, FaultPoint, injected


@pytest.fixture
def diamond():
    return from_edges([
        ("a", "b", 10), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
    ], failure_probability=0.05)


@pytest.fixture
def diamond_paths(diamond):
    return PathSet.k_shortest(diamond, [("a", "d")], num_primary=2,
                              num_backup=0)


def _config(**overrides) -> RahaConfig:
    base = dict(fixed_demands={("a", "d"): 12.0}, max_failures=1,
                time_limit=42.0)
    base.update(overrides)
    return RahaConfig(**base)


def _always_timeout_plan() -> FaultPlan:
    # attempts is irrelevant at solver sites (no attempt number there):
    # this fires on every MILP solve of the process.
    return FaultPlan(seed=0, points=[FaultPoint("solver.time_limit")])


class TestEscalationRung:
    def test_one_injected_timeout_is_absorbed_by_escalation(
            self, diamond, diamond_paths):
        clean = RahaAnalyzer(diamond, diamond_paths, _config()).analyze()
        plan = FaultPlan(seed=0, points=[
            FaultPoint("solver.time_limit", max_fires=1)])
        with injected(plan):
            recovered = RahaAnalyzer(
                diamond, diamond_paths, _config()).analyze()
        assert not recovered.is_partial
        assert recovered.degradation == pytest.approx(clean.degradation)
        assert recovered.scenario == clean.scenario

    def test_escalation_can_be_disabled(self, diamond, diamond_paths):
        resilience = ResilienceConfig(max_escalations=0)
        plan = FaultPlan(seed=0, points=[
            FaultPoint("solver.time_limit", max_fires=1)])
        with injected(plan):
            with pytest.raises(SolverError, match="no incumbent"):
                RahaAnalyzer(diamond, diamond_paths,
                             _config(resilience=resilience)).analyze()


class TestDefaultStillFailsLoudly:
    def test_exhausted_ladder_raises_solver_error(self, diamond,
                                                  diamond_paths):
        with injected(_always_timeout_plan()):
            with pytest.raises(SolverError, match="no incumbent"):
                RahaAnalyzer(diamond, diamond_paths, _config()).analyze()

    def test_error_names_the_configured_limit_and_the_retries(
            self, diamond, diamond_paths):
        with injected(_always_timeout_plan()):
            with pytest.raises(SolverError, match="42") as excinfo:
                RahaAnalyzer(diamond, diamond_paths, _config()).analyze()
        assert "escalated" in str(excinfo.value)
        assert "allow_partial" in str(excinfo.value)


class TestPartialResultRung:
    def test_allow_partial_returns_a_sound_bound(self, diamond,
                                                 diamond_paths):
        clean = RahaAnalyzer(diamond, diamond_paths, _config()).analyze()
        config = _config(
            resilience=ResilienceConfig(allow_partial=True))
        with injected(_always_timeout_plan()):
            partial = RahaAnalyzer(diamond, diamond_paths, config).analyze()

        assert isinstance(partial, PartialResult)
        assert partial.is_partial
        assert partial.status == "partial"
        # The LP relaxation of a maximization MILP can only
        # over-estimate: the bound must dominate the exact degradation.
        assert partial.bound >= clean.degradation - 1e-6
        assert partial.normalized_bound == pytest.approx(
            partial.bound / diamond.average_lag_capacity())
        assert "PARTIAL" in partial.summary()

    def test_partial_provenance_records_every_rung(self, diamond,
                                                   diamond_paths):
        config = _config(
            resilience=ResilienceConfig(allow_partial=True))
        with injected(_always_timeout_plan()):
            partial = RahaAnalyzer(diamond, diamond_paths, config).analyze()

        # Configured limit plus one default escalation rung (2x).
        assert partial.time_limits_tried == [42.0, 84.0]
        assert len(partial.provenance) == 3
        assert "42" in partial.provenance[0]
        assert "escalated" in partial.provenance[1]
        assert "LP relaxation" in partial.provenance[2]
        assert partial.solver_stats is not None
        assert partial.solver_stats["backend"] == "linprog-relaxation"

    def test_zero_faults_zero_partials(self, diamond, diamond_paths):
        """allow_partial alone must never change a healthy analysis."""
        clean = RahaAnalyzer(diamond, diamond_paths, _config()).analyze()
        config = _config(
            resilience=ResilienceConfig(allow_partial=True))
        result = RahaAnalyzer(diamond, diamond_paths, config).analyze()
        assert not result.is_partial
        assert result.degradation == pytest.approx(clean.degradation)
