"""Journal crash tolerance: torn tails never cost more than one record.

A campaign can be killed at any instant; the journal's contract is that
the file left behind is always a readable prefix -- the in-flight
record is droppable, everything before it is intact.
"""

import json
import logging

from repro.resilience.faults import FaultPlan, FaultPoint, injected
from repro.runner.journal import Journal


def _torn_plan() -> FaultPlan:
    return FaultPlan(seed=0, points=[FaultPoint("journal.torn_append")])


def test_torn_trailing_line_is_dropped_with_one_warning(tmp_path, caplog):
    path = tmp_path / "journal.jsonl"
    journal = Journal(path)
    journal.append({"event": "job", "key": "a", "status": "done"})
    journal.append({"event": "job", "key": "b", "status": "done"})
    # Kill mid-append: half a record, no newline.
    with open(path, "a") as handle:
        handle.write('{"event": "job", "key": "c"')

    with caplog.at_level(logging.WARNING):
        records = Journal(path).records()
    assert [r["key"] for r in records] == ["a", "b"]
    assert sum("torn trailing line" in r.message
               for r in caplog.records) == 1


def test_append_repairs_a_torn_tail(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = Journal(path)
    journal.append({"event": "job", "key": "a", "status": "done"})
    with open(path, "a") as handle:
        handle.write('{"torn')

    # A fresh writer (new process after the crash) appends safely: the
    # new record must not fuse with the wreckage.
    fresh = Journal(path)
    fresh.append({"event": "job", "key": "b", "status": "done"})
    records = fresh.records()
    assert [r["key"] for r in records] == ["a", "b"]


def test_chaos_torn_append_round_trip(tmp_path):
    """An injected torn append loses exactly that record; the journal
    stays readable and the next append recovers."""
    path = tmp_path / "journal.jsonl"
    journal = Journal(path)
    journal.append({"event": "job", "key": "a", "status": "done"})
    with injected(_torn_plan()):
        journal.append({"event": "job", "key": "torn", "status": "done"})
    journal.append({"event": "job", "key": "b", "status": "done"})

    records = journal.records()
    assert [r["key"] for r in records] == ["a", "b"]
    assert journal.settled().keys() == {"a", "b"}


def test_mid_file_corruption_skips_only_that_line(tmp_path, caplog):
    path = tmp_path / "journal.jsonl"
    with open(path, "w") as handle:
        handle.write(json.dumps({"event": "job", "key": "a",
                                 "status": "done"}) + "\n")
        handle.write("<<corrupt>>\n")
        handle.write(json.dumps({"event": "job", "key": "b",
                                 "status": "done"}) + "\n")
    with caplog.at_level(logging.WARNING):
        records = Journal(path).records()
    assert [r["key"] for r in records] == ["a", "b"]
    assert any("unparseable line 2" in r.message for r in caplog.records)


def test_fsync_can_be_disabled(tmp_path):
    journal = Journal(tmp_path / "journal.jsonl", fsync=False)
    journal.append({"event": "job", "key": "a", "status": "done"})
    assert [r["key"] for r in journal.records()] == ["a"]


def test_missing_file_reads_empty(tmp_path):
    journal = Journal(tmp_path / "never-written.jsonl")
    assert journal.records() == []
    assert journal.settled() == {}
