"""Retry semantics, backoff, failure budgets, and signal hygiene.

The executor's recovery machinery must be exact: a transient fault on
the first N-1 attempts plus a success is exactly N attempts, backoff
delays are monotone (jitter can only stretch them), and a job can never
corrupt its caller's signal handling.
"""

import signal

import pytest

from repro.core.config import RunnerConfig
from repro.exceptions import ModelingError
from repro.resilience.faults import FaultPlan, FaultPoint, injected
from repro.runner import executor
from repro.runner.executor import invoke_job, run_sweep
from repro.runner.jobs import Job

WORKERS = "tests.runner._workers"


def _job(task: str, **params) -> Job:
    return Job({"task": f"{WORKERS}:{task}", "instance": {},
                "params": params})


def _fast_config(**overrides) -> RunnerConfig:
    base = dict(backoff_seconds=0.0, backoff_jitter=0.0)
    base.update(overrides)
    return RunnerConfig(**base)


class TestSignalHygiene:
    def test_sigalrm_disposition_is_restored_after_success(self):
        marker = lambda signum, frame: None  # noqa: E731
        previous = signal.signal(signal.SIGALRM, marker)
        try:
            res = invoke_job(_job("echo_task", value=1).payload,
                             wall_timeout=30.0)
            assert res["ok"]
            assert signal.getsignal(signal.SIGALRM) is marker
            assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)
        finally:
            signal.signal(signal.SIGALRM, previous)

    def test_sigalrm_disposition_is_restored_after_timeout(self):
        marker = lambda signum, frame: None  # noqa: E731
        previous = signal.signal(signal.SIGALRM, marker)
        try:
            res = invoke_job(
                _job("sleep_task", sleep_seconds=60).payload,
                wall_timeout=0.2)
            assert not res["ok"]
            assert res["status"] == "timeout"
            assert "wall timeout" in res["error"]
            assert signal.getsignal(signal.SIGALRM) is marker
            assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)
        finally:
            signal.signal(signal.SIGALRM, previous)

    def test_sigalrm_disposition_is_restored_after_task_error(self):
        marker = lambda signum, frame: None  # noqa: E731
        previous = signal.signal(signal.SIGALRM, marker)
        try:
            res = invoke_job(_job("error_task").payload, wall_timeout=30.0)
            assert not res["ok"]
            assert signal.getsignal(signal.SIGALRM) is marker
            assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)
        finally:
            signal.signal(signal.SIGALRM, previous)


class TestRetrySemantics:
    def test_n_minus_one_failures_then_success_is_exactly_n_attempts(self):
        """Chaos fails attempts 1 and 2; with retries=2 the job must
        settle done on attempt 3 -- no more, no fewer."""
        plan = FaultPlan(seed=0, points=[
            FaultPoint("worker.error", attempts=(1, 2))])
        with injected(plan):
            outcome = run_sweep(
                [_job("echo_task", value=7)], num_workers=1,
                config=_fast_config(retries=2),
            )
        (settled,) = outcome.outcomes
        assert settled.status == "done"
        assert settled.result == {"echo": 7}
        assert settled.attempts == 3

    def test_exhausted_retries_settle_with_the_last_error(self):
        plan = FaultPlan(seed=0, points=[
            FaultPoint("worker.error", attempts=(1, 2))])
        with injected(plan):
            outcome = run_sweep(
                [_job("echo_task", value=7)], num_workers=1,
                config=_fast_config(retries=1),
            )
        (settled,) = outcome.outcomes
        assert settled.status == "error"
        assert settled.attempts == 2
        assert "chaos: injected worker error" in settled.error

    def test_in_process_crash_degrades_to_a_structured_error(self):
        """worker.crash in serial mode must not kill the test process."""
        plan = FaultPlan(seed=0, points=[
            FaultPoint("worker.crash", attempts=(1,))])
        with injected(plan):
            outcome = run_sweep(
                [_job("echo_task", value=1)], num_workers=1,
                config=_fast_config(retries=1),
            )
        (settled,) = outcome.outcomes
        assert settled.status == "done"
        assert settled.attempts == 2

    def test_chaos_timeout_site_settles_as_timeout(self):
        plan = FaultPlan(seed=0, points=[
            FaultPoint("worker.timeout", attempts=())])
        with injected(plan):
            outcome = run_sweep(
                [_job("echo_task", value=1)], num_workers=1,
                config=_fast_config(retries=0),
            )
        (settled,) = outcome.outcomes
        assert settled.status == "timeout"
        assert settled.attempts == 1


class TestBackoff:
    def test_delays_are_exponential_and_monotone(self):
        config = RunnerConfig(backoff_seconds=0.1, backoff_factor=2.0,
                              backoff_jitter=0.5, backoff_max_seconds=60.0)
        delays = [config.backoff_delay(a, key="job") for a in range(1, 8)]
        assert all(b >= a for a, b in zip(delays, delays[1:]))
        # Jitter only stretches: every delay sits in [base, base*(1+j)].
        for attempt, delay in enumerate(delays, start=1):
            base = 0.1 * 2.0 ** (attempt - 1)
            assert base <= delay <= base * 1.5 + 1e-12

    def test_delays_are_capped(self):
        config = RunnerConfig(backoff_seconds=1.0, backoff_factor=2.0,
                              backoff_jitter=0.0, backoff_max_seconds=3.0)
        assert config.backoff_delay(10) == 3.0

    def test_jitter_is_deterministic_and_key_dependent(self):
        config = RunnerConfig(backoff_seconds=1.0, backoff_jitter=0.5)
        assert config.backoff_delay(2, key="a") \
            == config.backoff_delay(2, key="a")
        assert config.backoff_delay(2, key="a") \
            != config.backoff_delay(2, key="b")

    def test_jitter_beyond_factor_minus_one_is_rejected(self):
        # A larger jitter could reorder delays (attempt n+1 sooner than
        # attempt n), so the config refuses it outright.
        with pytest.raises(ModelingError, match="monotone"):
            RunnerConfig(backoff_factor=1.5, backoff_jitter=0.9)

    def test_serial_retries_sleep_the_configured_backoff(self, monkeypatch):
        # Backoff waits run through the stop controller (so a drain
        # request can cut them short), not a bare time.sleep.
        slept = []
        monkeypatch.setattr(
            executor._StopController, "wait",
            lambda self, seconds: (slept.append(seconds), False)[1])
        config = RunnerConfig(retries=2, backoff_seconds=0.125,
                              backoff_factor=2.0, backoff_jitter=0.0)
        plan = FaultPlan(seed=0, points=[
            FaultPoint("worker.error", attempts=(1, 2))])
        with injected(plan):
            outcome = run_sweep([_job("echo_task", value=1)],
                                num_workers=1, config=config)
        assert outcome.outcomes[0].status == "done"
        key = outcome.outcomes[0].job.key
        assert slept == [config.backoff_delay(1, key=key),
                         config.backoff_delay(2, key=key)]
        assert slept == [0.125, 0.25]


class TestFailureBudget:
    def test_budget_exhaustion_settles_before_retries_run_out(self):
        """A zero budget means the first failure is also the last, even
        with plenty of retries left -- and the error says why."""
        plan = FaultPlan(seed=0, points=[
            FaultPoint("worker.error", attempts=())])
        with injected(plan):
            outcome = run_sweep(
                [_job("echo_task", value=1)], num_workers=1,
                config=_fast_config(retries=5,
                                    failure_budget_seconds=0.0),
            )
        (settled,) = outcome.outcomes
        assert settled.status == "error"
        assert settled.attempts == 1
        assert "failure budget exhausted" in settled.error

    def test_no_budget_means_retries_govern(self):
        plan = FaultPlan(seed=0, points=[
            FaultPoint("worker.error", attempts=())])
        with injected(plan):
            outcome = run_sweep(
                [_job("echo_task", value=1)], num_workers=1,
                config=_fast_config(retries=2),
            )
        (settled,) = outcome.outcomes
        assert settled.status == "error"
        assert settled.attempts == 3
        assert "failure budget" not in settled.error
