"""The fault-injection harness itself: determinism, targeting, parsing.

Everything downstream (chaos sweeps, fallback ladders) leans on one
property: whether a fault fires is a pure function of
``(seed, site, key, attempt)``.  These tests pin that property and the
plan's serialization surface.
"""

import json

import pytest

from repro.exceptions import ModelingError
from repro.resilience.faults import (
    KNOWN_SITES,
    FaultPlan,
    FaultPoint,
    active_plan,
    clear_plan,
    injected,
    install_plan,
    maybe_fire,
)


class TestDeterminism:
    def test_same_inputs_same_decision(self):
        a = FaultPlan(seed=7, points=[FaultPoint("worker.crash", rate=0.5,
                                                 attempts=())])
        b = FaultPlan(seed=7, points=[FaultPoint("worker.crash", rate=0.5,
                                                 attempts=())])
        keys = [f"job-{i}" for i in range(64)]
        pattern_a = [a.fires("worker.crash", key=k, attempt=1) for k in keys]
        pattern_b = [b.fires("worker.crash", key=k, attempt=1) for k in keys]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)  # rate actually bites

    def test_seed_changes_the_pattern(self):
        keys = [f"job-{i}" for i in range(64)]

        def pattern(seed):
            plan = FaultPlan(seed=seed, points=[
                FaultPoint("worker.crash", rate=0.5, attempts=())])
            return [plan.fires("worker.crash", key=k, attempt=1)
                    for k in keys]

        assert pattern(1) != pattern(2)

    def test_survives_serialization_round_trip(self):
        plan = FaultPlan(seed=3, points=[
            FaultPoint("worker.crash", rate=0.4, attempts=()),
            FaultPoint("cache.torn_write", rate=0.6, match="abc"),
        ])
        clone = FaultPlan.from_dict(
            json.loads(json.dumps(plan.to_dict())))
        assert clone == plan
        keys = [f"k{i}" for i in range(32)]
        assert (
            [plan.fires("worker.crash", key=k, attempt=1) for k in keys]
            == [clone.fires("worker.crash", key=k, attempt=1) for k in keys]
        )

    def test_attempt_number_is_part_of_the_draw(self):
        plan = FaultPlan(seed=5, points=[
            FaultPoint("worker.error", rate=0.5, attempts=())])
        per_attempt = [
            [plan.fires("worker.error", key=f"k{i}", attempt=a)
             for i in range(64)]
            for a in (1, 2)
        ]
        assert per_attempt[0] != per_attempt[1]


class TestTargeting:
    def test_default_attempts_make_faults_transient(self):
        plan = FaultPlan(seed=0, points=[FaultPoint("worker.crash")])
        assert plan.fires("worker.crash", key="j", attempt=1)
        assert not plan.fires("worker.crash", key="j", attempt=2)

    def test_empty_attempts_means_any_attempt(self):
        plan = FaultPlan(seed=0, points=[
            FaultPoint("worker.crash", attempts=())])
        assert plan.fires("worker.crash", key="j", attempt=1)
        assert plan.fires("worker.crash", key="j", attempt=9)

    def test_match_substring_filters_keys(self):
        plan = FaultPlan(seed=0, points=[
            FaultPoint("cache.torn_write", match="deadbeef")])
        assert plan.fires("cache.torn_write", key="xx-deadbeef-yy")
        assert not plan.fires("cache.torn_write", key="cafebabe")

    def test_max_fires_caps_a_point(self):
        plan = FaultPlan(seed=0, points=[
            FaultPoint("solver.time_limit", max_fires=2)])
        fired = [plan.fires("solver.time_limit", key="m") for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_sites_are_independent(self):
        plan = FaultPlan(seed=0, points=[FaultPoint("worker.crash")])
        assert not plan.fires("worker.error", key="j", attempt=1)
        assert not plan.fires("journal.torn_append", key="j")


class TestValidation:
    def test_unknown_site_is_rejected(self):
        with pytest.raises(ModelingError, match="unknown fault site"):
            FaultPoint("worker.sigsegv")

    def test_rate_outside_unit_interval_is_rejected(self):
        with pytest.raises(ModelingError, match="rate"):
            FaultPoint("worker.crash", rate=1.5)
        with pytest.raises(ModelingError, match="rate"):
            FaultPoint("worker.crash", rate=-0.1)

    def test_unknown_point_field_is_rejected(self):
        with pytest.raises(ModelingError, match="unknown fault point"):
            FaultPoint.from_dict({"site": "worker.crash", "rat": 0.5})

    def test_missing_site_is_rejected(self):
        with pytest.raises(ModelingError, match="site"):
            FaultPoint.from_dict({"rate": 0.5})

    def test_wrong_document_kind_is_rejected(self):
        with pytest.raises(ModelingError, match="fault_plan"):
            FaultPlan.from_dict({"kind": "topology"})

    def test_every_known_site_constructs(self):
        for site in KNOWN_SITES:
            FaultPoint(site)


class TestFromArg:
    def test_inline_json(self):
        plan = FaultPlan.from_arg(
            '{"seed": 9, "points": [{"site": "worker.crash", "rate": 0.5}]}')
        assert plan.seed == 9
        assert plan.points[0].site == "worker.crash"

    def test_plan_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"seed": 4, "points": [{"site": "journal.torn_append"}]}))
        plan = FaultPlan.from_arg(str(path))
        assert plan.seed == 4

    def test_nonexistent_path_is_a_clear_error(self):
        with pytest.raises(ModelingError, match="neither inline JSON"):
            FaultPlan.from_arg("/no/such/plan.json")


class TestGlobalPlan:
    def test_maybe_fire_is_inert_without_a_plan(self):
        assert active_plan() is None
        assert not maybe_fire("worker.crash", key="anything", attempt=1)

    def test_injected_scopes_and_restores(self):
        plan = FaultPlan(seed=0, points=[FaultPoint("worker.error")])
        with injected(plan) as installed:
            assert installed is plan
            assert active_plan() is plan
            assert maybe_fire("worker.error", key="k", attempt=1)
        assert active_plan() is None

    def test_injected_nests(self):
        outer = FaultPlan(seed=1)
        inner = FaultPlan(seed=2)
        with injected(outer):
            with injected(inner):
                assert active_plan() is inner
            assert active_plan() is outer
        assert active_plan() is None

    def test_install_plan_accepts_dicts_and_returns_previous(self):
        previous = install_plan({"seed": 11, "points": []})
        assert previous is None
        assert active_plan().seed == 11
        restored = install_plan(None)
        assert restored.seed == 11
        clear_plan()
