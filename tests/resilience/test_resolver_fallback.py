"""ScenarioResolver fallback: a broken re-solve never skews the numbers.

The Monte Carlo resolver answers thousands of scenarios through one
compiled model; if an incremental re-solve fails it must fall back to a
fresh solve of that scenario -- reporting 0.0 delivered would silently
bias every availability statistic.
"""

import pytest

from repro import PathSet, estimate_availability, gravity_demands
from repro.failures.montecarlo import ScenarioResolver
from repro.failures.scenario import FailureScenario
from repro.network.builder import from_edges
from repro.network.topology import lag_key
from repro.resilience.faults import FaultPlan, FaultPoint, injected


@pytest.fixture
def diamond():
    return from_edges([
        ("a", "b", 10), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
    ], failure_probability=0.05)


@pytest.fixture
def instance(diamond):
    paths = PathSet.k_shortest(diamond, [("a", "d")], num_primary=1,
                               num_backup=1)
    demands = {("a", "d"): 12.0}
    return diamond, demands, paths


def _chaos() -> FaultPlan:
    return FaultPlan(seed=0, points=[FaultPoint("resolver.resolve")])


class TestDeliveredFallback:
    def test_chaos_faulted_resolve_matches_the_clean_answer(self, instance):
        topology, demands, paths = instance
        scenarios = [
            FailureScenario(),
            FailureScenario([(lag_key("a", "b"), 0)]),
            FailureScenario([(lag_key("a", "c"), 0)]),
            FailureScenario([(lag_key("a", "b"), 0),
                             (lag_key("a", "c"), 0)]),
        ]
        clean = ScenarioResolver(topology, demands, paths)
        expected = [clean.delivered(s) for s in scenarios]
        assert expected[0] > 0.0      # sanity: healthy network delivers
        assert expected[-1] == 0.0    # both LAGs out of a-d cuts it off

        faulted = ScenarioResolver(topology, demands, paths)
        with injected(_chaos()):
            got = [faulted.delivered(s) for s in scenarios]
        assert got == pytest.approx(expected)

    def test_fallback_logs_a_warning(self, instance, caplog):
        topology, demands, paths = instance
        resolver = ScenarioResolver(topology, demands, paths)
        with injected(_chaos()):
            with caplog.at_level("WARNING"):
                resolver.delivered(FailureScenario())
        assert any("falling back to a fresh solve" in r.message
                   for r in caplog.records)


class TestMonteCarloUnderChaos:
    def test_availability_estimate_is_identical(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d"), ("a", "b")],
                                   num_primary=1, num_backup=1)
        demands = dict(gravity_demands(diamond, scale=20,
                                       pairs=[("a", "d"), ("a", "b")]))
        clean = estimate_availability(diamond, demands, paths,
                                      samples=40, seed=3)
        with injected(_chaos()):
            chaotic = estimate_availability(diamond, demands, paths,
                                            samples=40, seed=3)
        assert chaotic.expected_degradation == pytest.approx(
            clean.expected_degradation)
        assert chaotic.availability == pytest.approx(clean.availability)
        assert chaotic.worst_sampled == pytest.approx(clean.worst_sampled)
        assert chaotic.degradations == pytest.approx(clean.degradations)
