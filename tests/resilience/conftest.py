"""Shared guards for the resilience suite.

Fault plans are process-global state; a test that leaks one would make
every later test chaotic.  The autouse fixture asserts each test starts
clean and forcibly clears whatever it left behind.
"""

import pytest

from repro.resilience.faults import active_plan, clear_plan


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    assert active_plan() is None, "a previous test leaked a fault plan"
    yield
    clear_plan()
