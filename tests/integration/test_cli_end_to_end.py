"""End-to-end CLI pipeline: generate -> paths -> analyze -> augment.

Drives the full operational workflow through the same entry points a
user would script, over files on disk.
"""

import json

import pytest

from repro.cli import main
from repro.network import serialization as ser
from repro.network.demand import synthesize_monthly_demands, top_pairs
from repro.network.generators import production_wan


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli-e2e")
    topology = production_wan(num_regions=2, nodes_per_region=4,
                              dead_share=0.12, seed=3)
    avg, peak = synthesize_monthly_demands(topology, scale=100, seed=3)
    pairs = top_pairs(avg, 4)
    scale = topology.average_lag_capacity() / max(peak[p] for p in pairs)
    peak = peak.restricted_to(pairs).scaled(scale)

    topo_path = str(root / "wan.json")
    demands_path = str(root / "peak.json")
    ser.save_json(ser.topology_to_dict(topology), topo_path)
    ser.save_json(ser.demands_to_dict(peak), demands_path)
    return root, topo_path, demands_path, pairs


class TestCliPipeline:
    def test_full_pipeline(self, workspace):
        root, topo_path, demands_path, pairs = workspace
        paths_path = str(root / "paths.json")
        pair_arg = ",".join(f"{s}~{d}" for s, d in pairs)

        # 1. Precompute paths.
        assert main([
            "paths", "--topology", topo_path, "--pairs", pair_arg,
            "--primary", "2", "--backup", "1", "--out", paths_path,
        ]) == 0

        # 2. Tier-1 analysis: expect an alert exit code (the instance is
        # calibrated to be degradable) and a serialized finding.
        finding_path = str(root / "finding.json")
        code = main([
            "analyze", "--topology", topo_path, "--paths", paths_path,
            "--demands", demands_path, "--threshold", "1e-4",
            "--time-limit", "60", "--tolerance", "0.0",
            "--out", finding_path,
        ])
        finding = json.load(open(finding_path))
        assert finding["verified"] is True
        assert code == (2 if finding["normalized_degradation"] > 0 else 0)

        # 3. Augment away the risk and re-check the augmented topology.
        augmented_path = str(root / "augmented.json")
        code = main([
            "augment", "--topology", topo_path, "--paths", paths_path,
            "--demands", demands_path, "--threshold", "1e-4",
            "--reliable", "--max-steps", "8", "--time-limit", "60",
            "--out", augmented_path,
        ])
        assert code == 0  # converged
        recheck_path = str(root / "recheck.json")
        code = main([
            "analyze", "--topology", augmented_path, "--paths", paths_path,
            "--demands", demands_path, "--threshold", "1e-4",
            "--time-limit", "60", "--tolerance", "0.05",
            "--out", recheck_path,
        ])
        assert code == 0, "augmented topology should pass the tolerance"

        # 4. The expected-case picture on the augmented WAN.
        avail_path = str(root / "avail.json")
        assert main([
            "availability", "--topology", augmented_path,
            "--paths", paths_path, "--demands", demands_path,
            "--samples", "60", "--out", avail_path,
        ]) == 0
        payload = json.load(open(avail_path))
        assert payload["availability"] >= 0.0
