"""End-to-end sweep campaigns: the runner against real MILP jobs.

Covers the acceptance path of the runner subsystem: a multi-job sweep
through ``python -m repro sweep``, serial/parallel numerical
equivalence, 100% cache hits on re-invocation, and journal resume.
"""

import json

import pytest

from repro.analysis.experiments import bench_wan, degradation_sweep
from repro.cli import main
from repro.network import serialization as ser
from repro.runner.cache import ResultCache
from repro.runner.journal import Journal

THRESHOLDS = [1e-1, 1e-2, 1e-4]
BUDGETS = [1, None]


@pytest.fixture(scope="module")
def tiny_wan():
    net = bench_wan(num_regions=2, nodes_per_region=3, num_pairs=2, seed=1)
    return net, net.paths(num_primary=2, num_backup=1)


class TestDegradationSweepOnRunner:
    def test_parallel_matches_serial_numbers(self, tiny_wan):
        net, paths = tiny_wan
        serial = degradation_sweep(net, paths, "avg", THRESHOLDS, BUDGETS,
                                   time_limit=20.0, num_workers=1)
        parallel = degradation_sweep(net, paths, "avg", THRESHOLDS, BUDGETS,
                                     time_limit=20.0, num_workers=2)
        assert serial == parallel

    def test_rerun_hits_cache_with_identical_rows(self, tiny_wan, tmp_path):
        net, paths = tiny_wan
        cache = ResultCache(tmp_path / "cache")
        events = []
        first = degradation_sweep(net, paths, "avg", THRESHOLDS, BUDGETS,
                                  time_limit=20.0, cache=cache)
        second = degradation_sweep(net, paths, "avg", THRESHOLDS, BUDGETS,
                                   time_limit=20.0, cache=cache,
                                   progress=events.append)
        assert first == second
        assert events[-1].cache_hits == len(events) == len(first)

    def test_resume_finishes_remaining_jobs(self, tiny_wan, tmp_path):
        net, paths = tiny_wan
        journal = Journal(tmp_path / "journal.jsonl")
        # "Killed" campaign: only the budget rows settled.
        degradation_sweep(net, paths, "avg", [], BUDGETS,
                          time_limit=20.0, journal=journal)
        events = []
        rows = degradation_sweep(net, paths, "avg", THRESHOLDS, BUDGETS,
                                 time_limit=20.0, journal=journal,
                                 resume=True, progress=events.append)
        statuses = [e.status for e in events]
        assert statuses.count("resumed") == 1  # k=1 settled pre-kill
        assert len(rows) == len(BUDGETS) - 1 + len(THRESHOLDS)


class TestSweepCli:
    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory, tiny_wan):
        net, paths = tiny_wan
        root = tmp_path_factory.mktemp("sweep-cli")
        ser.save_json(ser.topology_to_dict(net.topology),
                      str(root / "wan.json"))
        ser.save_json(ser.demands_to_dict(net.avg_demands),
                      str(root / "demands.json"))
        ser.save_json(ser.paths_to_dict(paths), str(root / "paths.json"))
        spec = {
            "kind": "sweep_spec",
            "name": "tiny-grid",
            "instance": {"topology": "wan.json", "demands": "demands.json",
                         "paths": "paths.json"},
            "base": {"demand_mode": "fixed", "time_limit": 20.0,
                     "mip_rel_gap": 0.01},
            "grid": {"threshold": [1e-1, 1e-2, 1e-3, 1e-4],
                     "max_failures": [1, 2]},
        }
        (root / "campaign.json").write_text(json.dumps(spec))
        return root

    def test_sweep_runs_caches_and_resumes(self, campaign, capsys):
        spec_path = str(campaign / "campaign.json")
        workdir = campaign / "campaign.sweep"

        # First invocation: 8 jobs solve for real.
        assert main(["sweep", "--spec", spec_path, "--jobs", "2",
                     "--quiet"]) == 0
        results = json.load(open(workdir / "results.json"))
        assert results["kind"] == "sweep_results"
        assert results["summary"]["total"] == 8
        assert results["summary"]["counts"] == {"done": 8}
        degradations = [job["result"]["normalized_degradation"]
                        for job in results["jobs"]]
        assert all(d >= 0 for d in degradations)

        # Second invocation of the same spec: 100% cache hits, same rows.
        assert main(["sweep", "--spec", spec_path, "--jobs", "2",
                     "--quiet"]) == 0
        rerun = json.load(open(workdir / "results.json"))
        assert rerun["summary"]["counts"] == {"cached": 8}
        assert [job["result"]["normalized_degradation"]
                for job in rerun["jobs"]] == degradations

        # "Kill" the campaign: drop the cache and truncate the journal
        # to its first half, then --resume finishes only the remainder.
        for entry in (workdir / "cache").glob("*.json"):
            entry.unlink()
        journal_path = workdir / "journal.jsonl"
        job_lines = [line for line in journal_path.read_text().splitlines()
                     if '"event": "job"' in line]
        journal_path.write_text("\n".join(job_lines[:4]) + "\n")
        assert main(["sweep", "--spec", spec_path, "--jobs", "2", "--quiet",
                     "--resume"]) == 0
        resumed = json.load(open(workdir / "results.json"))
        counts = resumed["summary"]["counts"]
        assert counts["resumed"] == 4 and counts["done"] == 4
        assert [job["result"]["normalized_degradation"]
                for job in resumed["jobs"]] == degradations
        capsys.readouterr()

    def test_analyze_threshold_sweep(self, campaign, capsys):
        code = main([
            "analyze", "--topology", str(campaign / "wan.json"),
            "--paths", str(campaign / "paths.json"),
            "--demands", str(campaign / "demands.json"),
            "--threshold", "1e-2,1e-4", "--time-limit", "20",
            "--jobs", "1", "--workdir", str(campaign / "analyze.sweep"),
            "--out", str(campaign / "analyze.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "degradation vs threshold" in out
        doc = json.load(open(campaign / "analyze.json"))
        assert doc["summary"]["total"] == 2
        assert all(job["status"] == "done" for job in doc["jobs"])

    def test_sweep_with_failing_job_exits_4(self, campaign, tmp_path):
        spec = {
            "kind": "sweep_spec",
            "instance": {"topology": str(campaign / "wan.json"),
                         "demands": str(campaign / "demands.json"),
                         "paths": str(campaign / "paths.json")},
            # An unknown demand mode fails inside the worker with a
            # structured error; the campaign must still complete.
            "base": {"demand_mode": "nonsense", "time_limit": 5.0},
            "grid": {"threshold": [1e-2]},
        }
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(json.dumps(spec))
        code = main(["sweep", "--spec", str(spec_path), "--jobs", "1",
                     "--quiet", "--retries", "0"])
        assert code == 4
        results = json.load(open(tmp_path / "bad.sweep" / "results.json"))
        assert results["jobs"][0]["status"] == "error"
        assert "nonsense" in results["jobs"][0]["error"]
