"""Section 9 "equivalences": end-to-end analysis with gateway nodes.

Traffic leaving a continent may exit through any of several gateways.
The virtual-node transformation plus Raha must (a) treat virtual LAGs as
non-failable, (b) let the gateway demand use every gateway's paths, and
(c) find multi-gateway failure scenarios that a single-gateway model
would miss.
"""

import pytest

from repro import PathSet, RahaAnalyzer, RahaConfig
from repro.network.builder import from_edges
from repro.network.virtual import add_gateway, extend_paths_through_gateways


@pytest.fixture
def continent():
    # Two gateways g1/g2 both reach the interior node d.
    return from_edges([
        ("g1", "m", 10), ("g2", "m", 10), ("m", "d", 30),
        ("g1", "x", 5), ("x", "d", 5),
    ], failure_probability=0.02)


def build_virtual(continent):
    topo = add_gateway(continent, "EXIT", {"g1": 50.0, "g2": 50.0})
    base = PathSet.k_shortest(topo, [("g1", "d"), ("g2", "d")],
                              num_primary=2, num_backup=0)
    paths = extend_paths_through_gateways(base, topo, "EXIT", ["g1", "g2"])
    return topo, paths.restricted_to([("EXIT", "d")])


class TestVirtualGatewayAnalysis:
    def test_virtual_lags_never_fail(self, continent):
        topo, paths = build_virtual(continent)
        config = RahaConfig(fixed_demands={("EXIT", "d"): 25.0},
                            max_failures=4)
        result = RahaAnalyzer(topo, paths, config).analyze()
        for (key, _idx) in result.scenario.failed_links:
            assert "EXIT" not in key, "virtual LAG failed in the scenario"

    def test_gateway_demand_uses_both_gateways(self, continent):
        topo, paths = build_virtual(continent)
        from repro.te import TotalFlowTE

        sol = TotalFlowTE(primary_only=True).solve(
            topo, {("EXIT", "d"): 25.0}, paths
        )
        # One gateway alone caps at 15 (10 + 5); both reach 25.
        assert sol.total_flow == pytest.approx(25.0, abs=1e-6)

    def test_worst_case_spans_gateways(self, continent):
        topo, paths = build_virtual(continent)
        config = RahaConfig(fixed_demands={("EXIT", "d"): 25.0},
                            max_failures=2)
        result = RahaAnalyzer(topo, paths, config).analyze()
        # Both gateways funnel through the shared m-d LAG: killing it plus
        # the side route strands the entire 25 units -- the multi-gateway
        # exposure the equivalence analysis exists to reveal.
        assert result.degradation == pytest.approx(25.0, abs=1e-5)
        failed_lags = {key for key, _ in result.scenario.failed_links}
        assert ("d", "m") in failed_lags

    def test_single_gateway_model_misses_risk(self, continent):
        """Modeling only g1 under-reports the exposure of EXIT traffic."""
        topo, paths = build_virtual(continent)
        joint = RahaAnalyzer(
            topo, paths,
            RahaConfig(fixed_demands={("EXIT", "d"): 25.0}, max_failures=1),
        ).analyze()
        single = RahaAnalyzer(
            continent,
            PathSet.k_shortest(continent, [("g1", "d")], 2, 0),
            RahaConfig(fixed_demands={("g1", "d"): 25.0}, max_failures=1),
        ).analyze()
        # The virtual model has strictly more capacity to lose; both are
        # valid, but only the virtual model prices the joint exposure.
        assert joint.healthy_value > single.healthy_value
