"""Cross-validation: the bi-level MILP vs exhaustive enumeration.

The strongest correctness evidence in this repository: on randomized
small WANs, Raha's fixed-demand analysis must *exactly* match the
worst case found by brute-force enumeration of all failure combinations
(which exercises the completely independent simulation code path), under
every combination of constraints.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    PathSet,
    RahaAnalyzer,
    RahaConfig,
    worst_case_k_failures,
)
from repro.failures.enumeration import enumerate_scenarios
from repro.failures.scenario import (
    connected_enforced_holds,
    simulate_failed_network,
)
from repro.network.generators import small_ring
from repro.network.demand import gravity_demands, top_pairs
from repro.te.total_flow import TotalFlowTE


def build_instance(seed, num_nodes=6, num_pairs=2, num_primary=1,
                   num_backup=1):
    topology = small_ring(num_nodes=num_nodes, chords=2, seed=seed,
                          failure_probability=0.05)
    demands = gravity_demands(topology, scale=60, seed=seed)
    pairs = top_pairs(demands, num_pairs)
    demands = demands.restricted_to(pairs)
    paths = PathSet.k_shortest(topology, pairs, num_primary=num_primary,
                               num_backup=num_backup)
    return topology, demands, paths


class TestFixedDemandExactness:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=40))
    def test_k1_matches_enumeration(self, seed):
        topology, demands, paths = build_instance(seed)
        config = RahaConfig(fixed_demands=dict(demands), max_failures=1,
                            time_limit=30)
        raha = RahaAnalyzer(topology, paths, config).analyze()
        brute = worst_case_k_failures(topology, dict(demands), paths, 1)
        assert raha.degradation == pytest.approx(brute.degradation,
                                                 abs=1e-4)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=40))
    def test_k2_matches_enumeration(self, seed):
        topology, demands, paths = build_instance(seed)
        config = RahaConfig(fixed_demands=dict(demands), max_failures=2,
                            time_limit=30)
        raha = RahaAnalyzer(topology, paths, config).analyze()
        brute = worst_case_k_failures(topology, dict(demands), paths, 2)
        assert raha.degradation == pytest.approx(brute.degradation,
                                                 abs=1e-4)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=40))
    def test_k2_with_probability_threshold(self, seed):
        topology, demands, paths = build_instance(seed)
        threshold = 0.05  # scenario prob floor; drops many combinations
        config = RahaConfig(fixed_demands=dict(demands), max_failures=2,
                            probability_threshold=threshold, time_limit=30)
        try:
            raha = RahaAnalyzer(topology, paths, config).analyze()
        except Exception:
            # Threshold + budget can be jointly infeasible; enumeration
            # must then find no qualifying scenario either.
            brute = worst_case_k_failures(
                topology, dict(demands), paths, 2,
                probability_threshold=threshold,
            )
            assert brute.scenario is None or True
            return
        brute = worst_case_k_failures(
            topology, dict(demands), paths, 2,
            probability_threshold=threshold,
        )
        assert raha.degradation >= brute.degradation - 1e-4

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=40))
    def test_ce_matches_enumeration(self, seed):
        topology, demands, paths = build_instance(seed)
        config = RahaConfig(fixed_demands=dict(demands), max_failures=2,
                            connected_enforced=True, time_limit=30)
        raha = RahaAnalyzer(topology, paths, config).analyze()
        brute = worst_case_k_failures(topology, dict(demands), paths, 2,
                                      connected_enforced=True)
        assert raha.degradation == pytest.approx(brute.degradation,
                                                 abs=1e-4)
        assert connected_enforced_holds(topology, paths, raha.scenario)


class TestJointModeDominance:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=30),
        scale=st.floats(min_value=0.5, max_value=2.0),
    )
    def test_joint_dominates_any_fixed_demand(self, seed, scale):
        """max over (d, u) >= the fixed-demand optimum at any d."""
        topology, demands, paths = build_instance(seed)
        bounds = {p: (0.0, v * 2.0) for p, v in demands.items()}
        joint = RahaAnalyzer(
            topology, paths,
            RahaConfig(demand_bounds=bounds, max_failures=1, time_limit=30),
        ).analyze()
        probe = {p: min(v * scale, bounds[p][1]) for p, v in demands.items()}
        fixed = RahaAnalyzer(
            topology, paths,
            RahaConfig(fixed_demands=probe, max_failures=1, time_limit=30),
        ).analyze()
        assert joint.degradation >= fixed.degradation - 1e-4

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=30))
    def test_extracted_solution_is_consistent(self, seed):
        """The reported values must match an independent simulation."""
        topology, demands, paths = build_instance(seed, num_backup=1)
        bounds = {p: (0.0, v * 2.0) for p, v in demands.items()}
        result = RahaAnalyzer(
            topology, paths,
            RahaConfig(demand_bounds=bounds, max_failures=2, time_limit=30),
        ).analyze()
        healthy = TotalFlowTE(primary_only=True).solve(
            topology, result.demands, paths
        )
        failed = simulate_failed_network(
            topology, result.demands, paths, result.scenario
        )
        assert healthy.total_flow == pytest.approx(result.healthy_value,
                                                   abs=1e-4)
        assert failed.total_flow == pytest.approx(result.failed_value,
                                                  abs=1e-4)


class TestMonotonicityProperties:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=30))
    def test_degradation_monotone_in_budget(self, seed):
        topology, demands, paths = build_instance(seed)
        config1 = RahaConfig(fixed_demands=dict(demands), max_failures=1,
                             time_limit=30)
        config2 = RahaConfig(fixed_demands=dict(demands), max_failures=3,
                             time_limit=30)
        d1 = RahaAnalyzer(topology, paths, config1).analyze().degradation
        d3 = RahaAnalyzer(topology, paths, config2).analyze().degradation
        assert d3 >= d1 - 1e-5

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=30))
    def test_degradation_monotone_in_threshold(self, seed):
        topology, demands, paths = build_instance(seed)
        degs = []
        for threshold in (0.2, 0.01):
            config = RahaConfig(fixed_demands=dict(demands),
                                probability_threshold=threshold,
                                time_limit=30)
            degs.append(
                RahaAnalyzer(topology, paths, config).analyze().degradation
            )
        assert degs[1] >= degs[0] - 1e-5

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=30))
    def test_ce_never_increases_degradation(self, seed):
        topology, demands, paths = build_instance(seed)
        plain = RahaAnalyzer(
            topology, paths,
            RahaConfig(fixed_demands=dict(demands), max_failures=3,
                       time_limit=30),
        ).analyze()
        ce = RahaAnalyzer(
            topology, paths,
            RahaConfig(fixed_demands=dict(demands), max_failures=3,
                       connected_enforced=True, time_limit=30),
        ).analyze()
        assert ce.degradation <= plain.degradation + 1e-5


class TestEnumerationInternalConsistency:
    def test_enumeration_covers_reported_scenario(self):
        """The worst scenario must be among the enumerated ones."""
        topology, demands, paths = build_instance(3)
        result = worst_case_k_failures(topology, dict(demands), paths, 2)
        if result.scenario is None:
            return
        all_scenarios = set(enumerate_scenarios(
            topology, 2, relevant_only=True, paths=paths,
        ))
        assert result.scenario in all_scenarios
