"""Run the executable examples embedded in key docstrings."""

import doctest

import pytest

import repro.core.analyzer
import repro.network.builder
import repro.solver.model


@pytest.mark.parametrize("module", [
    repro.solver.model,
    repro.network.builder,
    repro.core.analyzer,
], ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest(s) failed"
    assert results.attempted > 0, "expected at least one doctest"
