"""Every example script must run cleanly end to end.

Examples are the public face of the library: each is executed as a real
subprocess (like a user would) and its key output lines are asserted.
"""

import pathlib
import subprocess
import sys



EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: float = 600.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Worst probable degradation found" in out
        assert "degradation=" in out

    def test_motivating_example(self):
        out = run_example("motivating_example.py")
        assert "healthy 22, worst failure leaves 15 -> degradation 7" in out
        assert "Ordering (naive < fixed < Raha)" in out

    def test_capacity_planning(self):
        out = run_example("capacity_planning.py")
        assert "converged: True" in out
        assert "Augment existing LAGs" in out
        assert "new LAGs" in out

    def test_online_alerting(self):
        out = run_example("online_alerting.py")
        assert "Estimated link down probabilities" in out
        assert "Before the incident" in out
        assert "[info] peak demand is safe" in out
        assert "[critical]" in out  # fires after the fiber cut

    def test_seismic_srlg(self):
        out = run_example("seismic_srlg.py")
        assert "Conduit SRLG model" in out
        assert "seismic event" in out

    def test_topology_zoo(self):
        out = run_example("topology_zoo.py")
        assert "max-failures baselines" in out
        assert "Raha with probability thresholds" in out

    def test_oblivious_vs_ksp(self):
        out = run_example("oblivious_vs_ksp.py")
        assert "Oblivious template" in out
        assert "worst probable degradation" in out

    def test_availability_report(self):
        out = run_example("availability_report.py")
        assert "Monte Carlo" in out
        assert "blind spot Raha closes" in out

    def test_continental_analysis(self):
        out = run_example("continental_analysis.py")
        assert "The risk is African" in out
        assert "backbone" in out
