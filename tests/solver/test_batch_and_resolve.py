"""Tests for the array-backed modeling fast path and incremental re-solve.

Covers ``LinExpr.from_arrays`` / batched ``quicksum``, ``add_vars_batch``,
``add_constrs_batch``, the compile cache, ``Model.resolve_with``, per-solve
``SolveStats`` telemetry, and -- crucially -- the dual-recovery regression
for range constraints (the two linprog marginal loops must *sum* into a
row present in both the ub and lb masks, not overwrite it).
"""

import numpy as np
import pytest

from repro.exceptions import ModelingError
from repro.solver import (
    Model,
    RangeConstraint,
    SolveStatus,
    quicksum,
)
from repro.solver.expr import LinExpr, indices_of


class TestFromArrays:
    def test_duplicate_indices_are_summed(self):
        e = LinExpr.from_arrays([3, 1, 3], [2.0, 5.0, 0.5])
        assert e.terms == {1: 5.0, 3: 2.5}

    def test_exact_zero_coefficients_dropped(self):
        e = LinExpr.from_arrays([0, 1, 2], [1.0, 0.0, -1.0])
        assert 1 not in e.terms
        assert e.terms == {0: 1.0, 2: -1.0}

    def test_cancellation_drops_term(self):
        e = LinExpr.from_arrays([4, 4], [1.0, -1.0])
        assert e.terms == {}

    def test_constant_kept(self):
        e = LinExpr.from_arrays([0], [2.0], constant=7.5)
        assert e.constant == 7.5

    def test_empty(self):
        e = LinExpr.from_arrays([], [])
        assert e.terms == {}
        assert e.constant == 0.0

    def test_matches_scalar_construction(self):
        m = Model()
        xs = m.add_vars_batch(4, ub=1.0)
        coefs = [2.0, -1.0, 0.5, 3.0]
        batched = LinExpr.from_arrays(indices_of(xs), coefs)
        scalar = quicksum(c * x for c, x in zip(coefs, xs))
        assert batched.terms == scalar.terms


class TestQuicksumCoefs:
    def test_coefs_path_matches_generator(self):
        m = Model()
        xs = m.add_vars_batch(5, ub=2.0)
        w = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert quicksum(xs, coefs=w).terms == \
            quicksum(wi * x for wi, x in zip(w, xs)).terms

    def test_coefs_length_mismatch_rejected(self):
        m = Model()
        xs = m.add_vars_batch(3)
        with pytest.raises((ModelingError, ValueError)):
            quicksum(xs, coefs=[1.0, 2.0])


class TestAddVarsBatch:
    def test_array_bounds(self):
        m = Model()
        xs = m.add_vars_batch(3, lb=[0.0, 1.0, 2.0], ub=[5.0, 5.0, 5.0])
        assert [x.lb for x in xs] == [0.0, 1.0, 2.0]
        m.set_objective(quicksum(xs), sense="min")
        assert m.solve().objective == pytest.approx(3.0)

    def test_negative_count_rejected(self):
        with pytest.raises(ModelingError):
            Model().add_vars_batch(-1)

    def test_bad_bound_shape_rejected(self):
        with pytest.raises(ModelingError):
            Model().add_vars_batch(3, lb=[0.0, 1.0])

    def test_lb_above_ub_rejected(self):
        with pytest.raises(ModelingError):
            Model().add_vars_batch(2, lb=[0.0, 3.0], ub=[1.0, 1.0])

    def test_binary_conflicting_bounds_rejected(self):
        with pytest.raises(ModelingError):
            Model().add_vars_batch(2, binary=True, ub=[1.0, 5.0])

    def test_binary_fixed_to_one_allowed(self):
        m = Model()
        (z,) = m.add_vars_batch(1, binary=True, lb=1.0)
        m.set_objective(z.to_expr(), sense="min")
        assert m.solve().objective == pytest.approx(1.0)


class TestBinaryBoundConflict:
    """``add_var(binary=True, lb=..., ub=...)`` must not silently widen."""

    def test_scalar_binary_with_wide_ub_rejected(self):
        with pytest.raises(ModelingError):
            Model().add_var(binary=True, ub=5.0)

    def test_scalar_binary_with_negative_lb_rejected(self):
        with pytest.raises(ModelingError):
            Model().add_var(binary=True, lb=-1.0)

    def test_scalar_binary_pinned_inside_unit_box_ok(self):
        m = Model()
        z = m.add_var(binary=True, lb=1.0, ub=1.0)
        m.set_objective(z.to_expr(), sense="min")
        assert m.solve().objective == pytest.approx(1.0)


class TestAddConstrsBatch:
    def _scalar_model(self):
        m = Model()
        xs = [m.add_var(ub=4.0, name=f"x{i}") for i in range(3)]
        m.add_constr(xs[0] + 2 * xs[1] <= 6.0)
        m.add_constr(xs[1] + xs[2] <= 5.0)
        m.add_constr(xs[0] - xs[2] == 1.0)
        m.set_objective(quicksum(xs), sense="max")
        return m

    def _batch_model(self):
        m = Model()
        xs = m.add_vars_batch(3, ub=4.0)
        m.add_constrs_batch(
            [0, 2, 4],
            [xs[0].index, xs[1].index, xs[1].index, xs[2].index],
            [1.0, 2.0, 1.0, 1.0],
            rhs=[6.0, 5.0],
        )
        m.add_constrs_batch(
            [0, 2],
            [xs[0].index, xs[2].index],
            [1.0, -1.0],
            sense="==",
            rhs=1.0,
        )
        m.set_objective(quicksum(xs), sense="max")
        return m

    def test_batch_matches_scalar_objective(self):
        assert self._batch_model().solve().objective == pytest.approx(
            self._scalar_model().solve().objective
        )

    def test_batch_matches_scalar_matrix(self):
        sc = self._scalar_model()._compile()
        ba = self._batch_model()._compile()
        np.testing.assert_array_equal(sc[0], ba[0])          # c
        assert (sc[1] != ba[1]).nnz == 0                     # A
        for i in (2, 3, 4, 5):                               # bounds
            np.testing.assert_array_equal(sc[i], ba[i])

    def test_per_row_sense_sequence(self):
        m = Model()
        x, y = m.add_vars_batch(2, ub=10.0)
        m.add_constrs_batch(
            [0, 1, 2],
            [x.index, y.index],
            rhs=[3.0, 2.0],
            sense=["<=", ">="],
        )
        m.set_objective(x - y, sense="max")
        r = m.solve()
        assert r.value(x) == pytest.approx(3.0)
        assert r.value(y) == pytest.approx(2.0)

    def test_row_bounds_classify_range_rows(self):
        m = Model()
        x = m.add_var(ub=10.0)
        rows = m.add_constrs_batch(
            [0, 1], [x.index], row_lb=[2.0], row_ub=[6.0], name="box"
        )
        m.set_objective(x.to_expr(), sense="max")
        assert m.solve().objective == pytest.approx(6.0)
        (con,) = [m.constraints[i] for i in rows]
        assert isinstance(con, RangeConstraint)
        assert (con.lo, con.hi) == (2.0, 6.0)

    def test_returned_range_indexes_rows(self):
        m = Model()
        x = m.add_var(ub=10.0)
        m.add_constr(x <= 9.0)
        rows = m.add_constrs_batch([0, 1], [x.index], rhs=4.0)
        assert list(rows) == [1]

    def test_materialized_constraints_match_scalar_forms(self):
        m = Model()
        x, y = m.add_vars_batch(2, ub=10.0)
        m.add_constrs_batch(
            [0, 2], [x.index, y.index], [1.0, 2.0], rhs=8.0, name="cap"
        )
        (con,) = m.constraints
        assert con.name == "cap"
        assert con.sense == "<="
        assert con.expr.terms == {x.index: 1.0, y.index: 2.0}
        assert con.rhs() == pytest.approx(8.0)

    def test_bad_indptr_rejected(self):
        m = Model()
        x = m.add_var()
        with pytest.raises(ModelingError):
            m.add_constrs_batch([1, 2], [x.index], rhs=1.0)

    def test_column_out_of_range_rejected(self):
        m = Model()
        m.add_var()
        with pytest.raises(ModelingError):
            m.add_constrs_batch([0, 1], [5], rhs=1.0)

    def test_data_shape_mismatch_rejected(self):
        m = Model()
        x = m.add_var()
        with pytest.raises(ModelingError):
            m.add_constrs_batch([0, 1], [x.index], [1.0, 2.0], rhs=1.0)

    def test_rhs_and_row_bounds_together_rejected(self):
        m = Model()
        x = m.add_var()
        with pytest.raises(ModelingError):
            m.add_constrs_batch(
                [0, 1], [x.index], rhs=1.0, row_ub=2.0
            )

    def test_mixing_scalar_and_batch_rows(self):
        m = Model()
        x, y = m.add_vars_batch(2, ub=10.0)
        m.add_constr(x + y <= 7.0, name="scalar")
        m.add_constrs_batch([0, 1], [y.index], rhs=2.0, name="batch")
        m.add_constr(x <= 6.0)
        m.set_objective(x + y, sense="max")
        assert m.solve().objective == pytest.approx(7.0)
        names = [c.name for c in m.constraints]
        assert names == ["scalar", "batch", ""]


class TestCompileCache:
    def test_second_solve_hits_cache(self):
        m = Model()
        x = m.add_var(ub=3.0)
        m.add_constr(x <= 2.0)
        m.set_objective(x.to_expr(), sense="max")
        first = m.solve()
        second = m.solve()
        assert first.stats.compile_cached is False
        assert second.stats.compile_cached is True
        assert second.stats.compile_seconds == 0.0
        assert second.objective == pytest.approx(first.objective)

    def test_mutation_invalidates_cache(self):
        m = Model()
        x = m.add_var(ub=3.0)
        m.set_objective(x.to_expr(), sense="max")
        assert m.solve().objective == pytest.approx(3.0)
        m.add_constr(x <= 1.0)
        r = m.solve()
        assert r.stats.compile_cached is False
        assert r.objective == pytest.approx(1.0)

    def test_objective_change_invalidates_cache(self):
        m = Model()
        x = m.add_var(lb=-1.0, ub=3.0)
        m.set_objective(x.to_expr(), sense="max")
        m.solve()
        m.set_objective(x.to_expr(), sense="min")
        assert m.solve().objective == pytest.approx(-1.0)


class TestResolveWith:
    def _capped_model(self):
        m = Model()
        x = m.add_var(ub=10.0)
        cap = m.add_constr(x <= 4.0, name="cap")
        m.set_objective(x.to_expr(), sense="max")
        return m, x, cap

    def test_le_rhs_override(self):
        m, _, cap = self._capped_model()
        assert m.solve().objective == pytest.approx(4.0)
        assert m.resolve_with({cap: 2.5}).objective == pytest.approx(2.5)

    def test_model_unchanged_after_resolve(self):
        m, _, cap = self._capped_model()
        m.resolve_with({cap: 1.0})
        assert m.solve().objective == pytest.approx(4.0)

    def test_integer_row_key(self):
        m, _, cap = self._capped_model()
        assert m.resolve_with({cap.row: 3.0}).objective == pytest.approx(3.0)

    def test_ge_and_eq_overrides(self):
        m = Model()
        x = m.add_var(ub=10.0)
        y = m.add_var(ub=10.0)
        floor = m.add_constr(x >= 1.0)
        pin = m.add_constr(y == 2.0)
        m.set_objective(x + y, sense="min")
        assert m.solve().objective == pytest.approx(3.0)
        r = m.resolve_with({floor: 4.0, pin: 5.0})
        assert r.value(x) == pytest.approx(4.0)
        assert r.value(y) == pytest.approx(5.0)

    def test_range_row_takes_tuple(self):
        m = Model()
        x = m.add_var(ub=10.0)
        box = m.add_range_constr(x, 1.0, 6.0)
        m.set_objective(x.to_expr(), sense="max")
        assert m.solve().objective == pytest.approx(6.0)
        assert m.resolve_with({box: (None, 3.0)}).objective == \
            pytest.approx(3.0)
        with pytest.raises(ModelingError):
            m.resolve_with({box: 3.0})

    def test_bound_overrides(self):
        m = Model()
        x = m.add_var(ub=5.0)
        y = m.add_var(ub=5.0)
        m.set_objective(x + y, sense="max")
        assert m.solve().objective == pytest.approx(10.0)
        r = m.resolve_with(bound_overrides={x: 0.0, y: (2.0, 3.0)})
        assert r.value(x) == pytest.approx(0.0)
        assert r.value(y) == pytest.approx(3.0)

    def test_crossed_override_rejected(self):
        m, _, _ = self._capped_model()
        x = m.variables[0]
        with pytest.raises(ModelingError):
            m.resolve_with(bound_overrides={x: (6.0, 2.0)})

    def test_row_index_out_of_range_rejected(self):
        m, _, _ = self._capped_model()
        with pytest.raises(ModelingError):
            m.resolve_with({99: 1.0})

    def test_batch_rows_resolvable_by_index(self):
        m = Model()
        xs = m.add_vars_batch(2, ub=10.0)
        rows = m.add_constrs_batch(
            [0, 1, 2], [xs[0].index, xs[1].index], rhs=[4.0, 4.0]
        )
        m.set_objective(quicksum(xs), sense="max")
        assert m.solve().objective == pytest.approx(8.0)
        r = m.resolve_with({rows[0]: 1.0, rows[1]: 2.0})
        assert r.objective == pytest.approx(3.0)
        assert r.stats.incremental is True

    def test_resolve_milp(self):
        m = Model()
        z = m.add_var(binary=True)
        x = m.add_var(ub=10.0)
        cap = m.add_constr(x <= 6.0)
        m.add_constr(x <= 10.0 * z.to_expr())
        m.set_objective(x - 0.5 * z, sense="max")
        assert m.solve().objective == pytest.approx(5.5)
        r = m.resolve_with({cap: 0.25})
        assert r.objective == pytest.approx(0.0)
        assert r.stats.backend == "milp"
        assert r.stats.incremental is True


class TestRangeDualRegression:
    """Range rows appear in both the ub and lb linprog masks; their two
    marginals must be *summed*.  The historic bug overwrote the ub-side
    dual with the (zero) lb-side marginal, silently zeroing every range
    dual -- these tests fail on that code."""

    def test_range_binding_above_has_nonzero_dual(self):
        m = Model()
        x = m.add_var(ub=100.0)
        box = m.add_range_constr(x, 0.0, 5.0)
        m.set_objective(2.0 * x, sense="max")
        r = m.solve()
        assert r.objective == pytest.approx(10.0)
        # Raising the upper side by 1 gains 2.0: dual must be 2, not 0.
        assert r.duals[box.row] == pytest.approx(2.0)

    def test_range_binding_below_min(self):
        m = Model()
        x = m.add_var(ub=100.0)
        box = m.add_range_constr(x, 3.0, 8.0)
        m.set_objective(4.0 * x, sense="min")
        r = m.solve()
        assert r.objective == pytest.approx(12.0)
        # For a min problem, tightening the binding lower side by 1
        # raises the optimum by 4.
        assert r.duals[box.row] == pytest.approx(4.0)

    def test_range_dual_consistent_with_one_sided_row(self):
        def build(ranged: bool):
            m = Model()
            x = m.add_var(ub=100.0)
            y = m.add_var(ub=100.0)
            if ranged:
                con = m.add_range_constr(x + y, -1000.0, 7.0)
            else:
                con = m.add_constr(x + y <= 7.0)
            m.add_constr(x <= 5.0)
            m.set_objective(3.0 * x + 1.0 * y, sense="max")
            return m.solve(), con

        ranged, rcon = build(True)
        plain, pcon = build(False)
        assert ranged.objective == pytest.approx(plain.objective)
        assert ranged.duals[rcon.row] == pytest.approx(plain.duals[pcon.row])

    def test_strict_interior_range_has_zero_dual(self):
        m = Model()
        x = m.add_var(ub=2.0)
        box = m.add_range_constr(x, -50.0, 50.0)
        m.set_objective(x.to_expr(), sense="max")
        r = m.solve()
        assert r.objective == pytest.approx(2.0)
        assert r.duals[box.row] == pytest.approx(0.0)

    def test_dual_lp_strong_duality_with_ranges(self):
        # max c'x s.t. lo <= Ax <= hi: at the optimum, objective ==
        # sum over binding rows of dual * active bound (all var bounds
        # slack here), a direct consequence of strong duality.
        m = Model()
        x = m.add_var(ub=1000.0)
        y = m.add_var(ub=1000.0)
        r1 = m.add_range_constr(x + y, 1.0, 10.0)
        r2 = m.add_range_constr(x - y, -4.0, 4.0)
        m.set_objective(2.0 * x + y, sense="max")
        r = m.solve()
        assert r.status == SolveStatus.OPTIMAL
        total = r.duals[r1.row] * 10.0 + r.duals[r2.row] * 4.0
        assert total == pytest.approx(r.objective)


class TestSolveStats:
    def test_lp_stats_fields(self):
        m = Model()
        x, y = m.add_vars_batch(2, ub=4.0)
        m.add_constr(x + y <= 6.0)
        m.set_objective(x + y, sense="max")
        stats = m.solve().stats
        assert (stats.rows, stats.cols, stats.nnz) == (1, 2, 2)
        assert stats.num_integer == 0
        assert stats.backend == "linprog"
        assert stats.dual_mode == "lp"
        assert stats.max_abs_coefficient == pytest.approx(1.0)
        assert stats.max_abs_rhs == pytest.approx(6.0)
        assert stats.build_seconds >= 0.0
        assert stats.compile_seconds >= 0.0
        assert stats.incremental is False

    def test_milp_stats(self):
        m = Model()
        z = m.add_var(binary=True)
        m.add_constr(7.0 * z.to_expr() <= 20.0)
        m.set_objective(z.to_expr(), sense="max")
        stats = m.solve().stats
        assert stats.backend == "milp"
        assert stats.num_integer == 1
        assert stats.dual_mode == "none"
        assert stats.max_abs_coefficient == pytest.approx(7.0)

    def test_to_dict_and_summary(self):
        m = Model()
        x = m.add_var(ub=1.0)
        m.set_objective(x.to_expr(), sense="max")
        stats = m.solve().stats
        d = stats.to_dict()
        assert d["backend"] == "linprog"
        assert d["compile_cached"] is False
        assert "linprog" in stats.summary()
        assert stats.total_seconds == pytest.approx(
            stats.compile_seconds + stats.solve_seconds
        )


class TestDualSignConventions:
    """Duals are reported in the model's own sense: improving the
    objective by relaxing a binding row always yields the documented
    sign, for max and min alike."""

    def test_max_binding_le_dual_is_nonnegative(self):
        m = Model()
        x = m.add_var()
        con = m.add_constr(x <= 3.0)
        m.set_objective(5.0 * x, sense="max")
        assert m.solve().duals[con.row] == pytest.approx(5.0)

    def test_max_binding_ge_dual_is_nonpositive(self):
        m = Model()
        x = m.add_var(ub=10.0)
        con = m.add_constr(x >= 2.0)
        m.set_objective(-3.0 * x, sense="max")
        assert m.solve().duals[con.row] == pytest.approx(-3.0)

    def test_min_binding_ge_dual_is_nonnegative(self):
        m = Model()
        x = m.add_var(ub=10.0)
        con = m.add_constr(x >= 2.0)
        m.set_objective(3.0 * x, sense="min")
        assert m.solve().duals[con.row] == pytest.approx(3.0)

    def test_min_binding_le_dual_is_nonpositive(self):
        m = Model()
        x = m.add_var()
        con = m.add_constr(x <= 3.0)
        m.set_objective(-2.0 * x, sense="min")
        assert m.solve().duals[con.row] == pytest.approx(-2.0)

    def test_slack_rows_report_zero_duals(self):
        m = Model()
        x = m.add_var(ub=1.0)
        loose = m.add_constr(x <= 50.0)
        m.set_objective(x.to_expr(), sense="max")
        assert m.solve().duals[loose.row] == pytest.approx(0.0)
