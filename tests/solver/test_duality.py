"""Tests for InnerLP: KKT embedding exactness and verification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ModelingError, VerificationError
from repro.solver import Model
from repro.solver.duality import InnerLP


def build_tracking_inner(b_fixed):
    """Host maximizes (C - inner optimum); inner is max x s.t. x <= b."""
    host = Model()
    b = host.add_var(lb=0, ub=10, name="b")
    host.add_constr(b.to_expr() == b_fixed)
    inner = InnerLP(host, "inner", sense="max")
    x = inner.add_var(obj_coef=1.0, value_bound=10.0, name="x")
    inner.add_constr(x <= b, dual_bound=1.0, slack_bound=10.0)
    inner.embed_kkt()
    return host, inner, b, x


class TestKktTracksOptimum:
    @pytest.mark.parametrize("b_fixed", [0.0, 2.5, 10.0])
    def test_inner_pinned_to_optimum_even_when_host_prefers_less(self, b_fixed):
        host, inner, b, x = build_tracking_inner(b_fixed)
        # The host would love x = 0 (it maximizes -x), but KKT forces x = b.
        host.set_objective(-inner.objective_expr(), sense="max")
        r = host.solve().require_ok()
        assert r.value(x) == pytest.approx(b_fixed, abs=1e-6)
        inner.verify_optimality(r)

    @pytest.mark.parametrize("b_fixed", [0.0, 3.0])
    def test_inner_pinned_even_when_host_prefers_more(self, b_fixed):
        host, inner, b, x = build_tracking_inner(b_fixed)
        host.set_objective(inner.objective_expr(), sense="max")
        r = host.solve().require_ok()
        assert r.value(x) == pytest.approx(b_fixed, abs=1e-6)


class TestStackelbergGame:
    def test_adversary_picks_worst_parameter(self):
        """Outer picks b in [1, 4]; inner max x s.t. x <= b and x <= 3.

        Outer maximizes (3 - inner): inner optimum is min(b, 3), so the
        adversary should pick b = 1 yielding a gap of 2.
        """
        host = Model()
        b = host.add_var(lb=1, ub=4, name="b")
        inner = InnerLP(host, "inner", sense="max")
        x = inner.add_var(obj_coef=1.0, value_bound=4.0, name="x")
        inner.add_constr(x <= b, dual_bound=1.0, slack_bound=4.0)
        inner.add_constr(x <= 3, dual_bound=1.0, slack_bound=4.0)
        inner.embed_kkt()
        host.set_objective(3 - inner.objective_expr(), sense="max")
        r = host.solve().require_ok()
        assert r.objective == pytest.approx(2.0, abs=1e-6)
        assert r.value(b) == pytest.approx(1.0, abs=1e-6)
        inner.verify_optimality(r)

    def test_two_commodity_capacity_game(self):
        """Adversary splits capacity c1 + c2 = 4 to minimize a 2-flow max.

        Inner: max f1 + f2 s.t. f1 <= c1, f2 <= c2, f1 <= 1, f2 <= 10.
        Optimal adversary gives everything to the capped flow: c1 = 4,
        inner optimum = min(4,1) + 0 = 1.
        """
        host = Model()
        c1 = host.add_var(lb=0, ub=4, name="c1")
        c2 = host.add_var(lb=0, ub=4, name="c2")
        host.add_constr(c1 + c2 == 4)
        inner = InnerLP(host, "net", sense="max")
        f1 = inner.add_var(obj_coef=1.0, value_bound=4.0, name="f1")
        f2 = inner.add_var(obj_coef=1.0, value_bound=4.0, name="f2")
        inner.add_constr(f1 <= c1, dual_bound=1.0, slack_bound=4.0)
        inner.add_constr(f2 <= c2, dual_bound=1.0, slack_bound=4.0)
        inner.add_constr(f1 <= 1, dual_bound=1.0, slack_bound=4.0)
        inner.add_constr(f2 <= 10, dual_bound=1.0, slack_bound=10.0)
        inner.embed_kkt()
        host.set_objective(-inner.objective_expr(), sense="max")
        r = host.solve().require_ok()
        assert r.value(f1 + f2) == pytest.approx(1.0, abs=1e-6)
        assert r.value(c1) == pytest.approx(4.0, abs=1e-6)
        inner.verify_optimality(r)


class TestMinimizationInner:
    def test_min_inner_tracks_its_minimum(self):
        """Inner: min u s.t. u >= load/cap (an MLU-shaped problem)."""
        host = Model()
        load = host.add_var(lb=0, ub=8, name="load")
        host.add_constr(load.to_expr() == 6)
        inner = InnerLP(host, "mlu", sense="min")
        u = inner.add_var(obj_coef=1.0, value_bound=10.0, name="u")
        # u * 2 >= load  <=>  load - 2u <= 0
        inner.add_constr(load - 2 * u <= 0, dual_bound=1.0, slack_bound=30.0)
        inner.embed_kkt()
        # Host would prefer a huge u (it maximizes +u), KKT pins u = 3.
        host.set_objective(inner.objective_expr(), sense="max")
        r = host.solve().require_ok()
        assert r.value(u) == pytest.approx(3.0, abs=1e-6)
        inner.verify_optimality(r)

    def test_equality_rows_get_free_duals(self):
        host = Model()
        d = host.add_var(lb=0, ub=5, name="d")
        host.add_constr(d.to_expr() == 4)
        inner = InnerLP(host, "eq", sense="min")
        u = inner.add_var(obj_coef=1.0, value_bound=20.0, name="u")
        f = inner.add_var(obj_coef=0.0, value_bound=20.0, name="f")
        inner.add_constr(f == d, dual_bound=5.0)
        inner.add_constr(f - 2 * u <= 0, dual_bound=5.0, slack_bound=60.0)
        inner.embed_kkt()
        host.set_objective(inner.objective_expr(), sense="max")
        r = host.solve().require_ok()
        assert r.value(u) == pytest.approx(2.0, abs=1e-6)
        inner.verify_optimality(r)


class TestValidation:
    def test_infinite_value_bound_rejected(self):
        host = Model()
        inner = InnerLP(host, "i", sense="max")
        with pytest.raises(ModelingError):
            inner.add_var(obj_coef=1.0, value_bound=float("inf"))

    def test_missing_slack_bound_rejected_at_embed(self):
        host = Model()
        b = host.add_var(ub=1)
        inner = InnerLP(host, "i", sense="max")
        x = inner.add_var(obj_coef=1.0, value_bound=1.0)
        inner.add_constr(x <= b, dual_bound=1.0)  # no slack bound
        with pytest.raises(ModelingError):
            inner.embed_kkt()

    def test_double_embed_rejected(self):
        host = Model()
        inner = InnerLP(host, "i", sense="max")
        x = inner.add_var(obj_coef=1.0, value_bound=1.0)
        inner.add_constr(x <= 1, dual_bound=1.0, slack_bound=1.0)
        inner.embed_kkt()
        with pytest.raises(ModelingError):
            inner.embed_kkt()

    def test_add_constr_after_embed_rejected(self):
        host = Model()
        inner = InnerLP(host, "i", sense="max")
        x = inner.add_var(obj_coef=1.0, value_bound=1.0)
        inner.add_constr(x <= 1, dual_bound=1.0, slack_bound=1.0)
        inner.embed_kkt()
        with pytest.raises(ModelingError):
            inner.add_constr(x <= 2, dual_bound=1.0, slack_bound=2.0)

    def test_bad_sense_rejected(self):
        with pytest.raises(ModelingError):
            InnerLP(Model(), "i", sense="argmax")

    def test_verification_catches_small_big_m(self):
        """A deliberately wrong dual bound must be caught, not ignored."""
        host = Model()
        b = host.add_var(lb=0, ub=10, name="b")
        host.add_constr(b.to_expr() == 10)
        inner = InnerLP(host, "bad", sense="max")
        # Objective coefficient 5 means the true dual is 5, but we claim
        # the dual bound is 1: complementarity can then hold with the
        # constraint slack *and* a dual of <= 1, breaking optimality.
        x = inner.add_var(obj_coef=5.0, value_bound=10.0, name="x")
        inner.add_constr(x <= b, dual_bound=1.0, slack_bound=10.0)
        inner.embed_kkt()
        host.set_objective(-inner.objective_expr(), sense="max")
        r = host.solve()
        if r.status.ok:
            with pytest.raises(VerificationError):
                inner.verify_optimality(r)


class TestResolveAt:
    def test_resolve_matches_embedded(self):
        host, inner, b, x = build_tracking_inner(7.0)
        host.set_objective(-inner.objective_expr(), sense="max")
        r = host.solve().require_ok()
        lp = inner.resolve_at(r)
        assert lp.objective == pytest.approx(7.0, abs=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(b=st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    def test_kkt_equals_lp_for_any_parameter(self, b):
        host, inner, _, x = build_tracking_inner(b)
        host.set_objective(-inner.objective_expr(), sense="max")
        r = host.solve().require_ok()
        assert inner.verify_optimality(r) == pytest.approx(b, abs=1e-5)
