"""Additional coverage for SolveResult and status semantics."""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.solver import Model, SolveResult, SolveStatus


class TestSolveStatus:
    def test_ok_statuses(self):
        assert SolveStatus.OPTIMAL.ok
        assert SolveStatus.TIME_LIMIT.ok
        assert not SolveStatus.INFEASIBLE.ok
        assert not SolveStatus.UNBOUNDED.ok
        assert not SolveStatus.ERROR.ok


class TestSolveResult:
    def _solved(self):
        m = Model()
        x = m.add_var(ub=3, name="x")
        y = m.add_var(ub=4, name="y")
        m.set_objective(x + y, sense="max")
        return m, x, y, m.solve()

    def test_values_sequence(self):
        _, x, y, r = self._solved()
        assert r.values([x, y, x + y]) == pytest.approx([3.0, 4.0, 7.0])

    def test_value_of_constant(self):
        *_, r = self._solved()
        assert r.value(2.5) == 2.5

    def test_value_rejects_garbage(self):
        *_, r = self._solved()
        with pytest.raises(TypeError):
            r.value("nope")

    def test_require_ok_passthrough(self):
        *_, r = self._solved()
        assert r.require_ok() is r

    def test_require_ok_raises_without_x(self):
        bad = SolveResult(status=SolveStatus.OPTIMAL, x=None)
        with pytest.raises(SolverError):
            bad.require_ok()

    def test_has_solution(self):
        assert SolveResult(status=SolveStatus.OPTIMAL,
                           x=np.zeros(1)).has_solution
        assert not SolveResult(status=SolveStatus.INFEASIBLE).has_solution


class TestDualsRoundTrip:
    def test_lp_strong_duality(self):
        """Sum over duals * rhs equals the optimum for a tight LP."""
        m = Model()
        x = m.add_var()
        y = m.add_var()
        c1 = m.add_constr(x + 2 * y <= 14)
        c2 = m.add_constr(3 * x - y <= 0)
        c3 = m.add_constr(x - y <= 2)
        m.set_objective(3 * x + 4 * y, sense="max")
        r = m.solve().require_ok()
        rows = [c1, c2, c3]
        rhs = [14.0, 0.0, 2.0]
        dual_value = sum(
            r.duals[m.constraints.index(c)] * b for c, b in zip(rows, rhs)
        )
        assert dual_value == pytest.approx(r.objective, abs=1e-6)

    def test_duals_nonnegative_for_max_le(self):
        m = Model()
        x = m.add_var(ub=10)
        m.add_constr(x <= 4)
        m.set_objective(x, sense="max")
        r = m.solve()
        assert all(d >= -1e-9 for d in r.duals)
