"""Unit and property tests for the linearization gadgets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ModelingError
from repro.solver import Model, quicksum
from repro.solver.linearize import (
    exactly_one,
    force_all_or_none,
    indicator_geq,
    product_binary_bounded,
)


class TestIndicatorGeq:
    def _indicator_model(self, n_bits, threshold, force_sum):
        """Build a model where the indicator watches a sum of binaries."""
        m = Model()
        bits = [m.add_var(binary=True) for _ in range(n_bits)]
        m.add_constr(quicksum(bits) == force_sum)
        z = indicator_geq(
            m, quicksum(bits), threshold, expr_lb=0, expr_ub=n_bits, name="z"
        )
        m.set_objective(z, sense="max")
        r_max = m.solve().require_ok()
        m.set_objective(z, sense="min")
        r_min = m.solve().require_ok()
        # For the indicator to be well-defined, min and max must agree.
        return r_max.value(z), r_min.value(z)

    @pytest.mark.parametrize("total,threshold,expected", [
        (0, 1, 0), (1, 1, 1), (2, 1, 1), (3, 2, 1), (1, 2, 0), (2, 3, 0),
    ])
    def test_indicator_is_forced_both_ways(self, total, threshold, expected):
        hi, lo = self._indicator_model(4, threshold, total)
        assert hi == pytest.approx(expected)
        assert lo == pytest.approx(expected)

    def test_never_passing_threshold_pins_zero(self):
        m = Model()
        b = m.add_var(binary=True)
        z = indicator_geq(m, b.to_expr(), 5, expr_lb=0, expr_ub=1)
        m.set_objective(z, sense="max")
        assert m.solve().value(z) == pytest.approx(0.0)

    def test_always_passing_threshold_pins_one(self):
        m = Model()
        b = m.add_var(binary=True)
        z = indicator_geq(m, b + 3, 2, expr_lb=3, expr_ub=4)
        m.set_objective(z, sense="min")
        assert m.solve().value(z) == pytest.approx(1.0)

    def test_non_integral_threshold_rejected(self):
        m = Model()
        b = m.add_var(binary=True)
        with pytest.raises(ModelingError):
            indicator_geq(m, b.to_expr(), 0.5, expr_lb=0, expr_ub=1)

    def test_inverted_bounds_rejected(self):
        m = Model()
        b = m.add_var(binary=True)
        with pytest.raises(ModelingError):
            indicator_geq(m, b.to_expr(), 1, expr_lb=2, expr_ub=1)

    @settings(max_examples=25, deadline=None)
    @given(
        n_bits=st.integers(min_value=1, max_value=6),
        threshold=st.integers(min_value=1, max_value=6),
        data=st.data(),
    )
    def test_indicator_property(self, n_bits, threshold, data):
        total = data.draw(st.integers(min_value=0, max_value=n_bits))
        hi, lo = self._indicator_model(n_bits, threshold, total)
        expected = 1.0 if total >= threshold else 0.0
        assert hi == pytest.approx(expected)
        assert lo == pytest.approx(expected)


class TestProduct:
    def _product_value(self, z_fixed, x_fixed, ub):
        m = Model()
        z = m.add_var(binary=True)
        x = m.add_var(ub=ub)
        m.add_constr(z.to_expr() == z_fixed)
        m.add_constr(x.to_expr() == x_fixed)
        w = product_binary_bounded(m, z, x, factor_ub=ub)
        m.set_objective(w, sense="max")
        hi = m.solve().require_ok().value(w)
        m.set_objective(w, sense="min")
        lo = m.solve().require_ok().value(w)
        return hi, lo

    @pytest.mark.parametrize("z,x", [(0, 0.0), (0, 3.5), (1, 0.0), (1, 3.5), (1, 5.0)])
    def test_product_forced_exactly(self, z, x):
        hi, lo = self._product_value(z, x, ub=5.0)
        assert hi == pytest.approx(z * x)
        assert lo == pytest.approx(z * x)

    def test_requires_binary(self):
        m = Model()
        k = m.add_var(integer=True, ub=3)
        x = m.add_var(ub=1)
        with pytest.raises(ModelingError):
            product_binary_bounded(m, k, x, factor_ub=1.0)

    def test_requires_finite_bound(self):
        m = Model()
        z = m.add_var(binary=True)
        x = m.add_var()
        with pytest.raises(ModelingError):
            product_binary_bounded(m, z, x, factor_ub=float("inf"))

    @settings(max_examples=20, deadline=None)
    @given(
        z=st.integers(min_value=0, max_value=1),
        x=st.floats(min_value=0.0, max_value=9.0, allow_nan=False),
    )
    def test_product_property(self, z, x):
        hi, lo = self._product_value(z, x, ub=9.0)
        assert hi == pytest.approx(z * x, abs=1e-6)
        assert lo == pytest.approx(z * x, abs=1e-6)


class TestGroupHelpers:
    def test_force_all_or_none(self):
        m = Model()
        bits = [m.add_var(binary=True) for _ in range(4)]
        force_all_or_none(m, bits)
        m.add_constr(bits[0].to_expr() == 1)
        m.set_objective(quicksum(bits), sense="min")
        r = m.solve().require_ok()
        assert r.values(bits) == pytest.approx([1, 1, 1, 1])

    def test_force_all_or_none_zero(self):
        m = Model()
        bits = [m.add_var(binary=True) for _ in range(3)]
        force_all_or_none(m, bits)
        m.add_constr(bits[2].to_expr() == 0)
        m.set_objective(quicksum(bits), sense="max")
        assert m.solve().objective == pytest.approx(0.0)

    def test_force_single_is_noop(self):
        m = Model()
        b = m.add_var(binary=True)
        force_all_or_none(m, [b])
        assert m.num_constraints == 0

    def test_exactly_one(self):
        m = Model()
        bits = [m.add_var(binary=True) for _ in range(3)]
        exactly_one(m, bits)
        m.set_objective(quicksum(bits), sense="max")
        assert m.solve().objective == pytest.approx(1.0)

    def test_exactly_one_empty_rejected(self):
        with pytest.raises(ModelingError):
            exactly_one(Model(), [])


class TestDegenerateIndicatorPaths:
    """The pinned branches must add *only* the pin row (no big-M rows
    with infinite or degenerate M), and stay correct at the boundaries
    ``expr_ub == threshold`` / ``expr_lb == threshold``."""

    def test_pin_to_zero_adds_single_row(self):
        m = Model()
        b = m.add_var(binary=True)
        before = m.num_constraints
        z = indicator_geq(m, b.to_expr(), 5, expr_lb=0, expr_ub=1)
        assert m.num_constraints == before + 1
        m.add_constr(b.to_expr() == 1)
        m.set_objective(z, sense="max")
        assert m.solve().require_ok().value(z) == pytest.approx(0.0)

    def test_pin_to_one_adds_single_row(self):
        m = Model()
        b = m.add_var(binary=True)
        before = m.num_constraints
        z = indicator_geq(m, b + 3, 2, expr_lb=3, expr_ub=4)
        assert m.num_constraints == before + 1
        m.set_objective(z, sense="min")
        assert m.solve().require_ok().value(z) == pytest.approx(1.0)

    def test_boundary_ub_equals_threshold_not_pinned(self):
        # expr can just reach the threshold: the big-M pair must still
        # tie z to the test rather than pinning it.
        m = Model()
        bits = [m.add_var(binary=True) for _ in range(2)]
        m.add_constr(quicksum(bits) == 2)
        z = indicator_geq(m, quicksum(bits), 2, expr_lb=0, expr_ub=2)
        m.set_objective(z, sense="min")
        assert m.solve().require_ok().value(z) == pytest.approx(1.0)

    def test_boundary_lb_equals_threshold_pins_one(self):
        m = Model()
        b = m.add_var(binary=True)
        z = indicator_geq(m, b + 2, 2, expr_lb=2, expr_ub=3)
        m.add_constr(b.to_expr() == 0)
        m.set_objective(z, sense="min")
        assert m.solve().require_ok().value(z) == pytest.approx(1.0)

    def test_pinned_zero_conflicts_with_forced_one(self):
        # The pin is a hard row: forcing z = 1 anyway must be infeasible,
        # proving the degenerate path emits a real constraint.
        m = Model()
        b = m.add_var(binary=True)
        z = indicator_geq(m, b.to_expr(), 5, expr_lb=0, expr_ub=1)
        m.add_constr(z.to_expr() == 1)
        m.set_objective(z, sense="max")
        assert not m.solve().status.ok


class TestDegenerateProductPaths:
    def test_factor_at_its_upper_bound(self):
        # factor == factor_ub makes the :ge row tight; w must equal ub.
        m = Model()
        z = m.add_var(binary=True)
        x = m.add_var(ub=7.0)
        m.add_constr(z.to_expr() == 1)
        m.add_constr(x.to_expr() == 7.0)
        w = product_binary_bounded(m, z, x, factor_ub=7.0)
        m.set_objective(w, sense="min")
        assert m.solve().require_ok().value(w) == pytest.approx(7.0)

    def test_zero_upper_bound_pins_product(self):
        m = Model()
        z = m.add_var(binary=True)
        x = m.add_var(ub=0.0)
        w = product_binary_bounded(m, z, x, factor_ub=0.0)
        m.add_constr(z.to_expr() == 1)
        m.set_objective(w, sense="max")
        assert m.solve().require_ok().value(w) == pytest.approx(0.0)

    def test_expression_factor_at_bound(self):
        # factor may be an expression, not a Var; drive it to the bound.
        m = Model()
        z = m.add_var(binary=True)
        x = m.add_var(ub=2.0)
        y = m.add_var(ub=2.0)
        m.add_constr(x + y == 4.0)
        m.add_constr(z.to_expr() == 1)
        w = product_binary_bounded(m, z, x + y, factor_ub=4.0)
        m.set_objective(w, sense="min")
        assert m.solve().require_ok().value(w) == pytest.approx(4.0)

    def test_negative_bound_rejected(self):
        m = Model()
        z = m.add_var(binary=True)
        x = m.add_var(ub=1.0)
        with pytest.raises(ModelingError):
            product_binary_bounded(m, z, x, factor_ub=-1.0)
