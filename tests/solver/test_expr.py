"""Unit tests for the expression algebra."""

import pytest

from repro.solver import LinExpr, Model, quicksum
from repro.solver.expr import Constraint


@pytest.fixture
def model():
    return Model("t")


class TestVar:
    def test_var_defaults(self, model):
        x = model.add_var(name="x")
        assert x.lb == 0.0
        assert x.ub == float("inf")
        assert not x.integer
        assert not x.is_binary

    def test_binary_shortcut(self, model):
        z = model.add_var(binary=True)
        assert z.is_binary
        assert z.integer
        assert (z.lb, z.ub) == (0.0, 1.0)

    def test_integer_nonbinary_is_not_binary(self, model):
        k = model.add_var(integer=True, ub=7)
        assert k.integer
        assert not k.is_binary

    def test_var_indexing_is_sequential(self, model):
        xs = [model.add_var() for _ in range(5)]
        assert [v.index for v in xs] == [0, 1, 2, 3, 4]

    def test_inverted_bounds_rejected(self, model):
        from repro.exceptions import ModelingError

        with pytest.raises(ModelingError):
            model.add_var(lb=3, ub=1)

    def test_var_hashable_and_distinct(self, model):
        x, y = model.add_var(), model.add_var()
        assert len({x, y}) == 2


class TestArithmetic:
    def test_add_vars(self, model):
        x, y = model.add_var(name="x"), model.add_var(name="y")
        e = x + y
        assert e.terms == {x.index: 1.0, y.index: 1.0}
        assert e.constant == 0.0

    def test_scalar_multiplication(self, model):
        x = model.add_var()
        e = 3 * x
        assert e.terms == {x.index: 3.0}

    def test_right_subtraction(self, model):
        x = model.add_var()
        e = 5 - x
        assert e.terms == {x.index: -1.0}
        assert e.constant == 5.0

    def test_division(self, model):
        x = model.add_var()
        e = (4 * x) / 2
        assert e.terms == {x.index: 2.0}

    def test_negation(self, model):
        x = model.add_var()
        e = -(x + 1)
        assert e.terms == {x.index: -1.0}
        assert e.constant == -1.0

    def test_cancellation_drops_term(self, model):
        x, y = model.add_var(), model.add_var()
        e = (x + y) - x
        assert x.index not in e.terms
        assert e.terms == {y.index: 1.0}

    def test_mul_by_zero_empties(self, model):
        x = model.add_var()
        e = (x + 3) * 0
        assert e.terms == {}
        assert e.constant == 0.0

    def test_expr_times_expr_rejected(self, model):
        x, y = model.add_var(), model.add_var()
        with pytest.raises(TypeError):
            _ = (x + 1) * (y + 1)

    def test_division_by_zero_rejected(self, model):
        x = model.add_var()
        with pytest.raises(TypeError):
            _ = (x + 1) / 0

    def test_immutability_of_operands(self, model):
        x, y = model.add_var(), model.add_var()
        a = x + y
        before = dict(a.terms)
        _ = a + x
        assert a.terms == before


class TestConstraints:
    def test_le_normalization(self, model):
        x = model.add_var()
        con = x + 2 <= 5
        assert isinstance(con, Constraint)
        assert con.sense == "<="
        assert con.rhs() == 3.0

    def test_ge(self, model):
        x = model.add_var()
        con = x >= 1
        assert con.sense == ">="
        assert con.rhs() == 1.0

    def test_eq_between_exprs(self, model):
        x, y = model.add_var(), model.add_var()
        con = x + 1 == y
        assert con.sense == "=="
        assert con.expr.terms == {x.index: 1.0, y.index: -1.0}

    def test_var_eq_number_builds_constraint(self, model):
        x = model.add_var()
        con = x == 3
        assert isinstance(con, Constraint)
        assert con.rhs() == 3.0

    def test_bad_sense_rejected(self, model):
        with pytest.raises(ValueError):
            Constraint(LinExpr(), "<")


class TestQuicksum:
    def test_quicksum_vars(self, model):
        xs = [model.add_var() for _ in range(4)]
        e = quicksum(xs)
        assert all(e.terms[v.index] == 1.0 for v in xs)

    def test_quicksum_mixed(self, model):
        x = model.add_var()
        e = quicksum([x, 2 * x, 3.5])
        assert e.terms == {x.index: 3.0}
        assert e.constant == 3.5

    def test_quicksum_empty(self):
        e = quicksum([])
        assert e.terms == {}
        assert e.constant == 0.0

    def test_quicksum_rejects_strings(self):
        with pytest.raises(TypeError):
            quicksum(["nope"])

    def test_quicksum_matches_builtin_sum(self, model):
        xs = [model.add_var() for _ in range(10)]
        a = quicksum(2 * x for x in xs)
        b = sum((2 * x for x in xs), LinExpr())
        assert a.terms == b.terms
        assert a.constant == b.constant
