"""Cross-validation: our Model against raw scipy.linprog on random LPs.

The modeling layer compiles expressions into matrices; these property
tests build the same random LP twice -- once through the expression
algebra, once as raw arrays -- and require identical optima.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.solver import Model, SolveStatus, quicksum


def random_lp(seed, n_vars=4, n_rows=5):
    rng = np.random.default_rng(seed)
    c = rng.uniform(-2, 2, size=n_vars)
    a = rng.uniform(-1, 2, size=(n_rows, n_vars))
    b = rng.uniform(1, 6, size=n_rows)
    ub = rng.uniform(0.5, 4, size=n_vars)
    return c, a, b, ub


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_model_matches_raw_linprog_max(seed):
    c, a, b, ub = random_lp(seed)

    model = Model("rand")
    xs = [model.add_var(ub=float(u)) for u in ub]
    for row, rhs in zip(a, b):
        model.add_constr(
            quicksum(float(coef) * x for coef, x in zip(row, xs))
            <= float(rhs)
        )
    model.set_objective(
        quicksum(float(coef) * x for coef, x in zip(c, xs)), sense="max"
    )
    ours = model.solve()

    raw = linprog(
        -c, A_ub=a, b_ub=b,
        bounds=[(0.0, float(u)) for u in ub], method="highs",
    )
    assert ours.status == SolveStatus.OPTIMAL
    assert raw.status == 0
    assert ours.objective == pytest.approx(-raw.fun, abs=1e-7, rel=1e-7)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_model_matches_raw_linprog_min_with_equalities(seed):
    c, a, b, ub = random_lp(seed, n_vars=4, n_rows=3)
    # One equality row keeps the problem feasible: sum(x) == small value.
    eq_rhs = float(min(ub)) / 2

    model = Model("rand-eq")
    xs = [model.add_var(ub=float(u)) for u in ub]
    for row, rhs in zip(a, b):
        model.add_constr(
            quicksum(float(coef) * x for coef, x in zip(row, xs))
            <= float(rhs)
        )
    model.add_constr(quicksum(xs) == eq_rhs)
    model.set_objective(
        quicksum(float(coef) * x for coef, x in zip(c, xs)), sense="min"
    )
    ours = model.solve()

    raw = linprog(
        c, A_ub=a, b_ub=b, A_eq=np.ones((1, len(ub))), b_eq=[eq_rhs],
        bounds=[(0.0, float(u)) for u in ub], method="highs",
    )
    if raw.status == 2:
        assert ours.status == SolveStatus.INFEASIBLE
        return
    assert raw.status == 0
    assert ours.status == SolveStatus.OPTIMAL
    assert ours.objective == pytest.approx(raw.fun, abs=1e-7, rel=1e-7)
