"""Unit tests for Model compilation and HiGHS dispatch."""

import numpy as np
import pytest

from repro.exceptions import ModelingError, SolverError
from repro.solver import Model, SolveStatus, quicksum


class TestLP:
    def test_basic_max(self):
        m = Model()
        x = m.add_var(ub=4)
        y = m.add_var(ub=4)
        m.add_constr(x + y <= 6)
        m.set_objective(x + 2 * y, sense="max")
        r = m.solve()
        assert r.status == SolveStatus.OPTIMAL
        assert r.objective == pytest.approx(10.0)
        assert r.value(y) == pytest.approx(4.0)

    def test_basic_min(self):
        m = Model()
        x = m.add_var(lb=1)
        y = m.add_var(lb=2)
        m.add_constr(x + y >= 5)
        m.set_objective(x + 3 * y, sense="min")
        r = m.solve()
        assert r.objective == pytest.approx(3 + 2 * 3)

    def test_objective_constant_is_reported(self):
        m = Model()
        x = m.add_var(ub=1)
        m.set_objective(x + 10, sense="max")
        assert m.solve().objective == pytest.approx(11.0)

    def test_equality_constraint(self):
        m = Model()
        x = m.add_var()
        y = m.add_var()
        m.add_constr(x + y == 7)
        m.set_objective(x - y, sense="max")
        r = m.solve()
        assert r.value(x) == pytest.approx(7.0)
        assert r.value(y) == pytest.approx(0.0)

    def test_infeasible_status(self):
        m = Model()
        x = m.add_var(ub=1)
        m.add_constr(x >= 2)
        m.set_objective(x, sense="max")
        r = m.solve()
        assert r.status == SolveStatus.INFEASIBLE
        assert not r.has_solution

    def test_unbounded_status(self):
        m = Model()
        x = m.add_var()
        m.set_objective(x, sense="max")
        r = m.solve()
        assert r.status in (SolveStatus.UNBOUNDED, SolveStatus.ERROR)

    def test_require_ok_raises_on_infeasible(self):
        m = Model()
        x = m.add_var(ub=0)
        m.add_constr(x >= 1)
        m.set_objective(x, sense="min")
        with pytest.raises(SolverError):
            m.solve().require_ok()

    def test_duals_max_le(self):
        # max x + 2y s.t. x + y <= 6: shadow price of the capacity is 2
        # only when y is unconstrained; with both at large ubs it is 1..2.
        m = Model()
        x = m.add_var(ub=100)
        y = m.add_var(ub=4)
        con = m.add_constr(x + y <= 6)
        m.set_objective(x + 2 * y, sense="max")
        r = m.solve()
        idx = m.constraints.index(con)
        assert r.duals[idx] == pytest.approx(1.0)

    def test_duals_min_ge(self):
        m = Model()
        x = m.add_var()
        con = m.add_constr(x >= 3)
        m.set_objective(2 * x, sense="min")
        r = m.solve()
        idx = m.constraints.index(con)
        # d(min obj)/d(rhs) = 2
        assert r.duals[idx] == pytest.approx(2.0)

    def test_duals_equality(self):
        m = Model()
        x = m.add_var()
        con = m.add_constr(x == 4)
        m.set_objective(5 * x, sense="min")
        r = m.solve()
        assert r.duals[m.constraints.index(con)] == pytest.approx(5.0)

    def test_no_constraints_lp(self):
        m = Model()
        x = m.add_var(ub=3)
        m.set_objective(x, sense="max")
        assert m.solve().objective == pytest.approx(3.0)


class TestMILP:
    def test_binary_fixed_charge(self):
        m = Model()
        z = m.add_var(binary=True)
        w = m.add_var(ub=10)
        m.add_constr(w <= 10 * z.to_expr())
        m.set_objective(w - 3 * z, sense="max")
        r = m.solve()
        assert r.status == SolveStatus.OPTIMAL
        assert r.objective == pytest.approx(7.0)
        assert r.value(z) == pytest.approx(1.0)

    def test_integer_rounding_matters(self):
        m = Model()
        k = m.add_var(integer=True, ub=10)
        m.add_constr(2 * k <= 7)
        m.set_objective(k, sense="max")
        r = m.solve()
        assert r.value(k) == pytest.approx(3.0)

    def test_knapsack(self):
        values = [6, 5, 4, 3]
        weights = [4, 3, 2, 2]
        m = Model()
        z = [m.add_var(binary=True) for _ in values]
        m.add_constr(quicksum(w * zi for w, zi in zip(weights, z)) <= 6)
        m.set_objective(quicksum(v * zi for v, zi in zip(values, z)), sense="max")
        r = m.solve()
        assert r.objective == pytest.approx(10.0)  # items 0+2 or 1+2+...

    def test_milp_infeasible(self):
        m = Model()
        z = m.add_var(binary=True)
        m.add_constr(z.to_expr() >= 2)
        m.set_objective(z, sense="max")
        assert m.solve().status == SolveStatus.INFEASIBLE

    def test_no_duals_for_milp(self):
        m = Model()
        z = m.add_var(binary=True)
        m.add_constr(z.to_expr() <= 1)
        m.set_objective(z, sense="max")
        assert m.solve().duals is None

    def test_milp_objective_constant(self):
        m = Model()
        z = m.add_var(binary=True)
        m.set_objective(z + 100, sense="max")
        assert m.solve().objective == pytest.approx(101.0)


class TestModelApi:
    def test_add_vars_dict(self):
        m = Model()
        d = m.add_vars(["a", "b", "c"], ub=2.0, name="f")
        assert set(d) == {"a", "b", "c"}
        assert d["b"].name == "f[b]"

    def test_is_mip_flag(self):
        m = Model()
        assert not m.is_mip
        m.add_var(binary=True)
        assert m.is_mip
        assert m.num_integer_vars == 1

    def test_reject_non_constraint(self):
        m = Model()
        with pytest.raises(ModelingError):
            m.add_constr(True)  # comparison folded to a bool

    def test_reject_bad_sense(self):
        m = Model()
        x = m.add_var()
        with pytest.raises(ModelingError):
            m.set_objective(x, sense="maximize")

    def test_value_of_expression(self):
        m = Model()
        x = m.add_var(ub=2)
        m.set_objective(x, sense="max")
        r = m.solve()
        assert r.value(3 * x + 1) == pytest.approx(7.0)
        assert r.value(2.5) == 2.5

    def test_value_without_solution_raises(self):
        m = Model()
        x = m.add_var(ub=1)
        m.add_constr(x >= 5)
        m.set_objective(x, sense="max")
        r = m.solve()
        with pytest.raises(ValueError):
            r.value(x)

    def test_repr_mentions_size(self):
        m = Model("sample")
        m.add_var()
        text = repr(m)
        assert "sample" in text
        assert "1 vars" in text


class TestTimeLimit:
    def test_time_limit_accepted_on_lp(self):
        m = Model()
        x = m.add_var(ub=1)
        m.set_objective(x, sense="max")
        r = m.solve(time_limit=10.0)
        assert r.status == SolveStatus.OPTIMAL

    def test_time_limit_accepted_on_milp(self):
        m = Model()
        z = m.add_var(binary=True)
        m.set_objective(z, sense="max")
        r = m.solve(time_limit=10.0, mip_rel_gap=0.0)
        assert r.status == SolveStatus.OPTIMAL
        assert r.solve_seconds < 10.0


class TestNumerics:
    def test_large_model_roundtrip(self):
        rng = np.random.default_rng(7)
        m = Model()
        xs = [m.add_var(ub=1.0) for _ in range(200)]
        weights = rng.uniform(0.1, 1.0, size=200)
        m.add_constr(quicksum(w * x for w, x in zip(weights, xs)) <= 10.0)
        m.set_objective(quicksum(xs), sense="max")
        r = m.solve()
        assert r.status == SolveStatus.OPTIMAL
        used = sum(w * r.value(x) for w, x in zip(weights, xs))
        assert used <= 10.0 + 1e-6

    def test_negative_lower_bounds(self):
        m = Model()
        x = m.add_var(lb=-5, ub=5)
        m.set_objective(x, sense="min")
        assert m.solve().objective == pytest.approx(-5.0)
