"""Tests for print_table's record-and-replay mechanism."""

from repro.analysis import reporting


class TestTableRecording:
    def test_tables_are_recorded_in_order(self, capfd):
        before = len(reporting.recorded_tables)
        reporting.print_table("First", ["a"], [[1]])
        reporting.print_table("Second", ["b"], [[2]])
        captured = capfd.readouterr()
        assert "First" in captured.out and "Second" in captured.out
        recorded = reporting.recorded_tables[before:]
        assert len(recorded) == 2
        assert recorded[0].startswith("First")
        assert recorded[1].startswith("Second")

    def test_recorded_copy_matches_formatting(self):
        before = len(reporting.recorded_tables)
        reporting.print_table("T", ["x", "y"], [[1, 2.5]])
        text = reporting.recorded_tables[before]
        assert text == reporting.format_table("T", ["x", "y"], [[1, 2.5]])
