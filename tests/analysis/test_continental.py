"""Tests for the Section 9 continental decomposition."""

import pytest

from repro.analysis.continental import (
    analyze_continents,
    split_continents,
)
from repro.exceptions import TopologyError
from repro.network.builder import from_edges


@pytest.fixture
def world():
    # Two triangles (continents) joined by two subsea LAGs.
    return from_edges([
        ("af1", "af2", 10), ("af2", "af3", 10), ("af1", "af3", 10),
        ("eu1", "eu2", 10), ("eu2", "eu3", 10), ("eu1", "eu3", 10),
        ("af1", "eu1", 6), ("af3", "eu3", 6),
    ], failure_probability=0.02, name="world")


ASSIGNMENT = {
    "af1": "africa", "af2": "africa", "af3": "africa",
    "eu1": "europe", "eu2": "europe", "eu3": "europe",
}


class TestSplit:
    def test_continent_shapes(self, world):
        split = split_continents(world, ASSIGNMENT)
        assert set(split.continents) == {"africa", "europe"}
        africa = split.continents["africa"]
        assert africa.num_nodes == 3
        assert africa.num_lags == 3

    def test_backbone_contains_crossing_lags(self, world):
        split = split_continents(world, ASSIGNMENT)
        assert split.backbone.num_lags == 2
        assert set(split.backbone.nodes) == {"af1", "eu1", "af3", "eu3"}

    def test_gateways_identified(self, world):
        split = split_continents(world, ASSIGNMENT)
        assert split.gateways["africa"] == ["af1", "af3"]
        assert split.gateways["europe"] == ["eu1", "eu3"]

    def test_probabilities_preserved(self, world):
        split = split_continents(world, ASSIGNMENT)
        assert split.continents["africa"].has_probabilities()
        assert split.backbone.has_probabilities()

    def test_unassigned_node_rejected(self, world):
        with pytest.raises(TopologyError):
            split_continents(world, {"af1": "africa"})


class TestAnalyzeContinents:
    def test_per_piece_findings(self, world):
        demands = {
            ("af1", "af2"): 8.0,       # intra-Africa
            ("eu1", "eu3"): 8.0,       # intra-Europe
            ("af1", "eu1"): 5.0,       # gateway-to-gateway
            ("af2", "eu2"): 5.0,       # non-gateway crossing -> skipped
        }
        findings = analyze_continents(
            world, ASSIGNMENT, demands, num_primary=1, num_backup=1,
            probability_threshold=None, time_limit=30,
        )
        names = [f.name for f in findings]
        assert names == ["africa", "europe", "backbone"]
        africa = findings[0]
        assert africa.result is not None
        assert africa.result.degradation >= 0
        backbone = findings[-1]
        assert backbone.result is not None
        assert "virtual gateway" in backbone.skipped_reason

    def test_continent_without_demands_skipped(self, world):
        findings = analyze_continents(
            world, ASSIGNMENT, {("af1", "af2"): 4.0},
            num_primary=1, num_backup=0,
            probability_threshold=None, time_limit=30,
        )
        europe = next(f for f in findings if f.name == "europe")
        assert europe.result is None
        assert europe.skipped_reason == "no demands"

    def test_isolation_localizes_risk(self, world):
        """A degradable intra-Africa demand shows up in Africa's finding,
        not Europe's -- the paper's isolate-and-explain property."""
        findings = analyze_continents(
            world, ASSIGNMENT,
            {("af1", "af2"): 15.0, ("eu1", "eu2"): 1.0},
            num_primary=1, num_backup=1,
            probability_threshold=None, time_limit=30,
        )
        africa = next(f for f in findings if f.name == "africa")
        europe = next(f for f in findings if f.name == "europe")
        assert africa.result.degradation > 0
        # Europe's tiny demand bounds its exposure; Africa's finding is
        # where the real risk shows up.
        assert europe.result.degradation <= 1.0 + 1e-6
        assert africa.result.degradation > 5 * europe.result.degradation
