"""Tests for the benchmark harness and table reporting."""

import pytest

from repro.analysis import bench_wan, format_table, print_table
from repro.analysis.experiments import degradation_sweep, timed_analysis
from repro.core.config import RahaConfig


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table("Title", ["a", "bb"], [[1, 2.5], [33, 0.001]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_format_table_empty_rows(self):
        text = format_table("T", ["x"], [])
        assert "x" in text

    def test_float_formatting(self):
        text = format_table("T", ["v"], [[0.000123], [12345.6], [float("nan")]])
        assert "0.000123" in text
        assert "1.23e+04" in text or "12345" in text or "1.23e+4" in text
        assert "nan" in text

    def test_print_table_smoke(self, capfd):
        # print_table writes to the real stdout (fd 1) so tables survive
        # pytest's default capture; capfd sees fd-level writes.
        print_table("Hello", ["x"], [[1]])
        captured = capfd.readouterr()
        assert "Hello" in captured.out


class TestBenchWan:
    def test_shape_and_determinism(self):
        a = bench_wan(num_regions=2, nodes_per_region=4, num_pairs=4)
        b = bench_wan(num_regions=2, nodes_per_region=4, num_pairs=4)
        assert a.pairs == b.pairs
        assert a.avg_demands == b.avg_demands
        assert len(a.pairs) == 4

    def test_demand_scaling(self):
        net = bench_wan(num_regions=2, nodes_per_region=4,
                        demand_to_capacity=0.5)
        assert max(net.avg_demands.values()) == pytest.approx(
            0.5 * net.topology.average_lag_capacity()
        )

    def test_peak_dominates_average(self):
        net = bench_wan(num_regions=2, nodes_per_region=4)
        for pair in net.pairs:
            assert net.peak_demands[pair] >= net.avg_demands[pair] - 1e-9

    def test_paths_variants(self):
        net = bench_wan(num_regions=2, nodes_per_region=4, num_pairs=3)
        plain = net.paths(num_primary=2, num_backup=1)
        weighted = net.paths(num_primary=2, num_backup=1, weighted=True)
        assert set(plain) == set(weighted) == set(net.pairs)
        assert plain[net.pairs[0]].num_primary <= 2


class TestSweep:
    @pytest.fixture(scope="class")
    def net(self):
        return bench_wan(num_regions=2, nodes_per_region=4, num_pairs=3)

    def test_k_rows_are_threshold_free(self, net):
        paths = net.paths(2, 0)
        rows = degradation_sweep(net, paths, "avg", [1e-2], [1, None],
                                 time_limit=20)
        k_rows = [r for r in rows if r[1] == 1]
        assert len(k_rows) == 1
        assert k_rows[0][0] == "-"

    def test_inf_rows_per_threshold(self, net):
        paths = net.paths(2, 0)
        rows = degradation_sweep(net, paths, "avg", [1e-2, 1e-5], [None],
                                 time_limit=20)
        assert [r[0] for r in rows] == [1e-2, 1e-5]
        # Lower threshold admits more scenarios: monotone nondecreasing.
        assert rows[1][2] >= rows[0][2] - 1e-6

    def test_bad_mode_rejected(self, net):
        paths = net.paths(2, 0)
        with pytest.raises(ValueError):
            degradation_sweep(net, paths, "typo", [1e-2], [None])

    def test_timed_analysis(self, net):
        paths = net.paths(2, 0)
        config = RahaConfig(fixed_demands=dict(net.avg_demands),
                            max_failures=1, time_limit=20)
        result, wall = timed_analysis(net.topology, paths, config)
        assert wall >= result.solve_seconds
        assert result.degradation >= 0
