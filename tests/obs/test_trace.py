"""Unit tests for repro.obs.trace: spans, nesting, ids, merging."""

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_tracer,
    install_tracer,
    span,
    tracing,
)


class TestSpanBasics:
    def test_span_records_duration_and_attrs(self):
        tracer = Tracer()
        with tracer.span("work", kind="test") as sp:
            sp.set(items=3)
        docs = tracer.export()
        assert len(docs) == 1
        doc = docs[0]
        assert doc["name"] == "work"
        assert doc["parent"] is None
        assert doc["duration_seconds"] >= 0.0
        assert doc["attrs"] == {"kind": "test", "items": 3}

    def test_nesting_assigns_parents(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("sibling"):
                pass
        by_name = {d["name"]: d for d in tracer.export()}
        assert by_name["outer"]["parent"] is None
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["leaf"]["parent"] == by_name["inner"]["id"]
        assert by_name["sibling"]["parent"] == by_name["outer"]["id"]

    def test_span_ids_unique(self):
        tracer = Tracer()
        for _ in range(10):
            with tracer.span("x"):
                pass
        ids = [d["id"] for d in tracer.export()]
        assert len(set(ids)) == 10

    def test_exception_finishes_span_with_error_attr(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("bad")
        (doc,) = tracer.export()
        assert doc["attrs"]["error"] == "ValueError: bad"

    def test_exception_pops_stack(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                raise RuntimeError()
        with tracer.span("after"):
            pass
        by_name = {d["name"]: d for d in tracer.export()}
        assert by_name["after"]["parent"] is None

    def test_export_sorted_by_start_time(self):
        tracer = Tracer()
        with tracer.span("first"):
            with tracer.span("second"):
                pass
        # completion order is second-then-first; export restores start order
        assert [d["name"] for d in tracer.export()] == ["first", "second"]

    def test_sink_receives_docs_on_completion(self):
        seen = []
        tracer = Tracer(sink=seen.append)
        with tracer.span("a"):
            pass
        assert [d["name"] for d in seen] == ["a"]


class TestRecordAndMerge:
    def test_record_appends_premeasured_span(self):
        tracer = Tracer()
        sid = tracer.record("job", 1.5, label="cell-0")
        (doc,) = tracer.export()
        assert doc["id"] == sid
        assert doc["duration_seconds"] == 1.5
        assert doc["attrs"] == {"label": "cell-0"}

    def test_record_parents_under_open_span(self):
        tracer = Tracer()
        with tracer.span("sweep") as sweep:
            tracer.record("job", 0.1)
        by_name = {d["name"]: d for d in tracer.export()}
        assert by_name["job"]["parent"] == sweep.span_id

    def test_merge_reids_and_reparents(self):
        worker = Tracer()
        with worker.span("analyze"):
            with worker.span("milp_solve"):
                pass
        parent_tracer = Tracer()
        pid = parent_tracer.record("job", 2.0)
        parent_tracer.merge(worker.export(), parent_id=pid, prefix="k1:")
        by_name = {d["name"]: d for d in parent_tracer.export()}
        assert by_name["analyze"]["parent"] == pid
        assert by_name["analyze"]["id"].startswith("k1:")
        assert by_name["milp_solve"]["parent"] == by_name["analyze"]["id"]

    def test_merge_two_workers_no_id_collision(self):
        docs = []
        for prefix in ("a:", "b:"):
            worker = Tracer()
            with worker.span("analyze"):
                pass
            parent = Tracer()
            parent.merge(worker.export(), prefix=prefix)
            docs.extend(parent.export())
        assert len({d["id"] for d in docs}) == 2


class TestAmbientInstallation:
    def test_default_is_null_tracer(self):
        assert current_tracer() is NULL_TRACER
        assert not current_tracer().enabled

    def test_install_and_restore(self):
        tracer = Tracer()
        previous = install_tracer(tracer)
        try:
            assert current_tracer() is tracer
        finally:
            install_tracer(previous)
        assert current_tracer() is NULL_TRACER

    def test_tracing_scope_restores_on_exception(self):
        with pytest.raises(ValueError):
            with tracing(Tracer()):
                raise ValueError()
        assert current_tracer() is NULL_TRACER

    def test_module_level_span_uses_ambient(self):
        with tracing(Tracer()) as tracer:
            with span("ambient"):
                pass
        assert [d["name"] for d in tracer.export()] == ["ambient"]

    def test_shadow_is_thread_local(self):
        # Sibling threads shadowing concurrently (serial in-thread jobs
        # under a worker agent) must not see each other's shadow or
        # disturb the process-wide installation.
        import threading

        from repro.obs.trace import shadow_tracer, unshadow_tracer

        installed = Tracer()
        seen = {}
        barrier = threading.Barrier(2)

        def job(name):
            mine = Tracer()
            previous = shadow_tracer(mine)
            try:
                barrier.wait(timeout=5)  # both shadows live at once
                seen[name] = current_tracer() is mine
            finally:
                unshadow_tracer(previous)

        with tracing(installed):
            threads = [threading.Thread(target=job, args=(n,))
                       for n in ("a", "b")]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # This thread never shadowed: the installation shows through.
            assert current_tracer() is installed
        assert seen == {"a": True, "b": True}
        assert current_tracer() is NULL_TRACER


class TestNullTracer:
    def test_span_returns_shared_noop_handle(self):
        tracer = NullTracer()
        sp = tracer.span("anything", big=1)
        assert sp is NULL_SPAN
        with sp as inner:
            inner.set(x=2)
        assert tracer.export() == []

    def test_record_and_merge_are_noops(self):
        tracer = NullTracer()
        tracer.record("job", 1.0)
        tracer.merge([{"id": "s1", "name": "x"}])
        assert tracer.export() == []
