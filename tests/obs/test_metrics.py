"""Unit tests for the repro.obs.metrics counter/gauge registry."""

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    install_metrics,
    metrics,
    metrics_scope,
)


class TestCounters:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("jobs").inc()
        reg.counter("jobs").inc(2.5)
        assert reg.snapshot()["counters"]["jobs"] == 3.5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            reg.counter("jobs").inc(-1)


class TestGauges:
    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(4)
        reg.gauge("depth").set(2)
        assert reg.snapshot()["gauges"]["depth"] == 2.0

    def test_gauge_record_max(self):
        reg = MetricsRegistry()
        reg.gauge("peak").record_max(3)
        reg.gauge("peak").record_max(1)
        assert reg.snapshot()["gauges"]["peak"] == 3.0


class TestRegistry:
    def test_snapshot_shape_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        snap = reg.snapshot()
        assert snap == {"counters": {"c": 1.0}, "gauges": {"g": 1.0}}
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}}

    def test_metrics_scope_isolates(self):
        metrics().counter("outside").inc()
        with metrics_scope() as reg:
            assert metrics() is reg
            metrics().counter("inside").inc()
            assert "outside" not in metrics().snapshot()["counters"]
        assert "inside" not in metrics().snapshot()["counters"]

    def test_install_metrics_none_gives_fresh_registry(self):
        previous = install_metrics(None)
        try:
            assert metrics().snapshot() == {"counters": {}, "gauges": {}}
        finally:
            install_metrics(previous)
