"""Tests for JSONL trace sinks, aggregation, and the schema validator."""

import json

from repro.obs.sinks import (
    JsonlTraceWriter,
    merge_phase_seconds,
    phase_totals,
    read_trace,
    trace_header,
    write_trace,
)
from repro.obs.trace import Tracer
from repro.obs.validate import (
    main as validate_main,
    validate_trace_docs,
    validate_trace_file,
)


def _spans(*triples):
    """Helper: (name, id, parent) or (name, id, parent, seconds)."""
    out = []
    for triple in triples:
        name, sid, parent = triple[:3]
        seconds = triple[3] if len(triple) > 3 else 0.0
        out.append({"type": "span", "name": name, "id": sid,
                    "parent": parent, "start_unix": 0.0,
                    "duration_seconds": seconds, "attrs": {}})
    return out


class TestJsonlRoundTrip:
    def test_writer_streams_header_spans_metrics(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = JsonlTraceWriter(path, name="unit")
        tracer = Tracer(sink=writer.write)
        with tracer.span("a"):
            pass
        writer.close({"counters": {"n": 1.0}, "gauges": {}})
        docs = read_trace(path)
        assert docs[0]["type"] == "trace_header"
        assert docs[0]["name"] == "unit"
        assert docs[1]["name"] == "a"
        assert docs[-1] == {"type": "metrics", "counters": {"n": 1.0},
                            "gauges": {}}

    def test_write_trace_one_shot(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        write_trace(path, tracer.export(), name="oneshot")
        assert validate_trace_file(str(path)) == []

    def test_every_line_is_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, _spans(("a", "s1", None)))
        for line in path.read_text().splitlines():
            json.loads(line)


class TestAggregation:
    def test_phase_totals_rolls_up_by_name(self):
        spans = _spans(("solve", "s1", None, 1.0), ("solve", "s2", None, 2.0),
                       ("compile", "s3", None, 0.5))
        totals = phase_totals(spans)
        assert totals["solve"] == {"seconds": 3.0, "count": 2}
        assert totals["compile"] == {"seconds": 0.5, "count": 1}

    def test_phase_totals_skips_non_span_docs(self):
        docs = [trace_header()] + _spans(("a", "s1", None, 1.0)) \
            + [{"type": "metrics", "counters": {}, "gauges": {}}]
        assert list(phase_totals(docs)) == ["a"]

    def test_merge_phase_seconds_accumulates(self):
        into = {"solve": 1.0}
        merge_phase_seconds(into, _spans(("solve", "s1", None, 0.5)))
        assert into == {"solve": 1.5}


class TestValidator:
    def _valid_docs(self):
        return [trace_header()] + _spans(
            ("root", "s1", None, 1.0), ("child", "s2", "s1", 0.4),
        )

    def test_valid_trace_passes(self):
        assert validate_trace_docs(self._valid_docs()) == []

    def test_missing_header_flagged(self):
        docs = _spans(("a", "s1", None))
        assert any("trace_header" in p for p in validate_trace_docs(docs))

    def test_duplicate_ids_flagged(self):
        docs = [trace_header()] + _spans(("a", "s1", None), ("b", "s1", None))
        assert any("duplicate" in p for p in validate_trace_docs(docs))

    def test_unknown_parent_flagged(self):
        docs = [trace_header()] + _spans(("a", "s1", "nope"))
        assert any("unknown parent" in p for p in validate_trace_docs(docs))

    def test_parent_cycle_flagged(self):
        docs = [trace_header()] + _spans(("a", "s1", "s2"), ("b", "s2", "s1"))
        assert any("cycle" in p for p in validate_trace_docs(docs))

    def test_children_exceeding_parent_flagged(self):
        docs = [trace_header()] + _spans(
            ("root", "s1", None, 1.0),
            ("c1", "s2", "s1", 0.8), ("c2", "s3", "s1", 0.8),
        )
        assert any("sum to" in p for p in validate_trace_docs(docs))

    def test_concurrent_parent_exempt_from_sum_check(self):
        docs = [trace_header()] + _spans(
            ("sweep", "s1", None, 1.0),
            ("j1", "s2", "s1", 0.8), ("j2", "s3", "s1", 0.8),
        )
        docs[1]["attrs"] = {"concurrent": True}
        assert validate_trace_docs(docs) == []

    def test_negative_duration_flagged(self):
        docs = [trace_header()] + _spans(("a", "s1", None, -0.1))
        assert any("negative" in p for p in validate_trace_docs(docs))

    def test_cli_main_ok_and_invalid(self, tmp_path, capsys):
        good = tmp_path / "good.jsonl"
        write_trace(good, _spans(("a", "s1", None)))
        assert validate_main([str(good)]) == 0
        assert "ok (1 spans)" in capsys.readouterr().out

        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert validate_main([str(bad)]) == 1
        assert validate_main([]) == 2

    def test_unparsable_line_reported(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(trace_header()) + "\n{oops\n")
        problems = validate_trace_file(str(path))
        assert any("not valid JSON" in p for p in problems)


class TestRealTracerProducesValidTraces:
    def test_nested_real_spans_validate(self, tmp_path):
        tracer = Tracer()
        with tracer.span("analyze"):
            with tracer.span("compile"):
                pass
            with tracer.span("milp_solve"):
                pass
        path = tmp_path / "t.jsonl"
        write_trace(path, tracer.export())
        assert validate_trace_file(str(path)) == []

    def test_merged_worker_spans_validate(self, tmp_path):
        worker = Tracer()
        with worker.span("analyze"):
            with worker.span("milp_solve"):
                pass
        parent = Tracer()
        with parent.span("sweep", concurrent=True):
            pid = parent.record("job", 10.0)
            parent.merge(worker.export(), parent_id=pid, prefix="k:")
        path = tmp_path / "t.jsonl"
        write_trace(path, parent.export())
        assert validate_trace_file(str(path)) == []
