"""Tests for capacity augmentation (Section 7 / Appendix C)."""

import pytest

from repro import PathSet, RahaConfig, augment_existing_lags, augment_new_lags
from repro.network.builder import from_edges


@pytest.fixture
def diamond():
    return from_edges([
        ("a", "b", 10), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
    ], failure_probability=0.05)


@pytest.fixture
def paths(diamond):
    return PathSet.k_shortest(diamond, [("a", "d")], num_primary=2,
                              num_backup=0)


class TestAugmentExisting:
    def test_removes_single_failure_risk(self, diamond, paths):
        config = RahaConfig(fixed_demands={("a", "d"): 10.0}, max_failures=1)
        out = augment_existing_lags(
            diamond, paths, config, link_capacity=10.0,
            new_links_can_fail=False, max_steps=6,
        )
        assert out.converged
        assert out.final_degradation <= 1e-6
        assert out.initial_degradation > 0
        assert out.total_links_added >= 1
        # The augmented topology really is safe: re-run the analyzer.
        from repro import RahaAnalyzer

        check = RahaAnalyzer(out.topology, paths, config).analyze()
        assert check.degradation <= 1e-6

    def test_failable_augments_may_need_more_steps(self, diamond, paths):
        config = RahaConfig(fixed_demands={("a", "d"): 10.0}, max_failures=1)
        safe = augment_existing_lags(
            diamond, paths, config, link_capacity=10.0,
            new_links_can_fail=False, max_steps=8,
        )
        risky = augment_existing_lags(
            diamond, paths, config, link_capacity=10.0,
            new_links_can_fail=True, max_steps=8,
        )
        assert safe.converged
        # Failable new capacity can itself fail; the loop still converges
        # here because each LAG ends with >= 2 links (one failure cannot
        # take a LAG down, only shrink it).
        assert risky.converged
        assert risky.total_links_added >= safe.total_links_added

    def test_already_safe_network_converges_immediately(self, diamond,
                                                        paths):
        config = RahaConfig(fixed_demands={("a", "d"): 0.0}, max_failures=1)
        out = augment_existing_lags(diamond, paths, config,
                                    link_capacity=10.0)
        assert out.converged
        assert out.num_steps == 0
        assert out.total_links_added == 0

    def test_step_metadata(self, diamond, paths):
        config = RahaConfig(fixed_demands={("a", "d"): 10.0}, max_failures=1)
        out = augment_existing_lags(
            diamond, paths, config, link_capacity=10.0,
            new_links_can_fail=False,
        )
        assert out.num_steps == len(out.steps)
        for step in out.steps:
            assert step.degradation_before > 0
            assert step.total_links == sum(step.links_added.values())
        assert 0 <= out.average_reduction <= 1.0

    def test_joint_mode_augment(self, diamond, paths):
        config = RahaConfig(demand_bounds={("a", "d"): (0.0, 12.0)},
                            max_failures=1)
        out = augment_existing_lags(
            diamond, paths, config, link_capacity=10.0,
            new_links_can_fail=False, max_steps=8,
        )
        assert out.converged
        assert out.final_degradation <= 1e-6

    def test_bad_link_capacity_rejected(self, diamond, paths):
        from repro import ModelingError

        config = RahaConfig(fixed_demands={("a", "d"): 10.0}, max_failures=1)
        with pytest.raises(ModelingError):
            augment_existing_lags(diamond, paths, config, link_capacity=0.0)


class TestAugmentNewLags:
    def test_new_lag_restores_capacity(self, diamond):
        pairs = [("a", "d")]

        def path_factory(topo):
            return PathSet.k_shortest(topo, pairs, num_primary=2,
                                      num_backup=0)

        def config_factory(paths):
            return RahaConfig(fixed_demands={("a", "d"): 10.0},
                              max_failures=1)

        out = augment_new_lags(
            diamond, path_factory, config_factory,
            candidate_edges=[("a", "d"), ("b", "c")],
            link_capacity=10.0, new_links_can_fail=False, max_steps=6,
        )
        assert out.converged
        assert out.final_degradation <= 1e-6
        assert out.total_links_added >= 1
        added_keys = {k for step in out.steps for k in step.links_added}
        assert added_keys <= {("a", "d"), ("b", "c")}

    def test_unknown_candidate_rejected(self, diamond):
        from repro import ModelingError

        with pytest.raises(ModelingError):
            augment_new_lags(
                diamond, lambda t: PathSet(), lambda p: None,
                candidate_edges=[("a", "zzz")],
            )
