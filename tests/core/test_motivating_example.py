"""The paper's Figure 1 walkthrough on the calibrated instance.

Three analyses of the same 4-node network show why demands and failures
must be searched jointly *relative to the design point*:

* fixed "typical" demands -> worst single failure degrades by 7
  (healthy 22, failed 15 -- the published numbers exactly);
* the naive adversary (minimize failed performance over variable
  demands) picks tiny demands and finds almost no *degradation*;
* Raha's joint gap search finds the largest degradation of all.
"""

import pytest

from repro import PathSet, RahaAnalyzer, RahaConfig
from repro.baselines.naive import naive_worst_case
from repro.network.builder import motivating_example
from repro.paths.pathset import DemandPaths

BOUNDS = {("B", "D"): (6.0, 18.0), ("C", "D"): (5.0, 15.0)}
TYPICAL = {("B", "D"): 12.0, ("C", "D"): 10.0}


@pytest.fixture
def topo():
    return motivating_example()


@pytest.fixture
def paths():
    # Figure 1: each pair has its direct path and the path through A,
    # both usable without failures (two primaries).
    return PathSet({
        ("B", "D"): DemandPaths(
            pair=("B", "D"), paths=[("B", "D"), ("B", "A", "D")],
            num_primary=2),
        ("C", "D"): DemandPaths(
            pair=("C", "D"), paths=[("C", "D"), ("C", "A", "D")],
            num_primary=2),
    })


class TestFigure1:
    def test_fixed_demand_scenario_matches_paper(self, topo, paths):
        config = RahaConfig(fixed_demands=TYPICAL, max_failures=1)
        result = RahaAnalyzer(topo, paths, config).analyze()
        assert result.healthy_value == pytest.approx(22.0, abs=1e-5)
        assert result.failed_value == pytest.approx(15.0, abs=1e-5)
        assert result.degradation == pytest.approx(7.0, abs=1e-5)

    def test_naive_adversary_finds_little_degradation(self, topo, paths):
        naive = naive_worst_case(
            topo, paths, demand_bounds=BOUNDS, max_failures=1
        )
        # The naive objective happily shrinks demands; its scenario's
        # *degradation* is tiny (the paper's figure shows 1 unit).
        assert naive.degradation <= 1.0 + 1e-6
        assert naive.demands[("B", "D")] == pytest.approx(6.0, abs=1e-5)
        assert naive.demands[("C", "D")] == pytest.approx(5.0, abs=1e-5)

    def test_raha_finds_the_real_worst_case(self, topo, paths):
        config = RahaConfig(demand_bounds=BOUNDS, max_failures=1)
        result = RahaAnalyzer(topo, paths, config).analyze()
        # Calibrated instance: Raha fails the 10-unit B-D LAG with high
        # demands; healthy 25, failed 15, degradation 10 (paper: 9 on its
        # unpublished capacities).
        assert result.degradation == pytest.approx(10.0, abs=1e-5)
        assert result.healthy_value == pytest.approx(25.0, abs=1e-5)

    def test_ordering_of_the_three_analyses(self, topo, paths):
        fixed = RahaAnalyzer(
            topo, paths, RahaConfig(fixed_demands=TYPICAL, max_failures=1)
        ).analyze()
        naive = naive_worst_case(
            topo, paths, demand_bounds=BOUNDS, max_failures=1
        )
        joint = RahaAnalyzer(
            topo, paths, RahaConfig(demand_bounds=BOUNDS, max_failures=1)
        ).analyze()
        assert naive.degradation < fixed.degradation < joint.degradation
