"""Incumbent-free time limits must fail loudly, not return NaN results.

A ``TIME_LIMIT`` status can mean two very different things: HiGHS stopped
with a feasible incumbent (usable, conservative), or it expired before
finding *any* feasible point (``x is None``, objective NaN).  The analyzer
must treat the second case as a failure instead of propagating NaN
degradation into reports and alert payloads.
"""

import pytest

from repro import PathSet, RahaAnalyzer, RahaConfig
from repro.exceptions import SolverError
from repro.metaopt.bilevel import StackelbergProblem
from repro.network.builder import from_edges
from repro.solver.result import SolveResult, SolveStatus


@pytest.fixture
def diamond():
    return from_edges([
        ("a", "b", 10), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
    ], failure_probability=0.05)


@pytest.fixture
def diamond_paths(diamond):
    return PathSet.k_shortest(diamond, [("a", "d")], num_primary=2,
                              num_backup=0)


def _timeout_without_incumbent(self, time_limit=None, mip_rel_gap=None):
    return SolveResult(
        status=SolveStatus.TIME_LIMIT,
        x=None,
        message="time limit reached with no incumbent solution",
    )


class TestIncumbentFreeTimeout:
    def test_analyzer_raises_solver_error(self, diamond, diamond_paths,
                                          monkeypatch):
        monkeypatch.setattr(
            StackelbergProblem, "solve", _timeout_without_incumbent
        )
        config = RahaConfig(
            fixed_demands={("a", "d"): 12.0}, max_failures=1, time_limit=7.0
        )
        with pytest.raises(SolverError, match="no incumbent"):
            RahaAnalyzer(diamond, diamond_paths, config).analyze()

    def test_error_names_the_configured_limit(self, diamond, diamond_paths,
                                              monkeypatch):
        monkeypatch.setattr(
            StackelbergProblem, "solve", _timeout_without_incumbent
        )
        config = RahaConfig(
            fixed_demands={("a", "d"): 12.0}, max_failures=1, time_limit=42.0
        )
        with pytest.raises(SolverError, match="42"):
            RahaAnalyzer(diamond, diamond_paths, config).analyze()

    def test_timeout_with_incumbent_still_usable(self, diamond,
                                                 diamond_paths):
        # Sanity: a normal run reports solver stats and a usable status
        # (the incumbent-free branch must not catch healthy solves).
        config = RahaConfig(fixed_demands={("a", "d"): 12.0}, max_failures=1)
        result = RahaAnalyzer(diamond, diamond_paths, config).analyze()
        assert result.status in ("optimal", "time_limit")
        assert result.solver_stats is not None
        assert result.solver_stats["backend"] == "milp"
        assert result.solver_stats["rows"] > 0


class TestHasSolutionSemantics:
    def test_time_limit_without_x(self):
        r = SolveResult(status=SolveStatus.TIME_LIMIT, x=None)
        assert r.status.ok
        assert not r.has_solution
        with pytest.raises(ValueError):
            r.value(3.0)
