"""Unit tests for DegradationResult and augment result metadata."""

import pytest

from repro import DemandMatrix, FailureScenario
from repro.core.augment import AugmentResult, AugmentStep
from repro.core.degradation import DegradationResult


def make_result(**overrides):
    defaults = dict(
        degradation=5.0,
        normalized_degradation=0.5,
        demands=DemandMatrix({("a", "b"): 3.0}),
        scenario=FailureScenario([(("a", "b"), 0)]),
        healthy_value=10.0,
        failed_value=5.0,
    )
    defaults.update(overrides)
    return DegradationResult(**defaults)


class TestDegradationResult:
    def test_total_seconds_sums_phases(self):
        result = make_result(solve_seconds=1.0, encode_seconds=0.5,
                             path_seconds=0.25)
        assert result.total_seconds == pytest.approx(1.75)

    def test_summary_includes_probability_when_present(self):
        result = make_result(scenario_probability=1.5e-3)
        assert "p=1.50e-03" in result.summary()

    def test_summary_without_probability(self):
        result = make_result(scenario_probability=None)
        assert "p=" not in result.summary()

    def test_summary_mentions_status(self):
        result = make_result(status="time_limit")
        assert "time_limit" in result.summary()


class TestAugmentResultMetadata:
    def test_average_reduction_full_removal_one_step(self):
        result = AugmentResult(
            topology=None, converged=True,
            steps=[AugmentStep(degradation_before=8.0,
                               links_added={("a", "b"): 2})],
            initial_degradation=8.0, final_degradation=0.0,
        )
        assert result.average_reduction == pytest.approx(1.0)
        assert result.total_links_added == 2
        assert result.num_steps == 1

    def test_average_reduction_partial_two_steps(self):
        steps = [
            AugmentStep(degradation_before=8.0, links_added={("a", "b"): 1}),
            AugmentStep(degradation_before=4.0, links_added={("b", "c"): 1}),
        ]
        result = AugmentResult(
            topology=None, converged=False, steps=steps,
            initial_degradation=8.0, final_degradation=2.0,
        )
        # (8 - 2) / 8 / 2 steps = 0.375 per step.
        assert result.average_reduction == pytest.approx(0.375)

    def test_no_steps_no_reduction(self):
        result = AugmentResult(
            topology=None, converged=True, steps=[],
            initial_degradation=0.0, final_degradation=0.0,
        )
        assert result.average_reduction == 0.0
        assert result.total_links_added == 0

    def test_step_total_links(self):
        step = AugmentStep(degradation_before=1.0,
                           links_added={("a", "b"): 2, ("c", "d"): 3})
        assert step.total_links == 5
