"""Direct tests for the Section 5 encodings."""

import pytest

from repro import RahaConfig, Srlg
from repro.core.encodings import FailureEncoding, failable_link_keys
from repro.network.builder import from_edges
from repro.network.srlg import attach_srlg
from repro.network.topology import Link
from repro.paths import PathSet
from repro.solver import Model, quicksum
from repro.solver.expr import Var


@pytest.fixture
def topo():
    return from_edges([
        ("a", "b", 10, 2), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
    ], failure_probability=0.1)


@pytest.fixture
def paths(topo):
    return PathSet.k_shortest(topo, [("a", "d")], num_primary=1,
                              num_backup=1)


def make_encoding(topo, paths, **config_kwargs):
    config_kwargs.setdefault("demand_bounds", {("a", "d"): (0.0, 20.0)})
    config = RahaConfig(**config_kwargs)
    model = Model("enc")
    return model, FailureEncoding(
        model=model, topology=topo, paths=paths, config=config
    )


class TestLinkVariables:
    def test_all_probabilistic_links_failable(self, topo, paths):
        _, enc = make_encoding(topo, paths)
        vars_ = [u for u in enc.link_down.values() if isinstance(u, Var)]
        assert len(vars_) == topo.num_links

    def test_non_failable_lag_pinned(self, topo, paths):
        config = RahaConfig(demand_bounds={("a", "d"): (0.0, 20.0)})
        model = Model("enc")
        enc = FailureEncoding(
            model=model, topology=topo, paths=paths, config=config,
            non_failable_lags=frozenset({("a", "b")}),
        )
        assert enc.link_down[(("a", "b"), 0)] == 0.0
        assert enc.lag_down[("a", "b")] == 0.0

    def test_cannot_fail_link_pinned(self, paths):
        topo = from_edges([
            ("a", "b", 10, 2), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
        ], failure_probability=0.1)
        lag = topo.require_lag("b", "d")
        lag.links = [Link(capacity=10, failure_probability=0.1,
                          can_fail=False)]
        _, enc = make_encoding(topo, paths)
        assert enc.link_down[(("b", "d"), 0)] == 0.0

    def test_probability_free_link_pinned_under_threshold(self, paths):
        topo = from_edges([
            ("a", "b", 10, 2), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
        ], failure_probability=0.1)
        # Strip one LAG's probability.
        lag = topo.require_lag("a", "c")
        lag.links = [Link(capacity=6)]
        _, enc = make_encoding(topo, paths, probability_threshold=1e-3)
        assert enc.link_down[(("a", "c"), 0)] == 0.0

    def test_probability_free_link_failable_without_threshold(self, paths):
        topo = from_edges([
            ("a", "b", 10, 2), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
        ], failure_probability=0.1)
        lag = topo.require_lag("a", "c")
        lag.links = [Link(capacity=6)]
        _, enc = make_encoding(topo, paths, max_failures=2)
        assert isinstance(enc.link_down[(("a", "c"), 0)], Var)


class TestLagSemantics:
    def _force_and_read(self, model, enc, assignments, expr):
        """Pin link binaries and return min/max of an expression."""
        for key, value in assignments.items():
            u = enc.link_down[key]
            model.add_constr(u.to_expr() == value)
        free = [u for u in enc.link_down.values()
                if isinstance(u, Var)]
        model.add_constr(quicksum(free) <= sum(assignments.values()))
        model.set_objective(expr, sense="max")
        hi = model.solve().require_ok().value(expr)
        model.set_objective(expr, sense="min")
        lo = model.solve().require_ok().value(expr)
        return lo, hi

    def test_lag_capacity_expression(self, topo, paths):
        model, enc = make_encoding(topo, paths)
        lo, hi = self._force_and_read(
            model, enc, {(("a", "b"), 0): 1, (("a", "b"), 1): 0},
            enc.lag_capacity[("a", "b")],
        )
        assert lo == pytest.approx(5.0)
        assert hi == pytest.approx(5.0)

    def test_lag_down_requires_all_links(self, topo, paths):
        model, enc = make_encoding(topo, paths)
        lag_down = enc.lag_down[("a", "b")]
        lo, hi = self._force_and_read(
            model, enc, {(("a", "b"), 0): 1, (("a", "b"), 1): 0},
            lag_down.to_expr(),
        )
        assert (lo, hi) == (0.0, 0.0)

    def test_lag_down_when_all_links_fail(self, topo, paths):
        model, enc = make_encoding(topo, paths)
        lag_down = enc.lag_down[("a", "b")]
        lo, hi = self._force_and_read(
            model, enc, {(("a", "b"), 0): 1, (("a", "b"), 1): 1},
            lag_down.to_expr(),
        )
        assert (lo, hi) == (1.0, 1.0)

    def test_path_down_exact_both_directions(self, topo, paths):
        model, enc = make_encoding(topo, paths)
        # Path 0 of (a, d) is a-b-d; fail all of a-b.
        down = enc.path_down[(("a", "d"), 0)]
        lo, hi = self._force_and_read(
            model, enc, {(("a", "b"), 0): 1, (("a", "b"), 1): 1},
            down.to_expr(),
        )
        assert (lo, hi) == (1.0, 1.0)

    def test_path_up_when_links_survive(self, topo, paths):
        model, enc = make_encoding(topo, paths)
        down = enc.path_down[(("a", "d"), 0)]
        lo, hi = self._force_and_read(
            model, enc, {(("a", "b"), 0): 1}, down.to_expr()
        )
        assert (lo, hi) == (0.0, 0.0)

    def test_backup_activation_follows_primary(self, topo, paths):
        model, enc = make_encoding(topo, paths)
        active = enc.path_active[(("a", "d"), 1)]
        lo, hi = self._force_and_read(
            model, enc, {(("a", "b"), 0): 1, (("a", "b"), 1): 1},
            active.to_expr(),
        )
        assert (lo, hi) == (1.0, 1.0)

    def test_backup_inactive_without_failures(self, topo, paths):
        model, enc = make_encoding(topo, paths)
        active = enc.path_active[(("a", "d"), 1)]
        lo, hi = self._force_and_read(model, enc, {}, active.to_expr())
        assert (lo, hi) == (0.0, 0.0)

    def test_primary_always_active_constant(self, topo, paths):
        _, enc = make_encoding(topo, paths)
        assert enc.path_active[(("a", "d"), 0)] == 1.0


class TestSrlgEncoding:
    def test_srlg_links_share_fate(self, paths):
        topo = from_edges([
            ("a", "b", 10, 2), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
        ], failure_probability=0.1)
        srlg = Srlg(name="conduit")
        srlg.add("a", "b", 0)
        srlg.add("c", "d", 0)
        attach_srlg(topo, srlg)
        _, enc = make_encoding(topo, paths)
        assert enc.link_down[(("a", "b"), 0)] is enc.link_down[(("c", "d"), 0)]

    def test_link_in_two_srlgs_rejected(self, paths):
        from repro.exceptions import ModelingError

        topo = from_edges([
            ("a", "b", 10, 2), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
        ], failure_probability=0.1)
        for name in ("g1", "g2"):
            srlg = Srlg(name=name)
            srlg.add("a", "b", 0)
            srlg.add("b", "d", 0)
            attach_srlg(topo, srlg)
        with pytest.raises(ModelingError):
            make_encoding(topo, paths)


class TestScenarioExtraction:
    def test_extract_scenario_roundtrip(self, topo, paths):
        model, enc = make_encoding(topo, paths, max_failures=2)
        model.add_constr(enc.link_down[(("a", "c"), 0)].to_expr() == 1)
        model.set_objective(
            quicksum(u for u in enc.link_down.values() if isinstance(u, Var)),
            sense="min",
        )
        result = model.solve().require_ok()
        scenario = enc.extract_scenario(result)
        assert scenario.is_failed(("a", "c"), 0)
        assert scenario.num_failed_links == 1


class TestFailableLinkKeys:
    def test_counts(self, topo):
        config = RahaConfig(demand_bounds={("a", "d"): (0.0, 1.0)})
        keys = failable_link_keys(topo, config)
        assert len(keys) == topo.num_links

    def test_excluded_lag(self, topo):
        config = RahaConfig(demand_bounds={("a", "d"): (0.0, 1.0)})
        keys = failable_link_keys(topo, config,
                                  non_failable_lags=[("a", "b")])
        assert all(key != ("a", "b") for key, _ in keys)


class TestSrlgGroupProbabilityFailability:
    def test_probability_free_member_failable_via_group(self, paths):
        """A link without its own probability may still fail under a
        threshold when its SRLG carries a group probability."""
        topo = from_edges([
            ("a", "b", 10, 2), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
        ], failure_probability=0.1)
        # Strip the probability from one link, then put it in a priced SRLG.
        lag = topo.require_lag("c", "d")
        lag.links = [Link(capacity=6)]
        srlg = Srlg(name="conduit", failure_probability=0.05)
        srlg.add("c", "d", 0)
        srlg.add("a", "c", 0)
        attach_srlg(topo, srlg)
        _, enc = make_encoding(topo, paths, probability_threshold=1e-3)
        assert isinstance(enc.link_down[(("c", "d"), 0)], Var)
        # And it shares the group's binary with the other member.
        assert enc.link_down[(("c", "d"), 0)] is enc.link_down[(("a", "c"), 0)]
