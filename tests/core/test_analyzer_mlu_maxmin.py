"""Analyzer tests for the MLU and max-min objectives (Appendix A)."""

import pytest

from repro import PathSet, RahaAnalyzer, RahaConfig
from repro.core.analyzer import simulate_failed_mlu
from repro.network.builder import from_edges


@pytest.fixture
def diamond():
    return from_edges([
        ("a", "b", 10), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
    ], failure_probability=0.05)


@pytest.fixture
def backup_paths(diamond):
    return PathSet.k_shortest(diamond, [("a", "d")], num_primary=1,
                              num_backup=1)


class TestMluMode:
    def test_fixed_demand_failover_raises_utilization(self, diamond,
                                                      backup_paths):
        # Healthy: 6 units on the 10-route -> U = 0.6.  Failing the
        # primary moves all 6 to the 6-route backup -> U = 1.0.
        config = RahaConfig(fixed_demands={("a", "d"): 6.0},
                            objective="mlu", max_failures=1)
        raha = RahaAnalyzer(diamond, backup_paths, config).analyze()
        assert raha.healthy_value == pytest.approx(0.6, abs=1e-6)
        assert raha.failed_value == pytest.approx(1.0, abs=1e-6)
        assert raha.degradation == pytest.approx(0.4, abs=1e-6)
        assert raha.verified

    def test_joint_mode_pushes_demand_up(self, diamond, backup_paths):
        config = RahaConfig(demand_bounds={("a", "d"): (0.0, 8.0)},
                            objective="mlu", max_failures=1)
        raha = RahaAnalyzer(diamond, backup_paths, config).analyze()
        # d on primary: U_h = d/10; failed onto backup: U_f = d/6.
        # Gap = d(1/6 - 1/10) grows with d -> d = 8.
        assert raha.demands[("a", "d")] == pytest.approx(8.0, abs=1e-5)
        assert raha.degradation == pytest.approx(8 / 6 - 8 / 10, abs=1e-5)

    def test_ce_forced_on(self, diamond, backup_paths):
        config = RahaConfig(fixed_demands={("a", "d"): 6.0},
                            objective="mlu", max_failures=4)
        assert config.connected_enforced
        raha = RahaAnalyzer(diamond, backup_paths, config).analyze()
        # CE keeps one path; the worst is still full fail-over U = 1.
        assert raha.failed_value == pytest.approx(1.0, abs=1e-6)

    def test_simulate_failed_mlu_uses_original_capacities(self, diamond,
                                                          backup_paths):
        from repro import FailureScenario

        scenario = FailureScenario.from_lags(diamond, [("a", "b")])
        sol = simulate_failed_mlu(
            diamond, {("a", "d"): 6.0}, backup_paths, scenario
        )
        assert sol.objective == pytest.approx(1.0, abs=1e-6)

    def test_mlu_degradation_not_normalized(self, diamond, backup_paths):
        config = RahaConfig(fixed_demands={("a", "d"): 6.0},
                            objective="mlu", max_failures=1)
        raha = RahaAnalyzer(diamond, backup_paths, config).analyze()
        assert raha.normalized_degradation == pytest.approx(raha.degradation)
        assert any("unnormalized" in note for note in raha.notes)


class TestMaxMinMode:
    @pytest.fixture
    def shared_bottleneck(self):
        # Two sources share a bottleneck toward c; a side path exists.
        return from_edges([
            ("a", "m", 10), ("b", "m", 10), ("m", "c", 10),
            ("a", "x", 4), ("x", "c", 4),
        ], failure_probability=0.05)

    def test_fixed_demand_fairness_degrades(self, shared_bottleneck):
        paths = PathSet.k_shortest(
            shared_bottleneck, [("a", "c"), ("b", "c")],
            num_primary=1, num_backup=1,
        )
        config = RahaConfig(
            fixed_demands={("a", "c"): 8.0, ("b", "c"): 8.0},
            objective="maxmin", max_failures=1,
        )
        raha = RahaAnalyzer(shared_bottleneck, paths, config).analyze()
        assert raha.degradation > 0
        assert raha.verified

    def test_joint_mode_runs_and_verifies(self, shared_bottleneck):
        paths = PathSet.k_shortest(
            shared_bottleneck, [("a", "c"), ("b", "c")],
            num_primary=1, num_backup=1,
        )
        config = RahaConfig(
            demand_bounds={("a", "c"): (0.0, 8.0), ("b", "c"): (0.0, 8.0)},
            objective="maxmin", max_failures=1,
        )
        raha = RahaAnalyzer(shared_bottleneck, paths, config).analyze()
        assert raha.degradation >= 0
        assert raha.verified

    def test_no_failures_budget_means_zero_gap(self, shared_bottleneck):
        paths = PathSet.k_shortest(
            shared_bottleneck, [("a", "c"), ("b", "c")],
            num_primary=1, num_backup=1,
        )
        config = RahaConfig(
            demand_bounds={("a", "c"): (0.0, 8.0), ("b", "c"): (0.0, 8.0)},
            objective="maxmin", max_failures=0,
        )
        raha = RahaAnalyzer(shared_bottleneck, paths, config).analyze()
        assert raha.degradation == pytest.approx(0.0, abs=1e-5)


class TestEquiDepthMode:
    def test_equidepth_binner_mode(self, diamond, backup_paths):
        config = RahaConfig(
            fixed_demands={("a", "d"): 6.0},
            objective="maxmin", maxmin_binner="equidepth",
            max_failures=1,
        )
        raha = RahaAnalyzer(diamond, backup_paths, config).analyze()
        assert raha.verified
        assert raha.degradation >= 0

    def test_unknown_binner_rejected(self):
        from repro import ModelingError

        with pytest.raises(ModelingError):
            RahaConfig(fixed_demands={}, objective="maxmin",
                       maxmin_binner="quantile")
