"""Tests for the two-tier alert pipeline."""

import pytest

from repro import AlertPipeline, AlertSeverity, PathSet
from repro.network.builder import from_edges


@pytest.fixture
def diamond():
    return from_edges([
        ("a", "b", 10), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
    ], failure_probability=0.05)


@pytest.fixture
def paths(diamond):
    return PathSet.k_shortest(diamond, [("a", "d")], num_primary=2,
                              num_backup=0)


class TestTier1:
    def test_critical_on_degradable_peak(self, diamond, paths):
        pipeline = AlertPipeline(diamond, paths, tolerance=0.0,
                                 probability_threshold=1e-4)
        alert = pipeline.check_fixed({("a", "d"): 12.0})
        assert alert.severity == AlertSeverity.CRITICAL
        assert alert.fired
        assert alert.tier == 1
        assert "degrades peak traffic" in alert.message

    def test_info_when_peak_is_safe(self, diamond, paths):
        pipeline = AlertPipeline(diamond, paths, tolerance=0.0,
                                 probability_threshold=1e-12)
        # With an absurdly low threshold everything is "probable", so use
        # zero demand instead to get a guaranteed-clean check.
        alert = pipeline.check_fixed({("a", "d"): 0.0})
        assert alert.severity == AlertSeverity.INFO
        assert not alert.fired

    def test_tolerance_suppresses_small_degradations(self, diamond, paths):
        pipeline = AlertPipeline(diamond, paths, tolerance=100.0,
                                 probability_threshold=1e-4)
        alert = pipeline.check_fixed({("a", "d"): 12.0})
        assert alert.severity == AlertSeverity.INFO


class TestTier2:
    def test_warning_on_degradable_envelope(self, diamond, paths):
        pipeline = AlertPipeline(diamond, paths, tolerance=0.0,
                                 probability_threshold=1e-4)
        alert = pipeline.check_variable({("a", "d"): (0.0, 20.0)})
        assert alert.severity == AlertSeverity.WARNING
        assert alert.tier == 2


class TestPipeline:
    def test_stops_after_tier1_fire(self, diamond, paths):
        pipeline = AlertPipeline(diamond, paths, tolerance=0.0,
                                 probability_threshold=1e-4)
        alerts = pipeline.run({("a", "d"): 12.0},
                              {("a", "d"): (0.0, 20.0)})
        assert len(alerts) == 1
        assert alerts[0].tier == 1

    def test_proceeds_to_tier2_when_clean(self, diamond, paths):
        pipeline = AlertPipeline(diamond, paths, tolerance=100.0,
                                 probability_threshold=1e-4)
        alerts = pipeline.run({("a", "d"): 12.0},
                              {("a", "d"): (0.0, 20.0)})
        assert len(alerts) == 2
        assert [a.tier for a in alerts] == [1, 2]
        assert all(not a.fired for a in alerts)


class TestAfterFailure:
    def test_applied_to_removes_links(self, diamond):
        from repro import FailureScenario

        scenario = FailureScenario([(("a", "b"), 0)])
        degraded = scenario.applied_to(diamond)
        assert degraded.require_lag("a", "b").capacity == 0.0
        assert not degraded.require_lag("a", "b").links[0].can_fail
        # The original is untouched; other LAGs keep their links.
        assert diamond.require_lag("a", "b").capacity == 10.0
        assert degraded.require_lag("a", "c").capacity == 6.0

    def test_applied_to_partial_bundle(self):
        from repro import FailureScenario
        from repro.network.builder import from_edges

        topo = from_edges([("a", "b", 10, 2)], failure_probability=0.05)
        degraded = FailureScenario([(("a", "b"), 0)]).applied_to(topo)
        lag = degraded.require_lag("a", "b")
        assert lag.num_links == 1
        assert lag.capacity == 5.0

    def test_after_failure_escalates(self):
        """A cut that was absorbed becomes critical on the next check."""
        from repro import FailureScenario
        from repro.network.builder import from_edges

        # Solid links: only single failures are probable at T = 1e-4.
        topo = from_edges([
            ("a", "b", 10), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
        ], failure_probability=0.005)
        paths = PathSet.k_shortest(topo, [("a", "d")], num_primary=2,
                                   num_backup=0)
        pipeline = AlertPipeline(topo, paths, tolerance=0.1,
                                 probability_threshold=1e-4)
        before = pipeline.check_fixed({("a", "d"): 6.0})
        assert not before.fired  # any single failure leaves 6 units routable

        cut = FailureScenario.from_lags(topo, [("a", "c")])
        degraded_pipeline, alerts = pipeline.after_failure(
            cut, {("a", "d"): 6.0},
        )
        assert alerts[0].fired  # the remaining route is one failure away
        assert degraded_pipeline.topology is not topo
