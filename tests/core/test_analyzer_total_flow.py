"""Analyzer tests for the total-flow objective, cross-checked against
exhaustive enumeration and simulation."""

import itertools

import pytest

from repro import (
    FailureScenario,
    PathSet,
    RahaAnalyzer,
    RahaConfig,
    simulate_failed_network,
    worst_case_k_failures,
)
from repro.network.builder import from_edges, with_link_probabilities
from repro.te import TotalFlowTE


@pytest.fixture
def diamond():
    return from_edges([
        ("a", "b", 10), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
    ], failure_probability=0.05)


@pytest.fixture
def diamond_paths(diamond):
    return PathSet.k_shortest(diamond, [("a", "d")], num_primary=2,
                              num_backup=0)


class TestFixedDemandMode:
    def test_matches_enumeration_k1(self, diamond, diamond_paths):
        demands = {("a", "d"): 12.0}
        config = RahaConfig(fixed_demands=demands, max_failures=1)
        raha = RahaAnalyzer(diamond, diamond_paths, config).analyze()
        brute = worst_case_k_failures(diamond, demands, diamond_paths, 1)
        assert raha.degradation == pytest.approx(brute.degradation, abs=1e-5)
        assert raha.verified

    def test_matches_enumeration_k2(self, diamond, diamond_paths):
        demands = {("a", "d"): 12.0}
        config = RahaConfig(fixed_demands=demands, max_failures=2)
        raha = RahaAnalyzer(diamond, diamond_paths, config).analyze()
        brute = worst_case_k_failures(diamond, demands, diamond_paths, 2)
        assert raha.degradation == pytest.approx(brute.degradation, abs=1e-5)

    def test_unlimited_failures_kill_everything(self, diamond, diamond_paths):
        config = RahaConfig(fixed_demands={("a", "d"): 12.0})
        raha = RahaAnalyzer(diamond, diamond_paths, config).analyze()
        assert raha.failed_value == pytest.approx(0.0, abs=1e-6)
        assert raha.degradation == pytest.approx(12.0, abs=1e-5)

    def test_zero_demand_no_degradation(self, diamond, diamond_paths):
        config = RahaConfig(fixed_demands={("a", "d"): 0.0})
        raha = RahaAnalyzer(diamond, diamond_paths, config).analyze()
        assert raha.degradation == pytest.approx(0.0, abs=1e-6)

    def test_scenario_is_simulatable(self, diamond, diamond_paths):
        demands = {("a", "d"): 12.0}
        config = RahaConfig(fixed_demands=demands, max_failures=1)
        raha = RahaAnalyzer(diamond, diamond_paths, config).analyze()
        sim = simulate_failed_network(diamond, demands, diamond_paths,
                                      raha.scenario)
        assert sim.total_flow == pytest.approx(raha.failed_value, abs=1e-5)


class TestJointMode:
    def test_prefers_high_demand_on_failed_route(self, diamond, diamond_paths):
        config = RahaConfig(demand_bounds={("a", "d"): (0.0, 30.0)},
                            max_failures=1)
        raha = RahaAnalyzer(diamond, diamond_paths, config).analyze()
        # Fail the 10-route; gap = 10 when demand >= 16.
        assert raha.degradation == pytest.approx(10.0, abs=1e-5)
        assert raha.demands[("a", "d")] >= 16.0 - 1e-6

    def test_beats_or_matches_every_grid_point(self, diamond, diamond_paths):
        """The joint optimum dominates a brute-force demand grid."""
        config = RahaConfig(demand_bounds={("a", "d"): (0.0, 20.0)},
                            max_failures=2)
        raha = RahaAnalyzer(diamond, diamond_paths, config).analyze()
        healthy = TotalFlowTE(primary_only=True)
        links = [(lag.key, i) for lag in diamond.lags
                 for i in range(lag.num_links)]
        best = 0.0
        for volume in [0.0, 4.0, 8.0, 12.0, 16.0, 20.0]:
            demands = {("a", "d"): volume}
            h = healthy.solve(diamond, demands, diamond_paths).total_flow
            for count in (1, 2):
                for combo in itertools.combinations(links, count):
                    f = simulate_failed_network(
                        diamond, demands, diamond_paths,
                        FailureScenario(combo),
                    ).total_flow
                    best = max(best, h - f)
        assert raha.degradation >= best - 1e-5

    def test_demand_lower_bounds_respected(self, diamond, diamond_paths):
        config = RahaConfig(demand_bounds={("a", "d"): (5.0, 30.0)},
                            max_failures=1)
        raha = RahaAnalyzer(diamond, diamond_paths, config).analyze()
        assert raha.demands[("a", "d")] >= 5.0 - 1e-9

    def test_degenerate_bounds_equal_fixed_mode(self, diamond, diamond_paths):
        fixed = RahaAnalyzer(
            diamond, diamond_paths,
            RahaConfig(fixed_demands={("a", "d"): 12.0}, max_failures=1),
        ).analyze()
        pinned = RahaAnalyzer(
            diamond, diamond_paths,
            RahaConfig(demand_bounds={("a", "d"): (12.0, 12.0)},
                       max_failures=1),
        ).analyze()
        assert pinned.degradation == pytest.approx(fixed.degradation,
                                                   abs=1e-5)


class TestBackupSemantics:
    def test_backup_unlocks_after_primary_failure(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], num_primary=1,
                                   num_backup=1)
        config = RahaConfig(demand_bounds={("a", "d"): (0.0, 30.0)},
                            max_failures=1)
        raha = RahaAnalyzer(diamond, paths, config).analyze()
        # Healthy uses only the 10-route primary. A single link failure
        # kills it; the 6-route backup activates: gap = 10 - 6 = 4.
        assert raha.degradation == pytest.approx(4.0, abs=1e-5)

    def test_two_failures_defeat_backup_too(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], num_primary=1,
                                   num_backup=1)
        config = RahaConfig(demand_bounds={("a", "d"): (0.0, 30.0)},
                            max_failures=2)
        raha = RahaAnalyzer(diamond, paths, config).analyze()
        assert raha.degradation == pytest.approx(10.0, abs=1e-5)
        assert raha.failed_value == pytest.approx(0.0, abs=1e-6)

    def test_multi_link_lag_needs_all_links_down(self):
        topo = from_edges([
            ("a", "b", 10, 2), ("b", "d", 10, 2),
            ("a", "c", 6), ("c", "d", 6),
        ], failure_probability=0.05)
        paths = PathSet.k_shortest(topo, [("a", "d")], num_primary=1,
                                   num_backup=1)
        config = RahaConfig(demand_bounds={("a", "d"): (0.0, 30.0)},
                            max_failures=2)
        raha = RahaAnalyzer(topo, paths, config).analyze()
        # Partial failures beat full ones here: halving BOTH primary LAGs
        # (one link each) leaves the primary at 5 while the backup stays
        # INACTIVE (no path is down), gap = 10 - 5 = 5.  Killing one LAG
        # outright (2 links) would activate the 6-cap backup: gap only 4.
        assert raha.degradation == pytest.approx(5.0, abs=1e-5)
        assert raha.scenario.down_lags(topo) == set()

    def test_partial_failure_degrades_capacity(self):
        topo = from_edges([
            ("a", "b", 10, 2), ("b", "d", 10, 2),
            ("a", "c", 6), ("c", "d", 6),
        ], failure_probability=0.05)
        paths = PathSet.k_shortest(topo, [("a", "d")], num_primary=2,
                                   num_backup=0)
        config = RahaConfig(demand_bounds={("a", "d"): (0.0, 30.0)},
                            max_failures=1)
        raha = RahaAnalyzer(topo, paths, config).analyze()
        # Best single failure: the single-link 6-LAG dies outright (gap 6);
        # halving a 2-link 10-LAG would only cost 5.
        assert raha.degradation == pytest.approx(6.0, abs=1e-5)


class TestScenarioConstraints:
    def test_probability_threshold_excludes_rare_links(self, diamond):
        topo = with_link_probabilities(diamond, {
            ("a", "b"): 1e-9, ("b", "d"): 1e-9,
            ("a", "c"): 0.1, ("c", "d"): 0.1,
        })
        paths = PathSet.k_shortest(topo, [("a", "d")], num_primary=2,
                                   num_backup=0)
        config = RahaConfig(demand_bounds={("a", "d"): (0.0, 30.0)},
                            probability_threshold=1e-4)
        raha = RahaAnalyzer(topo, paths, config).analyze()
        # Only the 6-route links are probable enough.
        assert raha.degradation == pytest.approx(6.0, abs=1e-5)
        assert raha.scenario_probability >= 1e-4

    def test_connected_enforced_keeps_one_path(self, diamond, diamond_paths):
        config = RahaConfig(demand_bounds={("a", "d"): (0.0, 30.0)},
                            max_failures=4, connected_enforced=True)
        raha = RahaAnalyzer(diamond, diamond_paths, config).analyze()
        assert raha.failed_value > 0.0
        assert raha.degradation == pytest.approx(10.0, abs=1e-5)

    def test_max_failures_zero_means_no_degradation(self, diamond,
                                                    diamond_paths):
        config = RahaConfig(demand_bounds={("a", "d"): (0.0, 30.0)},
                            max_failures=0)
        raha = RahaAnalyzer(diamond, diamond_paths, config).analyze()
        assert raha.degradation == pytest.approx(0.0, abs=1e-6)
        assert raha.scenario.num_failed_links == 0

    def test_extra_outer_constraints(self, diamond, diamond_paths):
        """Operators can bolt arbitrary linear outer constraints on."""
        # Build the config after creating a constraint on... we cannot
        # reference model vars beforehand, so use the supported knob:
        # restrict failures via max_failures and compare.
        loose = RahaAnalyzer(
            diamond, diamond_paths,
            RahaConfig(demand_bounds={("a", "d"): (0.0, 30.0)},
                       max_failures=2),
        ).analyze()
        tight = RahaAnalyzer(
            diamond, diamond_paths,
            RahaConfig(demand_bounds={("a", "d"): (0.0, 30.0)},
                       max_failures=1),
        ).analyze()
        assert tight.degradation <= loose.degradation + 1e-6


class TestNaiveFailover:
    def test_naive_failover_bounds_backup_flow(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], num_primary=1,
                                   num_backup=1)
        free = RahaAnalyzer(
            diamond, paths,
            RahaConfig(demand_bounds={("a", "d"): (0.0, 30.0)},
                       max_failures=1),
        ).analyze()
        naive = RahaAnalyzer(
            diamond, paths,
            RahaConfig(demand_bounds={("a", "d"): (0.0, 30.0)},
                       max_failures=1, naive_failover=True,
                       verify=False),
        ).analyze()
        # The naive reaction can only do worse or equal for the network,
        # i.e. the adversary finds at least as much degradation.
        assert naive.degradation >= free.degradation - 1e-6


class TestResultMetadata:
    def test_result_fields_populated(self, diamond, diamond_paths):
        config = RahaConfig(demand_bounds={("a", "d"): (0.0, 30.0)},
                            max_failures=1)
        raha = RahaAnalyzer(diamond, diamond_paths, config).analyze()
        assert raha.num_variables > 0
        assert raha.num_binaries > 0
        assert raha.num_constraints > 0
        assert raha.status == "optimal"
        assert raha.total_seconds >= raha.solve_seconds
        assert "degradation" in raha.summary()
        assert raha.normalized_degradation == pytest.approx(
            raha.degradation / diamond.average_lag_capacity()
        )

    def test_verify_can_be_disabled(self, diamond, diamond_paths):
        config = RahaConfig(demand_bounds={("a", "d"): (0.0, 30.0)},
                            max_failures=1, verify=False)
        raha = RahaAnalyzer(diamond, diamond_paths, config).analyze()
        assert not raha.verified

    def test_missing_paths_for_demand_rejected(self, diamond):
        from repro import ModelingError

        empty = PathSet()
        config = RahaConfig(fixed_demands={("a", "d"): 1.0})
        with pytest.raises(ModelingError):
            RahaAnalyzer(diamond, empty, config)

    def test_probability_threshold_without_probabilities_rejected(self):
        from repro import ModelingError

        bare = from_edges([("a", "b", 10)])
        paths = PathSet.k_shortest(bare, [("a", "b")], 1, 0)
        config = RahaConfig(fixed_demands={("a", "b"): 1.0},
                            probability_threshold=1e-3)
        with pytest.raises(ModelingError):
            RahaAnalyzer(bare, paths, config)


class TestForcedFailures:
    def test_threshold_forces_dead_links_down(self):
        """A link that is down with probability 0.95 must be failed in any
        scenario with probability >= 0.1 -- the mechanism behind Figure 2
        and the bench calibration (DESIGN.md)."""
        topo = from_edges([
            ("a", "b", 10), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
        ])
        topo = with_link_probabilities(topo, {
            ("a", "b"): 0.95, ("b", "d"): 1e-4,
            ("a", "c"): 1e-4, ("c", "d"): 1e-4,
        })
        paths = PathSet.k_shortest(topo, [("a", "d")], 2, 0)
        config = RahaConfig(fixed_demands={("a", "d"): 12.0},
                            probability_threshold=0.1)
        result = RahaAnalyzer(topo, paths, config).analyze()
        assert result.scenario.is_failed(("a", "b"), 0)
        # ...and nothing else is probable enough to add.
        assert result.scenario.num_failed_links == 1
        assert result.scenario_probability >= 0.1


class TestProbabilityNonMonotonicity:
    def test_lower_threshold_can_fail_fewer_links(self):
        """Section 9, "On probabilities": reducing T does not always
        yield scenarios with more failed links -- the adversary may trade
        several likely failures for one rarer, more damaging one."""
        # One big LAG (capacity 9, rare failure) and a 3-link LAG
        # (capacity 5, each link fairly flaky) on two disjoint routes.
        topo = from_edges([("a", "b", 9), ("a", "c", 5, 3), ("c", "b", 30)])
        topo = with_link_probabilities(topo, {
            ("a", "b"): 1e-5, ("a", "c"): 0.05, ("c", "b"): 1e-7,
        })
        paths = PathSet.k_shortest(topo, [("a", "b")], 2, 0)
        config_hi = RahaConfig(fixed_demands={("a", "b"): 14.0},
                               probability_threshold=1e-5)
        hi = RahaAnalyzer(topo, paths, config_hi).analyze()
        config_lo = RahaConfig(fixed_demands={("a", "b"): 14.0},
                               probability_threshold=1e-7)
        lo = RahaAnalyzer(topo, paths, config_lo).analyze()
        # At T = 1e-5 only the flaky bundle is affordable (3 links, -5).
        assert hi.scenario.num_failed_links == 3
        assert hi.degradation == pytest.approx(5.0, abs=1e-5)
        # At T = 1e-7 the rare big link (plus one flaky shave) does more
        # damage with fewer failed links.
        assert lo.scenario.num_failed_links < hi.scenario.num_failed_links
        assert lo.degradation > 9.0 - 1e-5
        assert lo.scenario.is_failed(("a", "b"), 0)
