"""Property tests: the MILP encodings agree with the plain simulator.

For random failure assignments pinned inside the model, the encoding's
derived quantities (variable LAG capacities, LAG/path down flags, backup
activation) must equal what :mod:`repro.failures.scenario` computes for
the same concrete scenario -- the two implementations are independent,
so agreement is strong evidence both are right.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FailureScenario, PathSet, RahaConfig
from repro.core.encodings import FailureEncoding
from repro.failures.scenario import active_paths, path_is_down
from repro.network.generators import small_ring
from repro.network.demand import gravity_demands, top_pairs
from repro.solver import Model
from repro.solver.expr import Var, quicksum


def build(seed):
    topology = small_ring(num_nodes=6, chords=2, seed=seed,
                          failure_probability=0.1)
    demands = gravity_demands(topology, scale=10, seed=seed)
    pairs = top_pairs(demands, 2)
    paths = PathSet.k_shortest(topology, pairs, num_primary=1, num_backup=2)
    return topology, pairs, paths


def pin_and_solve(topology, paths, failed_links):
    """Pin the link binaries to a concrete scenario and read the model."""
    config = RahaConfig(demand_bounds={p: (0.0, 1.0) for p in paths})
    model = Model("pin")
    encoding = FailureEncoding(model=model, topology=topology, paths=paths,
                               config=config)
    for key, u in encoding.link_down.items():
        if isinstance(u, Var):
            value = 1.0 if key in failed_links else 0.0
            model.add_constr(u.to_expr() == value)
    model.set_objective(quicksum(
        u for u in encoding.link_down.values() if isinstance(u, Var)
    ), sense="min")
    result = model.solve().require_ok()
    return encoding, result


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=25), data=st.data())
def test_encoding_matches_simulator(seed, data):
    topology, pairs, paths = build(seed)
    links = [(lag.key, i) for lag in topology.lags
             for i in range(lag.num_links)]
    chosen = data.draw(st.sets(st.sampled_from(links), max_size=5))
    scenario = FailureScenario(chosen)
    encoding, result = pin_and_solve(topology, paths, set(scenario.failed_links))

    # Variable LAG capacities == simulator residual capacities.
    residual = scenario.residual_capacities(topology)
    for lag in topology.lags:
        assert result.value(encoding.lag_capacity[lag.key]) == pytest.approx(
            residual[lag.key], abs=1e-6
        )

    # LAG-down flags == simulator down set.
    down = scenario.down_lags(topology)
    for lag in topology.lags:
        flag = encoding.lag_down[lag.key]
        value = result.value(flag) if isinstance(flag, Var) else flag
        assert round(value) == (1 if lag.key in down else 0)

    # Path-down flags and backup activation == simulator semantics.
    for pair in pairs:
        dp = paths[pair]
        allowed = set(active_paths(topology, dp, down))
        for j, path in enumerate(dp.paths):
            flag = encoding.path_down[(pair, j)]
            value = result.value(flag) if isinstance(flag, Var) else flag
            assert round(value) == (
                1 if path_is_down(topology, path, down) else 0
            )
            active = encoding.path_active[(pair, j)]
            value = (result.value(active) if isinstance(active, Var)
                     else active)
            if j >= dp.num_primary:
                assert round(value) == (1 if path in allowed else 0)
