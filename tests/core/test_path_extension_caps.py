"""Direct tests for Eq. 5's path-extension capacities (both semantics)."""

import pytest

from repro import RahaConfig
from repro.core.encodings import FailureEncoding, build_path_extension_caps
from repro.network.builder import from_edges
from repro.paths import PathSet
from repro.solver import Model
from repro.solver.expr import LinExpr, Var, quicksum


@pytest.fixture
def topo():
    return from_edges([
        ("a", "b", 10), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
    ], failure_probability=0.1)


@pytest.fixture
def paths(topo):
    return PathSet.k_shortest(topo, [("a", "d")], num_primary=1,
                              num_backup=1)


def build(topo, paths, kill_down_paths, demand=7.0, fail=()):
    config = RahaConfig(demand_bounds={("a", "d"): (0.0, 20.0)})
    model = Model("caps")
    encoding = FailureEncoding(model=model, topology=topo, paths=paths,
                               config=config)
    caps = build_path_extension_caps(
        model, encoding, {("a", "d"): demand}, {("a", "d"): 20.0},
        kill_down_paths=kill_down_paths,
    )
    for key, u in encoding.link_down.items():
        if isinstance(u, Var):
            model.add_constr(u.to_expr() == (1.0 if key in fail else 0.0))
    model.set_objective(quicksum(
        u for u in encoding.link_down.values() if isinstance(u, Var)
    ), sense="min")
    result = model.solve().require_ok()
    return caps, result


def cap_value(caps, result, pair, j):
    cap = caps[(pair, j)]
    if cap is None:
        return None
    if isinstance(cap, (int, float)):
        return float(cap)
    if isinstance(cap, (Var, LinExpr)):
        return result.value(cap)
    return result.value(cap)


class TestTotalFlowSemantics:
    def test_primary_has_no_cap(self, topo, paths):
        caps, result = build(topo, paths, kill_down_paths=False)
        assert caps[(("a", "d"), 0)] is None

    def test_backup_capped_at_zero_without_failures(self, topo, paths):
        caps, result = build(topo, paths, kill_down_paths=False)
        assert cap_value(caps, result, ("a", "d"), 1) == pytest.approx(0.0)

    def test_backup_gets_demand_after_primary_failure(self, topo, paths):
        primary = paths[("a", "d")].paths[0]
        first_lag = topo.lags_on_path(primary)[0]
        caps, result = build(topo, paths, kill_down_paths=False,
                             demand=7.0, fail={(first_lag.key, 0)})
        assert cap_value(caps, result, ("a", "d"), 1) == pytest.approx(7.0)


class TestMluSemantics:
    def test_primary_capped_when_down(self, topo, paths):
        primary = paths[("a", "d")].paths[0]
        lags = topo.lags_on_path(primary)
        fail = {(lag.key, 0) for lag in lags[:1]}
        caps, result = build(topo, paths, kill_down_paths=True,
                             demand=7.0, fail=fail)
        # MLU mode must kill the down primary through its extension cap.
        assert cap_value(caps, result, ("a", "d"), 0) == pytest.approx(0.0)

    def test_primary_open_when_up(self, topo, paths):
        caps, result = build(topo, paths, kill_down_paths=True, demand=7.0)
        value = cap_value(caps, result, ("a", "d"), 0)
        assert value is None or value == pytest.approx(7.0)

    def test_backup_must_be_active_and_up(self, topo, paths):
        dp = paths[("a", "d")]
        primary, backup = dp.paths
        both = {(lag.key, 0) for lag in topo.lags_on_path(primary)} | {
            (lag.key, 0) for lag in topo.lags_on_path(backup)
        }
        caps, result = build(topo, paths, kill_down_paths=True,
                             demand=7.0, fail=both)
        # Active (primary down) but itself down: cap stays zero.
        assert cap_value(caps, result, ("a", "d"), 1) == pytest.approx(0.0)
