"""Tests for the operator report and the command-line interface."""

import json

import pytest

from repro import PathSet, RahaAnalyzer, RahaConfig
from repro.cli import main
from repro.core.report import degradation_report
from repro.network import serialization as ser
from repro.network.builder import from_edges


@pytest.fixture
def topo():
    return from_edges([
        ("a", "b", 10), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
    ], failure_probability=0.05)


@pytest.fixture
def paths(topo):
    return PathSet.k_shortest(topo, [("a", "d")], num_primary=2,
                              num_backup=0)


@pytest.fixture
def result(topo, paths):
    config = RahaConfig(fixed_demands={("a", "d"): 12.0}, max_failures=1)
    return RahaAnalyzer(topo, paths, config).analyze()


class TestReport:
    def test_report_structure(self, topo, paths, result):
        text = degradation_report(topo, paths, result)
        assert "WAN degradation analysis" in text
        assert "failed links: 1" in text
        assert "most impacted demands" in text
        assert "a -> d" in text
        assert "independently verified: yes" in text

    def test_report_lists_down_lag(self, topo, paths, result):
        text = degradation_report(topo, paths, result)
        assert "DOWN" in text

    def test_report_no_impact_case(self, topo, paths):
        config = RahaConfig(fixed_demands={("a", "d"): 0.0}, max_failures=1)
        clean = RahaAnalyzer(topo, paths, config).analyze()
        text = degradation_report(topo, paths, clean)
        assert "no demand loses traffic" in text


class TestCli:
    @pytest.fixture
    def files(self, tmp_path, topo, paths):
        topo_path = str(tmp_path / "topo.json")
        paths_path = str(tmp_path / "paths.json")
        demands_path = str(tmp_path / "demands.json")
        ser.save_json(ser.topology_to_dict(topo), topo_path)
        ser.save_json(ser.paths_to_dict(paths), paths_path)
        ser.save_json(
            ser.demands_to_dict({("a", "d"): 12.0}), demands_path
        )
        return topo_path, paths_path, demands_path

    def test_paths_command(self, tmp_path, files, capsys):
        topo_path, _, _ = files
        out = str(tmp_path / "out_paths.json")
        code = main([
            "paths", "--topology", topo_path, "--pairs", "a~d,b~c",
            "--primary", "2", "--backup", "0", "--out", out,
        ])
        assert code == 0
        data = json.load(open(out))
        assert len(data["demands"]) == 2

    def test_analyze_fixed(self, tmp_path, files, capsys):
        topo_path, paths_path, demands_path = files
        report = str(tmp_path / "report.txt")
        out = str(tmp_path / "result.json")
        code = main([
            "analyze", "--topology", topo_path, "--paths", paths_path,
            "--demands", demands_path, "--max-failures", "1",
            "--report", report, "--out", out,
        ])
        assert code == 0
        assert "WAN degradation analysis" in open(report).read()
        payload = json.load(open(out))
        assert payload["kind"] == "degradation_result"
        assert payload["degradation"] > 0

    def test_analyze_tolerance_exit_code(self, files):
        topo_path, paths_path, demands_path = files
        code = main([
            "analyze", "--topology", topo_path, "--paths", paths_path,
            "--demands", demands_path, "--max-failures", "1",
            "--tolerance", "0.0",
        ])
        assert code == 2  # degradation exceeds tolerance -> alert exit

    def test_analyze_variable(self, files, capsys):
        topo_path, paths_path, demands_path = files
        code = main([
            "analyze", "--topology", topo_path, "--paths", paths_path,
            "--demands", demands_path, "--variable", "--slack", "20",
            "--max-failures", "1",
        ])
        assert code == 0
        assert "degradation" in capsys.readouterr().out

    def test_augment_command(self, tmp_path, files, capsys):
        topo_path, paths_path, demands_path = files
        out = str(tmp_path / "augmented.json")
        code = main([
            "augment", "--topology", topo_path, "--paths", paths_path,
            "--demands", demands_path, "--max-failures", "1",
            "--link-capacity", "10", "--reliable", "--out", out,
        ])
        assert code == 0
        augmented = ser.topology_from_dict(ser.load_json(out))
        assert augmented.num_links > 4  # links were added

    def test_fig2_command(self, tmp_path, files, capsys):
        topo_path, _, _ = files
        out = str(tmp_path / "fig2.json")
        code = main([
            "fig2", "--topology", topo_path,
            "--thresholds", "1e-3,1e-1", "--out", out,
        ])
        assert code == 0
        rows = json.load(open(out))
        assert len(rows) == 2
        assert all("max_failures" in row for row in rows)

    def test_graphml_input(self, tmp_path):
        graphml = tmp_path / "t.graphml"
        graphml.write_text(
            '<?xml version="1.0"?>'
            '<graphml xmlns="http://graphml.graphdrawing.org/xmlns">'
            '<graph id="g"><node id="0"/><node id="1"/>'
            '<edge source="0" target="1"/></graph></graphml>'
        )
        from repro.exceptions import TopologyError

        # GraphML loads, but fig2 needs probabilities the file lacks:
        # the CLI surfaces the domain error instead of crashing opaquely.
        with pytest.raises(TopologyError, match="failure probability"):
            main([
                "fig2", "--topology", str(graphml), "--thresholds", "0.5",
            ])


class TestCliErrors:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCliAvailability:
    def test_availability_command(self, tmp_path, topo, paths, capsys):
        import json as _json

        from repro.network import serialization as _ser

        topo_path = str(tmp_path / "t.json")
        paths_path = str(tmp_path / "p.json")
        demands_path = str(tmp_path / "d.json")
        _ser.save_json(_ser.topology_to_dict(topo), topo_path)
        _ser.save_json(_ser.paths_to_dict(paths), paths_path)
        _ser.save_json(_ser.demands_to_dict({("a", "d"): 12.0}),
                       demands_path)
        out = str(tmp_path / "avail.json")
        code = main([
            "availability", "--topology", topo_path, "--paths", paths_path,
            "--demands", demands_path, "--samples", "50", "--out", out,
        ])
        assert code == 0
        payload = _json.load(open(out))
        assert payload["samples"] == 50
        assert 0.0 <= payload["availability"] <= 1.0
        assert "availability" in capsys.readouterr().out


class TestModuleEntry:
    def test_python_dash_m_entrypoint(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0
        assert "analyze" in result.stdout
        assert "augment" in result.stdout


class TestCliContinents:
    def test_continents_command(self, tmp_path, capsys):
        import json as _json

        from repro.network import serialization as _ser
        from repro.network.builder import from_edges

        world = from_edges([
            ("af1", "af2", 10), ("af2", "af3", 10), ("af1", "af3", 10),
            ("eu1", "eu2", 10), ("eu2", "eu3", 10), ("eu1", "eu3", 10),
            ("af1", "eu1", 6), ("af3", "eu3", 6),
        ], failure_probability=0.02)
        topo_path = str(tmp_path / "world.json")
        demands_path = str(tmp_path / "d.json")
        assignment_path = str(tmp_path / "continents.json")
        _ser.save_json(_ser.topology_to_dict(world), topo_path)
        _ser.save_json(_ser.demands_to_dict({
            ("af1", "af2"): 12.0, ("eu1", "eu3"): 4.0,
        }), demands_path)
        with open(assignment_path, "w") as handle:
            _json.dump({
                "af1": "africa", "af2": "africa", "af3": "africa",
                "eu1": "europe", "eu2": "europe", "eu3": "europe",
            }, handle)

        code = main([
            "continents", "--topology", topo_path,
            "--demands", demands_path, "--assignment", assignment_path,
            "--primary", "1", "--backup", "1", "--threshold", "1e-2",
            "--time-limit", "30",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "africa:" in out
        assert "europe:" in out
        assert "backbone:" in out


class TestCliSolverStats:
    @pytest.fixture
    def files(self, tmp_path, topo, paths):
        topo_path = str(tmp_path / "topo.json")
        paths_path = str(tmp_path / "paths.json")
        demands_path = str(tmp_path / "demands.json")
        ser.save_json(ser.topology_to_dict(topo), topo_path)
        ser.save_json(ser.paths_to_dict(paths), paths_path)
        ser.save_json(
            ser.demands_to_dict({("a", "d"): 12.0}), demands_path
        )
        return topo_path, paths_path, demands_path

    def test_analyze_stats_prints_telemetry_block(self, files, capsys):
        topo_path, paths_path, demands_path = files
        code = main([
            "analyze", "--topology", topo_path, "--paths", paths_path,
            "--demands", demands_path, "--max-failures", "1", "--stats",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "solver stats:" in out
        assert "matrix:" in out
        assert "compile" in out
        assert "backend: milp" in out

    def test_analyze_without_stats_is_quiet(self, files, capsys):
        topo_path, paths_path, demands_path = files
        code = main([
            "analyze", "--topology", topo_path, "--paths", paths_path,
            "--demands", demands_path, "--max-failures", "1",
        ])
        assert code == 0
        assert "solver stats:" not in capsys.readouterr().out

    def test_result_json_carries_solver_stats(self, tmp_path, files):
        topo_path, paths_path, demands_path = files
        out = str(tmp_path / "result.json")
        code = main([
            "analyze", "--topology", topo_path, "--paths", paths_path,
            "--demands", demands_path, "--max-failures", "1", "--out", out,
        ])
        assert code == 0
        payload = json.load(open(out))
        stats = payload["solver_stats"]
        assert stats["backend"] == "milp"
        assert stats["rows"] > 0
        assert stats["solve_seconds"] >= 0.0

    def test_threshold_sweep_prints_telemetry_line(self, tmp_path, files,
                                                   capsys):
        topo_path, paths_path, demands_path = files
        code = main([
            "analyze", "--topology", topo_path, "--paths", paths_path,
            "--demands", demands_path, "--max-failures", "1",
            "--threshold", "1e-1,1e-3", "--jobs", "1",
            "--workdir", str(tmp_path / "wd"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry: 2 jobs reported stats" in out
        assert "build" in out and "solve" in out
