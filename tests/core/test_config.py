"""Tests for RahaConfig validation."""

import pytest

from repro import ModelingError, RahaConfig


class TestConfigValidation:
    def test_needs_exactly_one_demand_mode(self):
        with pytest.raises(ModelingError):
            RahaConfig()
        with pytest.raises(ModelingError):
            RahaConfig(fixed_demands={("a", "b"): 1.0},
                       demand_bounds={("a", "b"): (0, 1)})

    def test_fixed_mode_ok(self):
        config = RahaConfig(fixed_demands={("a", "b"): 1.0})
        assert config.pairs == [("a", "b")]
        assert config.demand_upper(("a", "b")) == 1.0

    def test_bounds_mode_ok(self):
        config = RahaConfig(demand_bounds={("a", "b"): (1.0, 3.0)})
        assert config.demand_upper(("a", "b")) == 3.0

    def test_bad_objective_rejected(self):
        with pytest.raises(ModelingError):
            RahaConfig(fixed_demands={}, objective="throughput")

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ModelingError):
            RahaConfig(demand_bounds={("a", "b"): (3.0, 1.0)})

    def test_negative_lower_bound_rejected(self):
        with pytest.raises(ModelingError):
            RahaConfig(demand_bounds={("a", "b"): (-1.0, 1.0)})

    def test_infinite_upper_bound_rejected(self):
        with pytest.raises(ModelingError):
            RahaConfig(demand_bounds={("a", "b"): (0.0, float("inf"))})

    def test_negative_fixed_demand_rejected(self):
        with pytest.raises(ModelingError):
            RahaConfig(fixed_demands={("a", "b"): -1.0})

    def test_bad_threshold_rejected(self):
        with pytest.raises(ModelingError):
            RahaConfig(fixed_demands={}, probability_threshold=0.0)
        with pytest.raises(ModelingError):
            RahaConfig(fixed_demands={}, probability_threshold=1.0)

    def test_negative_max_failures_rejected(self):
        with pytest.raises(ModelingError):
            RahaConfig(fixed_demands={}, max_failures=-1)

    def test_naive_failover_needs_joint_mode(self):
        with pytest.raises(ModelingError):
            RahaConfig(fixed_demands={("a", "b"): 1.0}, naive_failover=True)
        RahaConfig(demand_bounds={("a", "b"): (0, 1)}, naive_failover=True)

    def test_mlu_forces_connected_enforced(self):
        config = RahaConfig(fixed_demands={("a", "b"): 1.0}, objective="mlu")
        assert config.connected_enforced

    def test_degenerate_bounds_allowed(self):
        """Clustering fixes demands via (v, v) bounds; must be legal."""
        config = RahaConfig(demand_bounds={("a", "b"): (2.0, 2.0)})
        assert config.demand_upper(("a", "b")) == 2.0
