"""Operator-defined outer constraints (Section 5.1's extension point)."""

import pytest

from repro import PathSet, RahaAnalyzer, RahaConfig
from repro.network.builder import from_edges
from repro.solver.expr import quicksum


@pytest.fixture
def diamond():
    return from_edges([
        ("a", "b", 10), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
    ], failure_probability=0.05)


@pytest.fixture
def paths(diamond):
    return PathSet.k_shortest(diamond, [("a", "d")], num_primary=2,
                              num_backup=0)


class TestConstraintBuilders:
    def test_protect_a_specific_link(self, diamond, paths):
        """An operator can pin a link up (e.g. it was just repaired)."""

        def protect_ab(model, encoding, demand_exprs):
            u = encoding.link_down[(("a", "b"), 0)]
            model.add_constr(u.to_expr() == 0)

        config = RahaConfig(
            demand_bounds={("a", "d"): (0.0, 30.0)}, max_failures=1,
            constraint_builders=[protect_ab],
        )
        result = RahaAnalyzer(diamond, paths, config).analyze()
        # With the 10-route's first LAG protected, the adversary must
        # attack elsewhere: the best remaining single kill is worth less.
        assert not result.scenario.is_failed(("a", "b"), 0)

    def test_mutual_exclusion_of_failures(self, diamond, paths):
        """Forbid two specific links from failing together."""

        def exclusive(model, encoding, demand_exprs):
            u1 = encoding.link_down[(("a", "b"), 0)]
            u2 = encoding.link_down[(("a", "c"), 0)]
            model.add_constr(u1 + u2 <= 1)

        config = RahaConfig(
            demand_bounds={("a", "d"): (0.0, 30.0)}, max_failures=4,
            constraint_builders=[exclusive],
        )
        result = RahaAnalyzer(diamond, paths, config).analyze()
        assert not (
            result.scenario.is_failed(("a", "b"), 0)
            and result.scenario.is_failed(("a", "c"), 0)
        )
        # The adversary routes around the exclusion (b-d and c-d are
        # still free game), so the constraint shapes the scenario, not
        # necessarily the damage.
        assert result.degradation >= 0

    def test_demand_coupling_constraint(self, diamond):
        """Operators can couple demands (e.g. a total traffic budget)."""
        paths = PathSet.k_shortest(
            diamond, [("a", "d"), ("b", "c")], num_primary=2, num_backup=0
        )

        def budget(model, encoding, demand_exprs):
            model.add_constr(
                quicksum(list(demand_exprs.values())) <= 12.0
            )

        config = RahaConfig(
            demand_bounds={("a", "d"): (0.0, 30.0), ("b", "c"): (0.0, 30.0)},
            max_failures=1,
            constraint_builders=[budget],
        )
        result = RahaAnalyzer(diamond, paths, config).analyze()
        assert result.demands.total <= 12.0 + 1e-6

    def test_budget_binds_the_adversary(self, diamond, paths):
        """A tight budget reduces what the adversary can show."""
        def tight(model, encoding, demand_exprs):
            model.add_constr(
                quicksum(list(demand_exprs.values())) <= 4.0
            )

        free = RahaAnalyzer(
            diamond, paths,
            RahaConfig(demand_bounds={("a", "d"): (0.0, 30.0)},
                       max_failures=1),
        ).analyze()
        constrained = RahaAnalyzer(
            diamond, paths,
            RahaConfig(demand_bounds={("a", "d"): (0.0, 30.0)},
                       max_failures=1, constraint_builders=[tight]),
        ).analyze()
        assert constrained.degradation <= free.degradation + 1e-6
        assert constrained.degradation <= 4.0 + 1e-6
