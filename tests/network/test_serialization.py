"""Round-trip tests for the JSON serialization schema."""

import pytest

from repro import DemandMatrix, FailureScenario, Srlg
from repro.exceptions import TopologyError
from repro.network import serialization as ser
from repro.network.builder import from_edges
from repro.network.srlg import attach_srlg
from repro.network.topology import Link
from repro.paths import PathSet


@pytest.fixture
def topo():
    t = from_edges([
        ("a", "b", 10, 2), ("b", "c", 20), ("a", "c", 30),
    ], failure_probability=0.05)
    t.require_lag("b", "c").links = [
        Link(capacity=20, failure_probability=None, can_fail=False)
    ]
    srlg = Srlg(name="conduit")
    srlg.add("a", "b", 0)
    srlg.add("a", "c", 0)
    attach_srlg(t, srlg)
    return t


class TestTopologyRoundTrip:
    def test_full_round_trip(self, topo):
        data = ser.topology_to_dict(topo)
        back = ser.topology_from_dict(data)
        assert back.nodes == topo.nodes
        assert [lag.key for lag in back.lags] == [lag.key for lag in topo.lags]
        for a, b in zip(back.lags, topo.lags):
            assert a.capacity == pytest.approx(b.capacity)
            assert [l.failure_probability for l in a.links] == [
                l.failure_probability for l in b.links
            ]
            assert [l.can_fail for l in a.links] == [
                l.can_fail for l in b.links
            ]
        assert len(back.srlgs) == 1
        assert back.srlgs[0].name == "conduit"

    def test_wrong_kind_rejected(self):
        with pytest.raises(TopologyError):
            ser.topology_from_dict({"kind": "demands", "nodes": []})

    def test_file_round_trip(self, topo, tmp_path):
        path = str(tmp_path / "topo.json")
        ser.save_json(ser.topology_to_dict(topo), path)
        back = ser.topology_from_dict(ser.load_json(path))
        assert back.num_lags == topo.num_lags


class TestScenarioRoundTrip:
    def test_round_trip(self):
        scenario = FailureScenario([(("a", "b"), 0), (("b", "c"), 1)])
        back = ser.scenario_from_dict(ser.scenario_to_dict(scenario))
        assert back == scenario

    def test_empty_scenario(self):
        back = ser.scenario_from_dict(
            ser.scenario_to_dict(FailureScenario())
        )
        assert back.num_failed_links == 0


class TestDemandsRoundTrip:
    def test_round_trip(self):
        demands = DemandMatrix({("a", "b"): 1.5, ("b", "a"): 2.5})
        back = ser.demands_from_dict(ser.demands_to_dict(demands))
        assert back == demands


class TestPathsRoundTrip:
    def test_round_trip(self, topo):
        paths = PathSet.k_shortest(topo, [("a", "c"), ("b", "a")],
                                   num_primary=1, num_backup=1)
        back = ser.paths_from_dict(ser.paths_to_dict(paths))
        assert set(back) == set(paths)
        for pair in paths:
            assert back[pair].paths == paths[pair].paths
            assert back[pair].num_primary == paths[pair].num_primary


class TestResultSerialization:
    def test_result_to_dict(self, topo):
        from repro import PathSet, RahaAnalyzer, RahaConfig

        paths = PathSet.k_shortest(topo, [("a", "c")], 2, 0)
        result = RahaAnalyzer(
            topo, paths,
            RahaConfig(fixed_demands={("a", "c"): 10.0}, max_failures=1),
        ).analyze()
        data = ser.result_to_dict(result)
        assert data["kind"] == "degradation_result"
        assert data["degradation"] == pytest.approx(result.degradation)
        assert data["scenario"]["kind"] == "scenario"
        restored = ser.scenario_from_dict(data["scenario"])
        assert restored == result.scenario
