"""Tests for synthetic generators and the embedded zoo topologies."""

import pytest

from repro.exceptions import TopologyError
from repro.network.generators import (
    assign_zoo_probabilities,
    geographic_backbone,
    production_wan,
    sample_link_probability,
    small_ring,
)
from repro.network.zoo import b4, cogentco_like, uninett2010_like


class TestProductionWan:
    def test_default_scale_matches_paper(self):
        topo = production_wan()
        assert topo.num_nodes == 72  # paper: ~70 nodes
        assert 250 <= topo.num_lags <= 400  # paper: ~270-334
        assert topo.num_links >= topo.num_lags
        assert topo.is_connected()
        assert topo.has_probabilities()

    def test_small_instance(self):
        topo = production_wan(num_regions=2, nodes_per_region=4, seed=1)
        assert topo.num_nodes == 8
        assert topo.is_connected()

    def test_deterministic(self):
        a = production_wan(num_regions=2, nodes_per_region=4, seed=7)
        b = production_wan(num_regions=2, nodes_per_region=4, seed=7)
        assert a.num_lags == b.num_lags
        assert [lag.key for lag in a.lags] == [lag.key for lag in b.lags]
        assert [l.failure_probability for lag in a.lags for l in lag.links] == [
            l.failure_probability for lag in b.lags for l in lag.links
        ]

    def test_bad_shape_rejected(self):
        with pytest.raises(TopologyError):
            production_wan(num_regions=0)
        with pytest.raises(TopologyError):
            production_wan(nodes_per_region=1)

    def test_probability_mixture_has_dead_tail(self):
        """The Fig. 2 envelope requires some links with very high pi."""
        import numpy as np

        rng = np.random.default_rng(0)
        draws = [sample_link_probability(rng) for _ in range(3000)]
        assert any(p > 0.9 for p in draws)
        assert any(p < 1e-3 for p in draws)
        assert all(0 < p < 1 for p in draws)
        # The solid majority dominates.
        assert sum(1 for p in draws if p < 0.05) > 0.8 * len(draws)


class TestGeographicBackbone:
    def test_exact_counts(self):
        topo = geographic_backbone(30, 45, seed=3)
        assert topo.num_nodes == 30
        assert topo.num_lags == 45
        assert topo.is_connected()

    def test_tree_is_minimum_edge_count(self):
        topo = geographic_backbone(10, 9, seed=0)
        assert topo.num_lags == 9
        assert topo.is_connected()

    def test_too_few_edges_rejected(self):
        with pytest.raises(TopologyError):
            geographic_backbone(10, 8)

    def test_too_many_edges_rejected(self):
        with pytest.raises(TopologyError):
            geographic_backbone(4, 7)

    def test_deterministic(self):
        a = geographic_backbone(20, 30, seed=5)
        b = geographic_backbone(20, 30, seed=5)
        assert [lag.key for lag in a.lags] == [lag.key for lag in b.lags]


class TestZoo:
    def test_b4_shape(self):
        topo = b4()
        assert topo.num_nodes == 12
        assert topo.num_lags == 19
        assert topo.is_connected()
        assert topo.average_lag_capacity() == pytest.approx(5000.0)
        assert topo.has_probabilities()

    def test_b4_without_probabilities(self):
        topo = b4(with_probabilities=False)
        assert not topo.has_probabilities()

    def test_uninett_shape(self):
        topo = uninett2010_like(with_probabilities=False)
        assert topo.num_nodes == 74
        assert topo.num_lags == 101  # 202 directed edges in the paper
        assert topo.is_connected()
        assert topo.average_lag_capacity() == pytest.approx(1000.0)

    def test_cogentco_shape(self):
        topo = cogentco_like(with_probabilities=False)
        assert topo.num_nodes == 197
        assert topo.num_lags == 243  # 486 directed edges in the paper
        assert topo.is_connected()

    def test_assign_zoo_probabilities_preserves_capacity(self):
        bare = b4(with_probabilities=False)
        probed = assign_zoo_probabilities(bare, seed=2)
        assert probed.has_probabilities()
        assert probed.average_lag_capacity() == pytest.approx(
            bare.average_lag_capacity()
        )
        assert not bare.has_probabilities()  # input untouched


class TestSmallRing:
    def test_ring_shape(self):
        topo = small_ring(num_nodes=6, chords=2)
        assert topo.num_nodes == 6
        assert topo.num_lags == 8
        assert topo.is_connected()
        assert topo.has_probabilities()


class TestAbilene:
    def test_shape(self):
        from repro.network.zoo import abilene

        topo = abilene()
        assert topo.num_nodes == 11
        assert topo.num_lags == 14
        assert topo.is_connected()
        assert topo.has_probabilities()
        assert topo.average_lag_capacity() == pytest.approx(10.0)

    def test_known_adjacencies(self):
        from repro.network.zoo import abilene

        topo = abilene(with_probabilities=False)
        assert topo.lag_between("seattle", "sunnyvale") is not None
        assert topo.lag_between("newyork", "washington") is not None
        assert topo.lag_between("seattle", "newyork") is None


class TestWaxman:
    def test_connected_and_sized(self):
        from repro.network.generators import waxman

        topo = waxman(num_nodes=25, seed=4, failure_probability=0.01)
        assert topo.num_nodes == 25
        assert topo.is_connected()
        assert topo.has_probabilities()

    def test_deterministic(self):
        from repro.network.generators import waxman

        a = waxman(num_nodes=15, seed=9)
        b = waxman(num_nodes=15, seed=9)
        assert [lag.key for lag in a.lags] == [lag.key for lag in b.lags]

    def test_density_grows_with_alpha(self):
        from repro.network.generators import waxman

        sparse = waxman(num_nodes=30, alpha=0.1, seed=2)
        dense = waxman(num_nodes=30, alpha=0.9, seed=2)
        assert dense.num_lags > sparse.num_lags

    def test_bad_parameters_rejected(self):
        from repro.network.generators import waxman

        with pytest.raises(TopologyError):
            waxman(num_nodes=1)
        with pytest.raises(TopologyError):
            waxman(alpha=0.0)
