"""Extra coverage for demand matrices and envelope helpers."""



from repro import DemandMatrix
from repro.network.demand import all_pairs, demand_envelope
from repro.network.builder import line


class TestDemandMatrixExtras:
    def test_pairs_property_preserves_order(self):
        m = DemandMatrix({("b", "a"): 1.0, ("a", "b"): 2.0})
        assert m.pairs == [("b", "a"), ("a", "b")]

    def test_scaled_zero(self):
        m = DemandMatrix({("a", "b"): 5.0})
        assert m.scaled(0.0)[("a", "b")] == 0.0

    def test_capped_keeps_keys(self):
        m = DemandMatrix({("a", "b"): 5.0, ("b", "a"): 1.0})
        capped = m.capped(2.0)
        assert set(capped) == set(m)

    def test_all_pairs_excludes_self(self):
        topo = line(3)
        pairs = all_pairs(topo)
        assert all(s != d for s, d in pairs)
        assert len(pairs) == 6

    def test_envelope_floor(self):
        env = demand_envelope({("a", "b"): 10.0}, slack=0, floor=2.0)
        assert env[("a", "b")] == (2.0, 10.0)
