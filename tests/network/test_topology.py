"""Unit tests for the topology data model."""

import pytest

from repro.exceptions import TopologyError
from repro.network import Link, Topology
from repro.network.builder import from_edges, line


@pytest.fixture
def triangle():
    topo = Topology(name="tri")
    topo.add_nodes(["a", "b", "c"])
    topo.add_lag("a", "b", capacity=10, num_links=2, failure_probability=0.01)
    topo.add_lag("b", "c", capacity=20)
    topo.add_lag("a", "c", capacity=30)
    return topo


class TestLink:
    def test_negative_capacity_rejected(self):
        with pytest.raises(TopologyError):
            Link(capacity=-1)

    def test_probability_bounds(self):
        with pytest.raises(TopologyError):
            Link(capacity=1, failure_probability=0.0)
        with pytest.raises(TopologyError):
            Link(capacity=1, failure_probability=1.0)
        Link(capacity=1, failure_probability=0.5)  # ok

    def test_link_is_immutable(self):
        link = Link(capacity=1)
        with pytest.raises(AttributeError):
            link.capacity = 2


class TestLag:
    def test_capacity_sums_links(self, triangle):
        lag = triangle.require_lag("a", "b")
        assert lag.capacity == pytest.approx(10)
        assert lag.num_links == 2
        assert lag.links[0].capacity == pytest.approx(5)

    def test_key_is_canonical(self, triangle):
        assert triangle.require_lag("b", "a").key == ("a", "b")

    def test_other_endpoint(self, triangle):
        lag = triangle.require_lag("a", "b")
        assert lag.other("a") == "b"
        assert lag.other("b") == "a"
        with pytest.raises(TopologyError):
            lag.other("c")

    def test_has_probabilities(self, triangle):
        assert triangle.require_lag("a", "b").has_probabilities
        assert not triangle.require_lag("b", "c").has_probabilities


class TestTopologyConstruction:
    def test_duplicate_node_rejected(self, triangle):
        with pytest.raises(TopologyError):
            triangle.add_node("a")

    def test_empty_node_name_rejected(self):
        with pytest.raises(TopologyError):
            Topology().add_node("")

    def test_unknown_endpoint_rejected(self, triangle):
        with pytest.raises(TopologyError):
            triangle.add_lag("a", "zzz", capacity=1)

    def test_self_loop_rejected(self, triangle):
        with pytest.raises(TopologyError):
            triangle.add_lag("a", "a", capacity=1)

    def test_duplicate_lag_rejected(self, triangle):
        with pytest.raises(TopologyError):
            triangle.add_lag("b", "a", capacity=1)

    def test_explicit_links(self):
        topo = Topology()
        topo.add_nodes(["x", "y"])
        lag = topo.add_lag("x", "y", link_capacities=[1, 2, 3],
                           link_probabilities=[0.1, 0.2, 0.3])
        assert lag.capacity == pytest.approx(6)
        assert [l.failure_probability for l in lag.links] == [0.1, 0.2, 0.3]

    def test_mismatched_probability_length_rejected(self):
        topo = Topology()
        topo.add_nodes(["x", "y"])
        with pytest.raises(TopologyError):
            topo.add_lag("x", "y", link_capacities=[1, 2],
                         link_probabilities=[0.1])

    def test_both_capacity_forms_rejected(self):
        topo = Topology()
        topo.add_nodes(["x", "y"])
        with pytest.raises(TopologyError):
            topo.add_lag("x", "y", link_capacities=[1], capacity=2)

    def test_neither_capacity_form_rejected(self):
        topo = Topology()
        topo.add_nodes(["x", "y"])
        with pytest.raises(TopologyError):
            topo.add_lag("x", "y")

    def test_zero_links_rejected(self):
        topo = Topology()
        topo.add_nodes(["x", "y"])
        with pytest.raises(TopologyError):
            topo.add_lag("x", "y", capacity=5, num_links=0)


class TestTopologyQueries:
    def test_counts(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_lags == 3
        assert triangle.num_links == 4  # 2 + 1 + 1

    def test_neighbors(self, triangle):
        assert sorted(triangle.neighbors("a")) == ["b", "c"]

    def test_incident_unknown_node(self, triangle):
        with pytest.raises(TopologyError):
            triangle.incident_lags("zzz")

    def test_lag_between_absent(self, triangle):
        topo = line(3)
        assert topo.lag_between("n0", "n2") is None
        with pytest.raises(TopologyError):
            topo.require_lag("n0", "n2")

    def test_average_lag_capacity(self, triangle):
        assert triangle.average_lag_capacity() == pytest.approx(20.0)

    def test_average_capacity_empty_rejected(self):
        with pytest.raises(TopologyError):
            Topology().average_lag_capacity()

    def test_path_validity(self, triangle):
        assert triangle.path_is_valid(("a", "b", "c"))
        assert not triangle.path_is_valid(("a",))
        assert not triangle.path_is_valid(("a", "b", "a"))  # repeated node
        assert triangle.path_is_valid(("a", "c"))

    def test_lags_on_path(self, triangle):
        lags = triangle.lags_on_path(("a", "b", "c"))
        assert [lag.key for lag in lags] == [("a", "b"), ("b", "c")]

    def test_is_connected(self, triangle):
        assert triangle.is_connected()
        topo = Topology()
        topo.add_nodes(["a", "b", "c"])
        topo.add_lag("a", "b", capacity=1)
        assert not topo.is_connected()
        assert not Topology().is_connected()

    def test_to_networkx(self, triangle):
        graph = triangle.to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.edges[("a", "b")]["capacity"] == pytest.approx(10)


class TestTopologyDerivations:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.add_node("d")
        clone.add_lag("a", "d", capacity=5)
        assert triangle.num_nodes == 3
        assert clone.num_lags == 4
        # Probabilities preserved.
        assert clone.require_lag("a", "b").has_probabilities

    def test_with_added_links_existing_lag(self, triangle):
        before = triangle.require_lag("a", "b").capacity
        augmented = triangle.with_added_links(
            {("a", "b"): [Link(capacity=7)]}
        )
        assert augmented.require_lag("a", "b").capacity == pytest.approx(before + 7)
        assert triangle.require_lag("a", "b").capacity == pytest.approx(before)

    def test_with_added_links_new_lag(self):
        topo = line(3)
        augmented = topo.with_added_links({("n0", "n2"): [Link(capacity=4)]})
        assert augmented.require_lag("n0", "n2").capacity == pytest.approx(4)
        assert topo.lag_between("n0", "n2") is None

    def test_with_added_links_empty_entries_ignored(self, triangle):
        augmented = triangle.with_added_links({("a", "b"): []})
        assert augmented.num_links == triangle.num_links


class TestBuilder:
    def test_from_edges_with_mixed_forms(self):
        topo = from_edges([("a", "b", 10), ("b", "c"), ("c", "d", 7, 2)],
                          default_capacity=5)
        assert topo.require_lag("a", "b").capacity == pytest.approx(10)
        assert topo.require_lag("b", "c").capacity == pytest.approx(5)
        assert topo.require_lag("c", "d").num_links == 2

    def test_line_shape(self):
        topo = line(4)
        assert topo.num_nodes == 4
        assert topo.num_lags == 3
        assert topo.is_connected()

    def test_with_link_probabilities(self):
        from repro.network.builder import with_link_probabilities

        topo = line(3)
        out = with_link_probabilities(topo, {("n0", "n1"): 0.2})
        assert out.require_lag("n0", "n1").links[0].failure_probability == 0.2
        assert out.require_lag("n1", "n2").links[0].failure_probability is None
