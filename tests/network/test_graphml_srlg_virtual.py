"""Tests for the GraphML reader, SRLGs, and gateway virtual nodes."""

import textwrap

import pytest

from repro.exceptions import TopologyError
from repro.network import Srlg
from repro.network.builder import from_edges
from repro.network.graphml import read_graphml
from repro.network.srlg import attach_srlg
from repro.network.virtual import add_gateway, extend_paths_through_gateways
from repro.paths import PathSet

SAMPLE_GRAPHML = textwrap.dedent("""\
    <?xml version="1.0" encoding="utf-8"?>
    <graphml xmlns="http://graphml.graphdrawing.org/xmlns">
      <key attr.name="label" attr.type="string" for="node" id="d0"/>
      <key attr.name="LinkSpeedRaw" attr.type="double" for="edge" id="d1"/>
      <graph edgedefault="undirected" id="sample">
        <node id="0"><data key="d0">Oslo</data></node>
        <node id="1"><data key="d0">Bergen</data></node>
        <node id="2"><data key="d0">Trondheim</data></node>
        <node id="3"/>
        <edge source="0" target="1"><data key="d1">10000000000</data></edge>
        <edge source="0" target="1"><data key="d1">10000000000</data></edge>
        <edge source="1" target="2"/>
        <edge source="2" target="3"/>
        <edge source="3" target="3"/>
      </graph>
    </graphml>
""")


class TestGraphml:
    @pytest.fixture
    def sample_path(self, tmp_path):
        path = tmp_path / "sample.graphml"
        path.write_text(SAMPLE_GRAPHML)
        return str(path)

    def test_nodes_and_labels(self, sample_path):
        topo = read_graphml(sample_path)
        assert set(topo.nodes) == {"Oslo", "Bergen", "Trondheim", "3"}

    def test_parallel_edges_become_lag_links(self, sample_path):
        topo = read_graphml(sample_path)
        lag = topo.require_lag("Oslo", "Bergen")
        assert lag.num_links == 2
        assert lag.capacity == pytest.approx(20.0)  # 2 x 10 Gbps

    def test_default_capacity_applies(self, sample_path):
        topo = read_graphml(sample_path, default_capacity=333.0)
        assert topo.require_lag("Bergen", "Trondheim").capacity == 333.0

    def test_self_loop_skipped(self, sample_path):
        topo = read_graphml(sample_path)
        assert topo.num_lags == 3

    def test_invalid_xml_rejected(self, tmp_path):
        bad = tmp_path / "bad.graphml"
        bad.write_text("<graphml><graph>")
        with pytest.raises(TopologyError):
            read_graphml(str(bad))

    def test_missing_graph_rejected(self, tmp_path):
        bad = tmp_path / "no_graph.graphml"
        bad.write_text('<graphml xmlns="http://graphml.graphdrawing.org/xmlns"/>')
        with pytest.raises(TopologyError):
            read_graphml(str(bad))

    def test_duplicate_labels_disambiguated(self, tmp_path):
        doc = SAMPLE_GRAPHML.replace("Bergen", "Oslo")
        path = tmp_path / "dup.graphml"
        path.write_text(doc)
        topo = read_graphml(str(path))
        assert topo.num_nodes == 4  # second Oslo got a suffixed name


class TestSrlg:
    @pytest.fixture
    def topo(self):
        return from_edges([("a", "b", 10, 2), ("b", "c", 10), ("a", "c", 10)])

    def test_attach_valid(self, topo):
        srlg = Srlg(name="conduit-1")
        srlg.add("a", "b", 0)
        srlg.add("b", "c", 0)
        attach_srlg(topo, srlg)
        assert topo.srlgs == [srlg]

    def test_single_member_rejected(self, topo):
        srlg = Srlg(name="solo", members=[(("a", "b"), 0)])
        with pytest.raises(TopologyError):
            attach_srlg(topo, srlg)

    def test_unknown_lag_rejected(self, topo):
        srlg = Srlg(name="x", members=[(("a", "z"), 0), (("a", "b"), 0)])
        with pytest.raises(TopologyError):
            attach_srlg(topo, srlg)

    def test_bad_link_index_rejected(self, topo):
        srlg = Srlg(name="x", members=[(("a", "b"), 5), (("b", "c"), 0)])
        with pytest.raises(TopologyError):
            attach_srlg(topo, srlg)

    def test_duplicate_member_rejected(self, topo):
        srlg = Srlg(name="x", members=[(("a", "b"), 0), (("a", "b"), 0)])
        with pytest.raises(TopologyError):
            attach_srlg(topo, srlg)

    def test_bad_probability_rejected(self, topo):
        srlg = Srlg(name="x", members=[(("a", "b"), 0), (("b", "c"), 0)],
                    failure_probability=1.5)
        with pytest.raises(TopologyError):
            attach_srlg(topo, srlg)


class TestVirtualGateway:
    @pytest.fixture
    def topo(self):
        # Two gateways g1, g2 both reaching d.
        return from_edges([("g1", "m", 10), ("g2", "m", 10), ("m", "d", 10)])

    def test_add_gateway_adds_lags(self, topo):
        out = add_gateway(topo, "GW", {"g1": 50.0, "g2": 70.0})
        assert out.has_node("GW")
        assert out.require_lag("GW", "g1").capacity == pytest.approx(50.0)
        assert out.require_lag("GW", "g2").capacity == pytest.approx(70.0)
        assert not topo.has_node("GW")  # input untouched

    def test_existing_name_rejected(self, topo):
        with pytest.raises(TopologyError):
            add_gateway(topo, "m", {"g1": 1.0})

    def test_unknown_gateway_rejected(self, topo):
        with pytest.raises(TopologyError):
            add_gateway(topo, "GW", {"zzz": 1.0})

    def test_empty_gateways_rejected(self, topo):
        with pytest.raises(TopologyError):
            add_gateway(topo, "GW", {})

    def test_extend_paths_inherits_gateway_paths(self, topo):
        out = add_gateway(topo, "GW", {"g1": 50.0, "g2": 70.0})
        base = PathSet.k_shortest(out, [("g1", "d"), ("g2", "d")],
                                  num_primary=1, num_backup=0)
        extended = extend_paths_through_gateways(
            base, out, "GW", gateways=["g1", "g2"]
        )
        virtual = extended[("GW", "d")]
        assert len(virtual.paths) == 2
        assert all(p[0] == "GW" for p in virtual.paths)
        assert all(p[1] in ("g1", "g2") for p in virtual.paths)

    def test_extend_paths_destination_side(self, topo):
        out = add_gateway(topo, "GW", {"g1": 50.0})
        base = PathSet.k_shortest(out, [("d", "g1")], num_primary=1,
                                  num_backup=0)
        extended = extend_paths_through_gateways(base, out, "GW", ["g1"])
        virtual = extended[("d", "GW")]
        assert virtual.paths[0][-1] == "GW"
