"""Unit tests for demand matrices, gravity model, and envelopes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TopologyError
from repro.network import (
    DemandMatrix,
    demand_envelope,
    gravity_demands,
    synthesize_monthly_demands,
)
from repro.network.builder import from_edges
from repro.network.demand import all_pairs, top_pairs


@pytest.fixture
def square():
    return from_edges(
        [("a", "b", 10), ("b", "c", 10), ("c", "d", 10), ("d", "a", 10)]
    )


class TestDemandMatrix:
    def test_total(self):
        m = DemandMatrix({("a", "b"): 3.0, ("b", "a"): 4.0})
        assert m.total == pytest.approx(7.0)

    def test_scaled(self):
        m = DemandMatrix({("a", "b"): 3.0})
        assert m.scaled(2.0)[("a", "b")] == pytest.approx(6.0)
        with pytest.raises(ValueError):
            m.scaled(-1)

    def test_capped(self):
        m = DemandMatrix({("a", "b"): 3.0, ("b", "c"): 10.0})
        capped = m.capped(5.0)
        assert capped[("a", "b")] == 3.0
        assert capped[("b", "c")] == 5.0

    def test_restricted_to(self):
        m = DemandMatrix({("a", "b"): 1.0, ("b", "c"): 2.0})
        r = m.restricted_to([("b", "c")])
        assert list(r) == [("b", "c")]

    def test_validate_unknown_node(self, square):
        m = DemandMatrix({("a", "zzz"): 1.0})
        with pytest.raises(TopologyError):
            m.validate_for(square)

    def test_validate_self_demand(self, square):
        with pytest.raises(TopologyError):
            DemandMatrix({("a", "a"): 1.0}).validate_for(square)

    def test_validate_negative(self, square):
        with pytest.raises(TopologyError):
            DemandMatrix({("a", "b"): -1.0}).validate_for(square)


class TestGravity:
    def test_all_pairs_count(self, square):
        assert len(all_pairs(square)) == 12

    def test_gravity_covers_all_pairs(self, square):
        demands = gravity_demands(square, scale=100)
        assert len(demands) == 12
        assert all(v > 0 for v in demands.values())

    def test_gravity_deterministic(self, square):
        a = gravity_demands(square, seed=3)
        b = gravity_demands(square, seed=3)
        assert a == b

    def test_gravity_seed_changes_values(self, square):
        a = gravity_demands(square, seed=1)
        b = gravity_demands(square, seed=2)
        assert a != b

    def test_gravity_scales_linearly(self, square):
        a = gravity_demands(square, scale=100, seed=0)
        b = gravity_demands(square, scale=200, seed=0)
        for pair in a:
            assert b[pair] == pytest.approx(2 * a[pair])

    def test_gravity_restricted_pairs(self, square):
        demands = gravity_demands(square, pairs=[("a", "c")])
        assert list(demands) == [("a", "c")]

    def test_gravity_prefers_high_capacity_nodes(self):
        topo = from_edges([("hub", "x", 100), ("hub", "y", 100), ("x", "y", 1)])
        demands = gravity_demands(topo, seed=0)
        hub_out = demands[("hub", "x")] + demands[("hub", "y")]
        thin = demands[("x", "y")] + demands[("y", "x")]
        assert hub_out > thin


class TestMonthly:
    def test_average_below_maximum(self, square):
        avg, peak = synthesize_monthly_demands(square, seed=5)
        assert set(avg) == set(peak)
        for pair in avg:
            assert avg[pair] <= peak[pair] + 1e-12

    def test_deterministic(self, square):
        a = synthesize_monthly_demands(square, seed=5)
        b = synthesize_monthly_demands(square, seed=5)
        assert a == b


class TestEnvelope:
    def test_zero_slack(self):
        env = demand_envelope({("a", "b"): 10.0}, slack=0)
        assert env[("a", "b")] == (0.0, 10.0)

    def test_fifty_percent_slack(self):
        env = demand_envelope({("a", "b"): 10.0}, slack=50)
        assert env[("a", "b")][1] == pytest.approx(15.0)

    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError):
            demand_envelope({("a", "b"): 1.0}, slack=-1)

    def test_floor_above_upper_rejected(self):
        with pytest.raises(ValueError):
            demand_envelope({("a", "b"): 1.0}, floor=5.0)

    @settings(max_examples=30, deadline=None)
    @given(
        volume=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        slack=st.floats(min_value=0.0, max_value=400.0, allow_nan=False),
    )
    def test_envelope_property(self, volume, slack):
        env = demand_envelope({("a", "b"): volume}, slack=slack)
        lo, hi = env[("a", "b")]
        assert lo == 0.0
        assert hi == pytest.approx(volume * (1 + slack / 100.0))


class TestTopPairs:
    def test_top_pairs_ordering(self):
        demands = {("a", "b"): 1.0, ("b", "c"): 3.0, ("c", "d"): 2.0}
        assert top_pairs(demands, 2) == [("b", "c"), ("c", "d")]

    def test_top_pairs_handles_large_count(self):
        demands = {("a", "b"): 1.0}
        assert top_pairs(demands, 10) == [("a", "b")]
