"""Robust statistics: the numbers the regression gate stands on."""

import pytest

from repro.bench.stats import SampleStats, mad, median, summarize
from repro.exceptions import BenchError


class TestMedian:
    def test_odd_count(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_even_count_averages_middle_two(self):
        assert median([4.0, 1.0, 3.0, 2.0]) == 2.5

    def test_single_sample(self):
        assert median([7.5]) == 7.5

    def test_outlier_resistant(self):
        """One GC-pause-sized outlier must not move the headline."""
        assert median([1.0, 1.0, 1.0, 1.0, 1000.0]) == 1.0

    def test_empty_is_an_error(self):
        with pytest.raises(BenchError):
            median([])


class TestMad:
    def test_known_value(self):
        # median=3, |x-3| = [2, 1, 0, 1, 2] -> median 1
        assert mad([1.0, 2.0, 3.0, 4.0, 5.0]) == 1.0

    def test_constant_samples_have_zero_mad(self):
        assert mad([2.0, 2.0, 2.0]) == 0.0

    def test_outlier_resistant(self):
        """Unlike stddev, one wild sample barely moves the MAD."""
        assert mad([1.0, 1.0, 1.0, 1.0, 1000.0]) == 0.0

    def test_explicit_center(self):
        assert mad([1.0, 3.0], center=0.0) == 2.0


class TestSummarize:
    def test_fields(self):
        stats = summarize([2.0, 1.0, 3.0])
        assert stats.median == 2.0
        assert stats.mad == 1.0
        assert stats.mean == 2.0
        assert stats.min == 1.0
        assert stats.max == 3.0
        # Raw samples keep collection order -- they are data, not summary.
        assert stats.samples == (2.0, 1.0, 3.0)
        assert stats.count == 3

    def test_empty_is_an_error(self):
        with pytest.raises(BenchError):
            summarize([])


class TestRoundTrip:
    def test_to_dict_from_dict_identity(self):
        stats = summarize([0.5, 0.7, 0.6])
        assert SampleStats.from_dict(stats.to_dict()) == stats

    def test_from_dict_recomputes_from_samples(self):
        """The samples are ground truth: a hand-edited summary field
        self-heals on load."""
        doc = summarize([1.0, 2.0, 3.0]).to_dict()
        doc["median"] = 999.0
        assert SampleStats.from_dict(doc).median == 2.0

    def test_from_dict_without_samples_uses_stored_fields(self):
        doc = summarize([1.0, 2.0, 3.0]).to_dict()
        doc["samples"] = []
        stats = SampleStats.from_dict(doc)
        assert stats.median == 2.0
        assert stats.count == 0

    def test_malformed_document_is_typed_error(self):
        with pytest.raises(BenchError):
            SampleStats.from_dict({"samples": [], "median": "not-a-number"})
        with pytest.raises(BenchError):
            SampleStats.from_dict({})
