"""A tiny bench-cases module for CLI tests (``--cases-module``)."""

from repro.bench.registry import bench_case


@bench_case("unit.fast", tags=("unitsmoke", "full"),
            description="near-instant case with one metric")
def _fast():
    return {"value": 7.0}


@bench_case("unit.busy", tags=("unitsmoke",))
def _busy():
    total = sum(i * i for i in range(20_000))
    return {"total": float(total)}
