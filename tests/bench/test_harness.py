"""The case registry and the warmup/repetitions harness."""

import pytest

from repro.bench.harness import peak_rss_bytes, run_case, run_suite
from repro.bench.registry import (
    BenchCase,
    bench_case,
    clear_registry,
    registered_cases,
    select_cases,
)
from repro.core.config import BenchConfig
from repro.exceptions import BenchError
from repro.obs.trace import Tracer


@pytest.fixture(autouse=True)
def _isolated_registry():
    """Each test starts from an empty registry and leaves none behind
    (the repo's real cases module may already be imported by other
    tests in the session)."""
    saved = {c.name: c for c in registered_cases()}
    clear_registry()
    yield
    clear_registry()
    for case in saved.values():
        bench_case(case.name, tags=case.tags,
                   description=case.description)(case.fn)


def _case(name="t.case", tags=("smoke",), fn=None, description=""):
    bench_case(name, tags=tags, description=description)(
        fn if fn is not None else (lambda: None))
    return registered_cases()[-1]


class TestRegistry:
    def test_decorator_registers_in_order(self):
        _case("a.first")
        _case("b.second")
        assert [c.name for c in registered_cases()] == \
            ["a.first", "b.second"]

    def test_duplicate_name_is_an_error(self):
        _case("t.case")
        with pytest.raises(BenchError, match="duplicate"):
            _case("t.case")

    def test_bad_name_is_an_error(self):
        with pytest.raises(BenchError, match="bad case name"):
            _case("Has Uppercase")

    def test_empty_tags_is_an_error(self):
        with pytest.raises(BenchError, match="at least one tag"):
            _case("t.case", tags=())

    def test_select_by_tag(self):
        _case("a.smoke", tags=("smoke", "full"))
        _case("b.full", tags=("full",))
        smoke = select_cases(registered_cases(), tag="smoke")
        assert [c.name for c in smoke] == ["a.smoke"]

    def test_select_unknown_tag_is_an_error(self):
        _case("a.smoke", tags=("smoke",))
        with pytest.raises(BenchError, match="known tags: smoke"):
            select_cases(registered_cases(), tag="nightly")

    def test_select_unknown_name_is_an_error(self):
        """A typo'd --case must not silently benchmark nothing."""
        _case("a.smoke")
        with pytest.raises(BenchError, match="unknown bench case"):
            select_cases(registered_cases(), names=["a.smoke", "a.typo"])

    def test_case_rejects_non_dict_return(self):
        case = _case(fn=lambda: 42)
        with pytest.raises(BenchError, match="must return None or"):
            case.run()

    def test_case_rejects_non_numeric_metric(self):
        case = _case(fn=lambda: {"status": "ok"})
        with pytest.raises(BenchError, match="not numeric"):
            case.run()

    def test_case_rejects_bool_metric(self):
        """``True`` is an ``int`` to Python but not a measurement."""
        case = _case(fn=lambda: {"flag": True})
        with pytest.raises(BenchError, match="not numeric"):
            case.run()


class TestHarness:
    def test_warmup_plus_repetitions_call_count(self):
        calls = []
        case = _case(fn=lambda: calls.append(1))
        result = run_case(case, BenchConfig(warmup=2, repetitions=3))
        assert len(calls) == 5
        assert result.warmup == 2
        assert result.repetitions == 3
        assert result.wall.count == 3

    def test_warmup_samples_are_not_timed(self):
        """Only repetition runs contribute wall samples."""
        case = _case(fn=lambda: None)
        result = run_case(case, BenchConfig(warmup=4, repetitions=2))
        assert result.wall.count == 2

    def test_metrics_aggregate_across_repetitions(self):
        values = iter([1.0, 2.0, 3.0])
        case = _case(fn=lambda: {"hits": next(values)})
        result = run_case(case, BenchConfig(warmup=0, repetitions=3))
        assert result.metrics["hits"].samples == (1.0, 2.0, 3.0)
        assert result.metrics["hits"].median == 2.0

    def test_peak_rss_recorded_on_posix(self):
        case = _case(fn=lambda: None)
        result = run_case(case, BenchConfig(warmup=0, repetitions=1))
        rss = peak_rss_bytes()
        if rss is not None:
            assert result.peak_rss_bytes >= 10 * 1024 * 1024

    def test_case_result_round_trips_to_document_form(self):
        case = _case(fn=lambda: {"hits": 5})
        result = run_case(case, BenchConfig(warmup=0, repetitions=2))
        doc = result.to_dict()
        assert doc["repetitions"] == 2
        assert len(doc["wall_seconds"]["samples"]) == 2
        assert doc["metrics"]["hits"]["median"] == 5.0
        assert doc["tags"] == ["smoke"]

    def test_traced_run_merges_spans_into_campaign_tracer(self):
        case = _case(fn=_span_emitter)
        campaign = Tracer()
        result = run_case(case, BenchConfig(warmup=0, repetitions=2),
                          tracer=campaign)
        spans = campaign.export()
        names = {s["name"] for s in spans}
        assert "bench_case" in names
        assert "inner_phase" in names
        # Span ids are prefixed per case, so two cases cannot collide.
        assert all(s["id"].startswith("t.case:") for s in spans)
        assert result.phase_seconds.get("inner_phase", 0.0) > 0.0
        assert "bench_case" not in result.phase_seconds

    def test_untraced_run_collects_no_phases(self):
        case = _case(fn=_span_emitter)
        result = run_case(case, BenchConfig(warmup=0, repetitions=1))
        assert result.phase_seconds == {}

    def test_run_suite_logs_progress(self):
        _case("a.one")
        _case("b.two")
        lines = []
        results = run_suite(registered_cases(),
                            BenchConfig(warmup=0, repetitions=1),
                            log=lines.append)
        assert len(results) == 2
        assert lines[0].startswith("[1/2] a.one:")
        assert lines[1].startswith("[2/2] b.two:")


def _span_emitter():
    """A case body that exercises an instrumented hot path: it emits a
    span on the ambient tracer exactly as the analyzer/solver do."""
    from repro.obs.trace import current_tracer

    with current_tracer().span("inner_phase"):
        sum(range(100))


class TestBenchCaseDataclass:
    def test_frozen(self):
        case = BenchCase(name="x", fn=lambda: None,
                        tags=frozenset({"smoke"}))
        with pytest.raises(Exception):
            case.name = "y"
