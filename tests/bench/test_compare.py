"""The regression gate's threshold math and verdicts."""

import pytest

from repro.bench.compare import (
    allowed_ceiling,
    compare_results,
    render_table,
)
from repro.bench.stats import summarize
from repro.core.config import BenchConfig


def _doc(label="run", **case_medians):
    """A minimal result document: case -> wall samples."""
    return {
        "kind": "bench_results",
        "schema": 1,
        "label": label,
        "cases": {
            name: {"wall_seconds": summarize(samples).to_dict()}
            for name, samples in case_medians.items()
        },
    }


TIGHT = BenchConfig(rel_tolerance=0.10, mad_multiplier=3.0,
                    abs_floor_seconds=0.0)


class TestCeiling:
    def test_all_three_terms(self):
        base = summarize([1.0, 1.0, 1.2])   # median 1.0, mad 0.0
        new = summarize([1.0, 1.1, 1.3])    # mad 0.1
        config = BenchConfig(rel_tolerance=0.25, mad_multiplier=5.0,
                             abs_floor_seconds=0.05)
        # 1.0 * 1.25 + 5 * max(0.0, 0.1) + 0.05
        assert allowed_ceiling(base, new, config) == pytest.approx(1.80)

    def test_mad_term_uses_worst_of_both_runs(self):
        """A newly-jittery case earns slack from its *own* spread --
        the baseline cannot know the noise got worse."""
        steady = summarize([1.0, 1.0, 1.0])
        jittery = summarize([0.7, 1.0, 1.3])
        config = BenchConfig(rel_tolerance=0.0, mad_multiplier=2.0,
                             abs_floor_seconds=0.0)
        assert allowed_ceiling(steady, jittery, config) == \
            pytest.approx(1.0 + 2.0 * 0.3)
        assert allowed_ceiling(jittery, steady, config) == \
            pytest.approx(1.0 + 2.0 * 0.3)

    def test_abs_floor_shields_microbenchmarks(self):
        """A 3x slowdown on a 1ms case is scheduler noise, not a
        regression, as long as it stays under the floor."""
        base = _doc("base", fast=[0.001, 0.001, 0.001])
        new = _doc("new", fast=[0.003, 0.003, 0.003])
        config = BenchConfig(rel_tolerance=0.10, mad_multiplier=3.0,
                             abs_floor_seconds=0.05)
        assert compare_results(base, new, config).ok


class TestVerdicts:
    def test_steady_case_passes(self):
        base = _doc("base", case=[1.0, 1.0, 1.0])
        new = _doc("new", case=[1.05, 1.05, 1.05])
        comparison = compare_results(base, new, TIGHT)
        assert comparison.ok
        assert not comparison.deltas[0].regressed

    def test_real_slowdown_regresses(self):
        base = _doc("base", case=[1.0, 1.0, 1.0])
        new = _doc("new", case=[2.0, 2.0, 2.0])
        comparison = compare_results(base, new, TIGHT)
        assert not comparison.ok
        delta = comparison.deltas[0]
        assert delta.regressed
        assert delta.ratio == pytest.approx(2.0)

    def test_jitter_sized_slowdown_passes(self):
        """A median inside the observed noise band must not fail."""
        base = _doc("base", case=[1.0, 1.2, 0.8])  # mad 0.2
        new = _doc("new", case=[1.3, 1.5, 1.1])    # median 1.3
        # ceiling = 1.0*1.1 + 3*0.2 = 1.7 > 1.3
        assert compare_results(base, new, TIGHT).ok

    def test_improvement_is_flagged_but_passes(self):
        base = _doc("base", case=[2.0, 2.0, 2.0])
        new = _doc("new", case=[1.0, 1.0, 1.0])
        comparison = compare_results(base, new, TIGHT)
        assert comparison.ok
        assert comparison.deltas[0].improved
        assert len(comparison.improvements) == 1

    def test_missing_and_added_reported_not_failed(self):
        base = _doc("base", retired=[1.0], shared=[1.0])
        new = _doc("new", shared=[1.0], brand_new=[9.9])
        comparison = compare_results(base, new, TIGHT)
        assert comparison.ok
        assert comparison.missing == ["retired"]
        assert comparison.added == ["brand_new"]
        assert [d.name for d in comparison.deltas] == ["shared"]

    def test_zero_base_median_ratio(self):
        base = _doc("base", case=[0.0, 0.0, 0.0])
        new = _doc("new", case=[1.0, 1.0, 1.0])
        delta = compare_results(base, new, TIGHT).deltas[0]
        assert delta.ratio == float("inf")


class TestMachineVerdict:
    def test_to_dict_shape(self):
        base = _doc("base", slow=[1.0], gone=[1.0])
        new = _doc("new", slow=[5.0], fresh=[1.0])
        doc = compare_results(base, new, TIGHT).to_dict()
        assert doc["kind"] == "bench_comparison"
        assert doc["ok"] is False
        assert doc["num_regressions"] == 1
        assert doc["missing_in_new"] == ["gone"]
        assert doc["added_in_new"] == ["fresh"]
        case = doc["cases"][0]
        assert case["name"] == "slow"
        assert case["regressed"] is True
        assert case["allowed"] < case["new_median"]


class TestRenderTable:
    def test_ok_run(self):
        base = _doc("base", case=[1.0, 1.0, 1.0])
        new = _doc("new", case=[1.0, 1.0, 1.0])
        table = render_table(compare_results(base, new, TIGHT))
        assert "base -> new" in table
        assert "OK: 1 case(s) within thresholds" in table

    def test_regression_names_the_worst_case(self):
        base = _doc("base", mild=[1.0], awful=[1.0])
        new = _doc("new", mild=[2.0], awful=[10.0])
        table = render_table(compare_results(base, new, TIGHT))
        assert "REGRESSED" in table
        assert "worst: awful at 10.00x" in table

    def test_empty_overlap_renders(self):
        base = _doc("base", only_old=[1.0])
        new = _doc("new", only_new=[1.0])
        table = render_table(compare_results(base, new, TIGHT))
        assert "missing in new run: only_old" in table
        assert "new cases (no baseline): only_new" in table
