"""``python -m repro bench`` end to end through ``cli.main``."""

import json
import sys

import pytest

from repro.bench.cli import EXIT_BENCH_REGRESSION
from repro.bench.registry import clear_registry
from repro.bench.results import SCHEMA_VERSION, load_results
from repro.cli import main
from repro.exceptions import BenchError

CASES = "tests.bench._cases"


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Force the cases module's decorators to re-run per test: the
    registry is process-global and Python caches imports."""
    clear_registry()
    sys.modules.pop(CASES, None)
    yield
    clear_registry()


def _run(tmp_path, name="BENCH_a.json", label="a", extra=()):
    out = tmp_path / name
    code = main(["bench", "run", "--cases-module", CASES,
                 "--tag", "unitsmoke", "--out", str(out),
                 "--label", label, "--quiet", *extra])
    assert code == 0
    return out


class TestRun:
    def test_writes_valid_schema_document(self, tmp_path, capsys):
        out = _run(tmp_path, extra=["--warmup", "0",
                                    "--repetitions", "2"])
        document = load_results(out)
        assert document["schema"] == SCHEMA_VERSION
        assert document["label"] == "a"
        assert document["tag"] == "unitsmoke"
        assert set(document["cases"]) == {"unit.fast", "unit.busy"}
        case = document["cases"]["unit.fast"]
        assert len(case["wall_seconds"]["samples"]) == 2
        assert case["metrics"]["value"]["median"] == 7.0
        assert "python" in document["environment"]
        assert "wrote 2 case(s)" in capsys.readouterr().out

    def test_case_selection(self, tmp_path):
        out = tmp_path / "one.json"
        assert main(["bench", "run", "--cases-module", CASES,
                     "--case", "unit.fast", "--out", str(out),
                     "--quiet"]) == 0
        assert set(load_results(out)["cases"]) == {"unit.fast"}

    def test_unknown_case_is_operational_error(self, tmp_path, capsys):
        code = main(["bench", "run", "--cases-module", CASES,
                     "--case", "unit.typo",
                     "--out", str(tmp_path / "x.json"), "--quiet"])
        assert code == 1
        assert "unknown bench case" in capsys.readouterr().err

    def test_unimportable_module_is_operational_error(self, tmp_path,
                                                      capsys):
        code = main(["bench", "run", "--cases-module", "no.such.module",
                     "--out", str(tmp_path / "x.json"), "--quiet"])
        assert code == 1
        assert "cannot import" in capsys.readouterr().err

    def test_trace_writes_jsonl(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        _run(tmp_path, extra=["--trace", str(trace),
                              "--warmup", "0", "--repetitions", "1"])
        lines = [json.loads(l) for l in trace.read_text().splitlines()]
        assert lines[0]["type"] == "trace_header"
        spans = [l for l in lines if l.get("type") == "span"]
        assert {"unit.fast", "unit.busy"} == {
            s["attrs"]["case"] for s in spans
            if s["name"] == "bench_case"}


class TestList:
    def test_lists_cases_with_tags(self, capsys):
        assert main(["bench", "list", "--cases-module", CASES]) == 0
        out = capsys.readouterr().out
        assert "unit.fast  [full,unitsmoke]" in out
        assert "2 case(s)" in out


class TestCompare:
    def test_self_compare_passes(self, tmp_path, capsys):
        out = _run(tmp_path)
        code = main(["bench", "compare", str(out), str(out)])
        assert code == 0
        assert "OK:" in capsys.readouterr().out

    def test_synthetic_slowdown_exits_regression_code(self, tmp_path,
                                                      capsys):
        """The acceptance contract: a doctored 10x slowdown must exit
        with the dedicated regression code, not a generic failure."""
        base = _run(tmp_path)
        slow_doc = json.loads(base.read_text())
        slow_doc["label"] = "slow"
        for case in slow_doc["cases"].values():
            wall = case["wall_seconds"]
            # Push every sample far past any noise-scaled ceiling.
            wall["samples"] = [s * 10.0 + 1.0 for s in wall["samples"]]
        slow = tmp_path / "BENCH_slow.json"
        slow.write_text(json.dumps(slow_doc))
        code = main(["bench", "compare", str(base), str(slow)])
        assert code == EXIT_BENCH_REGRESSION
        assert "REGRESSION" in capsys.readouterr().out

    def test_json_verdict_artifact(self, tmp_path, capsys):
        base = _run(tmp_path)
        verdict = tmp_path / "verdict.json"
        assert main(["bench", "compare", str(base), str(base),
                     "--json", str(verdict)]) == 0
        doc = json.loads(verdict.read_text())
        assert doc["kind"] == "bench_comparison"
        assert doc["ok"] is True

    def test_threshold_overrides_flow_through(self, tmp_path):
        """--rel-tolerance 0 --mad-multiplier 0 --abs-floor 0 turns
        the gate into an exact-median comparison."""
        base = _run(tmp_path, name="a.json")
        slow_doc = json.loads(base.read_text())
        for case in slow_doc["cases"].values():
            wall = case["wall_seconds"]
            wall["samples"] = [s * 1.01 + 1e-6 for s in wall["samples"]]
        slow = tmp_path / "b.json"
        slow.write_text(json.dumps(slow_doc))
        assert main(["bench", "compare", str(base), str(slow),
                     "--rel-tolerance", "0", "--mad-multiplier", "0",
                     "--abs-floor", "0"]) == EXIT_BENCH_REGRESSION
        assert main(["bench", "compare", str(base), str(slow),
                     "--abs-floor", "5.0"]) == 0

    def test_garbage_file_is_operational_error(self, tmp_path, capsys):
        base = _run(tmp_path)
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        assert main(["bench", "compare", str(base),
                     str(garbage)]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_newer_schema_is_refused(self, tmp_path):
        base = _run(tmp_path)
        doc = json.loads(base.read_text())
        doc["schema"] = SCHEMA_VERSION + 1
        newer = tmp_path / "newer.json"
        newer.write_text(json.dumps(doc))
        with pytest.raises(BenchError, match="newer than this code"):
            load_results(newer)
        assert main(["bench", "compare", str(base), str(newer)]) == 1

    def test_disjoint_documents_warn(self, tmp_path, capsys):
        base = _run(tmp_path, name="a.json")
        doc = json.loads(base.read_text())
        doc["cases"] = {"other.case": doc["cases"]["unit.fast"]}
        other = tmp_path / "other.json"
        other.write_text(json.dumps(doc))
        assert main(["bench", "compare", str(base), str(other)]) == 0
        assert "no case appears in both" in capsys.readouterr().err
