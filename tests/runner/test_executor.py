"""Executor behavior: fault tolerance, retries, caching, resume.

The injected tasks live in ``tests/runner/_workers.py`` so worker
processes can import them by reference.
"""

import pytest

from repro.core.config import RunnerConfig, default_num_workers
from repro.runner.cache import ResultCache
from repro.runner.executor import run_sweep
from repro.runner.jobs import Job
from repro.runner.journal import Journal

WORKERS = "tests.runner._workers"


def _job(task: str, **params) -> Job:
    return Job({"task": f"{WORKERS}:{task}", "instance": {},
                "params": params})


class TestGracefulDegradation:
    def test_crash_timeout_and_error_do_not_kill_the_campaign(self):
        """The ISSUE's acceptance scenario: a hard-crashing worker and a
        wedged job settle as structured errors; healthy jobs complete."""
        jobs = [
            _job("echo_task", value=1),
            _job("crash_task"),
            _job("sleep_task", sleep_seconds=600),
            _job("echo_task", value=2),
            _job("error_task"),
        ]
        outcome = run_sweep(
            jobs, num_workers=2, wall_timeout=2.0,
            config=RunnerConfig(retries=0, backoff_seconds=0.0),
        )
        by_value = {o.job.params.get("value"): o for o in outcome.outcomes}
        statuses = [o.status for o in outcome.outcomes]

        assert by_value[1].status == "done"
        assert by_value[1].result == {"echo": 1}
        assert by_value[2].status == "done"
        assert statuses[1] == "error"          # crash
        assert "crash" in outcome.outcomes[1].error
        assert statuses[2] == "timeout"        # wedged
        assert "wall timeout" in outcome.outcomes[2].error
        assert statuses[4] == "error"          # plain exception
        assert "injected failure" in outcome.outcomes[4].error
        assert outcome.num_errors == 3
        # Outcomes come back in job order despite parallel completion.
        assert [o.job.key for o in outcome.outcomes] == [j.key for j in jobs]

    def test_crash_is_not_charged_to_innocent_jobs(self, tmp_path):
        """Broken-pool casualties keep their retry budget: with
        retries=0 every healthy job must still settle as done."""
        jobs = [_job("crash_task")] + [
            _job("echo_task", value=i,
                 log_file=str(tmp_path / "log.txt"))
            for i in range(6)
        ]
        outcome = run_sweep(
            jobs, num_workers=2,
            config=RunnerConfig(retries=0, backoff_seconds=0.0),
        )
        assert outcome.outcomes[0].status == "error"
        assert all(o.status == "done" for o in outcome.outcomes[1:])

    def test_serial_mode_contains_failures_too(self):
        jobs = [_job("error_task"), _job("echo_task", value=7)]
        outcome = run_sweep(jobs, num_workers=1,
                            config=RunnerConfig(retries=0))
        assert [o.status for o in outcome.outcomes] == ["error", "done"]
        assert outcome.outcomes[0].attempts == 1

    def test_raise_on_error(self):
        outcome = run_sweep([_job("error_task")], num_workers=1,
                            config=RunnerConfig(retries=0))
        with pytest.raises(Exception, match="injected failure"):
            outcome.raise_on_error()


class TestRetries:
    def test_flaky_job_recovers_within_budget(self, tmp_path):
        job = _job("flaky_task", sentinel=str(tmp_path / "sentinel"))
        outcome = run_sweep(
            [job], num_workers=1,
            config=RunnerConfig(retries=1, backoff_seconds=0.0),
        )
        assert outcome.outcomes[0].status == "done"
        assert outcome.outcomes[0].result == {"recovered": True}
        assert outcome.outcomes[0].attempts == 2

    def test_retries_exhaust_into_structured_error(self):
        outcome = run_sweep(
            [_job("error_task")], num_workers=1,
            config=RunnerConfig(retries=2, backoff_seconds=0.0),
        )
        assert outcome.outcomes[0].status == "error"
        assert outcome.outcomes[0].attempts == 3


class TestCacheAndJournal:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = [_job("echo_task", value=i) for i in range(4)]
        first = run_sweep(jobs, num_workers=1, cache=cache)
        assert all(o.status == "done" for o in first.outcomes)
        second = run_sweep(jobs, num_workers=1, cache=cache)
        assert all(o.status == "cached" for o in second.outcomes)
        assert [o.result for o in second.outcomes] == \
            [o.result for o in first.outcomes]
        assert second.num_cached == 4

    def test_failures_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep([_job("error_task")], num_workers=1, cache=cache,
                  config=RunnerConfig(retries=0))
        assert len(cache) == 0

    def test_resume_runs_only_the_remaining_jobs(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        log = str(tmp_path / "executions.log")
        jobs = [_job("echo_task", value=i, log_file=log) for i in range(5)]

        # Simulate an interrupted campaign: only the first two settled.
        interrupted = run_sweep(jobs[:2], num_workers=1, journal=journal)
        assert all(o.status == "done" for o in interrupted.outcomes)
        assert len(open(log).readlines()) == 2

        resumed = run_sweep(jobs, num_workers=1, journal=journal,
                            resume=True)
        statuses = [o.status for o in resumed.outcomes]
        assert statuses == ["resumed", "resumed", "done", "done", "done"]
        # The settled jobs did not execute again.
        assert len(open(log).readlines()) == 5
        assert resumed.outcomes[0].result == {"echo": 0}

    def test_resume_retries_previous_failures(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        sentinel = str(tmp_path / "sentinel")
        job = _job("flaky_task", sentinel=sentinel)
        first = run_sweep([job], num_workers=1, journal=journal,
                          config=RunnerConfig(retries=0))
        assert first.outcomes[0].status == "error"
        second = run_sweep([job], num_workers=1, journal=journal,
                           resume=True, config=RunnerConfig(retries=0))
        assert second.outcomes[0].status == "done"

    def test_torn_journal_tail_is_ignored(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        jobs = [_job("echo_task", value=0)]
        run_sweep(jobs, num_workers=1, journal=journal)
        with open(journal.path, "a") as handle:
            handle.write('{"event": "job", "key": "truncat')  # kill -9 tail
        resumed = run_sweep(jobs, num_workers=1, journal=journal,
                            resume=True)
        assert resumed.outcomes[0].status == "resumed"


class TestProgress:
    def test_events_cover_every_job_with_throughput(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = [_job("echo_task", value=i) for i in range(3)]
        run_sweep(jobs, num_workers=1, cache=cache)
        events = []
        run_sweep(jobs + [_job("echo_task", value=99)], num_workers=1,
                  cache=cache, progress=events.append)
        assert [e.completed for e in events] == [1, 2, 3, 4]
        assert events[-1].total == 4
        assert events[-1].cache_hits == 3
        assert events[-1].errors == 0
        assert events[-1].rate > 0
        assert "done" in events[-1].render()


class TestDefaults:
    def test_default_workers_is_capped_and_positive(self):
        assert 1 <= default_num_workers() <= 8
        assert default_num_workers(cap=2) <= 2

    def test_wall_timeout_derivation(self):
        config = RunnerConfig(wall_timeout_factor=3.0,
                              wall_timeout_margin=30.0)
        assert config.wall_timeout_for(60.0) == 210.0
        assert config.wall_timeout_for(None) is None


class TestTelemetryAggregation:
    def test_stats_totals_and_progress_accumulation(self, tmp_path):
        jobs = [_job("stats_task", value=i, coef=8.0 * (i + 1))
                for i in range(3)]
        events = []
        outcome = run_sweep(jobs, num_workers=1, progress=events.append)
        totals = outcome.stats_totals()
        assert totals["jobs_with_stats"] == 3
        assert totals["build_seconds"] == pytest.approx(0.75)
        assert totals["compile_seconds"] == pytest.approx(0.375)
        assert totals["solve_seconds"] == pytest.approx(1.5)
        assert totals["max_abs_coefficient"] == pytest.approx(24.0)
        # The progress heartbeats carry the running build/compile sums.
        assert events[-1].build_seconds == pytest.approx(0.75)
        assert events[-1].compile_seconds == pytest.approx(0.375)

    def test_stats_totals_zero_without_telemetry(self):
        outcome = run_sweep([_job("echo_task", value=1)], num_workers=1)
        totals = outcome.stats_totals()
        assert totals["jobs_with_stats"] == 0
        assert totals["solve_seconds"] == 0.0


class TestCooperativeCancel:
    def test_cancel_settles_every_job_in_the_pool(self):
        """A cancel raised mid-flight settles the wedged job as
        cancelled instead of waiting out its wall timeout."""
        polls = {"n": 0}

        def cancel_after_two():
            polls["n"] += 1
            return polls["n"] > 2

        outcome = run_sweep(
            [_job("sleep_task", sleep_seconds=600)], num_workers=2,
            wall_timeout=30.0, cancel_check=cancel_after_two,
            config=RunnerConfig(retries=0, backoff_seconds=0.0),
        )
        assert len(outcome.outcomes) == 1
        assert outcome.outcomes[0].status == "cancelled"
        assert "cancelled by client" in outcome.outcomes[0].error

    def test_cancel_race_settles_done_but_unretrieved_future(
            self, monkeypatch):
        """REVIEW regression: a future can complete between the wait
        returning empty and the cancel branch running.  Keying the
        cancel settle off ``future.done()`` skipped that job entirely
        -- neither processed nor cancelled -- so the sweep returned no
        outcome for it and the service scheduler crashed on
        ``outcomes[0]``.  The cancel branch must settle by bookkeeping:
        every job not already settled is cancelled."""
        import repro.runner.executor as executor_mod

        real_wait = executor_mod.futures_wait

        def racy_wait(fs, timeout=None, return_when=None):
            # Let the future genuinely complete, then report nothing
            # done -- the exact window the cancel check races with.
            real_wait(fs, timeout=10.0, return_when=return_when)
            return set(), set(fs)

        monkeypatch.setattr(executor_mod, "futures_wait", racy_wait)
        polls = {"n": 0}

        def cancel_on_second_poll():
            polls["n"] += 1
            return polls["n"] > 1

        outcome = run_sweep(
            [_job("echo_task", value=1)], num_workers=2,
            cancel_check=cancel_on_second_poll,
            config=RunnerConfig(retries=0, backoff_seconds=0.0),
        )
        # The job must come back settled -- cancelled is the correct
        # answer here -- never silently missing from the outcome.
        assert len(outcome.outcomes) == 1
        assert outcome.outcomes[0].status == "cancelled"
