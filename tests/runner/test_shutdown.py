"""Graceful shutdown: stop events, drained journals, interrupted exits.

The executor's contract under SIGINT/SIGTERM (or a caller-provided
``stop_event``): settle the in-flight work, flush the journal with an
``interrupted`` record, emit a final progress heartbeat, and return only
what settled with ``SweepOutcome.interrupted`` set -- so ``--resume``
finishes the rest and the CLI exits 130.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.core.config import RunnerConfig
from repro.runner.executor import run_sweep
from repro.runner.jobs import Job, SweepSpec
from repro.runner.journal import Journal

REPO_ROOT = Path(__file__).resolve().parents[2]


def echo_jobs(values):
    return [Job({"task": "tests.runner._workers:echo_task",
                 "instance": {}, "params": {"value": v}})
            for v in values]


class TestStopEvent:
    def test_preset_stop_event_runs_nothing(self, tmp_path):
        stop = threading.Event()
        stop.set()
        outcome = run_sweep(echo_jobs([1, 2]), num_workers=1,
                            journal=tmp_path / "journal.jsonl",
                            stop_event=stop, handle_signals=False)
        assert outcome.interrupted is True
        assert outcome.outcomes == []

    def test_serial_stops_between_jobs(self, tmp_path):
        stop = threading.Event()
        jobs = [Job({"task": "tests.runner._workers:stopper_task",
                     "instance": {},
                     "params": {"value": v,
                                "stop_file": str(tmp_path / "stop")}})
                for v in range(5)]

        def watch():
            while not (tmp_path / "stop").exists():
                time.sleep(0.005)
            stop.set()

        thread = threading.Thread(target=watch, daemon=True)
        thread.start()
        outcome = run_sweep(jobs, num_workers=1, stop_event=stop,
                            handle_signals=False)
        thread.join(timeout=5)
        # The first job (which dropped the stop file) settled; the
        # campaign then drained without starting the remaining four.
        assert outcome.interrupted
        assert 1 <= len(outcome.outcomes) < 5

    def test_journal_records_interrupted_event(self, tmp_path):
        stop = threading.Event()
        stop.set()
        journal_path = tmp_path / "journal.jsonl"
        run_sweep(echo_jobs([1]), num_workers=1, journal=journal_path,
                  stop_event=stop, handle_signals=False)
        events = [json.loads(line)
                  for line in journal_path.read_text().splitlines()]
        kinds = [e.get("event") for e in events]
        assert "interrupted" in kinds
        record = next(e for e in events if e.get("event") == "interrupted")
        assert record["settled"] == 0 and record["total"] == 1

    def test_final_heartbeat_reports_interrupted(self, tmp_path):
        stop = threading.Event()
        stop.set()
        events = []
        run_sweep(echo_jobs([1, 2]), num_workers=1, progress=events.append,
                  stop_event=stop, handle_signals=False)
        assert events and events[-1].status == "interrupted"

    def test_resume_finishes_after_drain(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        jobs = echo_jobs([1, 2, 3])
        stop = threading.Event()
        stop.set()
        run_sweep(jobs, num_workers=1, journal=journal, stop_event=stop,
                  handle_signals=False)
        finished = run_sweep(jobs, num_workers=1, journal=journal,
                             resume=True, handle_signals=False)
        assert not finished.interrupted
        assert len(finished.outcomes) == 3

    def test_pool_drain_cancels_unstarted_jobs(self, tmp_path):
        stop = threading.Event()
        jobs = [Job({"task": "tests.runner._workers:sleep_task",
                     "instance": {},
                     "params": {"value": v, "sleep_seconds": 0.3}})
                for v in range(8)]

        def trip():
            time.sleep(0.05)  # well before the first future completes
            stop.set()

        thread = threading.Thread(target=trip, daemon=True)
        thread.start()
        config = RunnerConfig(num_workers=2)
        outcome = run_sweep(jobs, config=config, stop_event=stop,
                            handle_signals=False)
        thread.join(timeout=5)
        # The first completed future observes the stop and cancels the
        # not-yet-dispatched rest; only in-flight attempts settle.
        assert outcome.interrupted
        assert len(outcome.outcomes) < 8


class TestSigintSubprocess:
    """The real signal path: `repro sweep` under SIGINT exits 130."""

    def test_sigint_drains_and_exits_130(self, tmp_path):
        spec = {
            "kind": "sweep_spec",
            "name": "interruptible",
            "task": "tests.runner._workers:sleep_task",
            "instance": {"topology": {"nodes": [], "links": []}},
            "base": {"sleep_seconds": 0.3},
            "grid": {"value": list(range(20))},
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "sweep",
             "--spec", str(spec_path),
             "--workdir", str(tmp_path / "wd"), "--jobs", "1", "--quiet"],
            cwd=REPO_ROOT, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        time.sleep(2.0)  # let it start and settle at least one job
        proc.send_signal(signal.SIGINT)
        stdout, stderr = proc.communicate(timeout=60)
        assert proc.returncode == 130, stderr.decode()
        assert b"interrupted" in stderr
        journal = (tmp_path / "wd" / "journal.jsonl").read_text()
        assert '"interrupted"' in journal
        # The drained campaign resumes cleanly.
        done = subprocess.run(
            [sys.executable, "-m", "repro", "sweep",
             "--spec", str(spec_path), "--workdir", str(tmp_path / "wd"),
             "--jobs", "4", "--resume", "--quiet"],
            cwd=REPO_ROOT, env=env, capture_output=True, timeout=120,
        )
        assert done.returncode == 0, done.stderr.decode()
        results = json.loads(
            (tmp_path / "wd" / "results.json").read_text())
        assert results["summary"]["total"] == 20


class TestSpecPath:
    def test_spec_campaigns_accept_stop_event(self, tmp_path):
        spec = SweepSpec(
            instance={"topology": {"nodes": [], "links": []}},
            grid={"value": [1, 2]},
            task="tests.runner._workers:echo_task",
        )
        stop = threading.Event()
        outcome = run_sweep(spec, num_workers=1, stop_event=stop,
                            handle_signals=False)
        assert not outcome.interrupted
        assert len(outcome.outcomes) == 2
