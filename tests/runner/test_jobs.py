"""SweepSpec expansion: grids, cells, dedup, file references."""

import json

import pytest

from repro.exceptions import ModelingError
from repro.network import serialization as ser
from repro.network.demand import synthesize_monthly_demands, top_pairs
from repro.network.generators import production_wan
from repro.paths.pathset import PathSet
from repro.runner.jobs import DEFAULT_TASK, Job, SweepSpec

TOPOLOGY_DOC = {"kind": "topology", "name": "t", "nodes": ["a", "b"],
                "lags": [{"u": "a", "v": "b",
                          "links": [{"capacity": 10.0,
                                     "failure_probability": 1e-3,
                                     "can_fail": True}]}],
                "srlgs": []}


def _spec(**kwargs):
    defaults = dict(instance={"topology": TOPOLOGY_DOC})
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestExpansion:
    def test_grid_cross_product(self):
        spec = _spec(
            base={"time_limit": 30.0},
            grid={"threshold": [1e-2, 1e-4], "max_failures": [1, 2, None]},
        )
        jobs = spec.expand()
        assert len(jobs) == 6
        cells = [(j.params["threshold"], j.params["max_failures"])
                 for j in jobs]
        assert cells == [(1e-2, 1), (1e-2, 2), (1e-2, None),
                         (1e-4, 1), (1e-4, 2), (1e-4, None)]
        assert all(j.params["time_limit"] == 30.0 for j in jobs)

    def test_cells_override_grid_shape(self):
        spec = _spec(cells=[{"threshold": None, "max_failures": 2},
                            {"threshold": 1e-4, "max_failures": None}])
        jobs = spec.expand()
        assert [(j.params["threshold"], j.params["max_failures"])
                for j in jobs] == [(None, 2), (1e-4, None)]

    def test_duplicate_cells_dedup_by_key(self):
        spec = _spec(cells=[{"threshold": 1e-4}, {"threshold": 1e-4},
                            {"threshold": 1e-2}])
        assert len(spec.expand()) == 2

    def test_base_overridden_by_cell(self):
        spec = _spec(base={"threshold": 1e-2},
                     cells=[{}, {"threshold": 1e-7}])
        jobs = spec.expand()
        assert jobs[0].params["threshold"] == 1e-2
        assert jobs[1].params["threshold"] == 1e-7

    def test_empty_grid_is_one_job(self):
        assert len(_spec().expand()) == 1

    def test_spec_hash_tracks_content(self):
        a = _spec(grid={"threshold": [1e-2]})
        b = _spec(grid={"threshold": [1e-3]})
        assert a.spec_hash != b.spec_hash
        assert a.spec_hash == _spec(grid={"threshold": [1e-2]}).spec_hash

    def test_job_key_stable_and_label_readable(self):
        job = _spec(cells=[{"demand_mode": "avg", "threshold": 1e-4,
                            "max_failures": None}]).expand()[0]
        assert job.key == Job(dict(job.payload)).key
        assert "avg" in job.label and "t=0.0001" in job.label \
            and "k=inf" in job.label


class TestValidation:
    def test_instance_requires_topology(self):
        with pytest.raises(ModelingError):
            SweepSpec(instance={"demands": {}})

    def test_grid_and_cells_are_exclusive(self):
        with pytest.raises(ModelingError):
            _spec(grid={"threshold": [1e-2]}, cells=[{}])

    def test_task_must_be_module_function(self):
        with pytest.raises(ModelingError):
            _spec(task="not-a-reference")


class TestSpecFiles:
    def test_file_references_are_embedded(self, tmp_path):
        topology = production_wan(num_regions=2, nodes_per_region=3, seed=5)
        avg, _ = synthesize_monthly_demands(topology, scale=50, seed=5)
        pairs = top_pairs(avg, 2)
        paths = PathSet.k_shortest(topology, pairs, num_primary=2,
                                   num_backup=1)
        ser.save_json(ser.topology_to_dict(topology),
                      str(tmp_path / "wan.json"))
        ser.save_json(ser.demands_to_dict(avg.restricted_to(pairs)),
                      str(tmp_path / "demands.json"))
        ser.save_json(ser.paths_to_dict(paths), str(tmp_path / "paths.json"))
        spec_doc = {
            "kind": "sweep_spec",
            "instance": {"topology": "wan.json", "demands": "demands.json",
                         "paths": "paths.json"},
            "base": {"demand_mode": "fixed", "time_limit": 10.0},
            "grid": {"threshold": [1e-2, 1e-4]},
        }
        spec_path = tmp_path / "campaign.json"
        spec_path.write_text(json.dumps(spec_doc))

        spec = SweepSpec.from_file(str(spec_path))
        assert spec.name == "campaign"
        assert spec.task == DEFAULT_TASK
        assert spec.instance["topology"]["kind"] == "topology"
        assert spec.instance["demands"]["kind"] == "demands"
        assert len(spec.expand()) == 2

        # Editing a referenced file changes every job key (content, not
        # file-name, addressing).
        keys = [job.key for job in spec.expand()]
        doc = json.loads((tmp_path / "demands.json").read_text())
        doc["entries"][0]["volume"] *= 2
        (tmp_path / "demands.json").write_text(json.dumps(doc))
        respec = SweepSpec.from_file(str(spec_path))
        assert all(a != b for a, b in zip(keys,
                                          [j.key for j in respec.expand()]))

    def test_wrong_kind_rejected(self):
        with pytest.raises(ModelingError):
            SweepSpec.from_dict({"kind": "topology"})
