"""Injectable worker tasks for executor tests.

These live in an importable module (not the test file) because worker
processes resolve tasks by ``module:function`` reference; the executor
only ships the JSON payload, never a callable.
"""

from __future__ import annotations

import os
import time


def echo_task(payload: dict) -> dict:
    """Return the cell's value; also logs to prove execution happened."""
    params = payload["params"]
    log = params.get("log_file")
    if log:
        with open(log, "a") as handle:
            handle.write(f"{params.get('value')}\n")
    return {"echo": params.get("value")}


def error_task(payload: dict) -> dict:
    """A job that raises a normal Python exception."""
    raise RuntimeError("injected failure")


def crash_task(payload: dict) -> dict:
    """A job that hard-kills its worker (simulates a segfault/OOM kill)."""
    os._exit(13)


def stopper_task(payload: dict) -> dict:
    """Drops a sentinel file, then lingers so a watcher thread can set a
    stop event while this job is still the one in flight."""
    params = payload["params"]
    with open(params["stop_file"], "w") as handle:
        handle.write("stop\n")
    time.sleep(params.get("linger_seconds", 0.3))
    return {"echo": params.get("value")}


def sleep_task(payload: dict) -> dict:
    """A job that wedges far past any reasonable wall timeout."""
    time.sleep(payload["params"].get("sleep_seconds", 600))
    return {"slept": True}


def flaky_task(payload: dict) -> dict:
    """Fails on the first attempt, succeeds once a sentinel file exists."""
    sentinel = payload["params"]["sentinel"]
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as handle:
            handle.write("attempted\n")
        raise RuntimeError("first attempt always fails")
    return {"recovered": True}


def stats_task(payload: dict) -> dict:
    """A job that reports per-solve telemetry like degradation_task does."""
    params = payload["params"]
    return {
        "echo": params.get("value"),
        "solve_seconds": 0.5,
        "stats": {
            "rows": 10, "cols": 4, "nnz": 20, "num_integer": 2,
            "build_seconds": 0.25, "compile_seconds": 0.125,
            "solve_seconds": 0.5, "backend": "milp",
            "max_abs_coefficient": float(params.get("coef", 8.0)),
            "max_abs_rhs": 12.0, "dual_mode": "none",
            "incremental": False, "compile_cached": False,
        },
    }
