"""Cache-key stability and the on-disk result cache.

The keys gate correctness of every cached campaign: the same inputs must
hash identically everywhere (or caching would never hit), and *any*
change to topology, demands, paths, parameters, or the code salt must
change the key (or a sweep would serve stale numbers).
"""

import copy
import json
import subprocess
import sys

from repro.runner.cache import CODE_SALT, ResultCache, canonical_json, job_key


def _payload():
    """A representative degradation-job payload (nested, JSON-pure)."""
    return {
        "task": "repro.runner.executor:degradation_task",
        "instance": {
            "topology": {
                "kind": "topology", "name": "wan", "nodes": ["a", "b", "c"],
                "lags": [
                    {"u": "a", "v": "b", "links": [
                        {"capacity": 100.0, "failure_probability": 1e-3,
                         "can_fail": True}]},
                    {"u": "b", "v": "c", "links": [
                        {"capacity": 80.0, "failure_probability": 1e-4,
                         "can_fail": True}]},
                ],
                "srlgs": [],
            },
            "demands": {"kind": "demands", "entries": [
                {"src": "a", "dst": "c", "volume": 40.0}]},
            "paths": {"kind": "paths", "demands": [
                {"src": "a", "dst": "c", "num_primary": 1,
                 "paths": [["a", "b", "c"]]}]},
        },
        "params": {"demand_mode": "fixed", "threshold": 1e-4,
                   "max_failures": None, "time_limit": 60.0},
    }


class TestKeyStability:
    def test_same_payload_same_key(self):
        assert job_key(_payload()) == job_key(_payload())

    def test_key_ignores_dict_insertion_order(self):
        payload = _payload()
        reordered = json.loads(canonical_json(payload))
        # Rebuild params in reversed insertion order.
        reordered["params"] = dict(reversed(list(payload["params"].items())))
        assert job_key(reordered) == job_key(payload)

    def test_same_key_across_processes(self):
        """The content address is process-independent (no PYTHONHASHSEED
        leakage), so caches are shareable between campaign invocations."""
        payload = _payload()
        script = (
            "import json,sys; from repro.runner.cache import job_key; "
            "print(job_key(json.load(sys.stdin)))"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            input=canonical_json(payload), text=True,
            capture_output=True, check=True,
        )
        assert out.stdout.strip() == job_key(payload)

    def test_every_input_layer_changes_the_key(self):
        base = _payload()
        mutations = {
            "topology capacity": lambda p: p["instance"]["topology"]["lags"]
                [0]["links"][0].__setitem__("capacity", 101.0),
            "topology probability": lambda p: p["instance"]["topology"]
                ["lags"][1]["links"][0].__setitem__(
                    "failure_probability", 2e-4),
            "demand volume": lambda p: p["instance"]["demands"]["entries"]
                [0].__setitem__("volume", 41.0),
            "path set": lambda p: p["instance"]["paths"]["demands"][0]
                ["paths"].append(["a", "c"]),
            "threshold": lambda p: p["params"].__setitem__(
                "threshold", 1e-5),
            "failure budget": lambda p: p["params"].__setitem__(
                "max_failures", 2),
            "task": lambda p: p.__setitem__("task", "other.module:task"),
        }
        keys = {job_key(base)}
        for name, mutate in mutations.items():
            mutated = copy.deepcopy(base)
            mutate(mutated)
            key = job_key(mutated)
            assert key not in keys, f"mutating {name} did not change the key"
            keys.add(key)

    def test_code_salt_invalidates_everything(self):
        payload = _payload()
        assert job_key(payload) != job_key(payload, salt=CODE_SALT + "-next")


class TestResultCache:
    def test_roundtrip_and_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = job_key(_payload())
        assert key not in cache
        assert cache.get(key) is None
        cache.put(key, {"normalized_degradation": 1.5})
        assert key in cache
        assert cache.get(key) == {"normalized_degradation": 1.5}
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = job_key(_payload())
        cache.path_for(key).write_text("{torn write")
        assert cache.get(key) is None

    def test_no_temp_droppings(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        for i in range(3):
            cache.put(f"k{i}", {"v": i})
        assert not list((tmp_path / "cache").glob("*.tmp"))

    def test_copied_entry_is_quarantined_not_served(self, tmp_path):
        """Regression: an entry file copied under another key's name
        (operator ``cp``, botched sync) passed the checksum -- the
        bytes *are* intact -- and served the wrong job's result.  The
        document's embedded key must match the key it is served
        under."""
        cache = ResultCache(tmp_path / "cache")
        key_a = job_key(_payload())
        payload_b = _payload()
        payload_b["params"]["threshold"] = 1e-7
        key_b = job_key(payload_b)
        cache.put(key_a, {"normalized_degradation": 1.5})
        # Simulate the operator accident.
        cache.path_for(key_b).write_bytes(
            cache.path_for(key_a).read_bytes())
        assert cache.get(key_b) is None
        assert cache.quarantine_path_for(key_b).exists()
        # The legitimate entry is untouched.
        assert cache.get(key_a) == {"normalized_degradation": 1.5}

    def test_legacy_entry_without_key_field_still_served(self, tmp_path):
        """Pre-key-stamp documents carry no ``key`` field; they must
        keep hitting (the footer still guards their integrity)."""
        cache = ResultCache(tmp_path / "cache")
        key = job_key(_payload())
        cache.path_for(key).write_text(
            json.dumps({"result": {"value": 7}}) + "\n")
        assert cache.get(key) == {"value": 7}
