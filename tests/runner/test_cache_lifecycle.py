"""Cache lifecycle: typed key errors, stats, pruning, and the CLI."""

import json
import os
import time

import pytest

from repro.cli import main
from repro.exceptions import CacheKeyError
from repro.runner.cache import ResultCache, canonical_json, job_key


class TestCacheKeyError:
    def test_nan_names_the_offending_field(self):
        with pytest.raises(CacheKeyError) as err:
            canonical_json({"task": "t", "params": {"threshold": float("nan")}})
        assert "$.params.threshold" in str(err.value)

    def test_inf_in_list_names_the_index(self):
        with pytest.raises(CacheKeyError) as err:
            canonical_json({"instance": {"demands": [1.0, float("inf")]}})
        assert "$.instance.demands[1]" in str(err.value)

    def test_non_json_type_names_the_field(self):
        with pytest.raises(CacheKeyError) as err:
            job_key({"params": {"topology": object()}})
        assert "$.params.topology" in str(err.value)

    def test_is_a_repro_error(self):
        from repro.exceptions import ReproError

        assert issubclass(CacheKeyError, ReproError)

    def test_clean_payloads_unaffected(self):
        assert json.loads(canonical_json({"a": 1.5})) == {"a": 1.5}


def filled_cache(root, n=4) -> ResultCache:
    cache = ResultCache(root)
    for i in range(n):
        cache.put(f"{i:02d}" + "ab" * 31, {"value": i, "pad": "x" * 100})
    # Deterministic ages: entry 0 oldest (age n*100s), entry n-1 newest.
    now = time.time()
    for i, entry in enumerate(sorted(cache.entries(),
                                     key=lambda e: e.key)):
        age = (n - i) * 100
        os.utime(entry.path, (now - age, now - age))
    return cache


class TestStatsAndPrune:
    def test_stats_counts_entries_and_bytes(self, tmp_path):
        cache = filled_cache(tmp_path / "cache")
        stats = cache.stats()
        assert stats["entries"] == 4
        assert stats["total_bytes"] > 0
        assert stats["oldest_mtime"] <= stats["newest_mtime"]

    def test_prune_size_cap_evicts_oldest_first(self, tmp_path):
        cache = filled_cache(tmp_path / "cache")
        total = cache.total_bytes()
        per_entry = total // 4
        report = cache.prune(max_bytes=total - per_entry)
        assert report["removed"] == 1
        # Entry 0 was the oldest; 1..3 survive.
        assert cache.get("00" + "ab" * 31) is None
        assert cache.get("03" + "ab" * 31) is not None

    def test_prune_ttl(self, tmp_path):
        cache = filled_cache(tmp_path / "cache")
        report = cache.prune(ttl_seconds=250)
        assert report["removed"] == 2  # ages 400 and 300
        assert report["kept"] == 2

    def test_protected_keys_survive_any_pressure(self, tmp_path):
        cache = filled_cache(tmp_path / "cache")
        protected = {"00" + "ab" * 31}
        report = cache.prune(max_bytes=0, ttl_seconds=0,
                             protected=protected)
        assert report["kept"] == 1
        assert report["protected_kept"] == 1
        assert cache.get("00" + "ab" * 31) is not None

    def test_noop_without_rules(self, tmp_path):
        cache = filled_cache(tmp_path / "cache")
        report = cache.prune()
        assert report["removed"] == 0 and report["kept"] == 4


def _orphan_tmp(cache: ResultCache, name: str, age_seconds: float) -> None:
    """Plant a crashed-write ``.tmp`` orphan ``age_seconds`` old."""
    path = cache.root / name
    path.write_text('{"torn": ')
    stamp = time.time() - age_seconds
    os.utime(path, (stamp, stamp))


class TestTmpSweep:
    """Regression: ``mkstemp`` orphans from crashed writes accumulated
    forever -- invisible to reads, uncounted by stats, never pruned."""

    def test_stats_counts_tmp_orphans(self, tmp_path):
        cache = filled_cache(tmp_path / "cache")
        _orphan_tmp(cache, "dead1.tmp", age_seconds=7200)
        _orphan_tmp(cache, "dead2.tmp", age_seconds=10)
        stats = cache.stats()
        assert stats["tmp_files"] == 2
        assert stats["tmp_bytes"] > 0
        # Orphans are not entries.
        assert stats["entries"] == 4

    def test_prune_sweeps_only_stale_tmp(self, tmp_path):
        cache = filled_cache(tmp_path / "cache")
        _orphan_tmp(cache, "stale.tmp", age_seconds=7200)
        _orphan_tmp(cache, "inflight.tmp", age_seconds=5)
        report = cache.prune()
        assert report["tmp_removed"] == 1
        assert report["tmp_removed_bytes"] > 0
        # The fresh one may be a live writer mid-replace: untouched.
        assert [p.name for p in cache.tmp_files()] == ["inflight.tmp"]
        # Entries themselves were not pruned (no rules given).
        assert report["removed"] == 0 and report["kept"] == 4

    def test_grace_period_override(self, tmp_path):
        cache = filled_cache(tmp_path / "cache")
        _orphan_tmp(cache, "young.tmp", age_seconds=30)
        assert cache.prune()["tmp_removed"] == 0
        assert cache.prune(tmp_grace_seconds=1.0)["tmp_removed"] == 1
        assert cache.tmp_files() == []

    def test_cli_prune_reports_sweep(self, tmp_path, capsys):
        cache = filled_cache(tmp_path / "cache")
        _orphan_tmp(cache, "stale.tmp", age_seconds=7200)
        assert main(["cache", "prune", "--workdir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "swept 1 stale temp file(s)" in out


class TestCacheCli:
    def test_stats_prints_json(self, tmp_path, capsys):
        filled_cache(tmp_path / "cache")
        assert main(["cache", "stats", "--workdir", str(tmp_path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["entries"] == 4

    def test_prune_max_bytes(self, tmp_path, capsys):
        cache = filled_cache(tmp_path / "cache")
        total = cache.total_bytes()
        assert main(["cache", "prune", "--workdir", str(tmp_path),
                     "--max-bytes", str(total // 2)]) == 0
        out = capsys.readouterr().out
        assert "pruned 2 entries" in out
        assert cache.stats()["entries"] == 2

    def test_prune_protects_live_service_jobs(self, tmp_path, capsys):
        from repro.service.store import JobStore

        cache = filled_cache(tmp_path / "cache")
        live_key = "00" + "ab" * 31
        store = JobStore(tmp_path / "service.db")
        store.submit("a1", "camp", "cli",
                     [(live_key, "x", {"task": "t", "params": {}})])
        store.close()
        assert main(["cache", "prune", "--workdir", str(tmp_path),
                     "--max-bytes", "0"]) == 0
        assert "1 protected" in capsys.readouterr().out
        assert cache.get(live_key) is not None
        assert cache.stats()["entries"] == 1

    def test_accepts_bare_cache_directory(self, tmp_path):
        filled_cache(tmp_path / "standalone")
        assert main(["cache", "prune",
                     "--workdir", str(tmp_path / "standalone"),
                     "--ttl", "0"]) == 0
        assert ResultCache(tmp_path / "standalone").stats()["entries"] == 0
