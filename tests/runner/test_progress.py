"""Progress/ETA regression tests and the no-op-tracer overhead contract.

Covers the two progress bugs this repo shipped with: ``render()``
dropping a legitimate ``eta_seconds == 0.0`` through a truthiness
check, and the ETA blending cache-answered jobs into the throughput
estimate (a campaign resuming 900/1000 jobs forecast the remaining
fresh solves at cache speed).
"""

import time

from repro.core.config import RunnerConfig
from repro.obs.trace import Tracer
from repro.runner.executor import run_sweep
from repro.runner.jobs import Job
from repro.runner.progress import ProgressEvent, ProgressTracker

WORKERS = "tests.runner._workers"


def _job(task: str, **params) -> Job:
    return Job({"task": f"{WORKERS}:{task}", "instance": {},
                "params": params})


def _event(**overrides) -> ProgressEvent:
    base = dict(completed=1, total=2, status="done", label="cell",
                cache_hits=0, errors=0, elapsed_seconds=1.0,
                solver_seconds=0.5, rate=1.0, eta_seconds=None)
    base.update(overrides)
    return ProgressEvent(**base)


def _backdate(tracker: ProgressTracker, seconds: float) -> None:
    """Pretend the campaign started ``seconds`` ago."""
    tracker._started = time.monotonic() - seconds
    if tracker._fresh_anchor is not None:
        tracker._fresh_anchor -= seconds


class FakeClock:
    """A deterministic monotonic clock injectable into the tracker."""

    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRenderBoundaries:
    def test_zero_eta_is_rendered(self):
        """Regression: ``eta_seconds == 0.0`` is a real estimate (the
        final heartbeat), not an absent one, and must be shown."""
        assert "eta 0s" in _event(eta_seconds=0.0).render()

    def test_none_eta_is_omitted(self):
        assert "eta" not in _event(eta_seconds=None).render()

    def test_positive_eta_is_rendered(self):
        assert "eta 42s" in _event(eta_seconds=42.4).render()

    def test_render_core_fields(self):
        line = _event(completed=3, total=9, status="cached",
                      label="cell-3", cache_hits=2, errors=1,
                      rate=1.5).render()
        assert "[3/9]" in line
        assert "cached" in line
        assert "cell-3" in line
        assert "2 cached, 1 errors" in line
        assert "1.50 jobs/s" in line


class TestEtaSemantics:
    def test_eta_uses_fresh_rate_not_blended(self):
        """Regression: resuming 8 of 10 jobs must not forecast the
        remaining fresh solves at cache speed."""
        tracker = ProgressTracker(total=10)
        for i in range(8):
            tracker.note("resumed", f"cell-{i}")
        _backdate(tracker, 10.0)
        event = tracker.note("done", "cell-8")
        # 1 fresh solve in ~10s with 1 job remaining: the fresh rate
        # says ~10s out; the blended rate (9 jobs / 10s) would say ~1s.
        assert event.fresh_completed == 1
        assert 8.0 < event.eta_seconds < 20.0

    def test_resume_heavy_eta_magnitude(self):
        """With 90 cached settles and 1 fresh solve in ~10s, the 9
        remaining fresh jobs are ~90s out -- not the ~1s a blended
        rate would claim."""
        tracker = ProgressTracker(total=100)
        for i in range(90):
            tracker.note("cached", f"cell-{i}")
        _backdate(tracker, 10.0)
        event = tracker.note("done", "cell-90")
        blended_eta = (100 - 91) / event.rate
        assert event.fresh_completed == 1
        assert event.eta_seconds > 5 * blended_eta
        assert 45.0 < event.eta_seconds < 180.0

    def test_fresh_rate_ignores_cache_replay_time(self):
        """Regression: the fresh rate divided fresh settles by *total*
        campaign elapsed, cache-replay minutes included.  A campaign
        resuming 900 of 1000 jobs that spends 30s replaying the cache
        and then solves at 1 job/s reported a fresh rate of
        ``n_fresh / (30 + n_fresh)`` -- and an ETA up to 4x too high.
        The rate must be measured from the first fresh settle."""
        clock = FakeClock()
        tracker = ProgressTracker(total=1000, clock=clock)
        # 30 seconds of cache replay.
        for i in range(900):
            clock.advance(30.0 / 900.0)
            tracker.note("cached", f"cell-{i}")
        # Fresh solves at exactly 1 job/s.
        event = None
        for i in range(10):
            clock.advance(1.0)
            event = tracker.note("done", f"cell-{900 + i}")
        assert event.fresh_completed == 10
        # 90 fresh jobs remain at 1 job/s: the true ETA is 90s.  The
        # pre-fix rate was 10/40 = 0.25 job/s -> eta 360s.
        assert 80.0 < event.eta_seconds < 100.0

    def test_anchor_window_self_calibrates_through_campaign(self):
        """The window rate stays correct deep into the fresh phase,
        not just immediately after the replay."""
        clock = FakeClock()
        tracker = ProgressTracker(total=1000, clock=clock)
        for i in range(900):
            tracker.note("cached", f"cell-{i}")
        clock.advance(30.0)  # replay + idle gap, all before first fresh
        event = None
        for i in range(50):
            clock.advance(2.0)  # 0.5 job/s
            event = tracker.note("done", f"cell-{900 + i}")
        # 50 remaining at 0.5 job/s -> 100s.
        assert 90.0 < event.eta_seconds < 115.0

    def test_blended_fallback_before_first_fresh_solve(self):
        """Until a fresh job settles there is no fresh rate; the
        blended rate is the only signal and must be used."""
        tracker = ProgressTracker(total=4)
        _backdate(tracker, 2.0)
        event = tracker.note("cached", "cell-0")
        assert event.fresh_completed == 0
        assert event.eta_seconds is not None
        assert event.eta_seconds > 0.0

    def test_final_heartbeat_eta_is_zero(self):
        tracker = ProgressTracker(total=2)
        tracker.note("done", "a")
        event = tracker.note("done", "b")
        assert event.eta_seconds == 0.0
        assert "eta 0s" in event.render()

    def test_rate_stays_blended(self):
        """``rate`` answers "how fast is the campaign moving" -- cached
        settles still count there."""
        tracker = ProgressTracker(total=10)
        for i in range(4):
            tracker.note("cached", f"cell-{i}")
        _backdate(tracker, 2.0)
        event = tracker.note("done", "cell-4")
        assert event.rate > event.fresh_completed / event.elapsed_seconds


class TestTrackerTallies:
    def test_counts_and_seconds(self):
        tracker = ProgressTracker(total=5)
        tracker.note("done", "a", solver_seconds=1.0,
                     stats={"build_seconds": 0.25, "compile_seconds": 0.5})
        tracker.note("cached", "b")
        tracker.note("resumed", "c")
        tracker.note("error", "d")
        event = tracker.note("timeout", "e", solver_seconds=2.0)
        assert event.completed == 5
        assert event.cache_hits == 2
        assert event.errors == 2
        assert event.fresh_completed == 3  # done + error + timeout
        assert event.solver_seconds == 3.0
        assert event.build_seconds == 0.25
        assert event.compile_seconds == 0.5

    def test_phase_seconds_accumulate_from_spans(self):
        tracker = ProgressTracker(total=2)
        spans = [
            {"type": "span", "name": "milp_solve", "id": "s1",
             "parent": None, "duration_seconds": 1.5, "attrs": {}},
            {"type": "span", "name": "compile", "id": "s2",
             "parent": None, "duration_seconds": 0.5, "attrs": {}},
            {"type": "metrics", "counters": {}},  # skipped: not a span
        ]
        tracker.note("done", "a", spans=spans)
        event = tracker.note("done", "b", spans=[
            {"name": "milp_solve", "id": "s3", "parent": None,
             "duration_seconds": 0.5, "attrs": {}},
        ])
        assert event.phase_seconds == {"milp_solve": 2.0, "compile": 0.5}

    def test_phase_seconds_empty_without_spans(self):
        tracker = ProgressTracker(total=1)
        event = tracker.note("done", "a")
        assert event.phase_seconds == {}


class TestSweepTracingContract:
    def test_untraced_sweep_carries_no_spans(self):
        """The no-op default: without a tracer, outcomes carry no span
        payloads, phase totals are empty, and events are span-free."""
        events = []
        outcome = run_sweep(
            [_job("echo_task", value=i) for i in range(3)],
            num_workers=1, progress=events.append,
            config=RunnerConfig(retries=0),
        )
        assert all(o.status == "done" for o in outcome.outcomes)
        assert all(o.spans is None for o in outcome.outcomes)
        assert outcome.phase_totals() == {}
        assert all(e.phase_seconds == {} for e in events)

    def test_traced_sweep_records_job_spans(self):
        tracer = Tracer()
        outcome = run_sweep(
            [_job("echo_task", value=i) for i in range(2)],
            num_workers=1, tracer=tracer,
            config=RunnerConfig(retries=0),
        )
        assert all(o.status == "done" for o in outcome.outcomes)
        # echo_task opens no spans itself, but the campaign tracer
        # records the sweep root and one retroactive span per job.
        docs = tracer.export()
        names = [d["name"] for d in docs]
        assert names.count("sweep") == 1
        assert names.count("job") == 2
        (sweep,) = (d for d in docs if d["name"] == "sweep")
        assert sweep["attrs"]["total"] == 2
        for doc in docs:
            if doc["name"] == "job":
                assert doc["parent"] == sweep["id"]
                assert doc["attrs"]["status"] == "done"

    def test_traced_and_untraced_results_identical(self):
        jobs = [_job("echo_task", value=i) for i in range(3)]
        plain = run_sweep(jobs, num_workers=1,
                          config=RunnerConfig(retries=0))
        traced = run_sweep(jobs, num_workers=1, tracer=Tracer(),
                           config=RunnerConfig(retries=0))
        assert [o.result for o in plain.outcomes] \
            == [o.result for o in traced.outcomes]
        assert [o.status for o in plain.outcomes] \
            == [o.status for o in traced.outcomes]
