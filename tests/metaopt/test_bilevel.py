"""Tests for the Stackelberg reduction facade."""

import pytest

from repro.exceptions import ModelingError
from repro.metaopt import StackelbergProblem


def build_capacity_game():
    """Outer splits capacity 4 between two inner flows (see duality tests)."""
    game = StackelbergProblem("toy")
    model = game.model
    c1 = model.add_var(lb=0, ub=4, name="c1")
    c2 = model.add_var(lb=0, ub=4, name="c2")
    model.add_constr(c1 + c2 == 4)
    heur = game.adversarial_inner("heur", sense="max")
    f1 = heur.add_var(obj_coef=1.0, value_bound=4.0, name="f1")
    f2 = heur.add_var(obj_coef=1.0, value_bound=4.0, name="f2")
    heur.add_constr(f1 <= c1, dual_bound=1.0, slack_bound=4.0)
    heur.add_constr(f2 <= c2, dual_bound=1.0, slack_bound=4.0)
    heur.add_constr(f1 <= 1, dual_bound=1.0, slack_bound=4.0)
    return game, heur, (c1, c2, f1, f2)


class TestGame:
    def test_gap_objective_with_constant_optimal(self):
        game, heur, (c1, c2, f1, f2) = build_capacity_game()
        game.set_objective_terms([(heur, -1.0)], extra=4.0)
        result = game.solve().require_ok()
        # Adversary starves f2 by giving all capacity to capped f1.
        assert result.objective == pytest.approx(3.0, abs=1e-6)
        game.verify(result)

    def test_aligned_plus_adversarial_gap(self):
        game = StackelbergProblem("gap")
        model = game.model
        b = model.add_var(lb=0, ub=5, name="b")
        optimal = game.aligned_inner("opt", sense="max")
        x = optimal.add_var(obj_coef=1.0, value_bound=10.0, name="x")
        optimal.add_constr(x <= 5, dual_bound=1.0, slack_bound=10.0)
        heur = game.adversarial_inner("heur", sense="max")
        y = heur.add_var(obj_coef=1.0, value_bound=10.0, name="y")
        heur.add_constr(y <= b, dual_bound=1.0, slack_bound=10.0)
        heur.add_constr(y <= 5, dual_bound=1.0, slack_bound=10.0)
        game.set_gap_objective(optimal, heur)
        result = game.solve().require_ok()
        # opt = 5 always; heur = min(b, 5); adversary picks b = 0.
        assert result.objective == pytest.approx(5.0, abs=1e-6)
        assert result.value(b) == pytest.approx(0.0, abs=1e-6)

    def test_min_inners_flip_signs(self):
        game = StackelbergProblem("mlu-like")
        model = game.model
        d = model.add_var(lb=0, ub=6, name="d")
        optimal = game.aligned_inner("opt", sense="min")
        u_o = optimal.add_var(obj_coef=1.0, value_bound=10.0, name="u_o")
        optimal.add_constr(d - 3 * u_o <= 0, dual_bound=1.0, slack_bound=40.0)
        heur = game.adversarial_inner("heur", sense="min")
        u_h = heur.add_var(obj_coef=1.0, value_bound=10.0, name="u_h")
        heur.add_constr(d - 2 * u_h <= 0, dual_bound=1.0, slack_bound=40.0)
        game.set_gap_objective(optimal, heur)
        result = game.solve().require_ok()
        # gap = d/2 - d/3 = d/6, maximized at d = 6 -> 1.
        assert result.objective == pytest.approx(1.0, abs=1e-6)
        assert result.value(d) == pytest.approx(6.0, abs=1e-6)
        game.verify(result)

    def test_sign_discipline_enforced(self):
        game = StackelbergProblem("bad")
        aligned = game.aligned_inner("a", sense="max")
        aligned.add_var(obj_coef=1.0, value_bound=1.0)
        with pytest.raises(ModelingError):
            game.set_objective_terms([(aligned, -1.0)])

    def test_adversarial_with_positive_sign_rejected(self):
        game = StackelbergProblem("bad2")
        adv = game.adversarial_inner("h", sense="max")
        adv.add_var(obj_coef=1.0, value_bound=1.0)
        with pytest.raises(ModelingError):
            game.set_objective_terms([(adv, 1.0)])

    def test_mismatched_senses_rejected(self):
        game = StackelbergProblem("bad3")
        a = game.aligned_inner("a", sense="max")
        h = game.adversarial_inner("h", sense="min")
        with pytest.raises(ModelingError):
            game.set_gap_objective(a, h)

    def test_foreign_inner_rejected(self):
        from repro.solver import Model
        from repro.solver.duality import InnerLP

        game = StackelbergProblem("bad4")
        foreign = InnerLP(Model(), "foreign", sense="max")
        with pytest.raises(ModelingError):
            game.set_objective_terms([(foreign, -1.0)])

    def test_finalize_idempotent(self):
        game, heur, _ = build_capacity_game()
        game.set_objective_terms([(heur, -1.0)], extra=4.0)
        game.finalize()
        game.finalize()  # no error, no duplicate KKT
        result = game.solve().require_ok()
        assert result.objective == pytest.approx(3.0, abs=1e-6)
