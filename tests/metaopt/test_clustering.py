"""Tests for Algorithm 1 (demand clustering)."""

import pytest

from repro import (
    ModelingError,
    PathSet,
    RahaAnalyzer,
    RahaConfig,
    analyze_with_clustering,
    cluster_nodes,
)
from repro.network.builder import from_edges
from repro.network.generators import small_ring


@pytest.fixture
def two_zones():
    # Two dense zones joined by one inter-zone LAG: a natural 2-clustering.
    return from_edges([
        ("a1", "a2", 10), ("a2", "a3", 10), ("a1", "a3", 10),
        ("b1", "b2", 10), ("b2", "b3", 10), ("b1", "b3", 10),
        ("a3", "b1", 4),
    ], failure_probability=0.05)


class TestClusterNodes:
    def test_respects_count(self, two_zones):
        clusters = cluster_nodes(two_zones, 2, seed=1)
        assert len(clusters) == 2
        assert set().union(*clusters) == set(two_zones.nodes)
        assert not clusters[0] & clusters[1]

    def test_cuts_the_thin_lag(self, two_zones):
        clusters = cluster_nodes(two_zones, 2, seed=1)
        zones = [frozenset(c) for c in clusters]
        assert frozenset({"a1", "a2", "a3"}) in zones
        assert frozenset({"b1", "b2", "b3"}) in zones

    def test_single_cluster(self, two_zones):
        clusters = cluster_nodes(two_zones, 1)
        assert clusters == [set(two_zones.nodes)]

    def test_more_clusters_than_nodes_rejected(self, two_zones):
        with pytest.raises(ModelingError):
            cluster_nodes(two_zones, 100)

    def test_zero_clusters_rejected(self, two_zones):
        with pytest.raises(ModelingError):
            cluster_nodes(two_zones, 0)

    def test_many_clusters(self):
        topo = small_ring(num_nodes=8, chords=2)
        clusters = cluster_nodes(topo, 4, seed=0)
        assert len(clusters) == 4
        assert sum(len(c) for c in clusters) == 8


class TestAnalyzeWithClustering:
    def test_requires_joint_mode(self, two_zones):
        paths = PathSet.k_shortest(two_zones, [("a1", "b2")], 1, 1)
        config = RahaConfig(fixed_demands={("a1", "b2"): 1.0})
        with pytest.raises(ModelingError):
            analyze_with_clustering(two_zones, paths, config, 2)

    def test_clustered_close_to_unclustered_on_small_case(self, two_zones):
        pairs = [("a1", "b2"), ("b1", "a2")]
        paths = PathSet.k_shortest(two_zones, pairs, num_primary=1,
                                   num_backup=1)
        bounds = {p: (0.0, 8.0) for p in pairs}
        config = RahaConfig(demand_bounds=bounds, max_failures=1)
        exact = RahaAnalyzer(two_zones, paths, config).analyze()
        clustered = analyze_with_clustering(two_zones, paths, config, 2,
                                            seed=1)
        # Clustering approximates the demand: it can only find <= exact,
        # and on this toy it should get most of the way there.
        assert clustered.degradation <= exact.degradation + 1e-6
        assert clustered.degradation >= 0.5 * exact.degradation - 1e-6
        assert any("clustered" in n for n in clustered.notes)

    def test_clustered_result_is_simulatable(self, two_zones):
        pairs = [("a1", "b2")]
        paths = PathSet.k_shortest(two_zones, pairs, num_primary=1,
                                   num_backup=1)
        config = RahaConfig(demand_bounds={p: (0.0, 8.0) for p in pairs},
                            max_failures=2)
        result = analyze_with_clustering(two_zones, paths, config, 2, seed=1)
        # Verification runs inside the final fixed-demand analysis.
        assert result.verified

    def test_time_budget_divided(self, two_zones):
        pairs = [("a1", "b2")]
        paths = PathSet.k_shortest(two_zones, pairs, num_primary=1,
                                   num_backup=1)
        config = RahaConfig(demand_bounds={p: (0.0, 8.0) for p in pairs},
                            max_failures=1, time_limit=100.0)
        result = analyze_with_clustering(two_zones, paths, config, 2, seed=1)
        assert result.degradation >= 0
