"""Crash-recovery acceptance: kill -9 the real server mid-campaign.

A `repro serve` subprocess runs with a chaos plan whose crash sites
HARD-EXIT the process (genuine kill -9 semantics -- no cleanup, no
flushing).  The tests assert the ISSUE's acceptance criteria directly:

* no accepted job is lost and none double-runs (the ``transitions``
  audit table shows exactly one terminal transition per job);
* the restarted service's results are bit-identical to running the
  same spec straight through ``run_sweep``.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.runner.cache import ResultCache
from repro.runner.executor import run_sweep
from repro.runner.jobs import SweepSpec
from repro.service.client import ServiceClient
from repro.service.store import CRASH_EXIT_CODE, JobStore
from tests.service._specs import echo_spec

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Crash hard at the first claim: one job is left 'running' on disk.
CRASH_PLAN = json.dumps({
    "kind": "fault_plan",
    "seed": 7,
    "points": [{"site": "service.crash_claimed", "rate": 1.0,
                "max_fires": 1}],
})


def start_server(workdir: Path, chaos: str | None = None):
    """Launch ``repro serve`` and wait for its state file."""
    state = workdir / "service.json"
    if state.exists():
        state.unlink()  # a stale file would hand out the old port
    cmd = [sys.executable, "-m", "repro", "serve",
           "--workdir", str(workdir), "--port", "0",
           "--workers", "1", "--no-isolate"]
    if chaos:
        cmd += ["--chaos", chaos]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(cmd, cwd=REPO_ROOT, env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.PIPE)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"server exited {proc.returncode} during startup: "
                f"{proc.stderr.read().decode()}")
        if state.exists():
            try:
                return proc, json.loads(state.read_text())["url"]
            except (ValueError, KeyError):
                pass  # partially written
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("server did not write its state file in time")


def stop_server(proc) -> int:
    proc.send_signal(signal.SIGTERM)
    try:
        return proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise


class TestCrashRecovery:
    def test_kill9_midcampaign_then_restart_exactly_once(self, tmp_path):
        workdir = tmp_path / "svc"
        workdir.mkdir()
        doc = echo_spec([1, 2, 3], name="crashy")
        spec = SweepSpec.from_dict(doc)

        proc, url = start_server(workdir, chaos=CRASH_PLAN)
        client = ServiceClient(url, client_id="test")
        accepted = client.submit(doc)
        assert accepted["total_jobs"] == 3

        # The first claim fires the injected crash: the server process
        # hard-exits with the crash code, one job wedged in 'running'.
        assert proc.wait(timeout=30) == CRASH_EXIT_CODE
        store = JobStore(workdir / "service.db")
        wedged = store.counts()
        store.close()
        assert wedged["running"] == 1
        assert wedged["queued"] == 2

        # Restart (no chaos): recovery requeues; everything finishes.
        proc, url = start_server(workdir)
        try:
            client = ServiceClient(url, client_id="test")
            results = client.wait(accepted["id"], timeout=60)
        finally:
            assert stop_server(proc) == 0
        assert results["counts"]["done"] == 3
        by_value = sorted(j["result"]["echo"] for j in results["jobs"])
        assert by_value == [1, 2, 3]

        # Exactly-once: one terminal transition per job, ever.
        store = JobStore(workdir / "service.db")
        try:
            terminal = {}
            for t in store.transitions(accepted["id"]):
                if t["to_state"] in ("done", "failed", "cancelled"):
                    terminal[t["key"]] = terminal.get(t["key"], 0) + 1
            assert terminal == {job.key: 1 for job in spec.expand()}
            # ... and the crashed job really did take two attempts.
            attempts = {j["key"]: j["attempts"]
                        for j in store.analysis_jobs(accepted["id"])}
            assert max(attempts.values()) == 2
            assert sorted(attempts.values()) == [1, 1, 2]
        finally:
            store.close()

        # Bit-identical to the direct executor path on the same spec.
        direct = run_sweep(spec, num_workers=1,
                           cache=ResultCache(tmp_path / "direct-cache"),
                           handle_signals=False)
        direct_by_key = {o.job.key: o.result for o in direct.outcomes}
        service_by_key = {j["key"]: j["result"] for j in results["jobs"]}
        assert service_by_key == direct_by_key

    def test_sigterm_drains_cleanly(self, tmp_path):
        workdir = tmp_path / "svc"
        workdir.mkdir()
        proc, url = start_server(workdir)
        client = ServiceClient(url, client_id="test")
        accepted = client.submit(echo_spec(range(4), name="drain"))
        client.wait(accepted["id"], timeout=60)
        assert stop_server(proc) == 0
        # Nothing left half-done on disk after a graceful stop.
        store = JobStore(workdir / "service.db")
        try:
            counts = store.counts()
        finally:
            store.close()
        assert counts["running"] == 0
        assert counts["done"] == 4
