"""The HTTP surface: routes, admission, dedup, eviction, client lib."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.config import ServiceConfig
from repro.exceptions import AdmissionError, ServiceError
from repro.service.api import AnalysisService, make_server
from repro.service.client import ServiceClient
from tests.service._specs import echo_spec, sleep_spec


@pytest.fixture
def service(tmp_path):
    """A full service on an ephemeral port, workers NOT started.

    Tests that need jobs to actually run call ``run_until_idle`` --
    deterministic, no polling races.
    """
    config = ServiceConfig(port=0, num_workers=1, isolate_jobs=False,
                           max_queue_depth=10, max_inflight_per_client=8,
                           retry_after_seconds=3.0,
                           poll_interval_seconds=0.02)
    service = AnalysisService(tmp_path / "svc", config=config)
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[0], server.server_address[1]
    service.base_url = f"http://{host}:{port}"
    yield service
    server.shutdown()
    thread.join(timeout=5)
    service.stop(drain=False)


def raw(service, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(service.base_url + path, data=data,
                                     method=method)
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return (response.status, json.loads(response.read() or b"{}"),
                    dict(response.headers))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}"), dict(exc.headers)


class TestSubmission:
    def test_submit_then_dedup(self, service):
        doc = echo_spec([1, 2])
        status, body, _ = raw(service, "POST", "/v1/analyses", doc)
        assert status == 201 and body["total_jobs"] == 2
        status, body, _ = raw(service, "POST", "/v1/analyses", doc)
        assert status == 200 and body["deduped"] is True

    def test_rejects_file_references(self, service):
        doc = echo_spec([1])
        doc["instance"] = {"topology": "/etc/hostname"}
        status, body, _ = raw(service, "POST", "/v1/analyses", doc)
        assert status == 400
        assert "embedded" in body["error"]

    def test_rejects_invalid_spec_and_bad_json(self, service):
        status, body, _ = raw(service, "POST", "/v1/analyses",
                              {"kind": "sweep_spec", "instance": {}})
        assert status == 400 and "invalid sweep spec" in body["error"]
        request = urllib.request.Request(
            service.base_url + "/v1/analyses", data=b"not json",
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_unknown_route_404(self, service):
        status, _, _ = raw(service, "GET", "/v1/nope")
        assert status == 404


class TestAdmission:
    def test_queue_depth_shed_with_retry_after(self, service):
        status, _, _ = raw(service, "POST", "/v1/analyses",
                           echo_spec(range(8), name="filler"))
        assert status == 201
        status, body, headers = raw(service, "POST", "/v1/analyses",
                                    echo_spec(range(100, 108), name="over"))
        assert status == 429
        assert "Retry-After" in headers
        assert int(headers["Retry-After"]) >= 1
        assert body["retry_after_seconds"] >= 3.0

    def test_per_client_cap(self, service):
        client = ServiceClient(service.base_url, client_id="greedy")
        client.submit(echo_spec(range(8), name="first"))
        with pytest.raises(AdmissionError) as err:
            client.submit(echo_spec(range(2), name="second"))
        assert err.value.retry_after is not None
        assert "per-client cap" in str(err.value)
        # Another client still fits under the global depth cap.
        other = ServiceClient(service.base_url, client_id="patient")
        assert other.submit(echo_spec(range(2), name="second"))["id"]

    def test_oversize_batch_is_permanent_400(self, service):
        """Regression: a batch bigger than the queue cap used to come
        back 429 + Retry-After, sending clients into an infinite retry
        loop for a submission that can never fit."""
        status, body, headers = raw(service, "POST", "/v1/analyses",
                                    echo_spec(range(12), name="huge"))
        assert status == 400
        assert "Retry-After" not in headers
        assert "retry_after_seconds" not in body
        assert "split the batch" in body["error"]

    def test_dedup_bypasses_admission(self, service):
        doc = echo_spec(range(8), name="filler")
        assert raw(service, "POST", "/v1/analyses", doc)[0] == 201
        # Queue is now nearly full; resubmitting the same spec is not
        # new load and must not be shed.
        status, body, _ = raw(service, "POST", "/v1/analyses", doc)
        assert status == 200 and body["deduped"]


class TestLifecycle:
    def test_status_result_and_cancel(self, service):
        client = ServiceClient(service.base_url)
        accepted = client.submit(echo_spec([1, 2, 3]))
        analysis_id = accepted["id"]
        assert client.status(analysis_id)["state"] == "queued"
        assert client.result(analysis_id) is None  # 202 while queued
        service.scheduler.run_until_idle()
        results = client.result(analysis_id)
        assert results["counts"]["done"] == 3
        assert sorted(j["result"]["echo"] for j in results["jobs"]) \
            == [1, 2, 3]

    def test_result_of_unfinished_carries_retry_after(self, service):
        analysis_id = raw(service, "POST", "/v1/analyses",
                          echo_spec([1]))[1]["id"]
        status, _, headers = raw(
            service, "GET", f"/v1/analyses/{analysis_id}/result")
        assert status == 202
        assert "Retry-After" in headers

    def test_cancel_queued_jobs(self, service):
        client = ServiceClient(service.base_url)
        analysis_id = client.submit(echo_spec([1, 2, 3]))["id"]
        assert client.cancel(analysis_id)["cancelled"] == 3
        assert client.status(analysis_id)["state"] == "cancelled"

    def test_unknown_analysis_is_404(self, service):
        client = ServiceClient(service.base_url)
        with pytest.raises(ServiceError) as err:
            client.status("feedfacedeadbeef")
        assert err.value.status == 404

    def test_cancel_unknown_analysis_is_404(self, service):
        status, body, _ = raw(service, "DELETE",
                              "/v1/analyses/feedfacedeadbeef")
        assert status == 404
        assert "unknown analysis" in body["error"]

    def test_cancel_terminal_analysis_is_409(self, service):
        """Regression: DELETE used to answer 200 for both "nothing to
        cancel" and a genuine cancel -- a client could not tell a
        finished analysis from a live one it just stopped."""
        client = ServiceClient(service.base_url)
        analysis_id = client.submit(echo_spec([1]))["id"]
        service.scheduler.run_until_idle()
        status, body, _ = raw(service, "DELETE",
                              f"/v1/analyses/{analysis_id}")
        assert status == 409
        assert "terminal" in body["error"]
        # The client lib surfaces it as a ServiceError with the status.
        with pytest.raises(ServiceError) as err:
            client.cancel(analysis_id)
        assert err.value.status == 409

    def test_evicted_results_reported_gone(self, service):
        client = ServiceClient(service.base_url)
        analysis_id = client.submit(echo_spec([1]))["id"]
        service.scheduler.run_until_idle()
        # Evict everything behind the service's back.
        service.cache.prune(max_bytes=0)
        status, body, _ = raw(
            service, "GET", f"/v1/analyses/{analysis_id}/result")
        assert status == 410
        assert body["evicted"] == 1
        assert body["jobs"][0]["evicted"] is True

    def test_wait_polls_to_completion(self, service):
        client = ServiceClient(service.base_url)
        analysis_id = client.submit(echo_spec([9]))["id"]
        done = threading.Event()

        def drain():
            time.sleep(0.1)
            service.scheduler.run_until_idle()
            done.set()

        threading.Thread(target=drain, daemon=True).start()
        results = client.wait(analysis_id, timeout=20, poll_interval=0.05)
        assert done.is_set()
        assert results["jobs"][0]["result"] == {"echo": 9}


class TestSupervisionSurface:
    def test_deadline_seconds_validated(self, service):
        doc = echo_spec([1])
        doc["deadline_seconds"] = -1
        status, body, _ = raw(service, "POST", "/v1/analyses", doc)
        assert status == 400
        assert "deadline_seconds" in body["error"]
        doc["deadline_seconds"] = "soon"
        assert raw(service, "POST", "/v1/analyses", doc)[0] == 400

    def test_deadline_rides_submission_and_expires(self, service):
        client = ServiceClient(service.base_url)
        analysis_id = client.submit(echo_spec([1], name="rush"),
                                    deadline_seconds=0.01)["id"]
        time.sleep(0.05)
        service.scheduler.run_until_idle()
        status = client.status(analysis_id)
        assert status["state"] == "failed"
        result = client.result(analysis_id)
        assert result["jobs"][0]["status"] == "deadline_exceeded"

    def _quarantine_one(self, service, doc):
        """Burn a job's whole claim budget via recovery, then let the
        scheduler's supervision pass quarantine it."""
        client = ServiceClient(service.base_url)
        analysis_id = client.submit(doc)["id"]
        budget = service.config.supervision.max_job_attempts
        for _ in range(budget):
            assert service.store.claim() is not None
            service.store.recover()
        service.scheduler.run_until_idle()
        return client, analysis_id

    def test_quarantine_listing_and_retry(self, service):
        client, analysis_id = self._quarantine_one(
            service, echo_spec([3], name="poisoned"))
        assert client.status(analysis_id)["state"] == "quarantined"
        listing = client.quarantine()
        assert listing["total"] == 1
        assert listing["jobs"][0]["analysis_id"] == analysis_id
        scoped = client.quarantine(analysis_id)
        assert scoped["total"] == 1
        assert client.quarantine("feedfacedeadbeef")["total"] == 0
        # Retry requeues with a fresh budget; the job then completes.
        assert client.retry(analysis_id)["retried"] == 1
        service.scheduler.run_until_idle()
        assert client.status(analysis_id)["state"] == "done"
        assert client.result(analysis_id)["jobs"][0]["result"] \
            == {"echo": 3}

    def test_retry_unknown_analysis_is_404(self, service):
        status, body, _ = raw(service, "POST",
                              "/v1/analyses/feedfacedeadbeef/retry")
        assert status == 404

    def test_retry_with_nothing_quarantined_is_zero(self, service):
        client = ServiceClient(service.base_url)
        analysis_id = client.submit(echo_spec([1]))["id"]
        assert client.retry(analysis_id)["retried"] == 0


class TestOps:
    def test_healthz(self, service):
        client = ServiceClient(service.base_url)
        health = client.health()
        assert health["ok"] is True
        assert health["workers"] == 1
        assert set(health["counts"]) == {"queued", "running", "done",
                                         "failed", "cancelled",
                                         "quarantined"}

    def test_metricz_exports_service_counters(self, service):
        client = ServiceClient(service.base_url)
        client.submit(echo_spec([4, 5]))
        service.scheduler.run_until_idle()
        snapshot = client.metrics()
        counters = snapshot.get("counters", {})
        assert counters.get("service.submitted", 0) >= 1
        assert counters.get("service.jobs_done", 0) >= 2
        assert counters.get("service.http_requests", 0) >= 1

    def test_method_not_allowed(self, service):
        status, _, _ = raw(service, "DELETE", "/v1/analyses")
        assert status == 405


class TestAvailabilityJobs:
    def test_availability_spec_runs_through_the_service(self, service):
        from repro.core.config import MonteCarloConfig
        from repro.failures.availability import (
            estimate_availability_parallel,
        )
        from repro.network import serialization as ser
        from repro.network.builder import from_edges
        from repro.paths.pathset import PathSet

        topology = from_edges([
            ("a", "b", 10), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
        ], failure_probability=0.2)
        demands = {("a", "d"): 12.0}
        paths = PathSet.k_shortest(topology, [("a", "d")],
                                   num_primary=2, num_backup=0)
        spec = {
            "kind": "sweep_spec",
            "name": "avail",
            "task": "repro.failures.availability:availability_task",
            "instance": {
                "topology": ser.topology_to_dict(topology),
                "demands": ser.demands_to_dict(demands),
                "paths": ser.paths_to_dict(paths),
            },
            "base": {"samples": 40, "degradation_threshold": 1.0},
            "grid": {"seed": [11]},
        }
        client = ServiceClient(service.base_url)
        analysis_id = client.submit(spec)["id"]
        service.scheduler.run_until_idle()
        results = client.result(analysis_id)
        assert results["counts"]["done"] == 1
        payload = results["jobs"][0]["result"]
        direct = estimate_availability_parallel(
            topology, demands, paths,
            MonteCarloConfig(samples=40, seed=11,
                             degradation_threshold=1.0, num_workers=1))
        assert payload["availability"] == direct.availability
        assert payload["expected_degradation"] == \
            direct.expected_degradation
        assert payload["samples"] == 40


class TestEviction:
    def test_live_job_results_never_evicted(self, tmp_path):
        config = ServiceConfig(port=0, num_workers=1, isolate_jobs=False,
                               result_max_bytes=0)
        service = AnalysisService(tmp_path / "svc", config=config)
        try:
            # Seed the cache with a result whose key matches a queued
            # job, then evict with max_bytes=0: only the live key stays.
            from repro.runner.jobs import SweepSpec

            spec = SweepSpec.from_dict(sleep_spec(30, [1]))
            job = spec.expand()[0]
            service.cache.put(job.key, {"kept": True})
            service.cache.put("deadbeef" * 8, {"doomed": True})
            service.store.submit(spec.spec_hash, spec.name, "t",
                                 [(job.key, job.label, job.payload)])
            report = service.results.evict_once()
            assert report["removed"] == 1
            assert report["protected_kept"] == 1
            assert service.cache.get(job.key) == {"kept": True}
        finally:
            service.stop(drain=False)


class TestBodyCap:
    def test_oversized_batch_is_413_before_reading(self, tmp_path):
        config = ServiceConfig(port=0, num_workers=1, isolate_jobs=False,
                               max_body_bytes=2048)
        service = AnalysisService(tmp_path / "svc", config=config)
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[0], server.server_address[1]
        service.base_url = f"http://{host}:{port}"
        try:
            # A batch big enough to blow the cap -- the server must
            # refuse on Content-Length, before parsing a byte.
            doc = echo_spec(list(range(2000)), name="oversized")
            status, body, _ = raw(service, "POST", "/v1/analyses", doc)
            assert status == 413
            assert "2048-byte limit" in body["error"]
            # Within the cap everything still works.
            status, body, _ = raw(service, "POST", "/v1/analyses",
                                  echo_spec([1], name="small"))
            assert status == 201
        finally:
            server.shutdown()
            thread.join(timeout=5)
            service.stop(drain=False)
