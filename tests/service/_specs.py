"""Shared sweep-spec documents for service tests."""

from __future__ import annotations


def echo_spec(values, name: str = "echo") -> dict:
    """A self-contained spec of fast echo jobs, one per value."""
    return {
        "kind": "sweep_spec",
        "name": name,
        "task": "tests.runner._workers:echo_task",
        "instance": {"topology": {"nodes": [], "links": []}},
        "grid": {"value": list(values)},
    }


def sleep_spec(seconds: float, values, name: str = "sleepy") -> dict:
    """Jobs that sleep -- for drain/backpressure timing tests."""
    return {
        "kind": "sweep_spec",
        "name": name,
        "task": "tests.runner._workers:sleep_task",
        "instance": {"topology": {"nodes": [], "links": []}},
        "base": {"sleep_seconds": seconds},
        "grid": {"value": list(values)},
    }
