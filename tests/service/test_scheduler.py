"""The scheduler: claim/run/settle, injected crashes, drain-on-stop."""

import time

import pytest

from repro.core.config import ServiceConfig
from repro.resilience.faults import injected
from repro.runner.cache import ResultCache
from repro.runner.jobs import SweepSpec
from repro.service.scheduler import Scheduler
from repro.service.store import InjectedServiceCrash, JobStore
from tests.service._specs import echo_spec, sleep_spec


@pytest.fixture
def store(tmp_path):
    store = JobStore(tmp_path / "service.db")
    yield store
    store.close()


def submitted(store, doc) -> tuple[str, list]:
    spec = SweepSpec.from_dict(doc)
    jobs = spec.expand()
    store.submit(spec.spec_hash, spec.name, "test",
                 [(j.key, j.label, j.payload) for j in jobs])
    return spec.spec_hash, jobs


def fast_config(**overrides) -> ServiceConfig:
    defaults = dict(num_workers=2, isolate_jobs=False,
                    poll_interval_seconds=0.02, drain_timeout_seconds=5.0)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestRunUntilIdle:
    def test_settles_every_job(self, store, tmp_path):
        analysis_id, jobs = submitted(store, echo_spec([1, 2, 3]))
        cache = ResultCache(tmp_path / "cache")
        scheduler = Scheduler(store, cache, fast_config())
        assert scheduler.run_until_idle() == 3
        status = store.analysis_status(analysis_id)
        assert status["state"] == "done"
        assert status["counts"]["done"] == 3

    def test_results_land_in_cache(self, store, tmp_path):
        _, jobs = submitted(store, echo_spec([7]))
        cache = ResultCache(tmp_path / "cache")
        Scheduler(store, cache, fast_config()).run_until_idle()
        assert cache.get(jobs[0].key) == {"echo": 7}

    def test_failed_jobs_settle_failed(self, store, tmp_path):
        doc = echo_spec([1])
        doc["task"] = "tests.runner._workers:error_task"
        analysis_id, _ = submitted(store, doc)
        cache = ResultCache(tmp_path / "cache")
        Scheduler(store, cache, fast_config()).run_until_idle()
        status = store.analysis_status(analysis_id)
        assert status["state"] == "failed"
        job = store.analysis_jobs(analysis_id)[0]
        assert job["error"] and "injected failure" in job["error"]


class TestWorkerPool:
    def test_pool_drains_queue(self, store, tmp_path):
        analysis_id, _ = submitted(store, echo_spec(range(8)))
        scheduler = Scheduler(store, ResultCache(tmp_path / "cache"),
                              fast_config())
        scheduler.start()
        try:
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                if store.analysis_status(analysis_id)["finished"]:
                    break
                time.sleep(0.05)
        finally:
            scheduler.stop()
        assert store.analysis_status(analysis_id)["counts"]["done"] == 8


class TestInjectedCrash:
    PLAN = {"kind": "fault_plan", "seed": 1,
            "points": [{"site": "service.crash_claimed", "rate": 1.0,
                        "max_fires": 1}]}

    def test_crash_leaves_job_running_then_recovery_requeues(
            self, store, tmp_path):
        analysis_id, _ = submitted(store, echo_spec([1, 2]))
        cache = ResultCache(tmp_path / "cache")
        with injected(self.PLAN):
            scheduler = Scheduler(store, cache, fast_config())
            with pytest.raises(InjectedServiceCrash):
                scheduler.run_until_idle()
        # The first claim crashed after commit: its job is wedged in
        # 'running', exactly as after a real kill -9.
        assert store.counts()["running"] == 1
        # A restarted scheduler recovers and finishes everything.
        fresh = Scheduler(store, cache, fast_config())
        fresh.start()
        try:
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                if store.analysis_status(analysis_id)["finished"]:
                    break
                time.sleep(0.05)
        finally:
            fresh.stop()
        status = store.analysis_status(analysis_id)
        assert status["counts"]["done"] == 2
        terminal = [t for t in store.transitions(analysis_id)
                    if t["to_state"] in ("done", "failed", "cancelled")]
        assert len(terminal) == 2  # exactly once per job


class TestDrain:
    def test_stop_drains_in_flight_and_leaves_rest_queued(
            self, store, tmp_path):
        analysis_id, _ = submitted(store, sleep_spec(0.3, range(6)))
        scheduler = Scheduler(store, ResultCache(tmp_path / "cache"),
                              fast_config(num_workers=1))
        scheduler.start()
        deadline = time.monotonic() + 10
        while store.counts()["running"] == 0 \
                and time.monotonic() < deadline:
            time.sleep(0.01)
        scheduler.stop(drain=True)
        counts = store.counts()
        # A graceful drain leaves nothing in 'running': the in-flight
        # attempt either settled or its claim was handed back.
        assert counts["running"] == 0
        assert counts["done"] + counts["queued"] == 6
