"""The durable job store: state machine, idempotence, recovery, audit."""

import pytest

from repro.exceptions import ServiceError
from repro.service.store import JobStore

JOBS = [("k1", "a", {"task": "t", "params": {"x": 1}}),
        ("k2", "b", {"task": "t", "params": {"x": 2}}),
        ("k3", "c", {"task": "t", "params": {"x": 3}})]


@pytest.fixture
def store(tmp_path):
    store = JobStore(tmp_path / "service.db")
    yield store
    store.close()


class TestSubmission:
    def test_submit_accepts_and_counts(self, store):
        out = store.submit("a1", "camp", "alice", JOBS)
        assert out == {"id": "a1", "deduped": False, "total_jobs": 3}
        assert store.depth() == 3
        assert store.counts()["queued"] == 3

    def test_resubmission_dedupes_without_new_rows(self, store):
        store.submit("a1", "camp", "alice", JOBS)
        again = store.submit("a1", "camp", "bob", JOBS)
        assert again["deduped"] is True
        assert again["total_jobs"] == 3
        assert store.depth() == 3

    def test_empty_submission_rejected(self, store):
        with pytest.raises(ServiceError):
            store.submit("a1", "camp", "alice", [])


class TestQueue:
    def test_claim_order_is_priority_then_fifo(self, store):
        store.submit("low", "camp", "alice", JOBS[:2], priority=0)
        store.submit("high", "camp", "alice", [JOBS[2]], priority=5)
        first = store.claim()
        assert first["analysis_id"] == "high"
        assert store.claim()["key"] == "k1"
        assert store.claim()["key"] == "k2"
        assert store.claim() is None

    def test_settle_done_and_failed(self, store):
        store.submit("a1", "camp", "alice", JOBS[:2])
        one = store.claim()
        store.settle("a1", one["key"], "done", status="done")
        two = store.claim()
        store.settle("a1", two["key"], "failed", status="error",
                     error="boom")
        counts = store.counts()
        assert counts["done"] == 1 and counts["failed"] == 1
        assert store.depth() == 0

    def test_double_settle_refused(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        one = store.claim()
        store.settle("a1", one["key"], "done", status="done")
        with pytest.raises(ServiceError, match="refusing to settle"):
            store.settle("a1", one["key"], "done", status="done")

    def test_settle_requires_running(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        with pytest.raises(ServiceError):
            store.settle("a1", "k1", "done", status="done")

    def test_cancel_only_touches_queued(self, store):
        store.submit("a1", "camp", "alice", JOBS)
        running = store.claim()
        assert store.cancel_analysis("a1") == 2
        counts = store.counts()
        assert counts["cancelled"] == 2 and counts["running"] == 1
        # the running job still settles normally
        store.settle("a1", running["key"], "done", status="done")
        assert store.analysis_status("a1")["finished"] is True


class TestRecovery:
    def test_recover_requeues_running_and_keeps_attempts(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        claimed = store.claim()
        assert claimed["attempts"] == 1
        assert store.recover() == 1
        reclaimed = store.claim()
        assert reclaimed["key"] == claimed["key"]
        assert reclaimed["attempts"] == 2

    def test_recover_survives_reopen(self, tmp_path):
        first = JobStore(tmp_path / "service.db")
        first.submit("a1", "camp", "alice", JOBS)
        first.claim()
        first.close()  # simulated crash: job left running on disk
        second = JobStore(tmp_path / "service.db")
        assert second.recover() == 1
        assert second.counts()["queued"] == 3
        second.close()

    def test_transitions_audit_exactly_once(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        store.claim()
        store.recover()
        store.claim()
        store.settle("a1", "k1", "done", status="done")
        terminal = [t for t in store.transitions("a1")
                    if t["to_state"] in ("done", "failed", "cancelled")]
        assert len(terminal) == 1


class TestIntrospection:
    def test_status_document_derives_state(self, store):
        store.submit("a1", "camp", "alice", JOBS)
        doc = store.analysis_status("a1")
        assert doc["state"] == "queued" and not doc["finished"]
        store.claim()
        assert store.analysis_status("a1")["state"] == "running"
        assert store.analysis_status("missing") is None

    def test_live_keys_and_inflight(self, store):
        store.submit("a1", "camp", "alice", JOBS[:2])
        store.submit("a2", "camp", "bob", [JOBS[2]])
        assert store.live_keys() == {"k1", "k2", "k3"}
        assert store.inflight_for("alice") == 2
        assert store.inflight_for("bob") == 1
        store.claim()  # k1 (alice) -> running: still live
        assert store.inflight_for("alice") == 2
        store.settle("a1", "k1", "done", status="done")
        assert store.live_keys() == {"k2", "k3"}

    def test_recent_job_seconds_averages_history(self, store):
        assert store.recent_job_seconds() is None
        store.submit("a1", "camp", "alice", JOBS[:2])
        for _ in range(2):
            claimed = store.claim()
            store.settle("a1", claimed["key"], "done", status="done")
        assert store.recent_job_seconds() >= 0.0

    def test_analysis_jobs_in_submission_order(self, store):
        store.submit("a1", "camp", "alice", JOBS)
        keys = [j["key"] for j in store.analysis_jobs("a1")]
        assert keys == ["k1", "k2", "k3"]
