"""The durable job store: state machine, idempotence, recovery, audit."""

import sqlite3
import time

import pytest

from repro.exceptions import ServiceError
from repro.resilience.faults import injected
from repro.service.store import JobStore

JOBS = [("k1", "a", {"task": "t", "params": {"x": 1}}),
        ("k2", "b", {"task": "t", "params": {"x": 2}}),
        ("k3", "c", {"task": "t", "params": {"x": 3}})]


@pytest.fixture
def store(tmp_path):
    store = JobStore(tmp_path / "service.db")
    yield store
    store.close()


class TestSubmission:
    def test_submit_accepts_and_counts(self, store):
        out = store.submit("a1", "camp", "alice", JOBS)
        assert out == {"id": "a1", "deduped": False, "total_jobs": 3}
        assert store.depth() == 3
        assert store.counts()["queued"] == 3

    def test_resubmission_dedupes_without_new_rows(self, store):
        store.submit("a1", "camp", "alice", JOBS)
        again = store.submit("a1", "camp", "bob", JOBS)
        assert again["deduped"] is True
        assert again["total_jobs"] == 3
        assert store.depth() == 3

    def test_empty_submission_rejected(self, store):
        with pytest.raises(ServiceError):
            store.submit("a1", "camp", "alice", [])


class TestQueue:
    def test_claim_order_is_priority_then_fifo(self, store):
        store.submit("low", "camp", "alice", JOBS[:2], priority=0)
        store.submit("high", "camp", "alice", [JOBS[2]], priority=5)
        first = store.claim()
        assert first["analysis_id"] == "high"
        assert store.claim()["key"] == "k1"
        assert store.claim()["key"] == "k2"
        assert store.claim() is None

    def test_settle_done_and_failed(self, store):
        store.submit("a1", "camp", "alice", JOBS[:2])
        one = store.claim()
        store.settle("a1", one["key"], "done", status="done")
        two = store.claim()
        store.settle("a1", two["key"], "failed", status="error",
                     error="boom")
        counts = store.counts()
        assert counts["done"] == 1 and counts["failed"] == 1
        assert store.depth() == 0

    def test_double_settle_refused(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        one = store.claim()
        store.settle("a1", one["key"], "done", status="done")
        with pytest.raises(ServiceError, match="refusing to settle"):
            store.settle("a1", one["key"], "done", status="done")

    def test_settle_requires_running(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        with pytest.raises(ServiceError):
            store.settle("a1", "k1", "done", status="done")

    def test_cancel_only_touches_queued(self, store):
        store.submit("a1", "camp", "alice", JOBS)
        running = store.claim()
        outcome = store.cancel_analysis("a1")
        assert outcome["cancelled"] == 2
        assert outcome["cancelling"] == 1
        assert outcome["already_terminal"] is False
        counts = store.counts()
        assert counts["cancelled"] == 2 and counts["running"] == 1
        # the running job's cooperative-cancel flag is now raised...
        assert store.cancel_requested("a1", running["key"]) is True
        # ...but the store still lets it settle normally if the worker
        # finishes before noticing.
        store.settle("a1", running["key"], "done", status="done")
        assert store.analysis_status("a1")["finished"] is True

    def test_cancel_unknown_analysis_is_none(self, store):
        assert store.cancel_analysis("nope") is None

    def test_cancel_terminal_analysis_is_distinguishable(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        one = store.claim()
        store.settle("a1", one["key"], "done", status="done")
        outcome = store.cancel_analysis("a1")
        assert outcome == {"cancelled": 0, "cancelling": 0,
                           "already_terminal": True}


class TestRecovery:
    def test_recover_requeues_running_and_keeps_attempts(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        claimed = store.claim()
        assert claimed["attempts"] == 1
        assert store.recover() == 1
        reclaimed = store.claim()
        assert reclaimed["key"] == claimed["key"]
        assert reclaimed["attempts"] == 2

    def test_recover_survives_reopen(self, tmp_path):
        first = JobStore(tmp_path / "service.db")
        first.submit("a1", "camp", "alice", JOBS)
        first.claim()
        first.close()  # simulated crash: job left running on disk
        second = JobStore(tmp_path / "service.db")
        assert second.recover() == 1
        assert second.counts()["queued"] == 3
        second.close()

    def test_transitions_audit_exactly_once(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        store.claim()
        store.recover()
        store.claim()
        store.settle("a1", "k1", "done", status="done")
        terminal = [t for t in store.transitions("a1")
                    if t["to_state"] in ("done", "failed", "cancelled")]
        assert len(terminal) == 1


class TestIntrospection:
    def test_status_document_derives_state(self, store):
        store.submit("a1", "camp", "alice", JOBS)
        doc = store.analysis_status("a1")
        assert doc["state"] == "queued" and not doc["finished"]
        store.claim()
        assert store.analysis_status("a1")["state"] == "running"
        assert store.analysis_status("missing") is None

    def test_live_keys_and_inflight(self, store):
        store.submit("a1", "camp", "alice", JOBS[:2])
        store.submit("a2", "camp", "bob", [JOBS[2]])
        assert store.live_keys() == {"k1", "k2", "k3"}
        assert store.inflight_for("alice") == 2
        assert store.inflight_for("bob") == 1
        store.claim()  # k1 (alice) -> running: still live
        assert store.inflight_for("alice") == 2
        store.settle("a1", "k1", "done", status="done")
        assert store.live_keys() == {"k2", "k3"}

    def test_recent_job_seconds_averages_history(self, store):
        assert store.recent_job_seconds() is None
        store.submit("a1", "camp", "alice", JOBS[:2])
        for _ in range(2):
            claimed = store.claim()
            store.settle("a1", claimed["key"], "done", status="done")
        assert store.recent_job_seconds() >= 0.0

    def test_analysis_jobs_in_submission_order(self, store):
        store.submit("a1", "camp", "alice", JOBS)
        keys = [j["key"] for j in store.analysis_jobs("a1")]
        assert keys == ["k1", "k2", "k3"]


class TestLeases:
    def test_reap_requeues_expired_lease_exactly_once(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        claimed = store.claim(lease_seconds=0.01)
        assert claimed["lease_expires_at"] is not None
        time.sleep(0.05)
        reaped = store.reap_expired()
        assert [r["key"] for r in reaped] == ["k1"]
        assert reaped[0]["requeued"] is True
        assert reaped[0]["attempts"] == 1  # the hung claim is kept
        # The reaped row looks freshly queued (lease cleared) and the
        # reason is recorded as its last error.
        assert store.counts()["queued"] == 1
        job = store.analysis_jobs("a1")[0]
        assert "lease expired" in job["error"]
        # One audited running -> queued, nothing terminal.
        requeues = [t for t in store.transitions("a1")
                    if (t["from_state"], t["to_state"])
                    == ("running", "queued")]
        assert len(requeues) == 1
        # Second pass is a no-op: the job is queued, not running.
        assert store.reap_expired() == []

    def test_reap_ignores_live_leases(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        store.claim(lease_seconds=60.0)
        assert store.reap_expired() == []
        assert store.counts()["running"] == 1

    def test_reap_ignores_unbounded_claims(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        store.claim()  # legacy claim: no lease
        assert store.reap_expired() == []

    def test_heartbeat_renews_lease(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        claimed = store.claim(lease_seconds=0.05)
        for _ in range(3):
            time.sleep(0.02)
            assert store.heartbeat(
                "a1", "k1", 0.05, claimed["claim_token"]) == "renewed"
        # Renewed throughout: nothing to reap.
        assert store.reap_expired() == []

    def test_heartbeat_refused_when_not_running(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        assert store.heartbeat("a1", "k1", 1.0, "no-such-claim") == "lost"
        claimed = store.claim(lease_seconds=1.0)
        store.settle("a1", "k1", "done", status="done")
        assert store.heartbeat(
            "a1", "k1", 1.0, claimed["claim_token"]) == "lost"

    def test_heartbeat_fault_drops_the_beat(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        claimed = store.claim(lease_seconds=0.01)
        plan = {"kind": "fault_plan", "seed": 3,
                "points": [{"site": "lease.heartbeat", "attempts": []}]}
        with injected(plan):
            assert store.heartbeat(
                "a1", "k1", 60.0, claimed["claim_token"]) == "dropped"
        time.sleep(0.05)
        # The dropped renewal let the lease lapse.
        assert [r["key"] for r in store.reap_expired()] == ["k1"]

    def test_heartbeat_fenced_against_reclaim(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        stale = store.claim(lease_seconds=0.01)
        time.sleep(0.05)
        store.reap_expired()
        fresh = store.claim(lease_seconds=0.05)
        # The presumed-dead worker's renewals must not keep the *new*
        # claim alive -- the job is 'running' again, so only the
        # fencing token tells the two claims apart.
        assert store.heartbeat(
            "a1", "k1", 60.0, stale["claim_token"]) == "lost"
        time.sleep(0.1)
        # The stale beat did not renew: the new claim's lease lapses
        # on schedule and the reaper can take a genuinely hung reclaim.
        assert [r["key"] for r in store.reap_expired()] == ["k1"]
        assert fresh["claim_token"] != stale["claim_token"]

    def test_reap_honors_pending_cancel(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        store.claim(lease_seconds=0.01)
        store.cancel_analysis("a1")
        time.sleep(0.05)
        reaped = store.reap_expired()
        assert reaped[0]["requeued"] is False
        assert store.counts()["cancelled"] == 1

    def test_recover_clears_lease_columns(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        store.claim(lease_seconds=60.0)
        assert store.recover() == 1
        reclaimed = store.claim(lease_seconds=0.01)
        assert reclaimed["attempts"] == 2
        time.sleep(0.05)
        # Reapable again: recovery did not leave a stale lease behind.
        assert len(store.reap_expired()) == 1

    def test_stale_settle_after_reap_is_refused(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        store.claim(lease_seconds=0.01)
        time.sleep(0.05)
        store.reap_expired()
        # The original (hung) worker wakes up and tries to settle.
        with pytest.raises(ServiceError, match="refusing to settle"):
            store.settle("a1", "k1", "done", status="done")

    def test_stale_settle_after_reclaim_is_refused(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        stale = store.claim(lease_seconds=0.01)
        time.sleep(0.05)
        store.reap_expired()
        fresh = store.claim(lease_seconds=60.0)
        # The job is 'running' again -- without fencing, the woken
        # worker's settle would land on worker B's claim.  The token
        # refuses it.
        with pytest.raises(ServiceError, match="refusing to settle"):
            store.settle("a1", "k1", "failed", status="timeout",
                         error="stale", token=stale["claim_token"])
        assert store.counts()["running"] == 1
        # The live claim settles normally, exactly once.
        store.settle("a1", "k1", "done", status="done",
                     token=fresh["claim_token"])
        assert store.analysis_jobs("a1")[0]["state"] == "done"
        terminal = [t for t in store.transitions("a1")
                    if t["to_state"] in ("done", "failed", "cancelled",
                                         "quarantined")]
        assert len(terminal) == 1

    def test_release_fenced_against_reclaim(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        stale = store.claim(lease_seconds=0.01)
        time.sleep(0.05)
        store.reap_expired()
        store.claim(lease_seconds=60.0)
        # A stale release must not refund or requeue the new claim.
        assert store.release("a1", "k1", token=stale["claim_token"]) \
            is False
        assert store.counts()["running"] == 1


class TestQuarantine:
    def test_exhausted_attempts_quarantine_with_last_error(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        for _ in range(3):
            store.claim(lease_seconds=0.01)
            time.sleep(0.03)
            store.reap_expired()
        moved = store.quarantine_exhausted(max_attempts=3)
        assert [m["key"] for m in moved] == ["k1"]
        assert moved[0]["attempts"] == 3
        assert store.counts()["quarantined"] == 1
        listed = store.quarantined_jobs()
        assert len(listed) == 1
        assert "quarantined after 3 attempt(s)" in listed[0]["error"]
        assert "lease expired" in listed[0]["error"]  # last error kept
        # Terminal exactly once.
        terminal = [t for t in store.transitions("a1")
                    if t["to_state"] in ("done", "failed", "cancelled",
                                         "quarantined")]
        assert len(terminal) == 1

    def test_under_budget_jobs_stay_queued(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        store.claim()
        store.recover()
        assert store.quarantine_exhausted(max_attempts=3) == []
        assert store.counts()["queued"] == 1

    def test_retry_requeues_with_fresh_budget(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        store.claim()
        store.recover()
        assert store.quarantine_exhausted(max_attempts=1)
        assert store.retry_quarantined("a1") == 1
        reclaimed = store.claim(lease_seconds=1.0)
        assert reclaimed["attempts"] == 1  # budget was reset
        assert reclaimed["cancel_requested"] is False
        store.settle("a1", "k1", "done", status="done")
        assert store.analysis_status("a1")["state"] == "done"

    def test_retry_without_quarantined_jobs_is_zero(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        assert store.retry_quarantined("a1") == 0

    def test_quarantined_analysis_status(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1])
        store.claim()
        store.recover()
        store.quarantine_exhausted(max_attempts=1)
        status = store.analysis_status("a1")
        assert status["state"] == "quarantined"
        assert status["finished"] is True


class TestDeadlines:
    def test_submit_rejects_nonpositive_deadline(self, store):
        with pytest.raises(ServiceError, match="deadline_seconds"):
            store.submit("a1", "camp", "alice", JOBS[:1],
                         deadline_seconds=0)

    def test_expired_queued_jobs_fail_fast(self, store):
        store.submit("a1", "camp", "alice", JOBS[:2],
                     deadline_seconds=0.01)
        store.submit("a2", "camp", "bob", [JOBS[2]])  # no deadline
        time.sleep(0.05)
        expired = store.expire_deadlines()
        assert {e["key"] for e in expired} == {"k1", "k2"}
        assert store.counts() == {"queued": 1, "running": 0, "done": 0,
                                  "failed": 2, "cancelled": 0,
                                  "quarantined": 0}
        job = store.analysis_jobs("a1")[0]
        assert job["status"] == "deadline_exceeded"
        assert "deadline_exceeded" in job["error"]
        # Exactly one terminal transition each, queued -> failed.
        terminal = [t for t in store.transitions("a1")
                    if t["to_state"] == "failed"]
        assert len(terminal) == 2

    def test_deadline_rides_the_claim(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1],
                     deadline_seconds=120.0)
        claimed = store.claim()
        assert claimed["deadline_at"] is not None
        assert claimed["deadline_at"] > time.time()

    def test_unexpired_deadlines_untouched(self, store):
        store.submit("a1", "camp", "alice", JOBS[:1],
                     deadline_seconds=120.0)
        assert store.expire_deadlines() == []
        assert store.counts()["queued"] == 1


class TestMigration:
    #: The jobs table exactly as PR 6 shipped it, before the
    #: supervision columns existed.
    OLD_SCHEMA = """
    CREATE TABLE analyses (
        id           TEXT PRIMARY KEY,
        name         TEXT NOT NULL,
        client       TEXT NOT NULL,
        priority     INTEGER NOT NULL DEFAULT 0,
        total_jobs   INTEGER NOT NULL,
        submitted_at REAL NOT NULL
    );
    CREATE TABLE jobs (
        analysis_id  TEXT NOT NULL,
        key          TEXT NOT NULL,
        label        TEXT NOT NULL,
        payload      TEXT NOT NULL,
        client       TEXT NOT NULL,
        priority     INTEGER NOT NULL DEFAULT 0,
        state        TEXT NOT NULL DEFAULT 'queued',
        status       TEXT,
        error        TEXT,
        attempts     INTEGER NOT NULL DEFAULT 0,
        submitted_at REAL NOT NULL,
        started_at   REAL,
        finished_at  REAL,
        PRIMARY KEY (analysis_id, key)
    );
    CREATE TABLE transitions (
        analysis_id  TEXT NOT NULL,
        key          TEXT NOT NULL,
        from_state   TEXT NOT NULL,
        to_state     TEXT NOT NULL,
        at           REAL NOT NULL
    );
    """

    def test_pre_supervision_database_is_migrated(self, tmp_path):
        path = tmp_path / "service.db"
        conn = sqlite3.connect(path)
        conn.executescript(self.OLD_SCHEMA)
        conn.execute(
            "INSERT INTO analyses VALUES ('a1', 'camp', 'alice', 0, 1, 1.0)")
        conn.execute(
            "INSERT INTO jobs (analysis_id, key, label, payload, client, "
            "submitted_at) VALUES ('a1', 'k1', 'a', '{}', 'alice', 1.0)")
        conn.commit()
        conn.close()
        store = JobStore(path)
        try:
            # Old rows behave exactly as before, and the whole
            # supervision surface works on the migrated table.
            claimed = store.claim(lease_seconds=0.01)
            assert claimed["key"] == "k1"
            assert claimed["deadline_at"] is None
            assert claimed["cancel_requested"] is False
            time.sleep(0.05)
            assert len(store.reap_expired()) == 1
        finally:
            store.close()
