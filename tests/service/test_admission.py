"""Admission control: depth cap, per-client cap, Retry-After hints."""

import pytest

from repro.core.config import ServiceConfig
from repro.service.admission import AdmissionController
from repro.service.store import JobStore


def jobs(prefix: str, n: int):
    return [(f"{prefix}{i}", f"{prefix}{i}", {"task": "t", "params": {}})
            for i in range(n)]


@pytest.fixture
def store(tmp_path):
    store = JobStore(tmp_path / "service.db")
    yield store
    store.close()


def controller(store, **overrides) -> AdmissionController:
    defaults = dict(max_queue_depth=5, max_inflight_per_client=3,
                    retry_after_seconds=2.0, num_workers=2)
    defaults.update(overrides)
    return AdmissionController(store, ServiceConfig(**defaults))


class TestAdmission:
    def test_admits_within_caps(self, store):
        assert controller(store).admit("alice", 3).admitted

    def test_sheds_on_queue_depth(self, store):
        store.submit("a1", "camp", "alice", jobs("a", 3))
        decision = controller(store).admit("bob", 3)
        assert not decision.admitted
        assert "depth cap" in decision.reason
        assert decision.retry_after >= 2.0

    def test_sheds_on_client_cap_but_admits_others(self, store):
        admission = controller(store, max_queue_depth=100)
        store.submit("a1", "camp", "alice", jobs("a", 3))
        hogged = admission.admit("alice", 1)
        assert not hogged.admitted
        assert "per-client cap" in hogged.reason
        assert admission.admit("bob", 1).admitted

    def test_settled_jobs_free_capacity(self, store):
        admission = controller(store)
        store.submit("a1", "camp", "alice", jobs("a", 5))
        assert not admission.admit("alice", 1).admitted
        for _ in range(5):
            claimed = store.claim()
            store.settle("a1", claimed["key"], "done", status="done")
        assert admission.admit("alice", 1).admitted


class TestRetryAfter:
    def test_floor_without_history(self, store):
        assert controller(store).retry_after(backlog=100) == 2.0

    def test_scales_with_backlog_and_history(self, store):
        admission = controller(store)
        store.submit("a1", "camp", "alice", jobs("a", 1))
        claimed = store.claim()
        store.settle("a1", claimed["key"], "done", status="done")
        per_job = store.recent_job_seconds()
        assert per_job is not None
        # Large backlogs scale the hint up from the floor, capped at 1h.
        assert admission.retry_after(0) == 2.0
        assert admission.retry_after(10 ** 9) == 3600.0
