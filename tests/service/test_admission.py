"""Admission control: depth cap, per-client cap, Retry-After hints."""

import pytest

from repro.core.config import ServiceConfig
from repro.service.admission import AdmissionController
from repro.service.store import JobStore


def jobs(prefix: str, n: int):
    return [(f"{prefix}{i}", f"{prefix}{i}", {"task": "t", "params": {}})
            for i in range(n)]


@pytest.fixture
def store(tmp_path):
    store = JobStore(tmp_path / "service.db")
    yield store
    store.close()


def controller(store, **overrides) -> AdmissionController:
    defaults = dict(max_queue_depth=5, max_inflight_per_client=3,
                    retry_after_seconds=2.0, num_workers=2)
    defaults.update(overrides)
    return AdmissionController(store, ServiceConfig(**defaults))


class TestAdmission:
    def test_admits_within_caps(self, store):
        assert controller(store).admit("alice", 3).admitted

    def test_sheds_on_queue_depth(self, store):
        store.submit("a1", "camp", "alice", jobs("a", 3))
        decision = controller(store).admit("bob", 3)
        assert not decision.admitted
        assert "depth cap" in decision.reason
        assert decision.retry_after >= 2.0

    def test_sheds_on_client_cap_but_admits_others(self, store):
        admission = controller(store, max_queue_depth=100)
        store.submit("a1", "camp", "alice", jobs("a", 3))
        hogged = admission.admit("alice", 1)
        assert not hogged.admitted
        assert "per-client cap" in hogged.reason
        assert admission.admit("bob", 1).admitted

    def test_settled_jobs_free_capacity(self, store):
        admission = controller(store)
        store.submit("a1", "camp", "alice", jobs("a", 5))
        assert not admission.admit("alice", 1).admitted
        for _ in range(5):
            claimed = store.claim()
            store.settle("a1", claimed["key"], "done", status="done")
        assert admission.admit("alice", 1).admitted

    def test_oversize_submission_is_permanently_rejected(self, store):
        """Regression: a batch bigger than the whole queue can *never*
        be admitted -- retrying it forever against an empty queue is
        pointless.  It must come back permanent (HTTP 400), not 429."""
        decision = controller(store).admit("alice", 6)
        assert not decision.admitted
        assert decision.permanent
        assert decision.retry_after is None
        assert "split the batch" in decision.reason

    def test_exact_capacity_submission_stays_retryable(self, store):
        # num_jobs == max_queue_depth fits an empty queue: admitted now,
        # and still only a transient 429 when the queue is busy.
        admission = controller(store, max_inflight_per_client=5)
        assert admission.admit("alice", 5).admitted
        store.submit("a1", "camp", "alice", jobs("a", 5))
        busy = admission.admit("bob", 5)
        assert not busy.admitted
        assert not busy.permanent
        assert busy.retry_after is not None


class TestRetryAfter:
    def test_floor_without_history(self, store):
        assert controller(store).retry_after(backlog=100) == 2.0

    def test_scales_with_backlog_and_history(self, store):
        admission = controller(store)
        store.submit("a1", "camp", "alice", jobs("a", 1))
        claimed = store.claim()
        store.settle("a1", claimed["key"], "done", status="done")
        per_job = store.recent_job_seconds()
        assert per_job is not None
        # Large backlogs scale the hint up from the floor, capped at 1h.
        assert admission.retry_after(0) == 2.0
        assert admission.retry_after(10 ** 9) == 3600.0

    def test_client_hint_uses_client_share_of_workers(self, store):
        """Regression: per-client sheds scaled the client's backlog by
        the *whole* worker pool, underestimating the wait whenever other
        clients held work and inviting doomed early retries."""
        admission = controller(store, num_workers=4)
        store.submit("a1", "camp", "alice", jobs("a", 1))
        claimed = store.claim()
        store.settle("a1", claimed["key"], "done", status="done")
        per_job = store.recent_job_seconds()
        assert per_job is not None

        # One active client: their share is the whole pool.
        store.submit("a2", "camp", "alice", jobs("x", 2))
        solo = admission.retry_after_for_client(100)
        assert solo == pytest.approx(
            min(max(2.0, 100 * per_job / 4), 3600.0))

        # A second active client halves alice's share -> doubled hint
        # (modulo the floor and cap).
        store.submit("b1", "camp", "bob", jobs("b", 2))
        assert store.active_clients() == 2
        shared = admission.retry_after_for_client(100)
        assert shared == pytest.approx(
            min(max(2.0, 100 * per_job / 2), 3600.0))
        assert shared >= solo

    def test_client_hint_floor_without_history(self, store):
        assert controller(store).retry_after_for_client(100) == 2.0
