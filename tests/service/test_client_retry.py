"""Client transport retries: bounded, jittered, and replay-safe only."""

import pytest

from repro.exceptions import ServiceError
from repro.service.client import ServiceClient


class FlakyClient(ServiceClient):
    """Counts requests; fails the first ``failures`` with no status."""

    def __init__(self, failures: int, status: int = 200, doc=None,
                 **kwargs):
        kwargs.setdefault("retry_backoff_seconds", 0.001)
        kwargs.setdefault("retry_backoff_max_seconds", 0.002)
        super().__init__("http://example.invalid", **kwargs)
        self.failures = failures
        self.calls = 0
        self._status = status
        self._doc = doc or {"ok": True}

    def _request_once(self, method, path, body=None):
        self.calls += 1
        if self.calls <= self.failures:
            raise ServiceError("connection refused")  # no status
        return self._status, dict(self._doc), {}


class TestTransientRetries:
    def test_get_retries_transient_failures(self):
        client = FlakyClient(failures=2, retries=2)
        status, doc, _ = client._request("GET", "/healthz")
        assert status == 200 and doc == {"ok": True}
        assert client.calls == 3

    def test_budget_exhausted_raises_the_transport_error(self):
        client = FlakyClient(failures=5, retries=2)
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/healthz")
        assert err.value.status is None
        assert client.calls == 3  # initial try + 2 retries

    def test_non_idempotent_post_fails_fast(self):
        client = FlakyClient(failures=1, retries=3)
        with pytest.raises(ServiceError):
            client._request("POST", "/v1/analyses/x/retry")
        assert client.calls == 1

    def test_submit_is_replay_safe_and_retries(self):
        # Submissions dedupe on the spec content hash, so the POST is
        # explicitly marked idempotent and rides the retry budget.
        client = FlakyClient(failures=1, retries=2, status=201,
                             doc={"id": "a1", "total_jobs": 1})
        doc = client.submit({"kind": "sweep_spec"})
        assert doc["id"] == "a1"
        assert client.calls == 2

    def test_http_errors_are_answers_not_failures(self):
        # A 500 response reaches _raise_for untouched: the server
        # answered, and replaying an answered request is not ours to
        # decide here.
        client = FlakyClient(failures=0, status=500,
                             doc={"error": "boom"}, retries=3)
        with pytest.raises(ServiceError) as err:
            client.health()
        assert err.value.status == 500
        assert client.calls == 1

    def test_zero_budget_disables_retrying(self):
        client = FlakyClient(failures=1, retries=0)
        with pytest.raises(ServiceError):
            client._request("GET", "/healthz")
        assert client.calls == 1


class TestBackoff:
    def test_backoff_is_deterministic_doubling_and_capped(self):
        client = ServiceClient("http://example.invalid",
                               retry_backoff_seconds=0.25,
                               retry_backoff_max_seconds=1.0)
        first = client._backoff(1, key="GET /x")
        again = client._backoff(1, key="GET /x")
        assert first == again  # pure function of (key, attempt)
        second = client._backoff(2, key="GET /x")
        assert second > first
        assert client._backoff(10, key="GET /x") == 1.0  # capped
        # Jitter keys on the path, so different endpoints desynchronize.
        assert client._backoff(1, key="GET /y") != first
