"""Self-healing supervision: reaper, quarantine, deadlines, cancel.

The acceptance scenarios for the supervision layer, driven by
deterministic chaos plans:

* a worker hung via ``worker.hang`` (heartbeats stalled via
  ``lease.heartbeat``) loses its job to the reaper within one lease
  period, and the re-run settles with no duplicate terminal
  transitions;
* a job that kills its worker every time it is claimed converges to
  the terminal ``quarantined`` state after the claim budget, with
  exactly one terminal audit transition, while other analyses keep
  being served;
* a running job is cooperatively cancelled via the store's
  ``cancel_requested`` flag within one executor poll interval.
"""

import threading
import time

import pytest

from repro.core.config import ServiceConfig, SupervisionConfig
from repro.obs.metrics import metrics
from repro.resilience.faults import injected
from repro.runner.cache import ResultCache
from repro.runner.jobs import SweepSpec
from repro.service.scheduler import Scheduler
from repro.service.store import InjectedServiceCrash, JobStore
from tests.service._specs import echo_spec, sleep_spec


@pytest.fixture
def store(tmp_path):
    store = JobStore(tmp_path / "service.db")
    yield store
    store.close()


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def submitted(store, doc, priority: int = 0) -> tuple[str, list]:
    spec = SweepSpec.from_dict(doc)
    jobs = spec.expand()
    store.submit(spec.spec_hash, spec.name, "test",
                 [(j.key, j.label, j.payload) for j in jobs],
                 priority=priority)
    return spec.spec_hash, jobs


def supervised_config(**supervision) -> ServiceConfig:
    return ServiceConfig(
        num_workers=2, isolate_jobs=False,
        poll_interval_seconds=0.02, drain_timeout_seconds=10.0,
        supervision=SupervisionConfig(**supervision))


def wait_for(predicate, timeout: float = 15.0) -> float:
    """Poll until ``predicate()`` is truthy; returns elapsed seconds."""
    started = time.monotonic()
    while time.monotonic() - started < timeout:
        if predicate():
            return time.monotonic() - started
        time.sleep(0.02)
    raise AssertionError(f"condition not met within {timeout:g}s")


def counter(name: str) -> float:
    return metrics().snapshot()["counters"].get(name, 0.0)


class TestHungWorkerReaped:
    #: The worker wedges on the job's first attempt (4s, far past the
    #: 0.3s lease), and its heartbeats are stalled -- a fully hung
    #: worker.  Attempt numbering is continuous across claims
    #: (``attempt_base``), so the re-run (store attempt 2) is clean.
    HANG_SECONDS = 4.0
    PLAN = {"kind": "fault_plan", "seed": 11, "points": [
        {"site": "worker.hang", "attempts": [1]},
        {"site": "lease.heartbeat"},
    ]}

    def test_reaped_and_rerun_within_one_lease_period(
            self, store, cache, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_HANG_SECONDS",
                           str(self.HANG_SECONDS))
        analysis_id, jobs = submitted(store, echo_spec([7], name="hang"))
        config = supervised_config(lease_seconds=0.3,
                                   reap_interval_seconds=0.1)
        reaped_before = counter("service.jobs.reaped")
        with injected(self.PLAN):
            scheduler = Scheduler(store, cache, config)
            scheduler.start()
            try:
                elapsed = wait_for(
                    lambda: store.analysis_status(analysis_id)["finished"])
            finally:
                scheduler.stop()
        # The answer came from the reaped re-run, not the hung worker:
        # it landed while the original attempt was still wedged.
        assert elapsed < self.HANG_SECONDS - 0.5
        status = store.analysis_status(analysis_id)
        assert status["state"] == "done"
        assert cache.get(jobs[0].key) == {"echo": 7}
        # The reap is audited (running -> queued) and the job reached a
        # terminal state exactly once -- the hung worker's late settle
        # was refused and discarded.
        transitions = store.transitions(analysis_id)
        requeues = [t for t in transitions
                    if (t["from_state"], t["to_state"])
                    == ("running", "queued")]
        assert len(requeues) >= 1
        terminal = [t for t in transitions
                    if t["to_state"] in ("done", "failed", "cancelled",
                                         "quarantined")]
        assert len(terminal) == 1
        assert counter("service.jobs.reaped") > reaped_before

    def test_reaper_tick_fault_delays_one_pass(self, store, cache):
        submitted(store, echo_spec([1]))
        store.claim(lease_seconds=0.01)
        time.sleep(0.05)
        scheduler = Scheduler(store, cache, supervised_config())
        plan = {"kind": "fault_plan", "seed": 4, "points": [
            {"site": "reaper.tick", "max_fires": 1}]}
        with injected(plan):
            assert scheduler.reap_once() == 0  # pass skipped outright
            assert store.counts()["running"] == 1
            assert scheduler.reap_once() == 1  # next pass recovers
        assert store.counts()["queued"] == 1


class TestHeartbeatFencing:
    def test_stale_heartbeat_loop_stops_and_never_extends_new_claim(
            self, store, cache):
        """REVIEW regression: after a reap + re-claim, the presumed-dead
        worker's heartbeat loop must exit on its own -- and its beats
        must never renew the new claim's lease."""
        submitted(store, echo_spec([3], name="fence"))
        stale = store.claim(lease_seconds=0.01)
        time.sleep(0.05)
        store.reap_expired()
        store.claim(lease_seconds=0.2)  # worker B's claim
        # A stale heartbeat loop renewing with a 60s lease every 10ms:
        # if fencing failed, worker B's lease would never lapse.
        config = supervised_config(lease_seconds=60.0,
                                   heartbeat_interval_seconds=0.01)
        scheduler = Scheduler(store, cache, config)
        stop = threading.Event()
        thread = threading.Thread(
            target=scheduler._heartbeat_loop,
            args=(stale["analysis_id"], stale["key"],
                  stale["claim_token"], stop, None), daemon=True)
        thread.start()
        thread.join(timeout=5.0)
        alive = thread.is_alive()
        stop.set()
        assert not alive  # exited on its own: lease reported lost
        # Worker B's 0.2s lease lapsed on schedule -- the stale beats
        # did not mask a genuinely hung re-claim from the reaper.
        time.sleep(0.25)
        assert len(store.reap_expired()) == 1

    def test_renewal_horizon_lets_wedged_claim_lapse(self, store, cache):
        """A claim past its worst-case wall budget stops renewing, so a
        solve wedged inside the worker process is reaped eventually."""
        submitted(store, echo_spec([4], name="wedge"))
        claimed = store.claim(lease_seconds=0.05)
        config = supervised_config(lease_seconds=0.05,
                                   heartbeat_interval_seconds=0.01)
        scheduler = Scheduler(store, cache, config)
        stop = threading.Event()
        thread = threading.Thread(
            target=scheduler._heartbeat_loop,
            args=(claimed["analysis_id"], claimed["key"],
                  claimed["claim_token"], stop,
                  time.time()), daemon=True)  # horizon already passed
        thread.start()
        thread.join(timeout=5.0)
        alive = thread.is_alive()
        stop.set()
        assert not alive  # stopped renewing at the horizon
        time.sleep(0.1)
        assert len(store.reap_expired()) == 1

    def test_renewal_horizon_derivation(self, store, cache):
        from repro.runner.jobs import Job

        job = Job({"task": "t", "instance": {}, "params": {}})
        scheduler = Scheduler(store, cache, supervised_config())
        # No wall timeout derivable, no cap: renew indefinitely.
        assert scheduler._renewal_horizon(job, None) is None
        # An explicit wall budget bounds the horizon.
        assert scheduler._renewal_horizon(job, 10.0) is not None
        # The config cap bounds it even without a wall timeout.
        capped = Scheduler(store, cache, supervised_config(
            max_lease_renewal_seconds=5.0))
        horizon = capped._renewal_horizon(job, None)
        assert horizon is not None
        assert horizon <= time.time() + 5.5


class TestCrashLoopQuarantine:
    def test_worker_killing_job_converges_to_quarantined(
            self, store, cache):
        poison_id, poison_jobs = submitted(
            store, echo_spec([666], name="poison"), priority=10)
        innocent_id, _ = submitted(store, echo_spec([1, 2], name="fine"))
        plan = {"kind": "fault_plan", "seed": 2, "points": [
            {"site": "service.crash_claimed",
             "match": poison_jobs[0].key}]}
        config = supervised_config(lease_seconds=60.0, max_job_attempts=3)
        quarantined_before = counter("service.jobs.quarantined")
        with injected(plan):
            scheduler = Scheduler(store, cache, config)
            # The poison job outranks everything and kills its worker
            # at every claim; each "restart" recovers it with its
            # attempt count intact.
            for _ in range(3):
                with pytest.raises(InjectedServiceCrash):
                    scheduler.run_until_idle()
                assert store.recover() == 1
            # Budget spent: the next pass quarantines the poison job
            # and the service keeps serving everyone else.
            assert scheduler.run_until_idle() == 2
        assert store.analysis_status(poison_id)["state"] == "quarantined"
        assert store.analysis_status(innocent_id)["state"] == "done"
        assert counter("service.jobs.quarantined") > quarantined_before
        # Quarantine is terminal exactly once, last error preserved.
        terminal = [t for t in store.transitions(poison_id)
                    if t["to_state"] in ("done", "failed", "cancelled",
                                         "quarantined")]
        assert len(terminal) == 1
        listed = store.quarantined_jobs(poison_id)
        assert len(listed) == 1
        assert listed[0]["attempts"] == 3
        assert "process died" in listed[0]["error"]

    def test_retried_quarantined_job_completes(self, store, cache):
        analysis_id, jobs = submitted(store, echo_spec([5], name="second"))
        plan = {"kind": "fault_plan", "seed": 2, "points": [
            {"site": "service.crash_claimed", "match": jobs[0].key}]}
        config = supervised_config(lease_seconds=60.0, max_job_attempts=1)
        scheduler = Scheduler(store, cache, config)
        with injected(plan):
            with pytest.raises(InjectedServiceCrash):
                scheduler.run_until_idle()
            store.recover()
            scheduler.run_until_idle()
        assert store.analysis_status(analysis_id)["state"] == "quarantined"
        # The operator retries without the fault: fresh budget, clean run.
        assert store.retry_quarantined(analysis_id) == 1
        assert scheduler.run_until_idle() == 1
        assert store.analysis_status(analysis_id)["state"] == "done"
        assert cache.get(jobs[0].key) == {"echo": 5}


class TestCooperativeCancel:
    def test_running_job_cancelled_within_poll_interval(
            self, store, tmp_path):
        # Pool isolation: the sleep runs in a worker process, and the
        # executor polls the cancel flag while the future is in flight.
        analysis_id, _ = submitted(store, sleep_spec(8.0, [1]))
        config = ServiceConfig(
            num_workers=1, isolate_jobs=True,
            poll_interval_seconds=0.02, drain_timeout_seconds=10.0,
            supervision=SupervisionConfig(lease_seconds=30.0))
        scheduler = Scheduler(store, ResultCache(tmp_path / "cache"),
                              config)
        scheduler.start()
        try:
            wait_for(lambda: store.counts()["running"] == 1)
            outcome = store.cancel_analysis(analysis_id)
            assert outcome["cancelling"] == 1
            # The cancel lands at the executor's next poll -- long
            # before the 8s task could have finished on its own.
            elapsed = wait_for(
                lambda: store.counts()["cancelled"] == 1, timeout=6.0)
            assert elapsed < 5.0
        finally:
            scheduler.stop()
        status = store.analysis_status(analysis_id)
        assert status["state"] == "cancelled"
        job = store.analysis_jobs(analysis_id)[0]
        assert job["status"] == "cancelled"
        assert "cancelled by client" in job["error"]
        terminal = [t for t in store.transitions(analysis_id)
                    if t["to_state"] in ("done", "failed", "cancelled",
                                         "quarantined")]
        assert len(terminal) == 1


class TestDeadlines:
    def test_expired_queued_job_fails_fast(self, store, cache):
        spec = SweepSpec.from_dict(echo_spec([9], name="late"))
        jobs = spec.expand()
        store.submit(spec.spec_hash, spec.name, "test",
                     [(j.key, j.label, j.payload) for j in jobs],
                     deadline_seconds=0.01)
        time.sleep(0.05)
        scheduler = Scheduler(store, cache, supervised_config())
        deadline_before = counter("service.jobs.deadline_exceeded")
        assert scheduler.run_until_idle() == 0  # expired, never claimed
        status = store.analysis_status(spec.spec_hash)
        assert status["state"] == "failed"
        job = store.analysis_jobs(spec.spec_hash)[0]
        assert job["status"] == "deadline_exceeded"
        assert counter("service.jobs.deadline_exceeded") > deadline_before


class TestStartupRecoveryCounter:
    def test_recover_emits_metricz_counter(self, store, cache):
        submitted(store, echo_spec([1]))
        store.claim()  # wedged running: simulated dead process
        recovered_before = counter("service.jobs.recovered")
        scheduler = Scheduler(store, cache, supervised_config())
        scheduler.start()
        scheduler.stop()
        assert counter("service.jobs.recovered") == recovered_before + 1
