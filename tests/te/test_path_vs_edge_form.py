"""Property: the edge form upper-bounds (and with full paths, equals)
the path form -- the relationship Appendix C's augment logic relies on."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.generators import small_ring
from repro.network.demand import gravity_demands, top_pairs
from repro.paths import PathSet, k_shortest_paths
from repro.paths.pathset import DemandPaths
from repro.te import EdgeMcf, TotalFlowTE


def build(seed):
    topology = small_ring(num_nodes=6, chords=2, seed=seed)
    demands = gravity_demands(topology, scale=60, seed=seed)
    pairs = top_pairs(demands, 2)
    return topology, demands.restricted_to(pairs), pairs


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=40))
def test_edge_form_upper_bounds_path_form(seed):
    topology, demands, pairs = build(seed)
    paths = PathSet.k_shortest(topology, pairs, num_primary=2, num_backup=0)
    path_sol = TotalFlowTE(primary_only=True).solve(topology, dict(demands),
                                                    paths)
    edge_sol = EdgeMcf().solve(topology, dict(demands))
    assert edge_sol.objective >= path_sol.objective - 1e-6


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=40))
def test_edge_form_matches_path_form_with_all_simple_paths(seed):
    """With every loopless path configured, the two forms coincide."""
    topology, demands, pairs = build(seed)
    paths = PathSet()
    for pair in pairs:
        all_paths = k_shortest_paths(topology, pair[0], pair[1], k=100)
        paths[pair] = DemandPaths(pair=pair, paths=all_paths,
                                  num_primary=len(all_paths))
    path_sol = TotalFlowTE(primary_only=True).solve(topology, dict(demands),
                                                    paths)
    edge_sol = EdgeMcf().solve(topology, dict(demands))
    assert path_sol.objective == pytest.approx(edge_sol.objective, abs=1e-5)
