"""Tests for MLU, max-min (binner + water filling), and edge-form MCF."""

import pytest

from repro.network.builder import from_edges, line
from repro.paths import PathSet
from repro.te import EdgeMcf, GeometricBinnerTE, MluTE, max_min_water_filling
from repro.te.base import TESolution


@pytest.fixture
def diamond():
    return from_edges([
        ("a", "b", 10), ("b", "d", 10), ("a", "c", 10), ("c", "d", 10),
    ])


class TestMlu:
    def test_balanced_split_halves_utilization(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        sol = MluTE().solve(diamond, {("a", "d"): 10.0}, paths)
        assert sol.objective == pytest.approx(0.5)
        assert sol.pair_flows[("a", "d")] == pytest.approx(10.0)

    def test_over_subscription_exceeds_one(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        sol = MluTE().solve(diamond, {("a", "d"): 30.0}, paths)
        assert sol.objective == pytest.approx(1.5)

    def test_enforce_capacity_infeasible(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        sol = MluTE(enforce_capacity=True).solve(
            diamond, {("a", "d"): 30.0}, paths
        )
        assert not sol.feasible

    def test_disconnection_is_infeasible(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        caps = {(("a", "d"), p): 0.0 for p in paths[("a", "d")].paths}
        sol = MluTE().solve(diamond, {("a", "d"): 5.0}, paths, path_caps=caps)
        assert not sol.feasible

    def test_zero_capacity_lag_unused(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        sol = MluTE().solve(diamond, {("a", "d"): 5.0}, paths,
                            capacities={("a", "b"): 0.0})
        assert sol.feasible
        assert sol.lag_loads.get(("a", "b"), 0.0) == pytest.approx(0.0)
        assert sol.objective == pytest.approx(0.5)

    def test_mlu_matches_loads(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        sol = MluTE().solve(diamond, {("a", "d"): 16.0}, paths)
        assert sol.max_utilization(diamond) == pytest.approx(sol.objective)


class TestWaterFilling:
    def test_equal_split_on_shared_bottleneck(self):
        topo = from_edges([("a", "m", 100), ("b", "m", 100), ("m", "c", 10)])
        paths = PathSet.k_shortest(topo, [("a", "c"), ("b", "c")], 1, 0)
        alloc = max_min_water_filling(
            topo, {("a", "c"): 100.0, ("b", "c"): 100.0}, paths
        )
        assert alloc[("a", "c")] == pytest.approx(5.0)
        assert alloc[("b", "c")] == pytest.approx(5.0)

    def test_small_demand_frees_capacity(self):
        topo = from_edges([("a", "m", 100), ("b", "m", 100), ("m", "c", 10)])
        paths = PathSet.k_shortest(topo, [("a", "c"), ("b", "c")], 1, 0)
        alloc = max_min_water_filling(
            topo, {("a", "c"): 2.0, ("b", "c"): 100.0}, paths
        )
        assert alloc[("a", "c")] == pytest.approx(2.0)
        assert alloc[("b", "c")] == pytest.approx(8.0)

    def test_zero_demand(self):
        topo = line(3, capacity=5)
        paths = PathSet.k_shortest(topo, [("n0", "n2")], 1, 0)
        alloc = max_min_water_filling(topo, {("n0", "n2"): 0.0}, paths)
        assert alloc[("n0", "n2")] == 0.0

    def test_three_level_fairness(self):
        # Demands with different bottlenecks produce a lexicographic result.
        topo = from_edges([
            ("a", "m", 4), ("b", "m", 100), ("m", "c", 10),
        ])
        paths = PathSet.k_shortest(topo, [("a", "c"), ("b", "c")], 1, 0)
        alloc = max_min_water_filling(
            topo, {("a", "c"): 100.0, ("b", "c"): 100.0}, paths
        )
        assert alloc[("a", "c")] == pytest.approx(4.0)
        assert alloc[("b", "c")] == pytest.approx(6.0)


class TestGeometricBinner:
    def test_approximates_water_filling(self):
        topo = from_edges([("a", "m", 100), ("b", "m", 100), ("m", "c", 10)])
        paths = PathSet.k_shortest(topo, [("a", "c"), ("b", "c")], 1, 0)
        demands = {("a", "c"): 100.0, ("b", "c"): 100.0}
        sol = GeometricBinnerTE(num_bins=10, alpha=1.5).solve(
            topo, demands, paths
        )
        exact = max_min_water_filling(topo, demands, paths)
        for pair in demands:
            # alpha-approximation of the max-min share.
            assert sol.pair_flows[pair] >= exact[pair] / 1.5 - 1e-6
            assert sol.pair_flows[pair] <= exact[pair] * 1.5 + 1e-6

    def test_capacity_respected(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d"), ("b", "c")], 2, 0)
        sol = GeometricBinnerTE().solve(
            diamond, {("a", "d"): 100.0, ("b", "c"): 100.0}, paths
        )
        for lag in diamond.lags:
            assert sol.lag_loads.get(lag.key, 0.0) <= lag.capacity + 1e-6

    def test_bin_widths_cover_demand(self):
        binner = GeometricBinnerTE(num_bins=5, alpha=2.0)
        widths = binner.bin_widths(32.0)
        assert len(widths) == 5
        assert sum(widths) == pytest.approx(32.0)

    def test_bad_alpha_rejected(self):
        from repro.exceptions import ModelingError

        with pytest.raises(ModelingError):
            GeometricBinnerTE(alpha=1.0)
        with pytest.raises(ModelingError):
            GeometricBinnerTE(num_bins=0)

    def test_empty_demands(self, diamond):
        sol = GeometricBinnerTE().solve(diamond, {}, PathSet())
        assert sol.total_flow == 0.0


class TestEdgeMcf:
    def test_matches_path_form_on_diamond(self, diamond):
        sol = EdgeMcf().solve(diamond, {("a", "d"): 100.0})
        assert sol.objective == pytest.approx(20.0)

    def test_upper_bounds_path_form(self):
        # Path form sees 2 routes; edge form may use anything.
        topo = from_edges([
            ("a", "b", 5), ("b", "d", 5), ("a", "c", 5), ("c", "d", 5),
            ("b", "c", 5),
        ])
        paths = PathSet.k_shortest(topo, [("a", "d")], 1, 0)
        from repro.te import TotalFlowTE

        path_sol = TotalFlowTE().solve(topo, {("a", "d"): 100.0}, paths)
        edge_sol = EdgeMcf().solve(topo, {("a", "d"): 100.0})
        assert edge_sol.objective >= path_sol.objective - 1e-6

    def test_allowed_edges_restriction(self, diamond):
        allowed = {("a", "d"): {("a", "b"), ("b", "d")}}
        sol = EdgeMcf(allowed_edges=allowed).solve(diamond, {("a", "d"): 100.0})
        assert sol.objective == pytest.approx(10.0)

    def test_allowed_edges_from_paths(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 1, 0)
        allowed = EdgeMcf.allowed_edges_from_paths(paths, diamond)
        assert allowed[("a", "d")] == {("a", "b"), ("b", "d")}
        with_extra = EdgeMcf.allowed_edges_from_paths(
            paths, diamond, extra_edges=[("a", "c")]
        )
        assert ("a", "c") in with_extra[("a", "d")]

    def test_capacity_override(self, diamond):
        sol = EdgeMcf().solve(diamond, {("a", "d"): 100.0},
                              capacities={("a", "b"): 0.0, ("a", "c"): 3.0})
        assert sol.objective == pytest.approx(3.0)

    def test_two_demands_share(self):
        topo = from_edges([("a", "m", 10), ("b", "m", 10), ("m", "c", 8)])
        sol = EdgeMcf().solve(topo, {("a", "c"): 10.0, ("b", "c"): 10.0})
        assert sol.objective == pytest.approx(8.0)


class TestTESolutionHelpers:
    def test_infeasible_sentinel(self):
        sol = TESolution.infeasible()
        assert not sol.feasible
        assert sol.total_flow == 0.0


class TestEquiDepthBinner:
    def test_equal_widths_cover_demand(self):
        from repro.te import EquiDepthBinnerTE

        binner = EquiDepthBinnerTE(num_bins=4, alpha=2.0)
        widths = binner.bin_widths(20.0)
        assert len(widths) == 4
        assert all(w == pytest.approx(5.0) for w in widths)

    def test_pinned_t0_respected(self):
        from repro.te import EquiDepthBinnerTE

        binner = EquiDepthBinnerTE(num_bins=4, alpha=2.0, t0=2.0)
        widths = binner.bin_widths(20.0)
        assert widths[0] == pytest.approx(2.0)
        assert sum(widths) == pytest.approx(20.0)

    def test_approximates_water_filling(self):
        from repro.te import EquiDepthBinnerTE

        topo = from_edges([("a", "m", 100), ("b", "m", 100), ("m", "c", 10)])
        paths = PathSet.k_shortest(topo, [("a", "c"), ("b", "c")], 1, 0)
        demands = {("a", "c"): 100.0, ("b", "c"): 100.0}
        sol = EquiDepthBinnerTE(num_bins=20, alpha=1.5).solve(
            topo, demands, paths
        )
        exact = max_min_water_filling(topo, demands, paths)
        for pair in demands:
            assert sol.pair_flows[pair] == pytest.approx(exact[pair],
                                                         rel=0.25)

    def test_capacity_respected(self):
        from repro.te import EquiDepthBinnerTE

        topo = from_edges([
            ("a", "b", 10), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
        ])
        paths = PathSet.k_shortest(topo, [("a", "d")], 2, 0)
        sol = EquiDepthBinnerTE().solve(topo, {("a", "d"): 100.0}, paths)
        for lag in topo.lags:
            assert sol.lag_loads.get(lag.key, 0.0) <= lag.capacity + 1e-6
