"""Tests for the Eq. 2 total-flow TE solver."""

import pytest

from repro.exceptions import PathError
from repro.network.builder import from_edges, line
from repro.paths import PathSet
from repro.te import TotalFlowTE


@pytest.fixture
def diamond():
    return from_edges([
        ("a", "b", 10), ("b", "d", 10), ("a", "c", 10), ("c", "d", 10),
    ])


class TestTotalFlow:
    def test_single_demand_single_path(self):
        topo = line(3, capacity=7)
        paths = PathSet.k_shortest(topo, [("n0", "n2")], 1, 0)
        sol = TotalFlowTE().solve(topo, {("n0", "n2"): 100.0}, paths)
        assert sol.total_flow == pytest.approx(7.0)
        assert sol.objective == pytest.approx(7.0)

    def test_demand_bound_binds(self):
        topo = line(3, capacity=7)
        paths = PathSet.k_shortest(topo, [("n0", "n2")], 1, 0)
        sol = TotalFlowTE().solve(topo, {("n0", "n2"): 3.0}, paths)
        assert sol.total_flow == pytest.approx(3.0)

    def test_multipath_split(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        sol = TotalFlowTE().solve(diamond, {("a", "d"): 100.0}, paths)
        assert sol.total_flow == pytest.approx(20.0)  # both 10-cap routes

    def test_shared_lag_contention(self):
        # Two demands share the middle LAG.
        topo = from_edges([("a", "m", 10), ("b", "m", 10), ("m", "c", 8)])
        paths = PathSet.k_shortest(topo, [("a", "c"), ("b", "c")], 1, 0)
        sol = TotalFlowTE().solve(
            topo, {("a", "c"): 10.0, ("b", "c"): 10.0}, paths
        )
        assert sol.total_flow == pytest.approx(8.0)

    def test_primary_only_ignores_backups(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 1, 1)
        sol = TotalFlowTE(primary_only=True).solve(
            diamond, {("a", "d"): 100.0}, paths
        )
        assert sol.total_flow == pytest.approx(10.0)
        sol_all = TotalFlowTE(primary_only=False).solve(
            diamond, {("a", "d"): 100.0}, paths
        )
        assert sol_all.total_flow == pytest.approx(20.0)

    def test_capacity_override(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        sol = TotalFlowTE().solve(
            diamond, {("a", "d"): 100.0}, paths,
            capacities={("a", "b"): 0.0},
        )
        assert sol.total_flow == pytest.approx(10.0)

    def test_path_cap_disables_path(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        first = paths[("a", "d")].paths[0]
        sol = TotalFlowTE().solve(
            diamond, {("a", "d"): 100.0}, paths,
            path_caps={(("a", "d"), first): 0.0},
        )
        assert sol.total_flow == pytest.approx(10.0)

    def test_path_cap_partial(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        first = paths[("a", "d")].paths[0]
        sol = TotalFlowTE().solve(
            diamond, {("a", "d"): 100.0}, paths,
            path_caps={(("a", "d"), first): 4.0},
        )
        assert sol.total_flow == pytest.approx(14.0)

    def test_lag_loads_respect_capacity(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d"), ("b", "c")], 2, 0)
        sol = TotalFlowTE().solve(
            diamond, {("a", "d"): 50.0, ("b", "c"): 50.0}, paths
        )
        for lag in diamond.lags:
            assert sol.lag_loads.get(lag.key, 0.0) <= lag.capacity + 1e-6

    def test_pair_flows_cover_all_pairs(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        sol = TotalFlowTE().solve(diamond, {("a", "d"): 0.0}, paths)
        assert sol.pair_flows[("a", "d")] == pytest.approx(0.0)

    def test_missing_paths_rejected(self, diamond):
        with pytest.raises(PathError):
            TotalFlowTE().solve(diamond, {("a", "d"): 1.0}, PathSet())

    def test_max_utilization_helper(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        sol = TotalFlowTE().solve(diamond, {("a", "d"): 100.0}, paths)
        assert sol.max_utilization(diamond) == pytest.approx(1.0)
