"""Tests for the prior-work TE schemes: FFC and TeaVaR-style CVaR."""



import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FailureScenario, PathSet
from repro.exceptions import ModelingError
from repro.network.builder import from_edges, with_link_probabilities
from repro.network.generators import small_ring
from repro.network.demand import gravity_demands, top_pairs
from repro.te import FfcTE, TeavarTE, TotalFlowTE, enumerate_scenario_set


@pytest.fixture
def diamond():
    return from_edges([
        ("a", "b", 10), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
    ], failure_probability=0.05)


@pytest.fixture
def diamond_paths(diamond):
    return PathSet.k_shortest(diamond, [("a", "d")], num_primary=2,
                              num_backup=0)


class TestFfc:
    def test_zero_failures_equals_plain_te(self, diamond, diamond_paths):
        demands = {("a", "d"): 100.0}
        ffc = FfcTE(num_failures=0).solve(diamond, demands, diamond_paths)
        plain = TotalFlowTE(primary_only=True).solve(
            diamond, demands, diamond_paths
        )
        assert ffc.objective == pytest.approx(plain.objective, abs=1e-6)

    def test_one_failure_guarantee(self, diamond, diamond_paths):
        demands = {("a", "d"): 100.0}
        solver = FfcTE(num_failures=1)
        sol = solver.solve(diamond, demands, diamond_paths)
        # Two disjoint routes of 10 and 6: losing the best route leaves 6.
        assert sol.objective == pytest.approx(6.0, abs=1e-6)
        assert solver.verify_guarantee(diamond, diamond_paths, sol)

    def test_guarantee_survives_every_single_lag_failure(self, diamond,
                                                         diamond_paths):
        demands = {("a", "d"): 100.0}
        solver = FfcTE(num_failures=1)
        sol = solver.solve(diamond, demands, diamond_paths)
        for lag in diamond.lags:
            surviving = 0.0
            for path in diamond_paths[("a", "d")].paths:
                if lag.key in {l.key for l in diamond.lags_on_path(path)}:
                    continue
                surviving += sol.path_flows.get((("a", "d"), path), 0.0)
            assert surviving >= sol.pair_flows[("a", "d")] - 1e-6

    def test_protection_costs_throughput(self, diamond, diamond_paths):
        demands = {("a", "d"): 100.0}
        g0 = FfcTE(num_failures=0).solve(diamond, demands,
                                         diamond_paths).objective
        g1 = FfcTE(num_failures=1).solve(diamond, demands,
                                         diamond_paths).objective
        g2 = FfcTE(num_failures=2).solve(diamond, demands,
                                         diamond_paths).objective
        assert g0 >= g1 >= g2 - 1e-9
        assert g2 == pytest.approx(0.0, abs=1e-6)  # only 2 disjoint routes

    def test_demand_bound_respected(self, diamond, diamond_paths):
        sol = FfcTE(num_failures=1).solve(diamond, {("a", "d"): 3.0},
                                          diamond_paths)
        assert sol.pair_flows[("a", "d")] == pytest.approx(3.0, abs=1e-6)

    def test_negative_failures_rejected(self):
        with pytest.raises(ModelingError):
            FfcTE(num_failures=-1)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=30))
    def test_guarantee_property_on_random_rings(self, seed):
        topology = small_ring(num_nodes=6, chords=2, seed=seed)
        demands = gravity_demands(topology, scale=40, seed=seed)
        pairs = top_pairs(demands, 2)
        demands = demands.restricted_to(pairs)
        paths = PathSet.k_shortest(topology, pairs, num_primary=3,
                                   num_backup=0)
        solver = FfcTE(num_failures=1)
        sol = solver.solve(topology, dict(demands), paths)
        assert sol.feasible
        assert solver.verify_guarantee(topology, paths, sol)


class TestScenarioSet:
    def test_includes_all_up(self, diamond):
        scenarios = enumerate_scenario_set(diamond, max_failures=1)
        assert any(s.num_failed_links == 0 for s, _ in scenarios)

    def test_probabilities_normalized(self, diamond):
        scenarios = enumerate_scenario_set(diamond, max_failures=2)
        assert sum(p for _, p in scenarios) == pytest.approx(1.0)

    def test_sorted_by_probability(self, diamond):
        scenarios = enumerate_scenario_set(diamond, max_failures=2)
        probs = [p for _, p in scenarios]
        assert probs == sorted(probs, reverse=True)

    def test_pruning_cap(self, diamond):
        scenarios = enumerate_scenario_set(diamond, max_failures=2,
                                           max_scenarios=3)
        assert len(scenarios) == 3


class TestTeavar:
    def test_cvar_zero_with_ample_protection(self, diamond, diamond_paths):
        # Demand 6 fits either route alone: a resilient split gives zero
        # loss in every single-failure scenario.
        scenarios = enumerate_scenario_set(diamond, max_failures=1)
        sol = TeavarTE(beta=0.9, scenarios=scenarios).solve(
            diamond, {("a", "d"): 6.0}, diamond_paths
        )
        assert sol.feasible
        assert sol.objective == pytest.approx(0.0, abs=1e-6)

    def test_cvar_positive_when_demand_unprotectable(self, diamond,
                                                     diamond_paths):
        scenarios = enumerate_scenario_set(diamond, max_failures=1)
        sol = TeavarTE(beta=0.999, scenarios=scenarios).solve(
            diamond, {("a", "d"): 16.0}, diamond_paths
        )
        # Demand 16 needs both routes; any route failure loses traffic,
        # and at beta ~ 1 CVaR sees those scenarios.
        assert sol.objective > 0.0

    def test_higher_beta_never_decreases_cvar(self, diamond, diamond_paths):
        scenarios = enumerate_scenario_set(diamond, max_failures=1)
        demands = {("a", "d"): 16.0}
        lo = TeavarTE(beta=0.5, scenarios=scenarios).solve(
            diamond, demands, diamond_paths
        ).objective
        hi = TeavarTE(beta=0.99, scenarios=scenarios).solve(
            diamond, demands, diamond_paths
        ).objective
        assert hi >= lo - 1e-9

    def test_bad_beta_rejected(self, diamond):
        scenarios = [(FailureScenario(), 1.0)]
        with pytest.raises(ModelingError):
            TeavarTE(beta=0.0, scenarios=scenarios)
        with pytest.raises(ModelingError):
            TeavarTE(beta=1.0, scenarios=scenarios)

    def test_empty_scenarios_rejected(self):
        with pytest.raises(ModelingError):
            TeavarTE(beta=0.9, scenarios=[])

    def test_reliable_network_has_lower_cvar(self):
        """Same topology, same demand -- flakier links mean higher CVaR."""
        def build(p_main):
            topo = from_edges([
                ("a", "b", 10), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
            ])
            return with_link_probabilities(topo, {
                ("a", "b"): p_main, ("b", "d"): p_main,
                ("a", "c"): p_main, ("c", "d"): p_main,
            })

        demands = {("a", "d"): 14.0}  # needs both routes: losses unavoidable
        cvars = []
        for p_main in (1e-4, 0.2):
            topo = build(p_main)
            paths = PathSet.k_shortest(topo, [("a", "d")], 2, 0)
            scenarios = enumerate_scenario_set(topo, max_failures=1)
            sol = TeavarTE(beta=0.999, scenarios=scenarios).solve(
                topo, demands, paths
            )
            cvars.append(sol.objective)
        assert cvars[0] <= cvars[1] + 1e-9
