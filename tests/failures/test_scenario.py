"""Tests for failure scenarios and failed-network simulation."""

import pytest

from repro.exceptions import TopologyError
from repro.failures import FailureScenario, simulate_failed_network
from repro.failures.scenario import (
    active_paths,
    connected_enforced_holds,
    path_is_down,
)
from repro.network.builder import from_edges
from repro.paths import PathSet


@pytest.fixture
def diamond():
    return from_edges([
        ("a", "b", 10, 2), ("b", "d", 10), ("a", "c", 10), ("c", "d", 10),
    ])


class TestFailureScenario:
    def test_normalization(self):
        s = FailureScenario([(("b", "a"), 0)])
        assert s.is_failed(("a", "b"), 0)
        assert s.is_failed(("b", "a"), 0)
        assert s.num_failed_links == 1

    def test_equality_and_hash(self):
        a = FailureScenario([(("a", "b"), 0), (("c", "d"), 0)])
        b = FailureScenario([(("c", "d"), 0), (("b", "a"), 0)])
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_from_lags(self, diamond):
        s = FailureScenario.from_lags(diamond, [("a", "b")])
        assert s.num_failed_links == 2  # both links of the 2-link LAG

    def test_from_lags_unknown(self, diamond):
        with pytest.raises(TopologyError):
            FailureScenario.from_lags(diamond, [("a", "zzz")])

    def test_validate_bad_link_index(self, diamond):
        with pytest.raises(TopologyError):
            FailureScenario([(("b", "d"), 3)]).validate_for(diamond)

    def test_residual_capacities_partial(self, diamond):
        s = FailureScenario([(("a", "b"), 0)])  # one of two links
        caps = s.residual_capacities(diamond)
        assert caps[("a", "b")] == pytest.approx(5.0)
        assert caps[("b", "d")] == pytest.approx(10.0)

    def test_down_lags_requires_all_links(self, diamond):
        partial = FailureScenario([(("a", "b"), 0)])
        assert partial.down_lags(diamond) == set()
        full = FailureScenario([(("a", "b"), 0), (("a", "b"), 1)])
        assert full.down_lags(diamond) == {("a", "b")}

    def test_union(self):
        a = FailureScenario([(("a", "b"), 0)])
        b = FailureScenario([(("c", "d"), 0)])
        assert a.union(b).num_failed_links == 2

    def test_repr_truncates(self):
        s = FailureScenario([(("a", "b"), i) for i in range(10)])
        assert "+4 more" in repr(s)


class TestPathAvailability:
    def test_path_is_down(self, diamond):
        down = {("b", "d")}
        assert path_is_down(diamond, ("a", "b", "d"), down)
        assert not path_is_down(diamond, ("a", "c", "d"), down)

    def test_backup_activation_order(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 1, 1)
        dp = paths[("a", "d")]
        primary, backup = dp.paths
        # No failures: only the primary is active.
        assert active_paths(diamond, dp, set()) == [primary]
        # Primary's LAG down: backup becomes active (primary still listed --
        # its LAG has zero residual capacity so it cannot carry traffic).
        down = {diamond.lags_on_path(primary)[0].key}
        active = active_paths(diamond, dp, down)
        assert backup in active

    def test_second_backup_needs_two_failures(self):
        topo = from_edges([
            ("a", "b", 10), ("b", "d", 10), ("a", "c", 10), ("c", "d", 10),
            ("a", "e", 10), ("e", "d", 10),
        ])
        paths = PathSet.k_shortest(topo, [("a", "d")], 1, 2)
        dp = paths[("a", "d")]
        primary, backup1, backup2 = dp.paths
        one_down = {topo.lags_on_path(primary)[0].key}
        active = active_paths(topo, dp, one_down)
        assert backup1 in active
        assert backup2 not in active
        two_down = one_down | {topo.lags_on_path(backup1)[0].key}
        active = active_paths(topo, dp, two_down)
        assert backup2 in active

    def test_connected_enforced(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        ok = FailureScenario.from_lags(diamond, [("a", "b")])
        assert connected_enforced_holds(diamond, paths, ok)
        bad = FailureScenario.from_lags(diamond, [("a", "b"), ("a", "c")])
        assert not connected_enforced_holds(diamond, paths, bad)


class TestSimulation:
    def test_no_failures_equals_design_point_on_primaries(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        sol = simulate_failed_network(
            diamond, {("a", "d"): 100.0}, paths, FailureScenario()
        )
        assert sol.total_flow == pytest.approx(20.0)

    def test_backup_inactive_without_failure(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 1, 1)
        sol = simulate_failed_network(
            diamond, {("a", "d"): 100.0}, paths, FailureScenario()
        )
        # Only the primary is usable: 10, not 20.
        assert sol.total_flow == pytest.approx(10.0)

    def test_failover_engages_backup(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 1, 1)
        primary = paths[("a", "d")].paths[0]
        scenario = FailureScenario.from_lags(
            diamond, [diamond.lags_on_path(primary)[0].key]
        )
        sol = simulate_failed_network(
            diamond, {("a", "d"): 100.0}, paths, scenario
        )
        assert sol.total_flow == pytest.approx(10.0)

    def test_partial_failure_reduces_capacity(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        # One link of the 2-link a-b LAG: residual 5 on that route.
        scenario = FailureScenario([(("a", "b"), 0)])
        sol = simulate_failed_network(
            diamond, {("a", "d"): 100.0}, paths, scenario
        )
        assert sol.total_flow == pytest.approx(15.0)

    def test_total_disconnection_routes_zero(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        scenario = FailureScenario.from_lags(
            diamond, [("a", "b"), ("a", "c")]
        )
        sol = simulate_failed_network(
            diamond, {("a", "d"): 100.0}, paths, scenario
        )
        assert sol.total_flow == pytest.approx(0.0)

    def test_custom_te_factory(self, diamond):
        from repro.te import MluTE

        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        sol = simulate_failed_network(
            diamond, {("a", "d"): 10.0}, paths, FailureScenario(),
            te_factory=lambda: MluTE(primary_only=False),
        )
        assert sol.objective == pytest.approx(0.5)
