"""Tests for probability arithmetic, Figure 2, and renewal-reward."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TopologyError
from repro.failures import (
    FailureScenario,
    RenewalRewardEstimator,
    max_simultaneous_failures,
    scenario_log_probability,
    scenario_probability,
)
from repro.failures.probability import most_likely_scenario
from repro.failures.tracegen import generate_outage_trace, true_down_probability
from repro.network.builder import from_edges


def two_link_topo(p1=0.1, p2=0.2):
    topo = from_edges([("a", "b"), ("b", "c")], default_capacity=10)
    from repro.network.builder import with_link_probabilities

    return with_link_probabilities(
        topo, {("a", "b"): p1, ("b", "c"): p2}
    )


class TestScenarioProbability:
    def test_empty_scenario(self):
        topo = two_link_topo(0.1, 0.2)
        p = scenario_probability(topo, FailureScenario())
        assert p == pytest.approx(0.9 * 0.8)

    def test_one_failure(self):
        topo = two_link_topo(0.1, 0.2)
        s = FailureScenario([(("a", "b"), 0)])
        assert scenario_probability(topo, s) == pytest.approx(0.1 * 0.8)

    def test_all_failures(self):
        topo = two_link_topo(0.1, 0.2)
        s = FailureScenario([(("a", "b"), 0), (("b", "c"), 0)])
        assert scenario_probability(topo, s) == pytest.approx(0.1 * 0.2)

    def test_log_prob_consistent(self):
        topo = two_link_topo(0.3, 0.4)
        s = FailureScenario([(("a", "b"), 0)])
        assert math.exp(scenario_log_probability(topo, s)) == pytest.approx(
            scenario_probability(topo, s)
        )

    def test_missing_probability_rejected(self):
        topo = from_edges([("a", "b")], default_capacity=10)
        with pytest.raises(TopologyError):
            scenario_probability(topo, FailureScenario())

    @settings(max_examples=25, deadline=None)
    @given(
        p1=st.floats(min_value=0.01, max_value=0.99),
        p2=st.floats(min_value=0.01, max_value=0.99),
    )
    def test_probabilities_sum_to_one(self, p1, p2):
        """All four scenarios of a 2-link network partition probability."""
        topo = two_link_topo(p1, p2)
        scenarios = [
            FailureScenario(),
            FailureScenario([(("a", "b"), 0)]),
            FailureScenario([(("b", "c"), 0)]),
            FailureScenario([(("a", "b"), 0), (("b", "c"), 0)]),
        ]
        total = sum(scenario_probability(topo, s) for s in scenarios)
        assert total == pytest.approx(1.0)


class TestMostLikely:
    def test_fails_links_over_half(self):
        topo = two_link_topo(0.7, 0.2)
        s = most_likely_scenario(topo)
        assert s.is_failed(("a", "b"), 0)
        assert not s.is_failed(("b", "c"), 0)


class TestMaxSimultaneousFailures:
    def test_monotone_in_threshold(self):
        topo = two_link_topo(0.3, 0.3)
        counts = [
            max_simultaneous_failures(topo, t)[0]
            for t in (0.5, 0.3, 0.1, 0.01)
        ]
        assert counts == sorted(counts)

    def test_exact_small_case(self):
        # p = 0.3 each: all-up 0.49, one-down 0.21, two-down 0.09.
        topo = two_link_topo(0.3, 0.3)
        assert max_simultaneous_failures(topo, 0.08)[0] == 2
        assert max_simultaneous_failures(topo, 0.15)[0] == 1
        assert max_simultaneous_failures(topo, 0.3)[0] == 0

    def test_returned_scenario_meets_threshold(self):
        topo = two_link_topo(0.3, 0.4)
        count, scenario = max_simultaneous_failures(topo, 0.1)
        assert scenario.num_failed_links == count
        assert scenario_probability(topo, scenario) >= 0.1 - 1e-12

    def test_dead_links_fail_even_at_high_threshold(self):
        topo = two_link_topo(0.97, 0.001)
        count, scenario = max_simultaneous_failures(topo, 0.5)
        assert count == 1
        assert scenario.is_failed(("a", "b"), 0)

    def test_impossible_threshold(self):
        topo = two_link_topo(0.5, 0.5)  # every scenario has p = 0.25
        count, scenario = max_simultaneous_failures(topo, 0.9)
        assert count == 0
        assert scenario.num_failed_links == 0

    def test_bad_threshold_rejected(self):
        topo = two_link_topo()
        with pytest.raises(ValueError):
            max_simultaneous_failures(topo, 0.0)
        with pytest.raises(ValueError):
            max_simultaneous_failures(topo, 1.0)

    def test_production_mixture_envelope(self):
        """Fig. 2's shape: counts fall as the threshold rises, with a
        double-digit span at low thresholds on a production-like WAN."""
        from repro.network.generators import production_wan

        topo = production_wan(num_regions=4, nodes_per_region=6, seed=0)
        counts = {
            t: max_simultaneous_failures(topo, t)[0]
            for t in (1e-5, 1e-3, 1e-1)
        }
        assert counts[1e-5] >= counts[1e-3] >= counts[1e-1]
        assert counts[1e-5] > counts[1e-1]
        assert counts[1e-5] >= 5


class TestRenewalReward:
    def test_simple_two_outages(self):
        est = RenewalRewardEstimator.from_trace([(10, 12), (20, 23)])
        # One cycle: repairs at 12 and 23 (X = 11), downtime in it = 3.
        assert est.probability() == pytest.approx(3 / 11)

    def test_needs_two_outages(self):
        est = RenewalRewardEstimator.from_trace([(10, 12)])
        with pytest.raises(ValueError):
            est.probability()

    def test_rejects_bad_interval(self):
        est = RenewalRewardEstimator()
        with pytest.raises(ValueError):
            est.add_outage(5, 5)

    def test_rejects_out_of_order(self):
        est = RenewalRewardEstimator.from_trace([(10, 12)])
        with pytest.raises(ValueError):
            est.add_outage(11, 13)

    def test_converges_to_ground_truth(self):
        mtbf, mttr = 100.0, 5.0
        trace = generate_outage_trace(mtbf, mttr, horizon=200_000, seed=3)
        est = RenewalRewardEstimator.from_trace(trace)
        truth = true_down_probability(mtbf, mttr)
        assert est.probability() == pytest.approx(truth, rel=0.1)

    @settings(max_examples=10, deadline=None)
    @given(
        mtbf=st.floats(min_value=10.0, max_value=500.0),
        mttr=st.floats(min_value=1.0, max_value=50.0),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_estimator_property(self, mtbf, mttr, seed):
        trace = generate_outage_trace(mtbf, mttr, horizon=100_000, seed=seed)
        if len(trace) < 50:
            return  # not enough cycles for a meaningful check
        est = RenewalRewardEstimator.from_trace(trace)
        truth = true_down_probability(mtbf, mttr)
        assert est.probability() == pytest.approx(truth, rel=0.5)

    def test_tracegen_validation(self):
        with pytest.raises(ValueError):
            generate_outage_trace(0, 1, 10)


class TestSrlgProbability:
    def _conduit_topo(self):
        from repro import Srlg
        from repro.network.srlg import attach_srlg

        topo = from_edges([("a", "b"), ("a", "c"), ("b", "c")],
                          default_capacity=10)
        from repro.network.builder import with_link_probabilities

        topo = with_link_probabilities(topo, {
            ("a", "b"): 0.004, ("a", "c"): 0.004, ("b", "c"): 0.004,
        })
        srlg = Srlg(name="conduit", failure_probability=0.01)
        srlg.add("a", "b", 0)
        srlg.add("a", "c", 0)
        attach_srlg(topo, srlg)
        return topo

    def test_group_priced_once_when_all_failed(self):
        topo = self._conduit_topo()
        s = FailureScenario([(("a", "b"), 0), (("a", "c"), 0)])
        p = scenario_probability(topo, s)
        assert p == pytest.approx(0.01 * (1 - 0.004))

    def test_group_priced_once_when_none_failed(self):
        topo = self._conduit_topo()
        p = scenario_probability(topo, FailureScenario())
        assert p == pytest.approx((1 - 0.01) * (1 - 0.004))

    def test_mixed_state_falls_back_to_links(self):
        topo = self._conduit_topo()
        s = FailureScenario([(("a", "b"), 0)])
        p = scenario_probability(topo, s)
        assert p == pytest.approx(0.004 * (1 - 0.004) * (1 - 0.004))
