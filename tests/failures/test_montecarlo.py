"""Tests for Monte Carlo availability estimation."""

import pytest

from repro import PathSet, RahaAnalyzer, RahaConfig, Srlg
from repro.exceptions import TopologyError
from repro.failures.montecarlo import estimate_availability, sample_scenario
from repro.network.builder import from_edges
from repro.network.srlg import attach_srlg

import numpy as np


@pytest.fixture
def diamond():
    return from_edges([
        ("a", "b", 10), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
    ], failure_probability=0.1)


@pytest.fixture
def paths(diamond):
    return PathSet.k_shortest(diamond, [("a", "d")], num_primary=2,
                              num_backup=0)


class TestSampleScenario:
    def test_sampling_frequency_tracks_probability(self, diamond):
        rng = np.random.default_rng(0)
        draws = [sample_scenario(diamond, rng) for _ in range(2000)]
        rate = sum(s.is_failed(("a", "b"), 0) for s in draws) / len(draws)
        assert rate == pytest.approx(0.1, abs=0.03)

    def test_srlg_members_share_fate(self):
        topo = from_edges([("a", "b", 1), ("a", "c", 1), ("b", "c", 1)],
                          failure_probability=0.001)
        srlg = Srlg(name="conduit", failure_probability=0.5)
        srlg.add("a", "b", 0)
        srlg.add("a", "c", 0)
        attach_srlg(topo, srlg)
        rng = np.random.default_rng(1)
        for _ in range(200):
            scenario = sample_scenario(topo, rng)
            assert scenario.is_failed(("a", "b"), 0) == scenario.is_failed(
                ("a", "c"), 0
            )

    def test_srlg_draw_cannot_fail_protected_member(self):
        # Regression: a fate-sharing group draw used to bypass the
        # per-link can_fail guard and take down protected links.
        from repro.network.topology import Link

        topo = from_edges([("a", "b", 1), ("a", "c", 1), ("b", "c", 1)],
                          failure_probability=0.001)
        topo.require_lag("a", "b").links = [
            Link(capacity=1, failure_probability=0.001, can_fail=False)
        ]
        srlg = Srlg(name="conduit", failure_probability=0.999)
        srlg.add("a", "b", 0)
        srlg.add("a", "c", 0)
        attach_srlg(topo, srlg)
        rng = np.random.default_rng(5)
        group_fired = 0
        for _ in range(50):
            scenario = sample_scenario(topo, rng)
            group_fired += scenario.is_failed(("a", "c"), 0)
            assert not scenario.is_failed(("a", "b"), 0)
        assert group_fired > 0

    def test_non_failable_links_never_sampled(self):
        from repro.network.topology import Link

        topo = from_edges([("a", "b", 1)], failure_probability=0.9)
        topo.require_lag("a", "b").links = [
            Link(capacity=1, failure_probability=0.9, can_fail=False)
        ]
        rng = np.random.default_rng(2)
        for _ in range(50):
            assert sample_scenario(topo, rng).num_failed_links == 0

    def test_missing_probability_rejected(self):
        topo = from_edges([("a", "b", 1)])
        rng = np.random.default_rng(0)
        with pytest.raises(TopologyError):
            sample_scenario(topo, rng)


class TestEstimateAvailability:
    def test_estimate_fields(self, diamond, paths):
        est = estimate_availability(
            diamond, {("a", "d"): 12.0}, paths, samples=100, seed=3
        )
        assert est.samples == 100
        assert est.healthy_flow == pytest.approx(12.0)
        assert 0.0 <= est.availability <= 1.0
        assert 0.0 <= est.exceedance_probability <= 1.0
        assert est.worst_sampled >= est.expected_degradation - 1e-9
        assert len(est.degradations) == 100

    def test_quantiles_monotone(self, diamond, paths):
        est = estimate_availability(
            diamond, {("a", "d"): 12.0}, paths, samples=100, seed=3
        )
        assert est.quantile(0.5) <= est.quantile(0.95) + 1e-12
        with pytest.raises(ValueError):
            est.quantile(1.5)

    def test_reliable_network_is_mostly_available(self, paths):
        topo = from_edges([
            ("a", "b", 10), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
        ], failure_probability=1e-4)
        est = estimate_availability(
            topo, {("a", "d"): 12.0}, paths, samples=100, seed=4
        )
        assert est.availability > 0.99
        assert est.expected_degradation < 0.2

    def test_worst_sample_never_beats_exact_worst_case(self, diamond,
                                                       paths):
        """The analyzer's exact worst case dominates any sample."""
        est = estimate_availability(
            diamond, {("a", "d"): 12.0}, paths, samples=150, seed=5
        )
        exact = RahaAnalyzer(
            diamond, paths,
            RahaConfig(fixed_demands={("a", "d"): 12.0}),
        ).analyze()
        assert est.worst_sampled <= exact.degradation + 1e-6

    def test_bad_sample_count_rejected(self, diamond, paths):
        with pytest.raises(ValueError):
            estimate_availability(diamond, {("a", "d"): 1.0}, paths,
                                  samples=0)


class TestScenarioResolver:
    """The compile-once resolver must match the rebuild-every-time
    simulation exactly -- it is the hot path behind availability runs."""

    def _grid(self):
        topology = from_edges([
            ("a", "b", 10), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
            ("b", "c", 4), ("a", "d", 3),
        ], failure_probability=0.1)
        paths = PathSet.k_shortest(
            topology, [("a", "d"), ("b", "c")], num_primary=2, num_backup=1
        )
        demands = {("a", "d"): 12.0, ("b", "c"): 5.0}
        return topology, demands, paths

    def test_matches_simulation_over_all_single_failures(self):
        from repro.failures.montecarlo import ScenarioResolver
        from repro.failures.scenario import (
            FailureScenario,
            simulate_failed_network,
        )

        topology, demands, paths = self._grid()
        resolver = ScenarioResolver(topology, demands, paths)
        scenarios = [FailureScenario()] + [
            FailureScenario([(lag.key, i)])
            for lag in topology.lags
            for i in range(len(lag.links))
        ]
        for scenario in scenarios:
            expected = simulate_failed_network(
                topology, demands, paths, scenario
            ).total_flow
            assert resolver.delivered(scenario) == pytest.approx(
                expected, abs=1e-6
            ), f"mismatch under {scenario}"

    def test_matches_simulation_on_double_failures(self):
        import itertools

        from repro.failures.montecarlo import ScenarioResolver
        from repro.failures.scenario import (
            FailureScenario,
            simulate_failed_network,
        )

        topology, demands, paths = self._grid()
        resolver = ScenarioResolver(topology, demands, paths)
        links = [
            (lag.key, i)
            for lag in topology.lags
            for i in range(len(lag.links))
        ]
        for pair in itertools.combinations(links, 2):
            scenario = FailureScenario(pair)
            expected = simulate_failed_network(
                topology, demands, paths, scenario
            ).total_flow
            assert resolver.delivered(scenario) == pytest.approx(
                expected, abs=1e-6
            )

    def test_resolver_is_stateless_between_scenarios(self, diamond, paths):
        from repro.failures.montecarlo import ScenarioResolver
        from repro.failures.scenario import FailureScenario

        demands = {("a", "d"): 12.0}
        resolver = ScenarioResolver(diamond, demands, paths)
        healthy = resolver.delivered(FailureScenario())
        key = (("a", "b"), 0)
        degraded = resolver.delivered(FailureScenario([key]))
        assert degraded < healthy
        # Re-solving the healthy scenario must recover the original optimum:
        # bound/rhs patches from the degraded solve must not leak.
        assert resolver.delivered(FailureScenario()) == pytest.approx(healthy)

    def test_exported_from_package(self):
        from repro.failures import ScenarioResolver  # noqa: F401
