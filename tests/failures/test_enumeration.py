"""Tests for the up-to-k enumeration baseline."""

import pytest

from repro.failures import enumerate_scenarios, worst_case_k_failures
from repro.network.builder import from_edges, with_link_probabilities
from repro.paths import PathSet


@pytest.fixture
def diamond():
    return from_edges([
        ("a", "b", 10), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
    ])


class TestEnumerate:
    def test_counts_without_pruning(self, diamond):
        scenarios = list(enumerate_scenarios(diamond, 1, relevant_only=False))
        assert len(scenarios) == 4
        scenarios2 = list(enumerate_scenarios(diamond, 2, relevant_only=False))
        assert len(scenarios2) == 4 + 6

    def test_relevance_pruning(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "b")], 1, 0)
        scenarios = list(
            enumerate_scenarios(diamond, 1, relevant_only=True, paths=paths)
        )
        assert len(scenarios) == 1  # only the a-b LAG matters

    def test_probability_filter(self, diamond):
        topo = with_link_probabilities(diamond, {
            ("a", "b"): 0.2, ("b", "d"): 1e-6,
            ("a", "c"): 1e-6, ("c", "d"): 1e-6,
        })
        scenarios = list(enumerate_scenarios(
            topo, 1, probability_threshold=1e-3, relevant_only=False
        ))
        assert len(scenarios) == 1
        assert scenarios[0].is_failed(("a", "b"), 0)

    def test_bad_k_rejected(self, diamond):
        with pytest.raises(ValueError):
            list(enumerate_scenarios(diamond, 0))

    @pytest.mark.parametrize("threshold", [0.0, 1.0, -0.5, 2.0])
    def test_out_of_range_threshold_rejected(self, diamond, threshold):
        """Regression: a truthiness check used to silently disable the
        filter for 0.0 and accept nonsensical values like 2.0; only
        ``None`` may mean "no filter"."""
        with pytest.raises(ValueError, match="probability_threshold"):
            list(enumerate_scenarios(
                diamond, 1, probability_threshold=threshold,
                relevant_only=False,
            ))

    def test_none_threshold_disables_filter(self, diamond):
        scenarios = list(enumerate_scenarios(
            diamond, 1, probability_threshold=None, relevant_only=False
        ))
        assert len(scenarios) == 4

    def test_tiny_threshold_keeps_everything(self, diamond):
        """A valid but tiny threshold filters on probability, it does
        not fall back to disabled: all scenarios here clear 1e-12."""
        topo = with_link_probabilities(diamond, {
            ("a", "b"): 0.2, ("b", "d"): 0.2,
            ("a", "c"): 0.2, ("c", "d"): 0.2,
        })
        scenarios = list(enumerate_scenarios(
            topo, 1, probability_threshold=1e-12, relevant_only=False
        ))
        assert len(scenarios) == 4


class TestWorstCase:
    def test_finds_the_bottleneck_link(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        result = worst_case_k_failures(
            diamond, {("a", "d"): 100.0}, paths, max_failures=1
        )
        # Healthy: 16. Worst single failure kills the 10-cap route: 6 left.
        assert result.healthy_flow == pytest.approx(16.0)
        assert result.degradation == pytest.approx(10.0)
        assert result.scenario is not None
        assert result.scenarios_checked == 4

    def test_two_failures_kill_everything(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        result = worst_case_k_failures(
            diamond, {("a", "d"): 100.0}, paths, max_failures=2
        )
        assert result.degradation == pytest.approx(16.0)
        assert result.failed_flow == pytest.approx(0.0)

    def test_connected_enforced_limits_damage(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        result = worst_case_k_failures(
            diamond, {("a", "d"): 100.0}, paths, max_failures=2,
            connected_enforced=True,
        )
        # Cannot take both routes down; worst remains one route.
        assert result.degradation == pytest.approx(10.0)

    def test_probability_threshold_excludes_rare(self, diamond):
        topo = with_link_probabilities(diamond, {
            ("a", "b"): 1e-9, ("b", "d"): 1e-9,
            ("a", "c"): 0.1, ("c", "d"): 0.1,
        })
        paths = PathSet.k_shortest(topo, [("a", "d")], 2, 0)
        result = worst_case_k_failures(
            topo, {("a", "d"): 100.0}, paths, max_failures=1,
            probability_threshold=1e-4,
        )
        # Only the 6-cap route's links are probable enough to fail.
        assert result.degradation == pytest.approx(6.0)

    def test_minimize_performance_mode(self, diamond):
        """The naive objective can pick a different scenario than the gap."""
        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        naive = worst_case_k_failures(
            diamond, {("a", "d"): 100.0}, paths, max_failures=1,
            minimize_performance=True,
        )
        assert naive.failed_flow == pytest.approx(6.0)

    def test_monotone_in_k(self, diamond):
        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        degradations = [
            worst_case_k_failures(
                diamond, {("a", "d"): 100.0}, paths, max_failures=k
            ).degradation
            for k in (1, 2)
        ]
        assert degradations[0] <= degradations[1] + 1e-9

    def test_infeasible_scenario_counts_as_zero_flow(self, diamond,
                                                     monkeypatch):
        """Regression: infeasible failed networks were silently skipped,
        hiding the true worst case.  They deliver nothing, so they must
        compete with failed_flow 0.0 -- the same semantics as
        ``ScenarioResolver.delivered``."""
        from types import SimpleNamespace

        from repro.failures import enumeration

        real = enumeration.simulate_failed_network

        def flaky(topology, demands, paths, scenario, te_factory=None):
            if scenario.is_failed(("a", "b"), 0):
                return SimpleNamespace(feasible=False, total_flow=16.0)
            return real(topology, demands, paths, scenario, te_factory)

        monkeypatch.setattr(enumeration, "simulate_failed_network", flaky)
        paths = PathSet.k_shortest(diamond, [("a", "d")], 2, 0)
        result = worst_case_k_failures(
            diamond, {("a", "d"): 100.0}, paths, max_failures=1
        )
        # The infeasible scenario must win outright: the whole 16 units
        # are lost, worse than any feasible single failure (10).
        assert result.failed_flow == pytest.approx(0.0)
        assert result.degradation == pytest.approx(16.0)
        assert result.scenario is not None
        assert result.scenario.is_failed(("a", "b"), 0)
        assert result.scenarios_checked == 4

    def test_no_qualifying_scenarios(self, diamond):
        topo = with_link_probabilities(diamond, {
            ("a", "b"): 1e-9, ("b", "d"): 1e-9,
            ("a", "c"): 1e-9, ("c", "d"): 1e-9,
        })
        paths = PathSet.k_shortest(topo, [("a", "d")], 2, 0)
        result = worst_case_k_failures(
            topo, {("a", "d"): 100.0}, paths, max_failures=1,
            probability_threshold=0.5,
        )
        assert result.scenario is None
        assert result.degradation == 0.0
