"""Tests for the parallel, vectorized Monte Carlo availability engine.

The engine's contract is *bit-identical* statistics: the vectorized
sampler replays the serial RNG stream, the fixed chunk partition makes
the merge independent of ``--jobs``, and the persistent cache and chaos
fallbacks change wall-clock behavior only -- never a single float.
"""

import dataclasses

import numpy as np
import pytest

from repro import PathSet, Srlg
from repro.core.config import MonteCarloConfig
from repro.exceptions import ModelingError
from repro.failures.availability import (
    ScenarioSampler,
    availability_task,
    estimate_availability_parallel,
    scenario_doc,
)
from repro.failures.montecarlo import estimate_availability, sample_scenario
from repro.network.builder import from_edges
from repro.network.srlg import attach_srlg
from repro.network.topology import Link
from repro.resilience.faults import FaultPlan, FaultPoint


@pytest.fixture
def diamond():
    # Probabilities are deliberately high so a small sample count still
    # produces a rich mix of distinct scenarios.
    return from_edges([
        ("a", "b", 10), ("b", "d", 10), ("a", "c", 6), ("c", "d", 6),
    ], failure_probability=0.2)


@pytest.fixture
def grouped(diamond):
    # One SRLG, one protected link, one non-failable probability-carrying
    # link: every branch of the sampler in a four-link topology.
    diamond.require_lag("b", "d").links = [
        Link(capacity=10, failure_probability=0.3, can_fail=False)
    ]
    srlg = Srlg(name="conduit", failure_probability=0.25)
    srlg.add("a", "b", 0)
    srlg.add("b", "d", 0)
    attach_srlg(diamond, srlg)
    return diamond


@pytest.fixture
def paths(diamond):
    return PathSet.k_shortest(diamond, [("a", "d")], num_primary=2,
                              num_backup=0)


DEMANDS = {("a", "d"): 12.0}


def config(**overrides):
    base = dict(samples=80, seed=11, degradation_threshold=1.0,
                num_workers=1, chunk_size=8)
    base.update(overrides)
    return MonteCarloConfig(**base)


class TestScenarioSampler:
    def test_replays_the_serial_stream(self, grouped):
        rng_serial = np.random.default_rng(42)
        rng_vec = np.random.default_rng(42)
        sampler = ScenarioSampler(grouped)
        matrix = sampler.sample(rng_vec, 300)
        for row in matrix:
            assert sample_scenario(grouped, rng_serial) == \
                sampler.scenario_for(row)

    def test_replays_the_stream_without_srlgs(self, diamond):
        rng_serial = np.random.default_rng(9)
        rng_vec = np.random.default_rng(9)
        sampler = ScenarioSampler(diamond)
        matrix = sampler.sample(rng_vec, 100)
        for row in matrix:
            assert sample_scenario(diamond, rng_serial) == \
                sampler.scenario_for(row)


class TestBitIdentity:
    def test_matches_serial_estimate(self, grouped, paths):
        serial = estimate_availability(
            grouped, DEMANDS, paths, samples=80, seed=11,
            degradation_threshold=1.0,
        )
        parallel = estimate_availability_parallel(
            grouped, DEMANDS, paths, config())
        assert parallel.degradations == serial.degradations
        assert parallel.expected_degradation == serial.expected_degradation
        assert parallel.availability == serial.availability
        assert parallel.exceedance_probability == \
            serial.exceedance_probability
        assert parallel.worst_sampled == serial.worst_sampled
        assert parallel.worst_scenario == serial.worst_scenario
        assert parallel.distinct_scenarios == serial.distinct_scenarios

    def test_jobs_1_and_4_are_bit_identical(self, grouped, paths):
        one = estimate_availability_parallel(
            grouped, DEMANDS, paths, config(num_workers=1))
        four = estimate_availability_parallel(
            grouped, DEMANDS, paths, config(num_workers=4))
        assert one.degradations == four.degradations
        assert one.expected_degradation == four.expected_degradation
        assert one.availability == four.availability
        assert one.worst_scenario == four.worst_scenario
        assert one.distinct_scenarios == four.distinct_scenarios
        assert four.fresh_solves == four.distinct_scenarios

    def test_dedup_counts_distinct_canonical_scenarios(self, grouped,
                                                       paths):
        estimate = estimate_availability_parallel(
            grouped, DEMANDS, paths, config())
        rng = np.random.default_rng(11)
        seen = set()
        for _ in range(80):
            seen.add(
                tuple(map(tuple, scenario_doc(sample_scenario(grouped,
                                                              rng)))))
        assert estimate.distinct_scenarios == len(seen)
        assert len(estimate.degradations) == 80


class TestPersistentCache:
    def test_warm_run_does_zero_fresh_solves(self, grouped, paths,
                                             tmp_path):
        cache = tmp_path / "cache"
        cold = estimate_availability_parallel(
            grouped, DEMANDS, paths, config(), cache=cache)
        assert cold.cache_hits == 0
        assert cold.fresh_solves == cold.distinct_scenarios
        warm = estimate_availability_parallel(
            grouped, DEMANDS, paths, config(), cache=cache)
        assert warm.fresh_solves == 0
        assert warm.cache_hits == warm.distinct_scenarios
        assert warm.degradations == cold.degradations
        assert warm.worst_scenario == cold.worst_scenario

    def test_cache_is_instance_keyed(self, grouped, paths, tmp_path):
        cache = tmp_path / "cache"
        estimate_availability_parallel(
            grouped, DEMANDS, paths, config(), cache=cache)
        # A different demand matrix is a different instance: no hits.
        other = estimate_availability_parallel(
            grouped, {("a", "d"): 7.0}, paths, config(), cache=cache)
        assert other.cache_hits == 0


class TestChaos:
    PLAN = FaultPlan(seed=3, points=[
        FaultPoint("availability.chunk", rate=1.0, attempts=()),
    ])

    def test_chunk_fault_degrades_to_identical_estimate(self, grouped,
                                                        paths):
        clean = estimate_availability_parallel(
            grouped, DEMANDS, paths, config())
        chaotic = estimate_availability_parallel(
            grouped, DEMANDS, paths, config(), chaos=self.PLAN)
        assert chaotic.chunk_fallbacks > 0
        assert chaotic.degradations == clean.degradations
        assert chaotic.worst_scenario == clean.worst_scenario

    def test_chunk_fault_in_worker_pool(self, grouped, paths):
        clean = estimate_availability_parallel(
            grouped, DEMANDS, paths, config(num_workers=2))
        chaotic = estimate_availability_parallel(
            grouped, DEMANDS, paths, config(num_workers=2),
            chaos=self.PLAN)
        assert chaotic.chunk_fallbacks > 0
        assert chaotic.degradations == clean.degradations

    def test_plan_accepts_dict_form(self, grouped, paths):
        chaotic = estimate_availability_parallel(
            grouped, DEMANDS, paths, config(),
            chaos={"seed": 3, "points": [
                {"site": "availability.chunk", "attempts": []},
            ]})
        assert chaotic.chunk_fallbacks > 0


class TestAdaptiveStopping:
    def test_stops_at_ci_target(self, grouped, paths):
        estimate = estimate_availability_parallel(
            grouped, DEMANDS, paths,
            config(samples=40, ci_width=1.0))
        assert estimate.rounds == 1
        assert estimate.samples == 40
        assert estimate.ci_width is not None
        assert estimate.ci_width <= 1.0

    def test_tight_target_takes_more_rounds(self, grouped, paths):
        estimate = estimate_availability_parallel(
            grouped, DEMANDS, paths,
            config(samples=20, ci_width=1e-6, max_samples=60))
        assert estimate.rounds == 3
        assert estimate.samples == 60  # hit the cap

    def test_fixed_mode_reports_width_too(self, grouped, paths):
        estimate = estimate_availability_parallel(
            grouped, DEMANDS, paths, config())
        assert estimate.rounds == 1
        assert estimate.ci_width is not None


class TestAvailabilityTask:
    def test_round_trips_serialized_instance(self, grouped, paths):
        from repro.network import serialization as ser

        payload = {
            "task": "repro.failures.availability:availability_task",
            "instance": {
                "topology": ser.topology_to_dict(grouped),
                "demands": ser.demands_to_dict(DEMANDS),
                "paths": ser.paths_to_dict(paths),
            },
            "params": {"samples": 80, "seed": 11,
                       "degradation_threshold": 1.0},
        }
        result = availability_task(payload)
        direct = estimate_availability_parallel(
            grouped, DEMANDS, paths, config())
        assert result["availability"] == direct.availability
        assert result["expected_degradation"] == \
            direct.expected_degradation
        assert result["worst_scenario"] == \
            scenario_doc(direct.worst_scenario)
        assert result["distinct_scenarios"] == direct.distinct_scenarios


class TestConfigValidation:
    @pytest.mark.parametrize("overrides", [
        {"samples": 0},
        {"num_workers": 0},
        {"chunk_size": 0},
        {"ci_width": 0.0},
        {"ci_confidence": 1.0},
        {"samples": 50, "max_samples": 10},
    ])
    def test_bad_config_rejected(self, overrides):
        with pytest.raises(ModelingError):
            MonteCarloConfig(**overrides)

    def test_resolved_defaults(self):
        cfg = MonteCarloConfig(samples=10)
        assert cfg.resolved_workers() >= 1
        assert cfg.resolved_max_samples() == 200

    def test_config_is_plain_dataclass(self):
        assert dataclasses.is_dataclass(MonteCarloConfig)
