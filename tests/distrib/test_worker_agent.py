"""The remote worker agent: execution, cancel, fencing, chaos, drain."""

import threading
import time

import pytest

from repro.core.config import DistribConfig, ServiceConfig
from repro.distrib.worker import WorkerAgent
from repro.resilience.faults import FaultPlan, FaultPoint, injected
from repro.service.api import AnalysisService, make_server
from repro.service.client import ServiceClient
from tests.service._specs import echo_spec, sleep_spec


@pytest.fixture
def coordinator(tmp_path):
    """A pure coordinator on an ephemeral port."""
    config = ServiceConfig(port=0, num_workers=1, isolate_jobs=False,
                           local_workers=False,
                           poll_interval_seconds=0.02)
    service = AnalysisService(tmp_path / "svc", config=config)
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[0], server.server_address[1]
    service.base_url = f"http://{host}:{port}"
    yield service
    server.shutdown()
    thread.join(timeout=5)
    service.stop(drain=False)


def make_agent(coordinator, isolate_jobs=False, **overrides):
    defaults = dict(num_workers=1, poll_interval_seconds=0.05,
                    retry_backoff_seconds=0.01,
                    retry_backoff_max_seconds=0.05)
    defaults.update(overrides)
    return WorkerAgent(coordinator.base_url,
                       config=DistribConfig(**defaults),
                       worker_id="agent-under-test",
                       isolate_jobs=isolate_jobs)


class TestExecution:
    def test_agent_drains_the_queue(self, coordinator):
        client = ServiceClient(coordinator.base_url, client_id="test")
        accepted = client.submit(echo_spec([1, 2, 3]))
        agent = make_agent(coordinator)
        agent.client.register(capacity=1)
        assert agent.run_until_idle() == 3
        assert agent.counts == {"done": 3}
        results = client.result(accepted["id"])
        assert sorted(j["result"]["echo"] for j in results["jobs"]) \
            == [1, 2, 3]

    def test_task_failures_settle_failed_not_crash(self, coordinator):
        client = ServiceClient(coordinator.base_url, client_id="test")
        spec = echo_spec([1], name="boom")
        spec["task"] = "tests.runner._workers:error_task"
        accepted = client.submit(spec)
        agent = make_agent(coordinator)
        assert agent.run_until_idle() == 1
        assert agent.counts == {"failed": 1}
        job = client.result(accepted["id"])["jobs"][0]
        assert job["state"] == "failed"
        assert "injected failure" in job["error"]

    def test_threaded_start_and_graceful_stop(self, coordinator):
        client = ServiceClient(coordinator.base_url, client_id="test")
        accepted = client.submit(echo_spec([1, 2, 3, 4], name="threads"))
        agent = make_agent(coordinator, num_workers=2,
                           drain_timeout_seconds=10.0)
        agent.start()
        try:
            results = client.wait(accepted["id"], timeout=30)
        finally:
            agent.stop(drain=True)
        assert results["counts"]["done"] == 4
        # A clean drain deregisters: the fleet listing empties out.
        assert coordinator.store.fleet() == []


class TestCancel:
    def test_remote_cancel_lands_within_a_heartbeat(self, coordinator):
        client = ServiceClient(coordinator.base_url, client_id="test")
        accepted = client.submit(sleep_spec(10.0, [1], name="cancelme"))
        # Pool isolation: the executor polls the cancel check while the
        # sleeping future is in flight (the serial path cannot be
        # interrupted mid-task).
        agent = make_agent(coordinator, isolate_jobs=True,
                           lease_seconds=5.0,
                           heartbeat_interval_seconds=0.05,
                           drain_timeout_seconds=10.0)
        agent.start()
        try:
            deadline = time.monotonic() + 10
            while client.status(accepted["id"])["counts"]["running"] == 0:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            client.cancel(accepted["id"])
            results = client.wait(accepted["id"], timeout=20)
        finally:
            agent.stop(drain=True)
        assert results["counts"]["cancelled"] == 1
        assert agent.counts == {"cancelled": 1}


class TestFencing:
    def test_reaped_claim_is_discarded_and_rerun_settles(self, coordinator):
        client = ServiceClient(coordinator.base_url, client_id="test")
        accepted = client.submit(sleep_spec(0.5, [1], name="reapme"))
        # Lease far shorter than the job, heartbeats effectively off:
        # the reaper takes the claim while the agent is mid-sleep.
        slow = make_agent(coordinator, lease_seconds=0.1,
                          heartbeat_interval_seconds=60.0)
        ran_in = threading.Thread(target=slow.run_until_idle, daemon=True)
        ran_in.start()
        time.sleep(0.25)
        assert coordinator.scheduler.reap_once() >= 1
        # A second agent picks the requeued job and settles it.
        fast = make_agent(coordinator, lease_seconds=30.0)
        fast.worker_id = fast.client.worker_id = "agent-two"
        fast.client.client_id = "agent-two"
        assert fast.run_until_idle() == 1
        ran_in.join(timeout=15)
        assert not ran_in.is_alive()
        assert slow.counts.get("stale", 0) == 1
        assert fast.counts == {"done": 1}
        # Exactly-once: one terminal transition, ever.
        terminal = [t for t in coordinator.store.transitions(accepted["id"])
                    if t["to_state"] in ("done", "failed", "cancelled")]
        assert len(terminal) == 1
        assert client.result(accepted["id"])["counts"]["done"] == 1


class TestChaos:
    def test_distrib_drops_are_retried_transparently(self, coordinator):
        client = ServiceClient(coordinator.base_url, client_id="test")
        accepted = client.submit(echo_spec([1, 2], name="chaotic"))
        plan = FaultPlan(seed=7, points=[
            FaultPoint("distrib.claim", attempts=(1,)),
            FaultPoint("distrib.heartbeat", attempts=(1,)),
            FaultPoint("distrib.settle", attempts=(1,)),
        ])
        agent = make_agent(coordinator, retries=3)
        with injected(plan):
            assert agent.run_until_idle() == 2
        assert agent.counts == {"done": 2}
        results = client.result(accepted["id"])
        assert sorted(j["result"]["echo"] for j in results["jobs"]) \
            == [1, 2]
        # Each job reached a terminal state exactly once despite the
        # dropped first attempt of every fleet request.
        terminal = [t for t in coordinator.store.transitions(accepted["id"])
                    if t["to_state"] == "done"]
        assert len(terminal) == 2

    def test_exhausted_retry_budget_surfaces(self, coordinator):
        plan = FaultPlan(seed=7, points=[
            FaultPoint("distrib.claim", attempts=()),  # every attempt
        ])
        agent = make_agent(coordinator, retries=1)
        from repro.exceptions import ServiceError

        with injected(plan), pytest.raises(ServiceError):
            agent.client.claim(lease_seconds=1.0)
