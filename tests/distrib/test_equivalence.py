"""Distributed acceptance: bit-identical results, exactly-once on kill.

Two pins hold the fleet to the paper's reproduction bar:

* a B4 degradation sweep executed by a remote worker against a pure
  coordinator (``local_workers=False``) must match a direct
  :func:`~repro.runner.executor.run_sweep` of the same spec bit for
  bit (wall-clock telemetry scrubbed);
* SIGKILLing a worker *process* mid-job must lose nothing: the lease
  lapses, the reaper requeues, a second worker settles, and the audit
  trail shows exactly one terminal transition per job.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.config import DistribConfig, ServiceConfig, SupervisionConfig
from repro.distrib.worker import WorkerAgent
from repro.network import serialization as ser
from repro.network.demand import gravity_demands
from repro.network.zoo import b4
from repro.paths.pathset import PathSet
from repro.runner.cache import ResultCache
from repro.runner.executor import run_sweep
from repro.runner.jobs import SweepSpec
from repro.service.api import AnalysisService, make_server
from repro.service.client import ServiceClient
from tests.service._specs import sleep_spec

REPO_ROOT = Path(__file__).resolve().parents[2]


def scrub(doc):
    """Drop wall-clock telemetry (``*_seconds``); the rest must match."""
    if isinstance(doc, dict):
        return {key: scrub(value) for key, value in doc.items()
                if not key.endswith("_seconds")}
    if isinstance(doc, list):
        return [scrub(item) for item in doc]
    return doc


def b4_spec() -> dict:
    """A 2-job degradation sweep on B4 -- small but a real analysis."""
    topology = b4()
    nodes = sorted(topology.nodes)
    pairs = [(nodes[0], nodes[5]), (nodes[2], nodes[9])]
    demands = gravity_demands(topology, scale=5e5, pairs=pairs, seed=1)
    paths = PathSet.k_shortest(topology, pairs, num_primary=2,
                               num_backup=1)
    return {
        "kind": "sweep_spec",
        "name": "distrib-equivalence",
        "instance": {
            "topology": ser.topology_to_dict(topology),
            "demands": ser.demands_to_dict(demands),
            "paths": ser.paths_to_dict(paths),
        },
        "base": {"demand_mode": "fixed", "max_failures": 2,
                 "time_limit": 60.0, "mip_rel_gap": 0.0},
        "grid": {"threshold": [1e-4, 1e-2]},
    }


def start_coordinator(tmp_path, **config_overrides):
    defaults = dict(port=0, num_workers=1, isolate_jobs=False,
                    local_workers=False, poll_interval_seconds=0.02)
    defaults.update(config_overrides)
    service = AnalysisService(tmp_path / "svc",
                              config=ServiceConfig(**defaults))
    # Pure coordinator: no local worker threads start, but recovery,
    # the reaper, and result eviction do.
    service.start()
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[0], server.server_address[1]
    url = f"http://{host}:{port}"

    def shutdown():
        server.shutdown()
        thread.join(timeout=5)
        service.stop(drain=False)

    return service, url, shutdown


class TestBitIdentical:
    def test_remote_sweep_matches_direct_run(self, tmp_path):
        spec_doc = b4_spec()
        direct = run_sweep(SweepSpec.from_dict(spec_doc), num_workers=1,
                           cache=ResultCache(tmp_path / "direct-cache"),
                           handle_signals=False)
        assert all(o.ok for o in direct.outcomes)
        direct_by_key = {o.job.key: scrub(o.result)
                         for o in direct.outcomes}

        service, url, shutdown = start_coordinator(tmp_path)
        try:
            client = ServiceClient(url, client_id="equiv")
            accepted = client.submit(spec_doc)
            agent = WorkerAgent(
                url, config=DistribConfig(num_workers=1),
                worker_id="equiv-worker", isolate_jobs=False)
            agent.client.register(capacity=1)
            assert agent.run_until_idle() == accepted["total_jobs"]
            results = client.result(accepted["id"])
        finally:
            shutdown()
        assert results["counts"]["done"] == accepted["total_jobs"]
        remote_by_key = {j["key"]: scrub(j["result"])
                         for j in results["jobs"]}
        assert remote_by_key == direct_by_key


class TestWorkerKill:
    def test_sigkilled_worker_loses_nothing(self, tmp_path):
        service, url, shutdown = start_coordinator(
            tmp_path,
            supervision=SupervisionConfig(lease_seconds=0.5,
                                          reap_interval_seconds=0.1))
        worker = None
        try:
            client = ServiceClient(url, client_id="chaos")
            accepted = client.submit(sleep_spec(2.0, [1], name="killme"))
            env = dict(os.environ)
            env["PYTHONPATH"] = f"{REPO_ROOT / 'src'}{os.pathsep}{REPO_ROOT}"
            worker = subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--connect", url, "--workers", "1", "--no-isolate",
                 "--lease-seconds", "0.5", "--heartbeat-interval", "0.1",
                 "--poll-interval", "0.05", "--name", "victim"],
                cwd=REPO_ROOT, env=env, stderr=subprocess.DEVNULL)

            deadline = time.monotonic() + 30
            while service.store.counts()["running"] == 0:
                assert worker.poll() is None, "worker died prematurely"
                assert time.monotonic() < deadline
                time.sleep(0.02)
            # kill -9 mid-job: no drain, no release, no settle.
            worker.send_signal(signal.SIGKILL)
            worker.wait(timeout=10)

            # The lease lapses and the reaper requeues within ~0.6s;
            # then a second worker finishes the job.
            deadline = time.monotonic() + 10
            while service.store.counts()["queued"] == 0:
                assert time.monotonic() < deadline
                time.sleep(0.05)
            second = WorkerAgent(
                url, config=DistribConfig(num_workers=1,
                                          lease_seconds=30.0),
                worker_id="survivor", isolate_jobs=False)
            assert second.run_until_idle() == 1
            results = client.result(accepted["id"])
            transitions = service.store.transitions(accepted["id"])
        finally:
            if worker is not None and worker.poll() is None:
                worker.kill()
            shutdown()

        assert results["counts"]["done"] == 1
        job = results["jobs"][0]
        assert job["result"] == {"slept": True}
        assert job["attempts"] == 2  # the killed claim burned attempt 1
        # Exactly-once: one terminal transition in the audit trail, and
        # the kill shows up as exactly one extra running->queued reap.
        terminal = [t for t in transitions
                    if t["to_state"] in ("done", "failed", "cancelled")]
        assert len(terminal) == 1
        requeues = [t for t in transitions
                    if (t["from_state"], t["to_state"])
                    == ("running", "queued")]
        assert len(requeues) == 1
