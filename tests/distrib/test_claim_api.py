"""The HTTP claim protocol: fencing, leases, fleet visibility, shedding."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.config import DistribConfig, ServiceConfig
from repro.service.api import AnalysisService, make_server
from repro.service.client import ServiceClient
from tests.service._specs import echo_spec


def make_service(tmp_path, **overrides):
    defaults = dict(port=0, num_workers=1, isolate_jobs=False,
                    local_workers=False, poll_interval_seconds=0.02)
    defaults.update(overrides)
    config = ServiceConfig(**defaults)
    service = AnalysisService(tmp_path / "svc", config=config)
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[0], server.server_address[1]
    service.base_url = f"http://{host}:{port}"
    service._server = server
    service._thread = thread
    return service


def teardown_service(service):
    service._server.shutdown()
    service._thread.join(timeout=5)
    service.stop(drain=False)


@pytest.fixture
def service(tmp_path):
    """A pure coordinator (no local workers) on an ephemeral port."""
    service = make_service(tmp_path)
    yield service
    teardown_service(service)


def raw(service, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(service.base_url + path, data=data,
                                     method=method)
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return (response.status, json.loads(response.read() or b"{}"),
                    dict(response.headers))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}"), dict(exc.headers)


def submit(service, values, name="claims"):
    client = ServiceClient(service.base_url, client_id="test")
    return client.submit(echo_spec(values, name=name)), client


class TestClaiming:
    def test_claim_grants_token_and_lease(self, service):
        submit(service, [1])
        status, body, _ = raw(service, "POST", "/v1/claims",
                              {"worker": "w1", "lease_seconds": 30.0})
        assert status == 200
        claim = body["claim"]
        assert claim["claim_token"]
        assert claim["lease_seconds"] == 30.0
        assert claim["payload"]["params"] == {"value": 1}
        # The claim is visible -- and attributed -- in the listing.
        status, body, _ = raw(service, "GET", "/v1/claims")
        assert body["total"] == 1
        assert body["claims"][0]["worker"] == "w1"

    def test_empty_queue_is_a_poll_hint_not_an_error(self, service):
        status, body, _ = raw(service, "POST", "/v1/claims",
                              {"worker": "w1"})
        assert status == 200
        assert body["claim"] is None
        assert body["retry_after_seconds"] > 0

    def test_bad_claim_inputs_are_400(self, service):
        status, _, _ = raw(service, "POST", "/v1/claims", {"worker": 42})
        assert status == 400
        status, _, _ = raw(service, "POST", "/v1/claims",
                           {"worker": "w1", "lease_seconds": -1})
        assert status == 400

    def test_claim_rate_shed_is_429_with_retry_after(self, tmp_path):
        service = make_service(
            tmp_path, distrib=DistribConfig(max_claims_per_second=1.0))
        try:
            status, _, _ = raw(service, "POST", "/v1/claims",
                               {"worker": "w1"})
            assert status == 200  # burst of one
            status, body, headers = raw(service, "POST", "/v1/claims",
                                        {"worker": "w1"})
            assert status == 429
            assert body["retry_after_seconds"] > 0
            assert "Retry-After" in headers
        finally:
            teardown_service(service)


class TestFencing:
    def claim(self, service):
        status, body, _ = raw(service, "POST", "/v1/claims",
                              {"worker": "w1", "lease_seconds": 30.0})
        assert status == 200 and body["claim"]
        return body["claim"]

    def test_heartbeat_renews_and_carries_cancel(self, service):
        accepted, client = submit(service, [1])
        claim = self.claim(service)
        path = (f"/v1/claims/{claim['analysis_id']}/{claim['key']}"
                f"/heartbeat")
        status, body, _ = raw(service, "POST", path,
                              {"token": claim["claim_token"],
                               "lease_seconds": 30.0})
        assert status == 200
        assert body["outcome"] == "renewed"
        assert body["cancel_requested"] is False
        client.cancel(accepted["id"])
        status, body, _ = raw(service, "POST", path,
                              {"token": claim["claim_token"]})
        assert body["cancel_requested"] is True

    def test_wrong_token_heartbeat_is_409_lost(self, service):
        submit(service, [1])
        claim = self.claim(service)
        path = (f"/v1/claims/{claim['analysis_id']}/{claim['key']}"
                f"/heartbeat")
        status, body, _ = raw(service, "POST", path, {"token": "stale"})
        assert status == 409 and body["outcome"] == "lost"
        # The real token still works: the stale beat changed nothing.
        status, body, _ = raw(service, "POST", path,
                              {"token": claim["claim_token"]})
        assert status == 200

    def test_settle_ships_the_result(self, service):
        accepted, client = submit(service, [7])
        claim = self.claim(service)
        path = f"/v1/claims/{claim['analysis_id']}/{claim['key']}/settle"
        status, body, _ = raw(service, "POST", path,
                              {"token": claim["claim_token"],
                               "state": "done", "status": "done",
                               "result": {"echo": 7}})
        assert status == 200 and body["settled"] is True
        results = client.result(accepted["id"])
        assert results["jobs"][0]["result"] == {"echo": 7}

    def test_stale_settle_is_409_and_loses(self, service):
        import time

        accepted, client = submit(service, [1])
        status, body, _ = raw(service, "POST", "/v1/claims",
                              {"worker": "w1", "lease_seconds": 0.01})
        stale = body["claim"]
        # The lease lapses, is reaped, and the job is re-claimed.
        time.sleep(0.05)
        assert service.store.reap_expired()
        fresh_status, fresh_body, _ = raw(
            service, "POST", "/v1/claims", {"worker": "w2"})
        fresh = fresh_body["claim"]
        assert fresh["claim_token"] != stale["claim_token"]
        path = f"/v1/claims/{stale['analysis_id']}/{stale['key']}/settle"
        status, body, _ = raw(service, "POST", path,
                              {"token": stale["claim_token"],
                               "state": "done", "status": "done",
                               "result": {"echo": "stale"}})
        assert status == 409 and body["settled"] is False
        # The fresh claim settles fine; the job is terminal exactly once.
        path = f"/v1/claims/{fresh['analysis_id']}/{fresh['key']}/settle"
        status, body, _ = raw(service, "POST", path,
                              {"token": fresh["claim_token"],
                               "state": "done", "status": "done",
                               "result": {"echo": 1}})
        assert status == 200
        terminal = [t for t in service.store.transitions(accepted["id"])
                    if t["to_state"] == "done"]
        assert len(terminal) == 1
        assert client.result(accepted["id"])["jobs"][0]["result"] \
            == {"echo": 1}

    def test_release_refunds_the_attempt(self, service):
        submit(service, [1])
        claim = self.claim(service)
        path = f"/v1/claims/{claim['analysis_id']}/{claim['key']}/release"
        status, body, _ = raw(service, "POST", path,
                              {"token": claim["claim_token"]})
        assert status == 200 and body["released"] is True
        again = self.claim(service)
        assert again["attempts"] == 1  # refunded, not burned
        # A replayed release is refused: the claim is no longer ours.
        status, body, _ = raw(service, "POST", path,
                              {"token": claim["claim_token"]})
        assert status == 409 and body["released"] is False

    def test_missing_token_is_400(self, service):
        submit(service, [1])
        claim = self.claim(service)
        for verb in ("heartbeat", "settle", "release"):
            path = (f"/v1/claims/{claim['analysis_id']}/{claim['key']}"
                    f"/{verb}")
            status, _, _ = raw(service, "POST", path, {})
            assert status == 400


class TestFleetVisibility:
    def test_register_list_deregister(self, service):
        status, body, _ = raw(service, "POST", "/v1/workers",
                              {"id": "w1", "capacity": 4, "host": "h",
                               "pid": 42})
        assert status == 201 and body["capacity"] == 4
        status, body, _ = raw(service, "GET", "/v1/workers")
        assert body["total"] == 1 and body["workers"][0]["id"] == "w1"
        status, body, _ = raw(service, "DELETE", "/v1/workers/w1")
        assert status == 200 and body["deregistered"] is True
        status, body, _ = raw(service, "DELETE", "/v1/workers/ghost")
        assert status == 404

    def test_healthz_reports_the_fleet(self, service):
        raw(service, "POST", "/v1/workers", {"id": "w1", "capacity": 2})
        submit(service, [1])
        raw(service, "POST", "/v1/claims", {"worker": "w1"})
        _, body, _ = raw(service, "GET", "/healthz")
        assert body["workers"] == 0  # pure coordinator: no local pool
        assert body["fleet"]["workers"] == 1
        assert body["fleet"]["capacity"] == 2
        assert body["fleet"]["inflight"] == {"w1": 1}

    def test_metricz_carries_fleet_gauges(self, service):
        raw(service, "POST", "/v1/workers", {"id": "w1", "capacity": 3})
        _, body, _ = raw(service, "GET", "/metricz")
        gauges = body["gauges"]
        assert gauges["service.fleet_size"] == 1
        assert gauges["service.fleet_capacity"] == 3

    def test_bad_registration_is_400(self, service):
        status, _, _ = raw(service, "POST", "/v1/workers",
                           {"id": "w1", "capacity": 0})
        assert status == 400
