"""Store-level worker identity: registration, attribution, claims."""

import pytest

from repro.service.store import JobStore

JOBS = [("k1", "a", {"task": "t", "params": {"x": 1}}),
        ("k2", "b", {"task": "t", "params": {"x": 2}}),
        ("k3", "c", {"task": "t", "params": {"x": 3}})]


@pytest.fixture
def store(tmp_path):
    store = JobStore(tmp_path / "service.db")
    yield store
    store.close()


class TestRegistration:
    def test_register_returns_row_with_inflight(self, store):
        row = store.register_worker("w1", kind="remote", host="h",
                                    pid=42, capacity=4)
        assert row["id"] == "w1" and row["capacity"] == 4
        assert row["inflight"] == 0 and row["deregistered_at"] is None

    def test_reregister_is_an_upsert(self, store):
        store.register_worker("w1", capacity=1)
        store.deregister_worker("w1")
        row = store.register_worker("w1", capacity=8)
        assert row["capacity"] == 8
        assert row["deregistered_at"] is None
        assert [w["id"] for w in store.fleet()] == ["w1"]

    def test_deregistered_workers_leave_the_fleet(self, store):
        store.register_worker("w1")
        store.register_worker("w2")
        assert store.deregister_worker("w1") is True
        assert [w["id"] for w in store.fleet()] == ["w2"]
        assert {w["id"] for w in store.fleet(include_deregistered=True)} \
            == {"w1", "w2"}

    def test_deregister_unknown_worker_is_false(self, store):
        assert store.deregister_worker("ghost") is False


class TestAttribution:
    def test_claims_are_stamped_and_counted(self, store):
        store.register_worker("w1", capacity=2)
        store.submit("a1", "camp", "alice", JOBS)
        store.claim(lease_seconds=30.0, worker_id="w1")
        store.claim(lease_seconds=30.0, worker_id="w1")
        (worker,) = store.fleet()
        assert worker["inflight"] == 2
        claims = store.running_claims()
        assert len(claims) == 2
        assert all(c["worker"] == "w1" for c in claims)

    def test_settle_and_release_clear_the_stamp(self, store):
        store.register_worker("w1")
        store.submit("a1", "camp", "alice", JOBS[:2])
        first = store.claim(worker_id="w1")
        second = store.claim(worker_id="w1")
        store.settle("a1", first["key"], "done", status="done",
                     token=first["claim_token"])
        store.release("a1", second["key"], token=second["claim_token"])
        assert store.fleet()[0]["inflight"] == 0
        assert store.running_claims() == []

    def test_reap_clears_the_stamp(self, store):
        store.register_worker("w1")
        store.submit("a1", "camp", "alice", JOBS[:1])
        store.claim(lease_seconds=0.0, worker_id="w1")
        reaped = store.reap_expired()
        assert len(reaped) == 1 and reaped[0]["requeued"]
        assert store.fleet()[0]["inflight"] == 0
        # The requeued job is claimable by a different worker.
        store.register_worker("w2")
        again = store.claim(worker_id="w2")
        assert again["attempts"] == 2
        assert store.running_claims()[0]["worker"] == "w2"

    def test_claim_refreshes_last_seen(self, store):
        row = store.register_worker("w1")
        store.submit("a1", "camp", "alice", JOBS[:1])
        store.claim(worker_id="w1")
        assert store.fleet()[0]["last_seen_at"] >= row["last_seen_at"]

    def test_unregistered_claimer_is_still_attributed(self, store):
        # Identity is bookkeeping, not authentication: a claim from a
        # worker that never registered still stamps claimed_by.
        store.submit("a1", "camp", "alice", JOBS[:1])
        store.claim(worker_id="anon")
        assert store.running_claims()[0]["worker"] == "anon"
        assert store.fleet() == []
