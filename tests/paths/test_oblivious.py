"""Tests for oblivious routing templates."""

import pytest

from repro.exceptions import ModelingError, PathError
from repro.network.builder import from_edges
from repro.paths import PathSet
from repro.paths.oblivious import oblivious_routing


@pytest.fixture
def parallel():
    # Two equal parallel routes between a and d.
    return from_edges([
        ("a", "b", 10), ("b", "d", 10), ("a", "c", 10), ("c", "d", 10),
    ])


class TestObliviousRouting:
    def test_fractions_sum_to_one(self, parallel):
        paths = PathSet.k_shortest(parallel, [("a", "d")], 2, 0)
        template = oblivious_routing(parallel, paths)
        total = sum(
            template.fractions[(("a", "d"), p)]
            for p in paths[("a", "d")].paths
        )
        assert total == pytest.approx(1.0)

    def test_symmetric_split_is_optimal(self, parallel):
        paths = PathSet.k_shortest(parallel, [("a", "d")], 2, 0)
        template = oblivious_routing(parallel, paths)
        # With two identical routes, the even split achieves ratio 1.
        assert template.ratio == pytest.approx(1.0, abs=1e-5)
        for path in paths[("a", "d")].paths:
            assert template.fractions[(("a", "d"), path)] == pytest.approx(
                0.5, abs=1e-5
            )

    def test_single_path_ratio_one(self):
        topo = from_edges([("a", "b", 5)])
        paths = PathSet.k_shortest(topo, [("a", "b")], 1, 0)
        template = oblivious_routing(topo, paths)
        assert template.ratio == pytest.approx(1.0, abs=1e-6)

    def test_contention_raises_ratio(self):
        # Two demands share one middle LAG but each also has a private
        # route; no fixed split is simultaneously optimal for "only
        # demand 1 active" and "both active": ratio > 1.
        topo = from_edges([
            ("s1", "m", 10), ("s2", "m", 10), ("m", "t", 10),
            ("s1", "t", 10), ("s2", "t", 10),
        ])
        paths = PathSet.k_shortest(topo, [("s1", "t"), ("s2", "t")], 2, 0)
        template = oblivious_routing(topo, paths)
        assert template.ratio >= 1.0
        assert template.iterations >= 1

    def test_template_honors_its_ratio(self, parallel):
        """Simulating the template on adversarial demands stays within
        ratio * capacity."""
        paths = PathSet.k_shortest(parallel, [("a", "d")], 2, 0)
        template = oblivious_routing(parallel, paths)
        # The worst congestion-1 demand for this topology is d = 20.
        demand = 20.0
        loads = {}
        for path in paths[("a", "d")].paths:
            share = template.fractions[(("a", "d"), path)] * demand
            for lag in parallel.lags_on_path(path):
                loads[lag.key] = loads.get(lag.key, 0.0) + share
        worst = max(
            loads.get(lag.key, 0.0) / lag.capacity for lag in parallel.lags
        )
        assert worst <= template.ratio + 1e-5

    def test_to_pathset_orders_by_fraction(self, parallel):
        paths = PathSet.k_shortest(parallel, [("a", "d")], 2, 0)
        template = oblivious_routing(parallel, paths)
        reordered = template.to_pathset(paths)
        dp = reordered[("a", "d")]
        assert set(dp.paths) == set(paths[("a", "d")].paths)
        assert dp.num_primary == len(dp.paths)
        fracs = [template.fractions[(("a", "d"), p)] for p in dp.paths]
        assert fracs == sorted(fracs, reverse=True)

    def test_empty_paths_rejected(self, parallel):
        with pytest.raises(PathError):
            oblivious_routing(parallel, PathSet())

    def test_iteration_budget_enforced(self):
        topo = from_edges([
            ("s1", "m", 10), ("s2", "m", 10), ("m", "t", 10),
            ("s1", "t", 10), ("s2", "t", 10),
        ])
        paths = PathSet.k_shortest(topo, [("s1", "t"), ("s2", "t")], 2, 0)
        with pytest.raises(ModelingError):
            oblivious_routing(topo, paths, max_iterations=0)
