"""Tests for shortest paths, Yen's KSP, disjoint and weighted selection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PathError
from repro.network.builder import from_edges, line
from repro.network.generators import geographic_backbone
from repro.paths import (
    DemandPaths,
    PathSet,
    diversity_weighted_paths,
    edge_disjoint_paths,
    k_shortest_paths,
    shortest_path,
)


@pytest.fixture
def diamond():
    #   a - b - d
    #    \     /
    #     - c -     plus a long detour a-e-f-d
    return from_edges([
        ("a", "b", 10), ("b", "d", 10),
        ("a", "c", 10), ("c", "d", 10),
        ("a", "e", 10), ("e", "f", 10), ("f", "d", 10),
    ])


class TestShortestPath:
    def test_direct(self, diamond):
        path = shortest_path(diamond, "a", "b")
        assert path == ("a", "b")

    def test_two_hop(self, diamond):
        path = shortest_path(diamond, "a", "d")
        assert path in (("a", "b", "d"), ("a", "c", "d"))

    def test_deterministic_tie_break(self, diamond):
        # Ties break by node sequence: ("a","b","d") < ("a","c","d").
        assert shortest_path(diamond, "a", "d") == ("a", "b", "d")

    def test_disconnected_returns_none(self):
        topo = from_edges([("a", "b")])
        topo.add_node("z")
        assert shortest_path(topo, "a", "z") is None

    def test_same_endpoints_rejected(self, diamond):
        with pytest.raises(PathError):
            shortest_path(diamond, "a", "a")

    def test_unknown_node_rejected(self, diamond):
        with pytest.raises(PathError):
            shortest_path(diamond, "a", "zzz")

    def test_banned_lag_forces_detour(self, diamond):
        banned = frozenset({("a", "b")})
        path = shortest_path(diamond, "a", "d", banned_lags=banned)
        assert path == ("a", "c", "d")

    def test_banned_node(self, diamond):
        path = shortest_path(diamond, "a", "d",
                             banned_nodes=frozenset({"b", "c"}))
        assert path == ("a", "e", "f", "d")

    def test_banned_endpoint_returns_none(self, diamond):
        assert shortest_path(diamond, "a", "d",
                             banned_nodes=frozenset({"d"})) is None

    def test_custom_weight(self, diamond):
        # Make the b route expensive; c route should win.
        def weight(lag):
            return 100.0 if "b" in lag.key else 1.0

        assert shortest_path(diamond, "a", "d", weight=weight) == ("a", "c", "d")

    def test_nonpositive_weight_rejected(self, diamond):
        with pytest.raises(PathError):
            shortest_path(diamond, "a", "d", weight=lambda lag: 0.0)


class TestKsp:
    def test_finds_all_three_routes(self, diamond):
        paths = k_shortest_paths(diamond, "a", "d", k=5)
        assert paths == [
            ("a", "b", "d"), ("a", "c", "d"), ("a", "e", "f", "d"),
        ]

    def test_k_one(self, diamond):
        assert k_shortest_paths(diamond, "a", "d", k=1) == [("a", "b", "d")]

    def test_costs_nondecreasing(self, diamond):
        paths = k_shortest_paths(diamond, "a", "d", k=5)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)

    def test_paths_are_simple(self):
        topo = geographic_backbone(15, 25, seed=2)
        paths = k_shortest_paths(topo, topo.nodes[0], topo.nodes[-1], k=6)
        for path in paths:
            assert len(set(path)) == len(path)
            assert topo.path_is_valid(path)

    def test_no_duplicates(self):
        topo = geographic_backbone(15, 25, seed=2)
        paths = k_shortest_paths(topo, topo.nodes[0], topo.nodes[-1], k=8)
        assert len(set(paths)) == len(paths)

    def test_disconnected_returns_empty(self):
        topo = from_edges([("a", "b")])
        topo.add_node("z")
        assert k_shortest_paths(topo, "a", "z", k=3) == []

    def test_bad_k_rejected(self, diamond):
        with pytest.raises(PathError):
            k_shortest_paths(diamond, "a", "d", k=0)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=50))
    def test_ksp_property_valid_sorted_unique(self, seed):
        topo = geographic_backbone(12, 18, seed=seed)
        src, dst = topo.nodes[0], topo.nodes[-1]
        paths = k_shortest_paths(topo, src, dst, k=5)
        assert paths, "backbone is connected so at least one path exists"
        assert len(set(paths)) == len(paths)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)
        for p in paths:
            assert topo.path_is_valid(p)
            assert p[0] == src and p[-1] == dst


class TestDisjoint:
    def test_disjoint_paths_share_no_lag(self, diamond):
        paths = edge_disjoint_paths(diamond, "a", "d", k=3)
        assert len(paths) == 3
        used = [frozenset(l.key for l in diamond.lags_on_path(p)) for p in paths]
        for i in range(len(used)):
            for j in range(i + 1, len(used)):
                assert not (used[i] & used[j])

    def test_runs_out_of_disjoint_routes(self):
        topo = line(3)
        paths = edge_disjoint_paths(topo, "n0", "n2", k=4)
        assert len(paths) == 1

    def test_no_route_raises(self):
        topo = from_edges([("a", "b")])
        topo.add_node("z")
        with pytest.raises(PathError):
            edge_disjoint_paths(topo, "a", "z", k=2)


class TestWeightedSelection:
    def test_spreads_over_lags(self, diamond):
        ps = diversity_weighted_paths(diamond, [("a", "d")], num_primary=3,
                                      num_backup=0, penalty=5.0)
        paths = ps[("a", "d")].paths
        assert len(paths) == 3
        assert len(set(paths)) == 3

    def test_zero_penalty_allowed(self, diamond):
        ps = diversity_weighted_paths(diamond, [("a", "d")], num_primary=2,
                                      num_backup=0, penalty=0.0)
        assert len(ps[("a", "d")].paths) == 2

    def test_negative_penalty_rejected(self, diamond):
        with pytest.raises(PathError):
            diversity_weighted_paths(diamond, [("a", "d")], penalty=-1.0)

    def test_cross_demand_diversity(self, diamond):
        """Two demands sharing endpoints should avoid piling on one LAG."""
        ps = diversity_weighted_paths(
            diamond, [("a", "d"), ("a", "d")][:1] + [("b", "c")],
            num_primary=1, num_backup=0, penalty=10.0,
        )
        assert ("a", "d") in ps and ("b", "c") in ps


class TestPathSet:
    def test_k_shortest_builds_all_pairs(self, diamond):
        ps = PathSet.k_shortest(diamond, [("a", "d"), ("b", "c")],
                                num_primary=2, num_backup=1)
        assert set(ps) == {("a", "d"), ("b", "c")}
        assert ps[("a", "d")].num_primary == 2
        assert ps[("a", "d")].num_backup == 1
        assert ps.computation_seconds >= 0.0

    def test_fewer_paths_than_requested(self):
        topo = line(3)
        ps = PathSet.k_shortest(topo, [("n0", "n2")], num_primary=2,
                                num_backup=2)
        dp = ps[("n0", "n2")]
        assert len(dp.paths) == 1
        assert dp.num_primary == 1

    def test_unreachable_pair_raises(self):
        topo = from_edges([("a", "b")])
        topo.add_node("z")
        with pytest.raises(PathError):
            PathSet.k_shortest(topo, [("a", "z")])

    def test_restricted_to(self, diamond):
        ps = PathSet.k_shortest(diamond, [("a", "d"), ("b", "c")])
        sub = ps.restricted_to([("b", "c")])
        assert list(sub) == [("b", "c")]

    def test_max_paths_per_demand(self, diamond):
        ps = PathSet.k_shortest(diamond, [("a", "d")], num_primary=2,
                                num_backup=1)
        assert ps.max_paths_per_demand() == 3
        assert PathSet().max_paths_per_demand() == 0


class TestDemandPaths:
    def test_ordering_accessors(self, diamond):
        dp = DemandPaths(
            pair=("a", "d"),
            paths=[("a", "b", "d"), ("a", "c", "d"), ("a", "e", "f", "d")],
            num_primary=2,
        )
        assert dp.primaries == [("a", "b", "d"), ("a", "c", "d")]
        assert dp.backups == [("a", "e", "f", "d")]
        assert dp.num_backup == 1
        dp.validate_against(diamond)

    def test_empty_paths_rejected(self):
        with pytest.raises(PathError):
            DemandPaths(pair=("a", "d"), paths=[], num_primary=1)

    def test_bad_num_primary_rejected(self):
        with pytest.raises(PathError):
            DemandPaths(pair=("a", "d"), paths=[("a", "d")], num_primary=2)

    def test_wrong_endpoints_rejected(self):
        with pytest.raises(PathError):
            DemandPaths(pair=("a", "d"), paths=[("a", "b")], num_primary=1)

    def test_duplicate_paths_rejected(self):
        with pytest.raises(PathError):
            DemandPaths(pair=("a", "d"), paths=[("a", "d"), ("a", "d")],
                        num_primary=1)

    def test_validate_against_rejects_ghost_lag(self, diamond):
        dp = DemandPaths(pair=("a", "d"), paths=[("a", "f", "d")],
                         num_primary=1)
        with pytest.raises(PathError):
            dp.validate_against(diamond)


class TestKspAgainstNetworkx:
    """Cross-validation: our Yen implementation vs networkx's."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=40))
    def test_same_cost_sequence_as_networkx(self, seed):
        import itertools

        import networkx as nx

        topo = geographic_backbone(12, 20, seed=seed)
        graph = topo.to_networkx()
        src, dst = topo.nodes[0], topo.nodes[-1]
        k = 6
        ours = k_shortest_paths(topo, src, dst, k=k)
        theirs = list(itertools.islice(
            nx.shortest_simple_paths(graph, src, dst), k
        ))
        assert len(ours) == len(theirs)
        # Both enumerate loopless paths by nondecreasing hop count; the
        # exact paths may differ on ties, but the cost sequence may not.
        assert [len(p) for p in ours] == [len(p) for p in theirs]

    def test_same_paths_when_unique(self, diamond):
        import networkx as nx

        graph = diamond.to_networkx()
        ours = k_shortest_paths(diamond, "a", "d", k=3)
        theirs = [tuple(p) for p in nx.shortest_simple_paths(graph, "a", "d")]
        assert sorted(ours) == sorted(theirs[:3])
