#!/usr/bin/env python
"""The paper's Figure 1: why demands and failures must be analyzed jointly.

Three analyses of the same 4-node network (B and C send traffic to D,
each over a direct path and a path through A):

1. **Fixed typical demands**: the classical simulator question -- which
   single failure hurts most?  (healthy 22, failed 15, degradation 7.)
2. **Naive joint worst case** (QARC/Robust style): minimize the failed
   network's performance over demands and failures.  The adversary just
   shrinks the demands: "poor performance" without real *degradation*.
3. **Raha**: maximize the *gap* to the design point -- the scenario an
   operator actually needs to hear about.

Run:
    python examples/motivating_example.py
"""

from repro import PathSet, RahaAnalyzer, RahaConfig
from repro.baselines.naive import naive_worst_case
from repro.network.builder import motivating_example
from repro.paths.pathset import DemandPaths

BOUNDS = {("B", "D"): (6.0, 18.0), ("C", "D"): (5.0, 15.0)}
TYPICAL = {("B", "D"): 12.0, ("C", "D"): 10.0}


def figure1_paths() -> PathSet:
    """Each pair's direct path and its path through A, both primary."""
    return PathSet({
        ("B", "D"): DemandPaths(("B", "D"),
                                [("B", "D"), ("B", "A", "D")], 2),
        ("C", "D"): DemandPaths(("C", "D"),
                                [("C", "D"), ("C", "A", "D")], 2),
    })


def main() -> None:
    topo = motivating_example()
    paths = figure1_paths()
    print(f"Topology: {topo}")
    for lag in topo.lags:
        print(f"  LAG {lag.u}-{lag.v}: capacity {lag.capacity:g}")

    fixed = RahaAnalyzer(
        topo, paths, RahaConfig(fixed_demands=TYPICAL, max_failures=1)
    ).analyze()
    print("\n(1) Fixed typical demands (B->D 12, C->D 10):")
    print(f"    healthy {fixed.healthy_value:g}, worst failure leaves "
          f"{fixed.failed_value:g} -> degradation {fixed.degradation:g}")
    print(f"    failed: {fixed.scenario}")

    naive = naive_worst_case(topo, paths, demand_bounds=BOUNDS,
                             max_failures=1)
    print("\n(2) Naive adversary (minimize failed performance):")
    print(f"    picks demands {dict(naive.demands)} -- the smallest allowed")
    print(f"    failed network routes {naive.failed_value:g}, but the "
          f"healthy network would only route {naive.healthy_value:g}")
    print(f"    -> degradation just {naive.degradation:g} "
          "(a false alarm, not an insight)")

    raha = RahaAnalyzer(
        topo, paths, RahaConfig(demand_bounds=BOUNDS, max_failures=1)
    ).analyze()
    print("\n(3) Raha (maximize the gap to the design point):")
    print(f"    demands {dict(raha.demands)}, failing {raha.scenario}")
    print(f"    healthy {raha.healthy_value:g} vs failed "
          f"{raha.failed_value:g} -> degradation {raha.degradation:g}")

    print("\nOrdering (naive < fixed < Raha):",
          f"{naive.degradation:g} < {fixed.degradation:g} < "
          f"{raha.degradation:g}")


if __name__ == "__main__":
    main()
