#!/usr/bin/env python
"""Raha's online two-tier alert pipeline (Sections 1, 3, 9).

After every production failure Raha re-checks the (now degraded)
network: first a fast fixed-peak-demand check, and -- only if that is
clean -- a slower joint search over the demand envelope.  This example
simulates the paper's incident storyline: a seismic event takes out a
LAG, and the pipeline flags that a *further* probable failure would now
be impacting.

Link failure probabilities are estimated the way Appendix B describes:
renewal-reward over the link's outage history.

Run:
    python examples/online_alerting.py
"""

from repro import AlertPipeline, PathSet
from repro.failures.probability import RenewalRewardEstimator
from repro.failures.tracegen import generate_outage_trace
from repro.network.builder import from_edges


def estimate_probabilities():
    """Estimate per-LAG down probabilities from synthetic outage logs."""
    lag_specs = {
        ("cpt", "jnb"): (2000.0, 12.0),   # solid subsea segment
        ("jnb", "nbo"): (5000.0, 10.0),  # solid
        ("cpt", "lad"): (300.0, 40.0),    # flaky coastal route
        ("lad", "nbo"): (250.0, 45.0),    # flaky
        ("jnb", "lad"): (900.0, 15.0),
    }
    estimates = {}
    for i, (key, (mtbf, mttr)) in enumerate(lag_specs.items()):
        trace = generate_outage_trace(mtbf, mttr, horizon=200_000, seed=i)
        estimates[key] = RenewalRewardEstimator.from_trace(trace).probability()
    return estimates


def main() -> None:
    probabilities = estimate_probabilities()
    print("Estimated link down probabilities (renewal-reward):")
    for key, p in probabilities.items():
        print(f"  {key[0]}-{key[1]}: {p:.4f}")

    topo = from_edges([
        ("cpt", "jnb", 12), ("jnb", "nbo", 12),
        ("cpt", "lad", 8), ("lad", "nbo", 8), ("jnb", "lad", 6),
    ], name="continent")
    from repro.network.builder import with_link_probabilities

    topo = with_link_probabilities(topo, probabilities)

    pairs = [("cpt", "nbo"), ("jnb", "nbo")]
    paths = PathSet.k_shortest(topo, pairs, num_primary=1, num_backup=1)
    peak = {("cpt", "nbo"): 6.0, ("jnb", "nbo"): 4.0}
    envelope = {pair: (0.0, volume) for pair, volume in peak.items()}

    print("\n== Before the incident ==")
    pipeline = AlertPipeline(topo, paths, tolerance=0.35,
                             probability_threshold=1e-3)
    for alert in pipeline.run(peak, envelope):
        print(f"  tier {alert.tier} [{alert.severity.value}] {alert.message}")

    # A fiber cut takes the cpt-lad LAG out.  Model the degraded WAN by
    # shrinking that LAG to a sliver of capacity that is now also very
    # likely to stay down, then re-run the pipeline on it.
    print("\n== After a fiber cut on cpt-lad ==")
    from repro.network.topology import Link

    degraded = topo.copy(name="continent-degraded")
    degraded.require_lag("cpt", "lad").links = [
        Link(capacity=0.01, failure_probability=0.5)
    ]
    pipeline = AlertPipeline(degraded, paths, tolerance=0.35,
                             probability_threshold=1e-3)
    for alert in pipeline.run(peak, envelope):
        print(f"  tier {alert.tier} [{alert.severity.value}] {alert.message}")
        if alert.fired:
            print(f"    scenario: {alert.result.scenario}")
            print(f"    lead-time mitigation: shift first-party traffic or "
                  f"augment before this scenario materializes (Section 9)")


if __name__ == "__main__":
    main()
