#!/usr/bin/env python
"""Quickstart: find the worst probable degradation of a small WAN.

Builds a production-shaped WAN, computes k-shortest paths with one backup
per demand, and asks Raha the paper's central question: *which probable
failure scenario, together with which demands inside the operator's
envelope, maximizes the gap between the healthy network and the network
under failure?*

Run:
    python examples/quickstart.py
"""

from repro import (
    PathSet,
    RahaAnalyzer,
    RahaConfig,
    demand_envelope,
    synthesize_monthly_demands,
)
from repro.network.demand import top_pairs
from repro.network.generators import production_wan


def main() -> None:
    # A 15-node continental WAN with per-link failure probabilities
    # (the mixture is fitted to the paper's Figure 2 envelope).
    topology = production_wan(num_regions=3, nodes_per_region=5, seed=0)
    print(f"Topology: {topology}")

    # A synthetic "month" of demands; analyze the heaviest pairs.
    average, peak = synthesize_monthly_demands(topology, scale=100, seed=0)
    pairs = top_pairs(average, 8)
    scale = topology.average_lag_capacity() / max(peak[p] for p in pairs)
    peak = peak.restricted_to(pairs).scaled(scale)

    # Tunnel configuration: 2 primary paths + 1 backup per demand.
    paths = PathSet.k_shortest(topology, pairs, num_primary=2, num_backup=1)

    # The operator's question: within demands up to the monthly peak and
    # failure scenarios with probability >= 1e-6, how bad can it get?
    config = RahaConfig(
        demand_bounds=demand_envelope(peak),
        probability_threshold=1e-6,
        time_limit=120,
    )
    result = RahaAnalyzer(topology, paths, config).analyze()

    print("\nWorst probable degradation found:")
    print(f"  {result.summary()}")
    print(f"  failed links: {sorted(result.scenario.failed_links)}")
    print("  adversarial demands (nonzero):")
    for pair, volume in sorted(result.demands.items()):
        if volume > 1e-6:
            print(f"    {pair[0]} -> {pair[1]}: {volume:.1f}")
    if result.normalized_degradation > 0.5:
        print(
            "\nALERT: probable failures can drop more traffic than half an "
            "average LAG carries -- consider a capacity augment "
            "(see examples/capacity_planning.py)."
        )


if __name__ == "__main__":
    main()
