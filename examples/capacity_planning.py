#!/usr/bin/env python
"""Offline capacity planning with Raha (Section 7).

An operator provisions a WAN, then uses Raha to (a) find whether any
probable failure scenario can degrade it and (b) compute the minimal
capacity augment that removes every such scenario -- first by growing
existing LAGs, then by considering brand-new LAGs on a candidate list
(Appendix C).

Run:
    python examples/capacity_planning.py
"""

from repro import (
    PathSet,
    RahaConfig,
    augment_existing_lags,
    augment_new_lags,
)
from repro.network.builder import from_edges


def build_network():
    """A small dual-homed WAN with a known weak spot."""
    topo = from_edges([
        ("par", "fra", 10), ("fra", "mil", 10),
        ("par", "mad", 6), ("mad", "mil", 6),
        ("fra", "mad", 4),
    ], failure_probability=0.02, name="planning-example")
    pairs = [("par", "mil")]
    paths = PathSet.k_shortest(topo, pairs, num_primary=2, num_backup=1)
    return topo, pairs, paths


def main() -> None:
    topo, pairs, paths = build_network()
    demands = {("par", "mil"): 10.0}
    config = RahaConfig(fixed_demands=demands, max_failures=1,
                        time_limit=60)

    print("== Augment existing LAGs (added capacity assumed reliable) ==")
    result = augment_existing_lags(
        topo, paths, config, link_capacity=4.0, new_links_can_fail=False,
    )
    print(f"initial degradation: {result.initial_degradation:g}")
    for i, step in enumerate(result.steps, 1):
        adds = ", ".join(f"{k[0]}-{k[1]} +{n}" for k, n in
                         step.links_added.items())
        print(f"  step {i}: degradation {step.degradation_before:g}, "
              f"added {adds}")
    print(f"converged: {result.converged} after {result.num_steps} steps, "
          f"{result.total_links_added} links total")

    print("\n== Augment with new LAGs from a candidate list ==")
    candidates = [("par", "mil"), ("par", "fra"), ("mad", "mil")]

    def path_factory(t):
        return PathSet.k_shortest(t, pairs, num_primary=2, num_backup=1)

    def config_factory(_paths):
        return RahaConfig(fixed_demands=demands, max_failures=1,
                          time_limit=60)

    result2 = augment_new_lags(
        topo, path_factory, config_factory, candidate_edges=candidates,
        link_capacity=6.0, new_links_can_fail=False,
    )
    print(f"initial degradation: {result2.initial_degradation:g}")
    for i, step in enumerate(result2.steps, 1):
        adds = ", ".join(f"{k[0]}-{k[1]} +{n}" for k, n in
                         step.links_added.items())
        print(f"  step {i}: degradation {step.degradation_before:g}, "
              f"added {adds}")
    print(f"converged: {result2.converged}; final topology: "
          f"{result2.topology}")


if __name__ == "__main__":
    main()
