#!/usr/bin/env python
"""Worst case vs expected case: Raha next to Monte Carlo availability.

Operators track two complementary numbers (Section 2.2: "most operators
aim to provide > 4-9's availability"):

* the **expected** picture -- how much traffic is delivered on an average
  day, estimated here by Monte Carlo sampling of the link-state
  distribution (Abilene with production-mixture probabilities);
* the **worst probable** picture -- Raha's exact answer to "what is the
  most a probable scenario can degrade us?".

The sampled worst case always lower-bounds Raha's exact worst case: a few
hundred samples rarely hit the adversarial corner, which is the point --
simulation alone ("our simulator failed to detect it in time") misses
what Raha proves.

Run:
    python examples/availability_report.py
"""

from repro import (
    PathSet,
    RahaAnalyzer,
    RahaConfig,
    estimate_availability,
    gravity_demands,
)
from repro.network.demand import top_pairs
from repro.network.zoo import abilene


def main() -> None:
    topology = abilene(seed=0)
    print(f"Topology: {topology}")
    demands = gravity_demands(
        topology, scale=8 * topology.average_lag_capacity(), seed=0
    )
    pairs = top_pairs(demands, 6)
    demands = demands.restricted_to(pairs)
    paths = PathSet.k_shortest(topology, pairs, num_primary=2, num_backup=1)

    estimate = estimate_availability(
        topology, dict(demands), paths, samples=300, seed=1,
        degradation_threshold=0.1 * topology.average_lag_capacity(),
    )
    print("\nMonte Carlo (300 sampled days):")
    print(f"  expected degradation: {estimate.expected_degradation:.3f}")
    print(f"  traffic availability: {estimate.availability:.5f}")
    print(f"  P(drop > 0.1 LAG):    {estimate.exceedance_probability:.3f}")
    print(f"  worst sampled:        {estimate.worst_sampled:.3f}")

    exact = RahaAnalyzer(
        topology, paths,
        RahaConfig(fixed_demands=dict(demands),
                   probability_threshold=1e-4, time_limit=60),
    ).analyze()
    print("\nRaha (exact worst probable scenario, T = 1e-4):")
    print(f"  degradation: {exact.degradation:.3f} "
          f"(p = {exact.scenario_probability:.2e}, "
          f"{exact.scenario.num_failed_links} links)")

    gap = exact.degradation - estimate.worst_sampled
    print(f"\nSampling under-reports the worst case by {gap:.3f} "
          "traffic units -- the blind spot Raha closes.")
    assert exact.degradation >= estimate.worst_sampled - 1e-6


if __name__ == "__main__":
    main()
