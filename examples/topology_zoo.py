#!/usr/bin/env python
"""Analyzing a public Topology Zoo WAN (Section 8.4 / Appendix D.2).

Runs Raha on the B4 topology (the same one the TEAVAR artifact ships)
with production-mixture link probabilities, comparing the probable
worst-case degradation against the classical up-to-k analyses, and shows
how to load a real GraphML file when one is available.

Run:
    python examples/topology_zoo.py [path/to/topology.graphml]
"""

import sys

from repro import (
    PathSet,
    RahaAnalyzer,
    RahaConfig,
    demand_envelope,
    gravity_demands,
)
from repro.network.demand import top_pairs
from repro.network.zoo import b4


def load_topology():
    if len(sys.argv) > 1:
        from repro.network.generators import assign_zoo_probabilities
        from repro.network.graphml import read_graphml

        topo = read_graphml(sys.argv[1])
        print(f"Loaded {topo} from {sys.argv[1]}")
        return assign_zoo_probabilities(topo, seed=0)
    return b4(seed=0)


def main() -> None:
    topology = load_topology()
    print(f"Topology: {topology}")

    demands = gravity_demands(
        topology, scale=12 * topology.average_lag_capacity(), seed=0
    )
    pairs = top_pairs(demands, 8)
    demands = demands.restricted_to(pairs).capped(
        topology.average_lag_capacity() / 2  # the paper's anti-bottleneck cap
    )
    paths = PathSet.k_shortest(topology, pairs, num_primary=4, num_backup=1)

    print("\nmax-failures baselines (probability-unaware):")
    for k in (1, 2):
        config = RahaConfig(
            demand_bounds=demand_envelope(demands),
            max_failures=k, time_limit=90,
        )
        result = RahaAnalyzer(topology, paths, config).analyze()
        print(f"  k={k}: normalized degradation "
              f"{result.normalized_degradation:.3f}")

    print("\nRaha with probability thresholds:")
    for threshold in (1e-1, 1e-4):
        config = RahaConfig(
            demand_bounds=demand_envelope(demands),
            probability_threshold=threshold, time_limit=90,
        )
        result = RahaAnalyzer(topology, paths, config).analyze()
        print(f"  T={threshold:g}: normalized degradation "
              f"{result.normalized_degradation:.3f} with "
              f"{result.scenario.num_failed_links} failed links "
              f"(p={result.scenario_probability:.2e})")


if __name__ == "__main__":
    main()
