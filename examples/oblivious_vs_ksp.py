#!/usr/bin/env python
"""Raha with different tunnel-selection schemes.

Raha "supports any path selection policy" (Section 3): the path set is an
input.  This example compares the worst probable degradation of the same
WAN under two tunnel-selection schemes the paper names:

* plain k-shortest paths (Raha's default when no paths are given), and
* a demand-oblivious routing template (Azar et al. [4]) over the same
  candidates -- oblivious templates spread traffic to bound worst-case
  congestion, which also tends to reduce shared failure modes.

Run:
    python examples/oblivious_vs_ksp.py
"""

from repro import PathSet, RahaAnalyzer, RahaConfig, demand_envelope
from repro.network.builder import from_edges
from repro.paths.oblivious import oblivious_routing


def main() -> None:
    topo = from_edges([
        ("a", "b", 10), ("b", "d", 10),
        ("a", "c", 10), ("c", "d", 10),
        ("a", "e", 8), ("e", "d", 8),
        ("b", "c", 4),
    ], failure_probability=0.03, name="tri-route")
    pairs = [("a", "d")]
    ksp = PathSet.k_shortest(topo, pairs, num_primary=2, num_backup=1)

    template = oblivious_routing(topo, PathSet.k_shortest(topo, pairs, 3, 0))
    print("Oblivious template (performance ratio "
          f"{template.ratio:.3f}, {template.iterations} iterations):")
    for (pair, path), fraction in sorted(template.fractions.items()):
        if fraction > 1e-6:
            print(f"  {' -> '.join(path)}: {fraction:.2f}")
    oblivious_paths = template.to_pathset(
        PathSet.k_shortest(topo, pairs, 3, 0)
    )

    config_kwargs = dict(
        demand_bounds=demand_envelope({("a", "d"): 20.0}),
        probability_threshold=1e-3,
        time_limit=60,
    )
    for label, paths in (("k-shortest (2+1)", ksp),
                         ("oblivious (3 primary)", oblivious_paths)):
        result = RahaAnalyzer(
            topo, paths, RahaConfig(**config_kwargs)
        ).analyze()
        print(f"\n{label}: worst probable degradation "
              f"{result.degradation:g} "
              f"(scenario: {result.scenario})")


if __name__ == "__main__":
    main()
