#!/usr/bin/env python
"""Per-continent analysis (Section 9): isolate where the risk lives.

The paper's operators "analyze the WAN in each of our continents
separately and then the network that connects them", which scales the
analysis and pinpoints *where* degradation can happen.  This example
builds a two-continent WAN with subsea links between gateways, runs the
decomposed analysis, and shows the risk localized to one continent.

Run:
    python examples/continental_analysis.py
"""

from repro.analysis.continental import analyze_continents
from repro.network.builder import from_edges

ASSIGNMENT = {
    "lag1": "africa", "lag2": "africa", "cpt": "africa", "jnb": "africa",
    "mad": "europe", "par": "europe", "lis": "europe",
}


def main() -> None:
    world = from_edges([
        # Africa: a stretched ring with a thin chord -- the risky side.
        ("lag1", "lag2", 8), ("lag2", "cpt", 8), ("cpt", "jnb", 8),
        ("jnb", "lag1", 8), ("lag1", "cpt", 3),
        # Europe: a well-meshed triangle.
        ("mad", "par", 20), ("par", "lis", 20), ("mad", "lis", 20),
        # Subsea links between gateways.
        ("lis", "lag1", 10), ("mad", "cpt", 10),
    ], failure_probability=0.01, name="two-continents")

    demands = {
        ("lag1", "jnb"): 10.0,   # intra-Africa, pressure on the thin ring
        ("mad", "lis"): 10.0,    # intra-Europe, ample capacity
        ("lis", "mad"): 6.0,
        ("lag1", "cpt"): 6.0,
        ("lis", "lag1"): 5.0,    # gateway-to-gateway (backbone)
        ("par", "jnb"): 2.0,     # non-gateway crossing: flagged, not lost
    }

    findings = analyze_continents(
        world, ASSIGNMENT, demands,
        num_primary=1, num_backup=1,
        probability_threshold=1e-3, time_limit=60,
    )
    print(f"Topology: {world}\n")
    for finding in findings:
        if finding.result is None:
            print(f"{finding.name:>9}: skipped ({finding.skipped_reason})")
            continue
        result = finding.result
        print(f"{finding.name:>9}: degradation {result.degradation:6.2f} "
              f"({result.scenario.num_failed_links} failed links)")
        if finding.skipped_reason:
            print(f"{'':>11}note: {finding.skipped_reason}")

    africa = next(f for f in findings if f.name == "africa").result
    europe = next(f for f in findings if f.name == "europe").result
    print(
        f"\nThe risk is African: {africa.degradation:.2f} vs "
        f"{europe.degradation:.2f} in Europe -- mitigation (capacity, "
        "traffic moves) can be scoped to one continent, as the paper's "
        "incident response did."
    )


if __name__ == "__main__":
    main()
