#!/usr/bin/env python
"""Shared-risk groups: modeling the paper's motivating incident.

"A seismic event caused multiple fiber cuts, which alongside changing
demands, and a faulty line card caused our WAN to become congested"
(Section 2).  Fibers that share a conduit fail *together*: Raha models
them as an SRLG whose members share one failure binary and whose joint
probability counts once in the scenario-probability product.

This example shows why SRLGs matter: treating correlated fibers as
independent makes the joint failure look improbable (p1 * p2 below the
threshold) and Raha would not warn; the SRLG model prices the seismic
event once and the warning fires.

Run:
    python examples/seismic_srlg.py
"""

from repro import (
    PathSet,
    RahaAnalyzer,
    RahaConfig,
    Srlg,
)
from repro.network.builder import from_edges
from repro.network.srlg import attach_srlg


def build_wan(with_srlg: bool):
    # Two coastal fibers (cpt-dar, cpt-mba) share a conduit along the
    # coast; an inland route (cpt-jnb-dar) backs them up.
    topo = from_edges([
        ("cpt", "dar", 10), ("cpt", "mba", 10), ("mba", "dar", 10),
        ("cpt", "jnb", 8), ("jnb", "dar", 8),
    ], failure_probability=0.004, name="coastal-wan")
    if with_srlg:
        srlg = Srlg(name="coastal-conduit", failure_probability=0.01)
        srlg.add("cpt", "dar", 0)
        srlg.add("cpt", "mba", 0)
        attach_srlg(topo, srlg)
    return topo


def analyze(topo):
    pairs = [("cpt", "dar")]
    paths = PathSet.k_shortest(topo, pairs, num_primary=2, num_backup=1)
    config = RahaConfig(
        fixed_demands={("cpt", "dar"): 18.0},
        probability_threshold=1e-3,
        time_limit=60,
    )
    return RahaAnalyzer(topo, paths, config).analyze()


def main() -> None:
    print("== Independent-fiber model (no SRLG) ==")
    independent = analyze(build_wan(with_srlg=False))
    print(f"  {independent.summary()}")
    print(f"  scenario: {independent.scenario}")

    print("\n== Conduit SRLG model (fibers share fate) ==")
    correlated = analyze(build_wan(with_srlg=True))
    print(f"  {correlated.summary()}")
    print(f"  scenario: {correlated.scenario}")

    print(
        "\nThe SRLG scenario fails both coastal fibers at the price of one "
        "seismic event,\nso the probable worst case is "
        f"{correlated.degradation:g} vs {independent.degradation:g} "
        "without correlation modeling."
    )
    assert correlated.degradation >= independent.degradation - 1e-9


if __name__ == "__main__":
    main()
