"""CI chaos-smoke for the Monte Carlo availability engine.

Runs the same availability campaign on the paper's B4 topology three
times:

1. clean, through the parallel engine (worker pool, vectorized
   sampling, up-front dedup);
2. under a hostile fault plan -- worker chunks fail wholesale
   (``availability.chunk``) and first-attempt workers crash
   (``worker.crash``) -- asserting the estimate stays *bit-identical*:
   chunk fallbacks and retries re-run the same resolver on the same
   scenarios, so they may change wall-clock but never a float;
3. with ``resolver.resolve`` faults on top, asserting the estimate
   stays *value-equal* (the resolver's fresh-solve fallback reaches the
   same optimum along a different arithmetic path, so only approximate
   equality is the contract -- same as the resilience suite);
4. through the ``python -m repro availability`` CLI verb with the
   bit-identity chaos plan, a JSONL trace, and a cold persistent cache,
   then once more warm, asserting the warm run does zero fresh solves.

Exit code 0 on success, 1 with a diagnostic on any failure.

Run locally::

    PYTHONPATH=src python tools/availability_smoke.py
"""

from __future__ import annotations

import dataclasses
import json
import sys
import tempfile
from pathlib import Path

from repro import cli
from repro.core.config import MonteCarloConfig
from repro.failures.availability import estimate_availability_parallel
from repro.network import serialization as ser
from repro.network.demand import gravity_demands
from repro.network.zoo import b4
from repro.paths.pathset import PathSet
from repro.resilience.faults import FaultPlan, FaultPoint

SAMPLES = 120
SEED = 7
THRESHOLD = 1.0


def _fail(message: str) -> int:
    print(f"availability smoke FAILED: {message}", file=sys.stderr)
    return 1


def _campaign():
    topology = b4()
    # Boost the zoo's tiny production probabilities so the campaign has
    # a rich scenario mix (and therefore several worker chunks).
    for lag in topology.lags:
        lag.links[:] = [
            dataclasses.replace(
                link,
                failure_probability=min(
                    0.25, (link.failure_probability or 0.0) * 200.0),
            )
            if link.can_fail and link.failure_probability is not None
            else link
            for link in lag.links
        ]
    nodes = sorted(topology.nodes)
    pairs = [(nodes[0], nodes[5]), (nodes[2], nodes[9]),
             (nodes[4], nodes[11]), (nodes[1], nodes[7])]
    demands = gravity_demands(topology, scale=5e5, pairs=pairs, seed=1)
    paths = PathSet.k_shortest(topology, pairs, num_primary=2,
                               num_backup=1)
    return topology, dict(demands), paths


#: Chunk deaths and worker crashes: re-runs of the same resolver, so the
#: estimate must not move by a single bit.
CHAOS = FaultPlan(seed=3, points=[
    FaultPoint("availability.chunk", rate=0.5, attempts=()),
    FaultPoint("worker.crash", rate=0.3),
])

#: Adds incremental re-solve failures: the fresh-solve fallback reaches
#: the same optimum along a different arithmetic path (value-equal, not
#: bit-equal).
CHAOS_RESOLVER = FaultPlan(seed=3, points=[
    FaultPoint("availability.chunk", rate=0.5, attempts=()),
    FaultPoint("resolver.resolve", rate=0.5, attempts=()),
])


def _same_estimate(a, b) -> bool:
    return (a.degradations == b.degradations
            and a.expected_degradation == b.expected_degradation
            and a.availability == b.availability
            and a.exceedance_probability == b.exceedance_probability
            and a.worst_sampled == b.worst_sampled
            and a.worst_scenario == b.worst_scenario)


def _close_estimate(a, b, rel=1e-6) -> bool:
    if len(a.degradations) != len(b.degradations):
        return False
    scale = max(abs(a.healthy_flow), 1.0)
    return (all(abs(x - y) <= rel * scale
                for x, y in zip(a.degradations, b.degradations))
            and abs(a.availability - b.availability) <= rel)


def main() -> int:
    topology, demands, paths = _campaign()
    config = MonteCarloConfig(samples=SAMPLES, seed=SEED,
                              degradation_threshold=THRESHOLD,
                              num_workers=2, chunk_size=8)

    clean = estimate_availability_parallel(topology, demands, paths,
                                           config)
    print(f"clean: availability {clean.availability:.6f}, "
          f"{clean.distinct_scenarios} distinct scenarios")

    chaotic = estimate_availability_parallel(topology, demands, paths,
                                             config, chaos=CHAOS)
    if chaotic.chunk_fallbacks == 0:
        return _fail("chaos run fired no chunk fallbacks; the "
                     "availability.chunk site is dead")
    if not _same_estimate(clean, chaotic):
        return _fail("chaotic estimate diverged from the clean run")
    print(f"chaos: {chaotic.chunk_fallbacks} chunk fallbacks, "
          "estimate bit-identical")

    resolver_chaos = estimate_availability_parallel(
        topology, demands, paths, config, chaos=CHAOS_RESOLVER)
    if not _close_estimate(clean, resolver_chaos):
        return _fail("resolver-fault run drifted beyond fresh-solve "
                     "tolerance")
    print("resolver chaos: estimate value-equal through fresh-solve "
          "fallbacks")

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        topo_path = root / "b4.json"
        demands_path = root / "demands.json"
        paths_path = root / "paths.json"
        ser.save_json(ser.topology_to_dict(topology), str(topo_path))
        ser.save_json(ser.demands_to_dict(demands), str(demands_path))
        ser.save_json(ser.paths_to_dict(paths), str(paths_path))
        plan_path = root / "chaos.json"
        plan_path.write_text(json.dumps(CHAOS.to_dict()))

        def run_cli(out_name: str) -> dict:
            out = root / out_name
            code = cli.main([
                "availability",
                "--topology", str(topo_path),
                "--paths", str(paths_path),
                "--demands", str(demands_path),
                "--samples", str(SAMPLES), "--seed", str(SEED),
                "--threshold-traffic", str(THRESHOLD),
                "--jobs", "2", "--chunk-size", "8",
                "--workdir", str(root / "avail"),
                "--chaos", str(plan_path),
                "--trace", str(root / f"{out_name}.trace.jsonl"),
                "--out", str(out),
            ])
            if code != 0:
                raise RuntimeError(f"CLI exited {code}")
            return json.loads(out.read_text())

        cold = run_cli("cold.json")
        if cold["availability"] != clean.availability:
            return _fail("CLI chaos run disagrees with the direct engine")
        if cold["chunk_fallbacks"] == 0:
            return _fail("CLI chaos run fired no chunk fallbacks")
        if cold["fresh_solves"] != cold["distinct_scenarios"]:
            return _fail("cold CLI run should have solved every "
                         "distinct scenario fresh")

        warm = run_cli("warm.json")
        if warm["fresh_solves"] != 0:
            return _fail(f"warm CLI run did {warm['fresh_solves']} "
                         "fresh solves; the persistent cache is dead")
        if warm["cache_hits"] != warm["distinct_scenarios"]:
            return _fail("warm CLI run missed the cache")
        if warm["availability"] != cold["availability"]:
            return _fail("warm CLI run diverged from the cold run")
        trace = root / "warm.json.trace.jsonl"
        if not trace.exists() or not trace.read_text().strip():
            return _fail("CLI --trace wrote no JSONL trace")

    print("warm CLI run: zero fresh solves, estimate unchanged")
    print("availability smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
