"""CI distrib-smoke: a real coordinator + worker fleet, end to end.

Spins up a pure coordinator (``repro serve --no-local-workers``) and
two ``repro worker`` agent processes against it, then drives the
distributed acceptance criteria with real processes and real MILP
jobs:

1. a B4 degradation sweep executed by the fleet is bit-identical, key
   by key, to a direct ``python -m repro sweep`` of the same spec;
2. a duplicate submission dedupes against the fleet-computed analysis;
3. SIGKILLing the worker that holds a running job loses nothing: the
   lease lapses, the coordinator's reaper requeues, and the surviving
   worker settles the job exactly once;
4. the remaining worker drains cleanly on SIGTERM (exit 0, nothing
   left running, fleet roster empty), and so does the coordinator.

Every process's stderr is teed to ``$DISTRIB_SMOKE_LOG_DIR`` (default:
``<tmp>/logs``) so CI can upload coordinator/worker logs as artifacts
on failure.

Exit code 0 on success, 1 with a diagnostic on any failure.

Run locally::

    PYTHONPATH=src python tools/distrib_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro import cli
from repro.network import serialization as ser
from repro.network.demand import gravity_demands
from repro.network.zoo import b4
from repro.paths.pathset import PathSet
from repro.service.client import ServiceClient

REPO_ROOT = Path(__file__).resolve().parents[1]


def _fail(message: str) -> int:
    print(f"distrib smoke FAILED: {message}", file=sys.stderr)
    return 1


def scrub(doc):
    """Drop wall-clock telemetry (``*_seconds``); the rest must match."""
    if isinstance(doc, dict):
        return {key: scrub(value) for key, value in doc.items()
                if not key.endswith("_seconds")}
    if isinstance(doc, list):
        return [scrub(item) for item in doc]
    return doc


def build_spec() -> dict:
    """A 4-job degradation sweep on B4 -- enough to share across two
    workers, small enough for CI."""
    topology = b4()
    nodes = sorted(topology.nodes)
    pairs = [(nodes[0], nodes[5]), (nodes[2], nodes[9]),
             (nodes[4], nodes[11])]
    demands = gravity_demands(topology, scale=5e5, pairs=pairs, seed=1)
    paths = PathSet.k_shortest(topology, pairs, num_primary=2,
                               num_backup=1)
    return {
        "kind": "sweep_spec",
        "name": "distrib-smoke",
        "instance": {
            "topology": ser.topology_to_dict(topology),
            "demands": ser.demands_to_dict(demands),
            "paths": ser.paths_to_dict(paths),
        },
        "base": {"demand_mode": "fixed", "max_failures": 2,
                 "time_limit": 60.0, "mip_rel_gap": 0.0},
        "grid": {"threshold": [1e-5, 1e-4, 1e-3, 1e-2]},
    }


def sleep_spec() -> dict:
    """One 8-second job -- a window to SIGKILL the worker holding it."""
    return {
        "kind": "sweep_spec",
        "name": "distrib-smoke-kill",
        "task": "tests.runner._workers:sleep_task",
        "instance": {"topology": {"nodes": [], "links": []}},
        "base": {"sleep_seconds": 8.0},
        "grid": {"value": [1]},
    }


def _env() -> dict:
    env = dict(os.environ)
    # src for the package; the repo root rides in via cwd (python -m
    # prepends it), which is what lets the kill scenario's
    # tests.runner._workers task resolve inside the worker processes.
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def start_coordinator(workdir: Path, log_dir: Path):
    log = open(log_dir / "coordinator.log", "w")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--workdir", str(workdir), "--port", "0",
         "--no-local-workers", "--no-isolate",
         "--lease-seconds", "3.0", "--reap-interval", "0.5"],
        cwd=REPO_ROOT, env=_env(), stderr=log)
    state = workdir / "service.json"
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"coordinator exited {proc.returncode}; "
                               f"see {log.name}")
        if state.exists():
            try:
                return proc, json.loads(state.read_text())["url"]
            except (ValueError, KeyError):
                pass
        time.sleep(0.1)
    proc.kill()
    raise RuntimeError("coordinator never wrote its state file")


def start_worker(name: str, url: str, log_dir: Path):
    log = open(log_dir / f"{name}.log", "w")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--connect", url, "--workers", "1", "--name", name,
         "--no-isolate", "--lease-seconds", "3.0",
         "--heartbeat-interval", "0.5", "--poll-interval", "0.1",
         "--drain-timeout", "60"],
        cwd=REPO_ROOT, env=_env(), stderr=log)


def wait_for(predicate, timeout: float, what: str):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.1)
    raise RuntimeError(f"timed out waiting for {what}")


def main() -> int:
    spec_doc = build_spec()
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        log_dir = Path(os.environ.get("DISTRIB_SMOKE_LOG_DIR",
                                      root / "logs"))
        log_dir.mkdir(parents=True, exist_ok=True)
        print(f"logs: {log_dir}", file=sys.stderr)

        # 1. The direct CLI path, for the equivalence pin.
        spec_path = root / "spec.json"
        spec_path.write_text(json.dumps(spec_doc))
        code = cli.main(["sweep", "--spec", str(spec_path),
                         "--workdir", str(root / "direct"),
                         "--jobs", "2", "--quiet"])
        if code != 0:
            return _fail(f"direct sweep exited {code}")
        direct = json.loads((root / "direct" / "results.json").read_text())
        direct_by_key = {job["key"]: job["result"]
                         for job in direct["jobs"]}

        # 2. Coordinator + two worker processes.
        coordinator, url = start_coordinator(root / "svc", log_dir)
        workers = {}
        try:
            client = ServiceClient(url, client_id="distrib-smoke")
            health = client.health()
            if health.get("workers") != 0:
                return _fail(f"--no-local-workers still reports a local "
                             f"pool: {health}")
            for name in ("smoke-w1", "smoke-w2"):
                workers[name] = start_worker(name, url, log_dir)
            wait_for(lambda: client.health()["fleet"]["workers"] == 2,
                     timeout=60, what="both workers to register")

            # 3. The fleet computes the sweep; results bit-identical.
            accepted = client.submit(spec_doc)
            if client.submit(spec_doc).get("deduped") is not True:
                return _fail("duplicate submission was not deduped")
            results = client.wait(accepted["id"], timeout=600,
                                  poll_interval=0.5)
            if results["counts"]["done"] != accepted["total_jobs"]:
                return _fail(f"fleet did not finish the sweep: "
                             f"{results['counts']}")
            for job in results["jobs"]:
                ours = scrub(job["result"])
                theirs = scrub(direct_by_key[job["key"]])
                if ours != theirs:
                    return _fail(
                        f"result for {job['key'][:12]} differs:\n"
                        f"  fleet:  {json.dumps(ours, sort_keys=True)}\n"
                        f"  direct: {json.dumps(theirs, sort_keys=True)}")
            counters = client.metrics().get("counters", {})
            if counters.get("service.remote_settles", 0) \
                    < accepted["total_jobs"]:
                return _fail(f"remote settles undercount the sweep: "
                             f"{counters}")

            # 4. SIGKILL the worker holding a running job: reap + re-run
            # on the survivor, exactly once.
            killed = client.submit(sleep_spec())
            claims = wait_for(
                lambda: client._request("GET", "/v1/claims")[1]["claims"],
                timeout=60, what="the sleep job to be claimed")
            victim = claims[0]["worker"]
            if victim not in workers:
                return _fail(f"sleep job claimed by unknown worker "
                             f"{victim!r}")
            workers[victim].send_signal(signal.SIGKILL)
            workers[victim].wait(timeout=30)
            survivor = next(n for n in workers if n != victim)
            results = client.wait(killed["id"], timeout=120,
                                  poll_interval=0.5)
            if results["counts"]["done"] != 1:
                return _fail(f"killed job never recovered: "
                             f"{results['counts']}")
            job = results["jobs"][0]
            if job["attempts"] != 2:
                return _fail(f"expected the kill to burn exactly one "
                             f"attempt, saw {job['attempts']}")
            counters = client.metrics().get("counters", {})
            if counters.get("service.jobs.reaped", 0) < 1:
                return _fail(f"reaper never fired after the kill: "
                             f"{counters}")
            del workers[victim]

            # 5. Clean SIGTERM drain of the survivor: exit 0, it drops
            # off the roster (the SIGKILLed victim never deregistered,
            # so its row lingers -- that is the point of the listing),
            # nothing left running.
            workers[survivor].send_signal(signal.SIGTERM)
            code = workers[survivor].wait(timeout=120)
            if code != 0:
                return _fail(f"worker {survivor} exited {code} on "
                             f"SIGTERM")
            del workers[survivor]
            wait_for(
                lambda: survivor not in {
                    w["id"] for w in
                    client._request("GET", "/v1/workers")[1]["workers"]},
                timeout=30, what="the drained worker to deregister")
            if client.health()["counts"]["running"] != 0:
                return _fail("jobs left running after the drain")
        finally:
            for proc in workers.values():
                proc.kill()
            coordinator.send_signal(signal.SIGTERM)
            code = coordinator.wait(timeout=120)
        if code != 0:
            return _fail(f"coordinator exited {code} on SIGTERM")

    print("distrib smoke ok: fleet sweep bit-identical to the direct "
          "run, duplicate submission deduped, SIGKILLed worker's job "
          "recovered exactly once, clean SIGTERM drain")
    return 0


if __name__ == "__main__":
    sys.exit(main())
