"""CI bench-smoke: the regression gate must work, then must pass.

Exercises the ``repro bench`` pipeline end to end in a temp directory:

1. ``bench list`` and ``bench run --tag smoke`` through the real CLI,
   asserting the result document round-trips (schema, fingerprint,
   per-case wall stats with the configured repetition count);
2. a **self-test of the gate itself**: doctor a copy of the fresh run
   with a synthetic 4x slowdown and assert ``bench compare`` exits
   :data:`~repro.bench.cli.EXIT_BENCH_REGRESSION` -- a gate that
   cannot fail is worse than no gate;
3. the real comparison against the committed
   ``benchmarks/baseline.json`` with CI-grade slack (the baseline was
   recorded on different hardware, so only order-of-magnitude drift
   should trip it).

Exit code 0 on success; 1 on a broken pipeline; the compare's own
non-zero exit if step 3 finds a genuine regression.

Run locally::

    PYTHONPATH=src python tools/bench_smoke.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

# ``python tools/bench_smoke.py`` puts tools/ (not the repo root) on
# sys.path; the cases module lives at <root>/benchmarks/bench_cases.py.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro import cli
from repro.bench.cli import EXIT_BENCH_REGRESSION
from repro.bench.results import SCHEMA_VERSION, load_results

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "benchmarks" / "baseline.json"

# The CI runner is not the machine the baseline was recorded on, so
# the gate here only catches catastrophic drift (a 3x slowdown or a
# multi-second stall), not the tight same-machine thresholds
# developers use locally.
CI_SLACK = ["--rel-tolerance", "2.0", "--abs-floor", "5.0"]


def fail(message: str) -> None:
    print(f"bench-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_cli(argv: list[str]) -> int:
    print(f"bench-smoke: repro {' '.join(argv)}", flush=True)
    return cli.main(argv)


def main() -> int:
    out = Path("BENCH_ci.json")

    if run_cli(["bench", "list", "--tag", "smoke"]) != 0:
        fail("bench list exited non-zero")

    if run_cli(["bench", "run", "--tag", "smoke", "--label", "ci",
                "--out", str(out)]) != 0:
        fail("bench run exited non-zero")

    document = load_results(out)
    if document["schema"] != SCHEMA_VERSION:
        fail(f"unexpected schema {document['schema']}")
    if not document["environment"].get("python"):
        fail("environment fingerprint missing python version")
    if not document["cases"]:
        fail("bench run produced no cases")
    for name, case in document["cases"].items():
        reps = len(case["wall_seconds"]["samples"])
        if reps != case["repetitions"]:
            fail(f"{name}: {reps} samples != {case['repetitions']} reps")

    # Gate self-test: a doctored 4x slowdown must trip the compare.
    slow = json.loads(out.read_text())
    slow["label"] = "doctored-4x"
    for case in slow["cases"].values():
        wall = case["wall_seconds"]
        wall["samples"] = [s * 4.0 for s in wall["samples"]]
        for key in ("median", "mean", "min", "max"):
            wall[key] *= 4.0
    slow_path = Path("BENCH_doctored.json")
    slow_path.write_text(json.dumps(slow))
    code = run_cli(["bench", "compare", str(out), str(slow_path)])
    slow_path.unlink()
    if code != EXIT_BENCH_REGRESSION:
        fail(f"doctored slowdown exited {code}, "
             f"expected {EXIT_BENCH_REGRESSION}")
    print("bench-smoke: gate self-test tripped as expected")

    # The real gate against the committed baseline.
    code = run_cli(["bench", "compare", str(BASELINE), str(out),
                    *CI_SLACK, "--json", "BENCH_verdict.json"])
    if code != 0:
        print("bench-smoke: REGRESSION vs committed baseline",
              file=sys.stderr)
        return code

    print("bench-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
