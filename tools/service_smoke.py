"""CI service-smoke: the HTTP path must match the direct CLI path.

Builds a small B4 analysis campaign (real MILP jobs on the paper's B4
topology), runs it twice:

1. directly, through ``python -m repro sweep`` in this process;
2. through a real ``repro serve`` subprocess -- submit over HTTP, poll
   to completion, fetch the results document;

and asserts the two are bit-identical per job key.  Along the way it
exercises the operational surface: ``/healthz``, ``/metricz`` (the
service counters must account for the submitted jobs), idempotent
resubmission, and a graceful SIGTERM shutdown (exit 0, nothing left
running in the store).  A second server run then drives the
supervision layer: a ``worker.hang`` fault wedges one job far past a
short lease, the reaper must requeue it, and the recovered sweep must
still match the direct run bit for bit.

Exit code 0 on success, 1 with a diagnostic on any failure.

Run locally::

    PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro import cli
from repro.network import serialization as ser
from repro.network.demand import gravity_demands
from repro.network.zoo import b4
from repro.paths.pathset import PathSet
from repro.service.client import ServiceClient

REPO_ROOT = Path(__file__).resolve().parents[1]


def _fail(message: str) -> int:
    print(f"service smoke FAILED: {message}", file=sys.stderr)
    return 1


def scrub(doc):
    """Drop wall-clock telemetry (``*_seconds``) from a result document.

    Everything else -- degradations, witness scenarios, matrix shapes,
    solver status -- is deterministic and must match bit for bit.
    """
    if isinstance(doc, dict):
        return {key: scrub(value) for key, value in doc.items()
                if not key.endswith("_seconds")}
    if isinstance(doc, list):
        return [scrub(item) for item in doc]
    return doc


def build_spec() -> dict:
    """A 2-job degradation sweep on B4 -- small but a real analysis."""
    topology = b4()
    nodes = sorted(topology.nodes)
    pairs = [(nodes[0], nodes[5]), (nodes[2], nodes[9]),
             (nodes[4], nodes[11])]
    demands = gravity_demands(topology, scale=5e5, pairs=pairs, seed=1)
    paths = PathSet.k_shortest(topology, pairs, num_primary=2,
                               num_backup=1)
    return {
        "kind": "sweep_spec",
        "name": "service-smoke",
        "instance": {
            "topology": ser.topology_to_dict(topology),
            "demands": ser.demands_to_dict(demands),
            "paths": ser.paths_to_dict(paths),
        },
        "base": {"demand_mode": "fixed", "max_failures": 2,
                 "time_limit": 60.0, "mip_rel_gap": 0.0},
        "grid": {"threshold": [1e-4, 1e-2]},
    }


def start_server(workdir: Path, extra_args: list[str] | None = None,
                 extra_env: dict[str, str] | None = None):
    cmd = [sys.executable, "-m", "repro", "serve",
           "--workdir", str(workdir), "--port", "0", "--workers", "2"]
    cmd += extra_args or []
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.update(extra_env or {})
    proc = subprocess.Popen(cmd, cwd=REPO_ROOT, env=env,
                            stderr=subprocess.PIPE)
    state = workdir / "service.json"
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"server exited {proc.returncode}: "
                f"{proc.stderr.read().decode()}")
        if state.exists():
            try:
                return proc, json.loads(state.read_text())["url"]
            except (ValueError, KeyError):
                pass
        time.sleep(0.1)
    proc.kill()
    raise RuntimeError("server never wrote its state file")


def hung_worker_scenario(root: Path, spec_doc: dict,
                         direct_by_key: dict) -> int | None:
    """Supervision smoke: a hung worker's job is reaped and re-run.

    Starts a fresh server with a short lease, a ``worker.hang`` fault
    wedging the first job's first attempt for far longer than the
    lease, and ``lease.heartbeat`` stalling that job's renewals while
    it hangs.  The reaper must requeue the job, the re-run (attempt 2,
    continuous across claims) must finish cleanly, and the results must
    still be bit-identical to the direct CLI run.

    Returns ``None`` on success, or an exit code from :func:`_fail`.
    """
    from repro.runner.jobs import SweepSpec

    hung_key = SweepSpec.from_dict(spec_doc).expand()[0].key
    plan = {
        "kind": "fault_plan",
        "seed": 9,
        "points": [
            # Attempt 1 of this job wedges for 12s -- four leases.
            {"site": "worker.hang", "attempts": [1], "match": hung_key},
            # ...and its heartbeats stall while it does (the first few
            # beats drop; once the lease has lapsed and the job is
            # reaped, renewals behave again for the re-run).
            {"site": "lease.heartbeat", "match": hung_key,
             "max_fires": 4},
        ],
    }
    proc, url = start_server(
        root / "svc-hang",
        extra_args=["--chaos", json.dumps(plan),
                    "--lease-seconds", "3.0", "--reap-interval", "0.5"],
        extra_env={"REPRO_CHAOS_HANG_SECONDS": "12.0"},
    )
    try:
        client = ServiceClient(url, client_id="smoke-hang")
        accepted = client.submit(spec_doc)
        results = client.wait(accepted["id"], timeout=600,
                              poll_interval=0.5)
        if results["counts"]["done"] != accepted["total_jobs"]:
            return _fail(f"hung-worker scenario: jobs did not all "
                         f"finish: {results['counts']}")
        for job in results["jobs"]:
            ours = scrub(job["result"])
            theirs = scrub(direct_by_key[job["key"]])
            if ours != theirs:
                return _fail(
                    f"hung-worker scenario: result for "
                    f"{job['key'][:12]} differs after the reap:\n"
                    f"  service: {json.dumps(ours, sort_keys=True)}\n"
                    f"  direct:  {json.dumps(theirs, sort_keys=True)}")
        counters = client.metrics().get("counters", {})
        if counters.get("service.jobs.reaped", 0) < 1:
            return _fail(f"hung-worker scenario: reaper never fired: "
                         f"{counters}")
    finally:
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=120)
    if code != 0:
        return _fail(f"hung-worker scenario: server exited {code} on "
                     f"SIGTERM")
    return None


def main() -> int:
    spec_doc = build_spec()
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)

        # 1. The direct CLI path.
        spec_path = root / "spec.json"
        spec_path.write_text(json.dumps(spec_doc))
        code = cli.main(["sweep", "--spec", str(spec_path),
                         "--workdir", str(root / "direct"),
                         "--jobs", "2", "--quiet"])
        if code != 0:
            return _fail(f"direct sweep exited {code}")
        direct = json.loads((root / "direct" / "results.json").read_text())
        direct_by_key = {job["key"]: job["result"]
                        for job in direct["jobs"]}

        # 2. The same spec over HTTP against a real server process.
        proc, url = start_server(root / "svc")
        try:
            client = ServiceClient(url, client_id="smoke")
            health = client.health()
            if not health.get("ok"):
                return _fail(f"unhealthy at startup: {health}")
            accepted = client.submit(spec_doc)
            if accepted["total_jobs"] != len(direct["jobs"]):
                return _fail(
                    f"service expanded {accepted['total_jobs']} jobs, "
                    f"direct ran {len(direct['jobs'])}")
            resubmitted = client.submit(spec_doc)
            if not resubmitted.get("deduped"):
                return _fail("duplicate submission was not deduped")
            results = client.wait(accepted["id"], timeout=600,
                                  poll_interval=0.5)
            if results["counts"]["done"] != accepted["total_jobs"]:
                return _fail(f"jobs did not all finish: "
                             f"{results['counts']}")

            # 3. Bit-identical to the direct path, key by key.
            service_by_key = {job["key"]: job["result"]
                              for job in results["jobs"]}
            if set(service_by_key) != set(direct_by_key):
                return _fail(
                    f"job keys differ: service {sorted(service_by_key)} "
                    f"vs direct {sorted(direct_by_key)}")
            for key, result in service_by_key.items():
                ours, theirs = scrub(result), scrub(direct_by_key[key])
                if ours != theirs:
                    return _fail(
                        f"result for {key[:12]} differs:\n"
                        f"  service: {json.dumps(ours, sort_keys=True)}\n"
                        f"  direct:  "
                        f"{json.dumps(theirs, sort_keys=True)}")

            # 4. The ops surface accounts for the work.
            snapshot = client.metrics()
            counters = snapshot.get("counters", {})
            if counters.get("service.jobs_done", 0) < accepted["total_jobs"]:
                return _fail(f"metricz undercounts done jobs: {counters}")
            if counters.get("service.http_requests", 0) < 4:
                return _fail(f"metricz undercounts requests: {counters}")
        finally:
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=60)
        if code != 0:
            return _fail(f"server exited {code} on SIGTERM")

        # 5. Supervision: a hung worker loses its job to the reaper and
        # the re-run is still bit-identical to the direct path.
        failed = hung_worker_scenario(root, spec_doc, direct_by_key)
        if failed is not None:
            return failed

    print(f"service smoke ok: {len(direct_by_key)} jobs bit-identical "
          f"over HTTP (including after a hung-worker reap), "
          f"healthz/metricz consistent, clean shutdown")
    return 0


if __name__ == "__main__":
    sys.exit(main())
