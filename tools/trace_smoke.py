"""CI trace-smoke: run a tiny traced sweep and validate the trace file.

Builds a two-job campaign on the motivating example, runs it through
the real CLI (``sweep --trace``), and then checks the emitted JSONL:

* every line parses and the schema validates (unique span ids, known
  parents, no cycles, children's summed durations bounded by their
  parent's -- see :mod:`repro.obs.validate`);
* the span taxonomy is present end-to-end: the ``sweep`` root, a
  ``job`` span per job, and each worker's ``analyze`` ->
  ``compile`` / ``milp_solve`` spans merged beneath it;
* the per-job ``milp_solve`` span attributes reconcile with the
  :class:`~repro.solver.result.SolveStats` totals the results document
  reports.

Exit code 0 on success, 1 with a diagnostic on any failure.

Run locally::

    PYTHONPATH=src python tools/trace_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro import cli
from repro.network import serialization as ser
from repro.network.builder import motivating_example
from repro.obs.validate import validate_trace_file
from repro.paths.pathset import PathSet

#: Span names the campaign trace must contain at least once.
REQUIRED_SPANS = ("sweep", "job", "analyze", "compile", "milp_solve")


def _fail(message: str) -> int:
    print(f"trace smoke FAILED: {message}", file=sys.stderr)
    return 1


def main() -> int:
    topology = motivating_example()
    pairs = [("B", "D"), ("C", "D")]
    paths = PathSet.k_shortest(topology, pairs, num_primary=1, num_backup=1)
    demands = {("B", "D"): 18.0, ("C", "D"): 15.0}

    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        spec_path = workdir / "spec.json"
        trace_path = workdir / "trace.jsonl"
        spec_path.write_text(json.dumps({
            "kind": "sweep_spec",
            "name": "trace-smoke",
            "instance": {
                "topology": ser.topology_to_dict(topology),
                "demands": ser.demands_to_dict(demands),
                "paths": ser.paths_to_dict(paths),
            },
            "base": {"demand_mode": "fixed", "max_failures": 1,
                     "time_limit": 60.0},
            "cells": [{"threshold": None}, {"max_failures": 2}],
        }))

        code = cli.main([
            "sweep", "--spec", str(spec_path),
            "--workdir", str(workdir / "state"),
            "--jobs", "2", "--quiet",
            "--trace", str(trace_path),
        ])
        if code != 0:
            return _fail(f"sweep exited {code}")

        problems = validate_trace_file(str(trace_path))
        if problems:
            return _fail("; ".join(problems))

        docs = [json.loads(line)
                for line in trace_path.read_text().splitlines() if line]
        spans = [d for d in docs if d.get("type") == "span"]
        names = {s["name"] for s in spans}
        missing = [n for n in REQUIRED_SPANS if n not in names]
        if missing:
            return _fail(f"span taxonomy incomplete: missing {missing} "
                         f"(saw {sorted(names)})")
        if not any(d.get("type") == "metrics" for d in docs):
            return _fail("no metrics snapshot line in the trace")

        # Reconcile the trace against the results document's SolveStats:
        # the sum of milp_solve span solve_seconds attrs must match the
        # summed per-job stats within float-rounding slack.
        results = json.loads(
            (workdir / "state" / "results.json").read_text())
        stats_solve = sum(
            (job["result"] or {}).get("stats", {}).get("solve_seconds", 0.0)
            for job in results["jobs"]
        )
        span_solve = sum(
            s["attrs"].get("solve_seconds", 0.0)
            for s in spans if s["name"] == "milp_solve"
        )
        if abs(span_solve - stats_solve) > 1e-6 + 0.01 * stats_solve:
            return _fail(
                f"milp_solve spans sum to {span_solve:.6f}s but SolveStats "
                f"report {stats_solve:.6f}s")

    print(f"trace smoke ok: {len(spans)} spans, "
          f"taxonomy {sorted(names)}, "
          f"solve reconciles ({span_solve:.3f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
