"""Durable SQLite-backed job queue for the analysis service.

The store is the service's source of truth: every accepted job is a row
whose lifecycle walks a crash-safe state machine

    queued -> running -> done | failed
    queued -> cancelled

with each transition a single committed SQLite transaction (WAL mode),
so a ``kill -9`` at any instant leaves a consistent database.  On
restart, :meth:`JobStore.recover` requeues anything left ``running`` --
an accepted job is never lost, and because the executor's
content-addressed result cache answers re-runs of already-solved work,
recovery never recomputes (or double-reports) a finished result.

Identity and idempotence:

* A *job* is keyed by the runner's content address
  (:func:`repro.runner.cache.job_key` over the payload), so submitting
  the same work twice -- same topology, demands, paths, parameters --
  dedupes to the same row.
* An *analysis* (the HTTP resource) groups the jobs of one submitted
  sweep spec, keyed by the spec's content hash.  Resubmitting a spec
  returns the existing analysis unchanged.

Every state change is also appended to a ``transitions`` audit table,
which is what lets the crash-recovery tests assert "every job reached a
terminal state *exactly once*" rather than trusting the final snapshot.

Chaos: the ``store.crash_commit`` fault site fires immediately *after*
a claim commits -- inside a real server process it hard-exits
(``kill -9`` semantics, enabled by :data:`HARD_FAULTS`); in-process it
raises :class:`InjectedServiceCrash` so a test can kill one scheduler
worker without killing the test runner.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time

from repro.exceptions import ServiceError
from repro.resilience.faults import maybe_fire

#: Job states.  ``queued`` and ``running`` are the *live* states (their
#: cache entries are protected from eviction); the rest are terminal.
LIVE_STATES = ("queued", "running")
TERMINAL_STATES = ("done", "failed", "cancelled")
STATES = LIVE_STATES + TERMINAL_STATES

#: When True (set by the ``repro serve`` entry point), injected
#: ``store.*``/``service.*`` crash faults hard-exit the process --
#: genuine ``kill -9`` semantics for crash-recovery tests.  In-process
#: (the default) they raise :class:`InjectedServiceCrash` instead.
HARD_FAULTS = False

#: Exit code of a hard-fault crash, distinguishable from clean exits.
CRASH_EXIT_CODE = 23


class InjectedServiceCrash(Exception):
    """An injected service crash, degraded to an exception in-process."""


def service_crash(site: str, key: str = "") -> None:
    """Chaos hook for the service's crash sites (free with no plan)."""
    if maybe_fire(site, key=key):
        if HARD_FAULTS:
            os._exit(CRASH_EXIT_CODE)
        raise InjectedServiceCrash(f"chaos: injected service crash at {site}")


_SCHEMA = """
CREATE TABLE IF NOT EXISTS analyses (
    id           TEXT PRIMARY KEY,
    name         TEXT NOT NULL,
    client       TEXT NOT NULL,
    priority     INTEGER NOT NULL DEFAULT 0,
    total_jobs   INTEGER NOT NULL,
    submitted_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    analysis_id  TEXT NOT NULL,
    key          TEXT NOT NULL,
    label        TEXT NOT NULL,
    payload      TEXT NOT NULL,
    client       TEXT NOT NULL,
    priority     INTEGER NOT NULL DEFAULT 0,
    state        TEXT NOT NULL DEFAULT 'queued',
    status       TEXT,
    error        TEXT,
    attempts     INTEGER NOT NULL DEFAULT 0,
    submitted_at REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL,
    PRIMARY KEY (analysis_id, key)
);
CREATE INDEX IF NOT EXISTS jobs_by_state
    ON jobs (state, priority DESC, submitted_at ASC);
CREATE TABLE IF NOT EXISTS transitions (
    analysis_id  TEXT NOT NULL,
    key          TEXT NOT NULL,
    from_state   TEXT NOT NULL,
    to_state     TEXT NOT NULL,
    at           REAL NOT NULL
);
"""


class JobStore:
    """The service's durable queue + bookkeeping, one SQLite file.

    Thread-safe: HTTP handler threads and scheduler workers share one
    instance (a single connection guarded by a lock; WAL journal mode
    keeps readers and the writer from blocking each other on disk).
    """

    def __init__(self, path: str | os.PathLike):
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path, check_same_thread=False, timeout=30.0)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=FULL")
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass

    # -- submission ----------------------------------------------------

    def submit(self, analysis_id: str, name: str, client: str,
               jobs: list[tuple[str, str, dict]],
               priority: int = 0) -> dict:
        """Accept an analysis and its jobs; idempotent by content.

        Args:
            analysis_id: Content hash of the submitted spec.
            name: Human-readable campaign name.
            client: Submitting client identity (admission bookkeeping).
            jobs: ``(job_key, label, payload)`` triples, in sweep order.
            priority: Larger numbers are claimed first.

        Returns:
            ``{"id", "deduped", "total_jobs"}`` -- ``deduped`` is True
            when the analysis already existed (the resubmission changed
            nothing; the caller gets the original resource).
        """
        if not jobs:
            raise ServiceError("an analysis needs at least one job",
                               status=400)
        now = time.time()
        with self._lock:
            existing = self._conn.execute(
                "SELECT id FROM analyses WHERE id = ?", (analysis_id,)
            ).fetchone()
            if existing is not None:
                return {"id": analysis_id, "deduped": True,
                        "total_jobs": self._total_jobs(analysis_id)}
            self._conn.execute(
                "INSERT INTO analyses (id, name, client, priority, "
                "total_jobs, submitted_at) VALUES (?, ?, ?, ?, ?, ?)",
                (analysis_id, name, client, priority, len(jobs), now),
            )
            for key, label, payload in jobs:
                self._conn.execute(
                    "INSERT INTO jobs (analysis_id, key, label, payload, "
                    "client, priority, state, submitted_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, 'queued', ?)",
                    (analysis_id, key, label,
                     json.dumps(payload, sort_keys=True), client, priority,
                     now),
                )
            self._conn.commit()
        service_crash("store.crash_commit", key=analysis_id)
        return {"id": analysis_id, "deduped": False,
                "total_jobs": len(jobs)}

    def _total_jobs(self, analysis_id: str) -> int:
        row = self._conn.execute(
            "SELECT total_jobs FROM analyses WHERE id = ?", (analysis_id,)
        ).fetchone()
        return int(row["total_jobs"]) if row is not None else 0

    # -- the queue -----------------------------------------------------

    def claim(self) -> dict | None:
        """Atomically move the best queued job to ``running``.

        Claim order: priority (descending), then submission time, then
        key -- deterministic, so two stores replaying the same
        submissions drain identically.

        Returns:
            The claimed job row as a dict (``payload`` parsed), or
            ``None`` when the queue is empty.
        """
        now = time.time()
        with self._lock:
            row = self._conn.execute(
                "SELECT analysis_id, key, label, payload, attempts "
                "FROM jobs WHERE state = 'queued' "
                "ORDER BY priority DESC, submitted_at ASC, key ASC LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            self._conn.execute(
                "UPDATE jobs SET state = 'running', started_at = ?, "
                "attempts = attempts + 1 "
                "WHERE analysis_id = ? AND key = ?",
                (now, row["analysis_id"], row["key"]),
            )
            self._record_transition(row["analysis_id"], row["key"],
                                    "queued", "running", now)
            self._conn.commit()
        service_crash("store.crash_commit", key=row["key"])
        return {
            "analysis_id": row["analysis_id"],
            "key": row["key"],
            "label": row["label"],
            "payload": json.loads(row["payload"]),
            "attempts": int(row["attempts"]) + 1,
        }

    def settle(self, analysis_id: str, key: str, state: str,
               status: str | None = None, error: str | None = None) -> None:
        """Move a ``running`` job to a terminal state (one transaction).

        Args:
            state: ``done`` or ``failed``.
            status: The runner's settle status (``done``/``cached``/
                ``resumed``/``error``/``timeout``) for observability.
            error: Structured error text for failed jobs.
        """
        if state not in ("done", "failed"):
            raise ServiceError(f"cannot settle a job to {state!r}")
        now = time.time()
        with self._lock:
            updated = self._conn.execute(
                "UPDATE jobs SET state = ?, status = ?, error = ?, "
                "finished_at = ? "
                "WHERE analysis_id = ? AND key = ? AND state = 'running'",
                (state, status, error, now, analysis_id, key),
            ).rowcount
            if updated:
                self._record_transition(analysis_id, key, "running", state,
                                        now)
            self._conn.commit()
        if not updated:
            raise ServiceError(
                f"job {key[:12]} of analysis {analysis_id[:12]} is not "
                "running; refusing to settle it twice"
            )

    def cancel_analysis(self, analysis_id: str) -> int:
        """Cancel every *queued* job of an analysis; running jobs finish.

        Returns:
            How many jobs were cancelled (0 when none were queued --
            including when the analysis does not exist; callers check
            existence via :meth:`analysis_status`).
        """
        now = time.time()
        with self._lock:
            rows = self._conn.execute(
                "SELECT key FROM jobs WHERE analysis_id = ? "
                "AND state = 'queued'", (analysis_id,)
            ).fetchall()
            for row in rows:
                self._conn.execute(
                    "UPDATE jobs SET state = 'cancelled', finished_at = ? "
                    "WHERE analysis_id = ? AND key = ? AND state = 'queued'",
                    (now, analysis_id, row["key"]),
                )
                self._record_transition(analysis_id, row["key"], "queued",
                                        "cancelled", now)
            self._conn.commit()
        return len(rows)

    def release(self, analysis_id: str, key: str) -> bool:
        """Return a claimed-but-never-started job to the queue.

        The drain path: a worker that claimed a job and was stopped
        before the attempt began hands it back, so a graceful shutdown
        leaves nothing in ``running``.  The claim's attempt is refunded
        -- it never executed.

        Returns:
            Whether the job was released (False if it was not running).
        """
        now = time.time()
        with self._lock:
            updated = self._conn.execute(
                "UPDATE jobs SET state = 'queued', started_at = NULL, "
                "attempts = MAX(0, attempts - 1) "
                "WHERE analysis_id = ? AND key = ? AND state = 'running'",
                (analysis_id, key),
            ).rowcount
            if updated:
                self._record_transition(analysis_id, key, "running",
                                        "queued", now)
            self._conn.commit()
        return bool(updated)

    def recover(self) -> int:
        """Requeue jobs left ``running`` by a dead process (startup).

        Returns:
            How many jobs were recovered.  Their ``attempts`` counter
            keeps the crashed attempt, so a poisonous job that kills
            the service repeatedly still converges to ``failed`` once
            the scheduler's retry policy gives up.
        """
        now = time.time()
        with self._lock:
            rows = self._conn.execute(
                "SELECT analysis_id, key FROM jobs WHERE state = 'running'"
            ).fetchall()
            for row in rows:
                self._conn.execute(
                    "UPDATE jobs SET state = 'queued', started_at = NULL "
                    "WHERE analysis_id = ? AND key = ?",
                    (row["analysis_id"], row["key"]),
                )
                self._record_transition(row["analysis_id"], row["key"],
                                        "running", "queued", now)
            self._conn.commit()
        return len(rows)

    def _record_transition(self, analysis_id: str, key: str,
                           from_state: str, to_state: str,
                           at: float) -> None:
        self._conn.execute(
            "INSERT INTO transitions (analysis_id, key, from_state, "
            "to_state, at) VALUES (?, ?, ?, ?, ?)",
            (analysis_id, key, from_state, to_state, at),
        )

    # -- introspection -------------------------------------------------

    def depth(self) -> int:
        """Live (queued + running) jobs -- the admission-control load."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM jobs WHERE state IN "
                "('queued', 'running')"
            ).fetchone()
        return int(row["n"])

    def inflight_for(self, client: str) -> int:
        """One client's live jobs (per-client admission cap)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM jobs WHERE client = ? "
                "AND state IN ('queued', 'running')", (client,)
            ).fetchone()
        return int(row["n"])

    def active_clients(self) -> int:
        """Distinct clients with live jobs -- sizes each client's fair
        share of the worker pool for ``Retry-After`` estimates."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(DISTINCT client) AS n FROM jobs "
                "WHERE state IN ('queued', 'running')"
            ).fetchone()
        return int(row["n"])

    def live_keys(self) -> set[str]:
        """Keys of live jobs -- the eviction-protected set."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT DISTINCT key FROM jobs WHERE state IN "
                "('queued', 'running')"
            ).fetchall()
        return {row["key"] for row in rows}

    def recent_job_seconds(self, window: int = 20) -> float | None:
        """Mean service time of the last ``window`` finished jobs.

        Feeds the ``Retry-After`` hint; ``None`` with no history.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT finished_at - started_at AS seconds FROM jobs "
                "WHERE state IN ('done', 'failed') "
                "AND started_at IS NOT NULL AND finished_at IS NOT NULL "
                "ORDER BY finished_at DESC LIMIT ?", (window,)
            ).fetchall()
        seconds = [max(0.0, float(row["seconds"])) for row in rows]
        if not seconds:
            return None
        return sum(seconds) / len(seconds)

    def analysis_status(self, analysis_id: str) -> dict | None:
        """The HTTP status document of one analysis, or ``None``.

        The analysis-level ``state`` derives from its jobs: ``failed``
        if any failed, else ``cancelled`` if any were cancelled (and the
        rest are terminal), else ``done`` when all jobs are done,
        ``running`` when any is, else ``queued``.
        """
        with self._lock:
            analysis = self._conn.execute(
                "SELECT * FROM analyses WHERE id = ?", (analysis_id,)
            ).fetchone()
            if analysis is None:
                return None
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs "
                "WHERE analysis_id = ? GROUP BY state", (analysis_id,)
            ).fetchall()
        counts = {state: 0 for state in STATES}
        counts.update({row["state"]: int(row["n"]) for row in rows})
        total = sum(counts.values())
        terminal = sum(counts[state] for state in TERMINAL_STATES)
        if counts["running"]:
            state = "running"
        elif counts["queued"]:
            state = "queued"
        elif counts["failed"]:
            state = "failed"
        elif counts["cancelled"]:
            state = "cancelled"
        else:
            state = "done"
        return {
            "id": analysis_id,
            "name": analysis["name"],
            "client": analysis["client"],
            "priority": int(analysis["priority"]),
            "submitted_at": float(analysis["submitted_at"]),
            "state": state,
            "total_jobs": total,
            "counts": counts,
            "finished": terminal == total,
        }

    def analysis_jobs(self, analysis_id: str) -> list[dict]:
        """Job rows of one analysis, in submission (sweep) order."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE analysis_id = ? ORDER BY rowid",
                (analysis_id,)
            ).fetchall()
        return [
            {
                "key": row["key"],
                "label": row["label"],
                "payload": json.loads(row["payload"]),
                "state": row["state"],
                "status": row["status"],
                "error": row["error"],
                "attempts": int(row["attempts"]),
            }
            for row in rows
        ]

    def transitions(self, analysis_id: str | None = None) -> list[dict]:
        """The audit log (optionally one analysis), oldest first."""
        query = ("SELECT analysis_id, key, from_state, to_state, at "
                 "FROM transitions")
        params: tuple = ()
        if analysis_id is not None:
            query += " WHERE analysis_id = ?"
            params = (analysis_id,)
        query += " ORDER BY rowid"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [dict(row) for row in rows]

    def counts(self) -> dict[str, int]:
        """Global job counts by state (for ``/healthz``)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        out = {state: 0 for state in STATES}
        out.update({row["state"]: int(row["n"]) for row in rows})
        return out
