"""Durable SQLite-backed job queue for the analysis service.

The store is the service's source of truth: every accepted job is a row
whose lifecycle walks a crash-safe state machine

    queued -> running -> done | failed | cancelled
    queued -> cancelled | quarantined
    queued -> failed             (missed end-to-end deadline)
    running -> queued            (recovery, lease reap, release)
    quarantined -> queued        (operator retry via the API)

with each transition a single committed SQLite transaction (WAL mode),
so a ``kill -9`` at any instant leaves a consistent database.  On
restart, :meth:`JobStore.recover` requeues anything left ``running`` --
an accepted job is never lost, and because the executor's
content-addressed result cache answers re-runs of already-solved work,
recovery never recomputes (or double-reports) a finished result.

Supervision (the self-healing layer on top of the state machine):

* **Leases** -- :meth:`JobStore.claim` stamps ``lease_expires_at``;
  busy workers renew it via :meth:`heartbeat`.  A lease that expires
  un-renewed means the worker is hung or dead, and
  :meth:`reap_expired` requeues the job with the same exactly-once
  audit transitions as startup recovery.
* **Fencing** -- every claim also stamps a fresh ``claim_token``, and
  :meth:`settle`, :meth:`heartbeat`, and :meth:`release` only act when
  presented with the token of the claim they belong to.  Without the
  token, a presumed-dead worker that wakes *after* its job was reaped
  and re-claimed could settle (or keep renewing) against the new
  claim; with it, every late write from a superseded claim is refused
  no matter what state the job has since reached.
* **Quarantine** -- a job whose store-level claims (attempts carried
  across crashes, restarts, and reaps) exhaust the supervision budget
  is moved by :meth:`quarantine_exhausted` to the terminal
  ``quarantined`` state with its last recorded error preserved,
  instead of crash-looping the pool.  :meth:`retry_quarantined`
  requeues it with a fresh attempt budget.
* **Deadlines** -- jobs may carry an absolute ``deadline_at``; queued
  jobs past it fail fast via :meth:`expire_deadlines` with a
  ``deadline_exceeded`` error, and the scheduler clamps the running
  wall timeout to the time remaining.
* **Cancellation** -- ``DELETE`` on an analysis cancels queued jobs
  outright and raises ``cancel_requested`` on running ones; the
  executor polls that flag cooperatively between dispatches.
* **Worker identity** -- consumers of the claim path (the local
  scheduler pool and remote ``repro worker`` agents alike) register in
  a ``workers`` table and stamp their id on each claim's
  ``claimed_by`` column, so :meth:`fleet` and :meth:`running_claims`
  can report fleet size and per-worker in-flight counts.  Identity is
  bookkeeping only; *fencing* is always the per-claim token.

Identity and idempotence:

* A *job* is keyed by the runner's content address
  (:func:`repro.runner.cache.job_key` over the payload), so submitting
  the same work twice -- same topology, demands, paths, parameters --
  dedupes to the same row.
* An *analysis* (the HTTP resource) groups the jobs of one submitted
  sweep spec, keyed by the spec's content hash.  Resubmitting a spec
  returns the existing analysis unchanged.

Every state change is also appended to a ``transitions`` audit table,
which is what lets the crash-recovery tests assert "every job reached a
terminal state *exactly once*" rather than trusting the final snapshot.

Chaos: the ``store.crash_commit`` fault site fires immediately *after*
a claim commits -- inside a real server process it hard-exits
(``kill -9`` semantics, enabled by :data:`HARD_FAULTS`); in-process it
raises :class:`InjectedServiceCrash` so a test can kill one scheduler
worker without killing the test runner.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import uuid

from repro.exceptions import ServiceError
from repro.resilience.faults import maybe_fire

#: Job states.  ``queued`` and ``running`` are the *live* states (their
#: cache entries are protected from eviction); the rest are terminal.
#: ``quarantined`` is terminal for the scheduler (never claimed) but
#: retriable by an operator via :meth:`JobStore.retry_quarantined`.
LIVE_STATES = ("queued", "running")
TERMINAL_STATES = ("done", "failed", "cancelled", "quarantined")
STATES = LIVE_STATES + TERMINAL_STATES

#: When True (set by the ``repro serve`` entry point), injected
#: ``store.*``/``service.*`` crash faults hard-exit the process --
#: genuine ``kill -9`` semantics for crash-recovery tests.  In-process
#: (the default) they raise :class:`InjectedServiceCrash` instead.
HARD_FAULTS = False

#: Exit code of a hard-fault crash, distinguishable from clean exits.
CRASH_EXIT_CODE = 23


class InjectedServiceCrash(Exception):
    """An injected service crash, degraded to an exception in-process."""


def service_crash(site: str, key: str = "") -> None:
    """Chaos hook for the service's crash sites (free with no plan)."""
    if maybe_fire(site, key=key):
        if HARD_FAULTS:
            os._exit(CRASH_EXIT_CODE)
        raise InjectedServiceCrash(f"chaos: injected service crash at {site}")


_SCHEMA = """
CREATE TABLE IF NOT EXISTS analyses (
    id           TEXT PRIMARY KEY,
    name         TEXT NOT NULL,
    client       TEXT NOT NULL,
    priority     INTEGER NOT NULL DEFAULT 0,
    total_jobs   INTEGER NOT NULL,
    submitted_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    analysis_id  TEXT NOT NULL,
    key          TEXT NOT NULL,
    label        TEXT NOT NULL,
    payload      TEXT NOT NULL,
    client       TEXT NOT NULL,
    priority     INTEGER NOT NULL DEFAULT 0,
    state        TEXT NOT NULL DEFAULT 'queued',
    status       TEXT,
    error        TEXT,
    attempts     INTEGER NOT NULL DEFAULT 0,
    submitted_at REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL,
    lease_expires_at REAL,
    heartbeat_at REAL,
    claim_token  TEXT,
    deadline_at  REAL,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    claimed_by   TEXT,
    PRIMARY KEY (analysis_id, key)
);
CREATE INDEX IF NOT EXISTS jobs_by_state
    ON jobs (state, priority DESC, submitted_at ASC);
CREATE TABLE IF NOT EXISTS workers (
    id              TEXT PRIMARY KEY,
    kind            TEXT NOT NULL DEFAULT 'remote',
    host            TEXT,
    pid             INTEGER,
    capacity        INTEGER NOT NULL DEFAULT 1,
    registered_at   REAL NOT NULL,
    last_seen_at    REAL NOT NULL,
    deregistered_at REAL
);
CREATE TABLE IF NOT EXISTS transitions (
    analysis_id  TEXT NOT NULL,
    key          TEXT NOT NULL,
    from_state   TEXT NOT NULL,
    to_state     TEXT NOT NULL,
    at           REAL NOT NULL
);
"""


class JobStore:
    """The service's durable queue + bookkeeping, one SQLite file.

    Thread-safe: HTTP handler threads and scheduler workers share one
    instance (a single connection guarded by a lock; WAL journal mode
    keeps readers and the writer from blocking each other on disk).
    """

    def __init__(self, path: str | os.PathLike):
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path, check_same_thread=False, timeout=30.0)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=FULL")
            self._conn.executescript(_SCHEMA)
            self._migrate()
            self._conn.commit()

    def _migrate(self) -> None:
        """Bring a pre-supervision database up to the current schema.

        ``CREATE TABLE IF NOT EXISTS`` leaves an existing ``jobs`` table
        untouched, so the lease/deadline/cancellation columns are added
        here with ``ALTER TABLE`` when missing (idempotent; NULL/0
        defaults mean old rows behave exactly as before).
        """
        have = {row["name"] for row in self._conn.execute(
            "PRAGMA table_info(jobs)")}
        for column, decl in (
            ("lease_expires_at", "REAL"),
            ("heartbeat_at", "REAL"),
            ("claim_token", "TEXT"),
            ("deadline_at", "REAL"),
            ("cancel_requested", "INTEGER NOT NULL DEFAULT 0"),
            ("claimed_by", "TEXT"),
        ):
            if column not in have:
                self._conn.execute(
                    f"ALTER TABLE jobs ADD COLUMN {column} {decl}")

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass

    # -- submission ----------------------------------------------------

    def submit(self, analysis_id: str, name: str, client: str,
               jobs: list[tuple[str, str, dict]],
               priority: int = 0,
               deadline_seconds: float | None = None) -> dict:
        """Accept an analysis and its jobs; idempotent by content.

        Args:
            analysis_id: Content hash of the submitted spec.
            name: Human-readable campaign name.
            client: Submitting client identity (admission bookkeeping).
            jobs: ``(job_key, label, payload)`` triples, in sweep order.
            priority: Larger numbers are claimed first.
            deadline_seconds: Optional end-to-end budget; each job gets
                an absolute ``deadline_at`` of now + this.  Queued jobs
                past it fail fast (:meth:`expire_deadlines`); running
                jobs get their wall timeout clamped to the remainder.

        Returns:
            ``{"id", "deduped", "total_jobs"}`` -- ``deduped`` is True
            when the analysis already existed (the resubmission changed
            nothing; the caller gets the original resource).
        """
        if not jobs:
            raise ServiceError("an analysis needs at least one job",
                               status=400)
        now = time.time()
        deadline_at = None
        if deadline_seconds is not None:
            if deadline_seconds <= 0:
                raise ServiceError(
                    f"deadline_seconds must be > 0, got "
                    f"{deadline_seconds}", status=400)
            deadline_at = now + float(deadline_seconds)
        with self._lock:
            existing = self._conn.execute(
                "SELECT id FROM analyses WHERE id = ?", (analysis_id,)
            ).fetchone()
            if existing is not None:
                return {"id": analysis_id, "deduped": True,
                        "total_jobs": self._total_jobs(analysis_id)}
            self._conn.execute(
                "INSERT INTO analyses (id, name, client, priority, "
                "total_jobs, submitted_at) VALUES (?, ?, ?, ?, ?, ?)",
                (analysis_id, name, client, priority, len(jobs), now),
            )
            for key, label, payload in jobs:
                self._conn.execute(
                    "INSERT INTO jobs (analysis_id, key, label, payload, "
                    "client, priority, state, submitted_at, deadline_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, 'queued', ?, ?)",
                    (analysis_id, key, label,
                     json.dumps(payload, sort_keys=True), client, priority,
                     now, deadline_at),
                )
            self._conn.commit()
        service_crash("store.crash_commit", key=analysis_id)
        return {"id": analysis_id, "deduped": False,
                "total_jobs": len(jobs)}

    def _total_jobs(self, analysis_id: str) -> int:
        row = self._conn.execute(
            "SELECT total_jobs FROM analyses WHERE id = ?", (analysis_id,)
        ).fetchone()
        return int(row["total_jobs"]) if row is not None else 0

    # -- the queue -----------------------------------------------------

    def claim(self, lease_seconds: float | None = None,
              worker_id: str | None = None) -> dict | None:
        """Atomically move the best queued job to ``running``.

        Claim order: priority (descending), then submission time, then
        key -- deterministic, so two stores replaying the same
        submissions drain identically.

        Args:
            lease_seconds: Time-bound the claim: the job's
                ``lease_expires_at`` is stamped now + this, and unless
                the worker renews it via :meth:`heartbeat` the reaper
                (:meth:`reap_expired`) requeues the job once it lapses.
                ``None`` grants an unbounded claim (legacy behavior).
            worker_id: Identity of the claiming worker (local pool or a
                remote agent), stamped on the job's ``claimed_by``
                column so :meth:`fleet` and :meth:`running_claims` can
                attribute in-flight work.  Also refreshes the worker's
                ``last_seen_at`` when it is registered.

        Every claim -- leased or not -- also mints a fresh
        ``claim_token`` (the fencing token): subsequent
        :meth:`heartbeat`, :meth:`settle`, and :meth:`release` calls
        that present the token only act on *this* claim, so a
        presumed-dead worker whose job was reaped and re-claimed can
        neither settle over nor keep alive the new claim.

        Returns:
            The claimed job row as a dict (``payload`` parsed,
            ``claim_token`` included), or ``None`` when the queue is
            empty.
        """
        now = time.time()
        lease_expires_at = None if lease_seconds is None \
            else now + float(lease_seconds)
        claim_token = uuid.uuid4().hex
        with self._lock:
            row = self._conn.execute(
                "SELECT analysis_id, key, label, payload, attempts, "
                "deadline_at, cancel_requested "
                "FROM jobs WHERE state = 'queued' "
                "ORDER BY priority DESC, submitted_at ASC, key ASC LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            self._conn.execute(
                "UPDATE jobs SET state = 'running', started_at = ?, "
                "attempts = attempts + 1, lease_expires_at = ?, "
                "heartbeat_at = ?, claim_token = ?, claimed_by = ? "
                "WHERE analysis_id = ? AND key = ?",
                (now, lease_expires_at, now, claim_token, worker_id,
                 row["analysis_id"], row["key"]),
            )
            self._record_transition(row["analysis_id"], row["key"],
                                    "queued", "running", now)
            if worker_id is not None:
                self._touch_worker_locked(worker_id, now)
            self._conn.commit()
        service_crash("store.crash_commit", key=row["key"])
        return {
            "analysis_id": row["analysis_id"],
            "key": row["key"],
            "label": row["label"],
            "payload": json.loads(row["payload"]),
            "attempts": int(row["attempts"]) + 1,
            "deadline_at": (None if row["deadline_at"] is None
                            else float(row["deadline_at"])),
            "cancel_requested": bool(row["cancel_requested"]),
            "lease_expires_at": lease_expires_at,
            "claim_token": claim_token,
        }

    def heartbeat(self, analysis_id: str, key: str,
                  lease_seconds: float, token: str) -> str:
        """Renew a running job's lease (called by the worker's
        heartbeat thread while ``run_sweep`` executes).

        The renewal is fenced on ``token`` (the ``claim_token`` handed
        out by :meth:`claim`): a beat from a superseded claim -- the
        job was reaped and re-claimed by another worker -- never
        extends the new claim's lease, so a genuinely hung re-claim
        still gets reaped even while the old worker's heartbeat thread
        is alive.

        The ``lease.heartbeat`` chaos site models a stalled heartbeat:
        when it fires, the renewal is silently dropped -- the lease
        keeps aging and, if enough beats are dropped, the reaper
        requeues a job whose worker is in fact still computing.  (The
        stale worker's eventual settle is then refused by the fencing
        guard and discarded by the scheduler.)

        Returns:
            ``"renewed"`` when the lease was extended, ``"dropped"``
            when the chaos site swallowed the beat (worth retrying),
            or ``"lost"`` when this claim no longer owns the job --
            it was reaped, settled, or re-claimed -- and the caller
            should stop beating.
        """
        if maybe_fire("lease.heartbeat", key=key):
            return "dropped"
        now = time.time()
        with self._lock:
            updated = self._conn.execute(
                "UPDATE jobs SET lease_expires_at = ?, heartbeat_at = ? "
                "WHERE analysis_id = ? AND key = ? AND state = 'running' "
                "AND claim_token = ?",
                (now + float(lease_seconds), now, analysis_id, key, token),
            ).rowcount
            if updated:
                row = self._conn.execute(
                    "SELECT claimed_by FROM jobs "
                    "WHERE analysis_id = ? AND key = ?", (analysis_id, key)
                ).fetchone()
                if row is not None and row["claimed_by"]:
                    self._touch_worker_locked(row["claimed_by"], now)
            self._conn.commit()
        return "renewed" if updated else "lost"

    def settle(self, analysis_id: str, key: str, state: str,
               status: str | None = None, error: str | None = None,
               token: str | None = None) -> None:
        """Move a ``running`` job to a terminal state (one transaction).

        Args:
            state: ``done``, ``failed``, or ``cancelled`` (the last for
                a running job cooperatively cancelled by the executor).
            status: The runner's settle status (``done``/``cached``/
                ``resumed``/``error``/``timeout``/``cancelled``) for
                observability.
            error: Structured error text for failed jobs.
            token: The claim's fencing token.  When given, the settle
                only lands if this claim still owns the job -- a late
                settle from a worker whose job was reaped and
                re-claimed is refused *even though the job is
                ``running`` again* (under somebody else's claim).
                ``None`` skips the fence (direct store surgery only;
                the scheduler always fences).
        """
        if state not in ("done", "failed", "cancelled"):
            raise ServiceError(f"cannot settle a job to {state!r}")
        now = time.time()
        query = ("UPDATE jobs SET state = ?, status = ?, error = ?, "
                 "finished_at = ?, lease_expires_at = NULL, "
                 "claim_token = NULL, claimed_by = NULL "
                 "WHERE analysis_id = ? AND key = ? AND state = 'running'")
        params: tuple = (state, status, error, now, analysis_id, key)
        if token is not None:
            query += " AND claim_token = ?"
            params += (token,)
        with self._lock:
            updated = self._conn.execute(query, params).rowcount
            if updated:
                self._record_transition(analysis_id, key, "running", state,
                                        now)
            self._conn.commit()
        if not updated:
            raise ServiceError(
                f"job {key[:12]} of analysis {analysis_id[:12]} is not "
                "running under this claim; refusing to settle it"
            )

    def cancel_analysis(self, analysis_id: str) -> dict | None:
        """Cancel an analysis: queued jobs immediately, running jobs
        cooperatively.

        Queued jobs transition to ``cancelled`` outright; running jobs
        get ``cancel_requested`` raised, which the executor polls
        between dispatches (the scheduler then settles them
        ``cancelled``).

        Returns:
            ``None`` when the analysis does not exist (the API maps
            this to 404).  Otherwise ``{"cancelled", "cancelling",
            "already_terminal"}`` -- ``already_terminal`` is True when
            every job was already in a terminal state, so there was
            nothing to cancel (the API maps this to 409, distinguishable
            from the unknown-analysis case).
        """
        now = time.time()
        with self._lock:
            exists = self._conn.execute(
                "SELECT id FROM analyses WHERE id = ?", (analysis_id,)
            ).fetchone()
            if exists is None:
                return None
            rows = self._conn.execute(
                "SELECT key FROM jobs WHERE analysis_id = ? "
                "AND state = 'queued'", (analysis_id,)
            ).fetchall()
            for row in rows:
                self._conn.execute(
                    "UPDATE jobs SET state = 'cancelled', finished_at = ?, "
                    "lease_expires_at = NULL "
                    "WHERE analysis_id = ? AND key = ? AND state = 'queued'",
                    (now, analysis_id, row["key"]),
                )
                self._record_transition(analysis_id, row["key"], "queued",
                                        "cancelled", now)
            cancelling = self._conn.execute(
                "UPDATE jobs SET cancel_requested = 1 "
                "WHERE analysis_id = ? AND state = 'running'",
                (analysis_id,),
            ).rowcount
            live = self._conn.execute(
                "SELECT COUNT(*) AS n FROM jobs WHERE analysis_id = ? "
                "AND state IN ('queued', 'running')", (analysis_id,)
            ).fetchone()
            self._conn.commit()
        return {
            "cancelled": len(rows),
            "cancelling": int(cancelling),
            "already_terminal": (not rows and not cancelling
                                 and int(live["n"]) == 0),
        }

    def cancel_requested(self, analysis_id: str, key: str) -> bool:
        """Whether a cooperative cancel has been requested for a job.

        This is the flag the executor's ``cancel_check`` polls between
        job dispatches while the job runs.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT cancel_requested FROM jobs "
                "WHERE analysis_id = ? AND key = ?", (analysis_id, key)
            ).fetchone()
        return bool(row and row["cancel_requested"])

    def release(self, analysis_id: str, key: str,
                token: str | None = None) -> bool:
        """Return a claimed-but-never-started job to the queue.

        The drain path: a worker that claimed a job and was stopped
        before the attempt began hands it back, so a graceful shutdown
        leaves nothing in ``running``.  The claim's attempt is refunded
        -- it never executed.  With ``token``, the release is fenced
        like :meth:`settle`: a stale worker cannot refund or requeue a
        job somebody else has since claimed.

        Returns:
            Whether the job was released (False if it was not running,
            or no longer running under this claim).
        """
        now = time.time()
        query = ("UPDATE jobs SET state = 'queued', started_at = NULL, "
                 "attempts = MAX(0, attempts - 1), "
                 "lease_expires_at = NULL, heartbeat_at = NULL, "
                 "claim_token = NULL, claimed_by = NULL "
                 "WHERE analysis_id = ? AND key = ? AND state = 'running'")
        params: tuple = (analysis_id, key)
        if token is not None:
            query += " AND claim_token = ?"
            params += (token,)
        with self._lock:
            updated = self._conn.execute(query, params).rowcount
            if updated:
                self._record_transition(analysis_id, key, "running",
                                        "queued", now)
            self._conn.commit()
        return bool(updated)

    def _requeue_running_locked(self, rows, now: float,
                                reason: str) -> list[dict]:
        """Requeue a batch of ``running`` rows (recovery/reap core).

        Shared by :meth:`recover` and :meth:`reap_expired` so both use
        identical exactly-once audit semantics: each job gets one
        ``running -> queued`` transition, keeps its ``attempts`` (so a
        poison job still converges to quarantine), has its lease and
        heartbeat cleared, and records ``reason`` as its last error.
        Rows with a pending cooperative cancel go straight to
        ``cancelled`` instead -- requeueing work nobody wants is worse
        than honoring the cancel late.
        """
        out = []
        for row in rows:
            if row["cancel_requested"]:
                self._conn.execute(
                    "UPDATE jobs SET state = 'cancelled', status = "
                    "'cancelled', error = ?, finished_at = ?, "
                    "started_at = NULL, lease_expires_at = NULL, "
                    "heartbeat_at = NULL, claim_token = NULL, "
                    "claimed_by = NULL "
                    "WHERE analysis_id = ? AND key = ? "
                    "AND state = 'running'",
                    (f"cancelled by client ({reason})", now,
                     row["analysis_id"], row["key"]),
                )
                self._record_transition(row["analysis_id"], row["key"],
                                        "running", "cancelled", now)
                out.append({"analysis_id": row["analysis_id"],
                            "key": row["key"],
                            "attempts": int(row["attempts"]),
                            "requeued": False})
                continue
            self._conn.execute(
                "UPDATE jobs SET state = 'queued', started_at = NULL, "
                "lease_expires_at = NULL, heartbeat_at = NULL, "
                "claim_token = NULL, claimed_by = NULL, error = ? "
                "WHERE analysis_id = ? AND key = ? AND state = 'running'",
                (reason, row["analysis_id"], row["key"]),
            )
            self._record_transition(row["analysis_id"], row["key"],
                                    "running", "queued", now)
            out.append({"analysis_id": row["analysis_id"],
                        "key": row["key"],
                        "attempts": int(row["attempts"]),
                        "requeued": True})
        return out

    def recover(self) -> int:
        """Requeue jobs left ``running`` by a dead process (startup).

        Clears the stale lease and heartbeat columns along the way --
        a recovered job must look freshly queued, not mid-lease.

        Returns:
            How many jobs were recovered.  Their ``attempts`` counter
            keeps the crashed attempt, so a poisonous job that kills
            the service repeatedly still converges to ``quarantined``
            once the supervision budget is spent.
        """
        now = time.time()
        with self._lock:
            rows = self._conn.execute(
                "SELECT analysis_id, key, attempts, cancel_requested "
                "FROM jobs WHERE state = 'running'"
            ).fetchall()
            recovered = self._requeue_running_locked(
                rows, now, "process died while this job was running")
            self._conn.commit()
        return len(recovered)

    def reap_expired(self) -> list[dict]:
        """Requeue running jobs whose lease lapsed (the reaper's core).

        A lapsed lease means the worker holding the job is hung or its
        process died without the store noticing.  Same exactly-once
        audit transitions as :meth:`recover`: one ``running -> queued``
        per reaped job, ``attempts`` preserved (poison jobs converge to
        quarantine), lease/heartbeat cleared.  Jobs with a pending
        cooperative cancel settle ``cancelled`` instead of requeueing.

        Returns:
            One dict per affected job: ``{"analysis_id", "key",
            "attempts", "requeued"}`` (``requeued`` False for the
            cancelled ones).
        """
        now = time.time()
        with self._lock:
            rows = self._conn.execute(
                "SELECT analysis_id, key, attempts, cancel_requested, "
                "lease_expires_at FROM jobs WHERE state = 'running' "
                "AND lease_expires_at IS NOT NULL "
                "AND lease_expires_at < ?", (now,)
            ).fetchall()
            reaped = self._requeue_running_locked(
                rows, now,
                "lease expired: worker presumed hung or dead")
            self._conn.commit()
        return reaped

    def expire_deadlines(self) -> list[dict]:
        """Fail queued jobs whose end-to-end deadline has passed.

        A job that cannot start before its client's deadline should
        fail *now* with a structured ``deadline_exceeded`` error, not
        burn a worker slot producing an answer nobody is waiting for.
        (Running jobs are covered separately: the scheduler clamps
        their wall timeout to the time remaining.)

        Returns:
            One ``{"analysis_id", "key"}`` dict per expired job.
        """
        now = time.time()
        with self._lock:
            rows = self._conn.execute(
                "SELECT analysis_id, key, deadline_at FROM jobs "
                "WHERE state = 'queued' AND deadline_at IS NOT NULL "
                "AND deadline_at < ?", (now,)
            ).fetchall()
            for row in rows:
                overdue = now - float(row["deadline_at"])
                self._conn.execute(
                    "UPDATE jobs SET state = 'failed', "
                    "status = 'deadline_exceeded', error = ?, "
                    "finished_at = ?, lease_expires_at = NULL "
                    "WHERE analysis_id = ? AND key = ? "
                    "AND state = 'queued'",
                    (f"deadline_exceeded: still queued {overdue:.3f}s "
                     f"past the end-to-end deadline", now,
                     row["analysis_id"], row["key"]),
                )
                self._record_transition(row["analysis_id"], row["key"],
                                        "queued", "failed", now)
            self._conn.commit()
        return [{"analysis_id": row["analysis_id"], "key": row["key"]}
                for row in rows]

    def quarantine_exhausted(self, max_attempts: int) -> list[dict]:
        """Quarantine queued jobs whose claim budget is spent.

        ``attempts`` counts store-level claims and survives crashes,
        restarts, and lease reaps -- so a job that repeatedly kills its
        worker (or the whole service) accumulates attempts across
        recoveries and lands here instead of crash-looping the pool.
        The transition is terminal and exactly-once; the job's last
        recorded error (what recovery/reap observed) is preserved in
        the quarantine message.

        Returns:
            One ``{"analysis_id", "key", "attempts"}`` per job moved to
            ``quarantined``.
        """
        now = time.time()
        with self._lock:
            rows = self._conn.execute(
                "SELECT analysis_id, key, attempts, error FROM jobs "
                "WHERE state = 'queued' AND attempts >= ?",
                (int(max_attempts),)
            ).fetchall()
            for row in rows:
                last = row["error"] or "no error recorded"
                self._conn.execute(
                    "UPDATE jobs SET state = 'quarantined', "
                    "status = 'quarantined', error = ?, finished_at = ?, "
                    "lease_expires_at = NULL "
                    "WHERE analysis_id = ? AND key = ? "
                    "AND state = 'queued'",
                    (f"quarantined after {int(row['attempts'])} "
                     f"attempt(s); last error: {last}", now,
                     row["analysis_id"], row["key"]),
                )
                self._record_transition(row["analysis_id"], row["key"],
                                        "queued", "quarantined", now)
            self._conn.commit()
        return [{"analysis_id": row["analysis_id"], "key": row["key"],
                 "attempts": int(row["attempts"])} for row in rows]

    def quarantined_jobs(self, analysis_id: str | None = None
                         ) -> list[dict]:
        """Quarantined job rows (optionally of one analysis), oldest
        first -- the API's quarantine listing."""
        query = ("SELECT analysis_id, key, label, attempts, error, "
                 "finished_at FROM jobs WHERE state = 'quarantined'")
        params: tuple = ()
        if analysis_id is not None:
            query += " AND analysis_id = ?"
            params = (analysis_id,)
        query += " ORDER BY finished_at ASC, key ASC"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [
            {
                "analysis_id": row["analysis_id"],
                "key": row["key"],
                "label": row["label"],
                "attempts": int(row["attempts"]),
                "error": row["error"],
                "quarantined_at": (None if row["finished_at"] is None
                                   else float(row["finished_at"])),
            }
            for row in rows
        ]

    def retry_quarantined(self, analysis_id: str) -> int:
        """Requeue an analysis's quarantined jobs with a fresh budget.

        The operator's second chance: attempts reset to zero, the
        error/status scratch cleared, cancellation flag dropped.  Each
        job gets one audited ``quarantined -> queued`` transition.

        Returns:
            How many jobs were requeued.
        """
        now = time.time()
        with self._lock:
            rows = self._conn.execute(
                "SELECT key FROM jobs WHERE analysis_id = ? "
                "AND state = 'quarantined'", (analysis_id,)
            ).fetchall()
            for row in rows:
                self._conn.execute(
                    "UPDATE jobs SET state = 'queued', attempts = 0, "
                    "status = NULL, error = NULL, started_at = NULL, "
                    "finished_at = NULL, lease_expires_at = NULL, "
                    "heartbeat_at = NULL, claim_token = NULL, "
                    "claimed_by = NULL, cancel_requested = 0 "
                    "WHERE analysis_id = ? AND key = ? "
                    "AND state = 'quarantined'",
                    (analysis_id, row["key"]),
                )
                self._record_transition(analysis_id, row["key"],
                                        "quarantined", "queued", now)
            self._conn.commit()
        return len(rows)

    # -- the worker fleet ----------------------------------------------

    def register_worker(self, worker_id: str, kind: str = "remote",
                        host: str | None = None, pid: int | None = None,
                        capacity: int = 1) -> dict:
        """Register (or re-register) a worker identity.

        Workers announce themselves before claiming: the local
        scheduler pool registers once as ``kind='local'``, each remote
        agent as ``kind='remote'`` with its host/pid.  Registration is
        an upsert -- an agent that restarts under the same identity
        simply refreshes its row and clears any ``deregistered_at``
        stamp from a previous drain.

        Returns:
            The worker's row as a dict (see :meth:`fleet`).
        """
        now = time.time()
        with self._lock:
            self._conn.execute(
                "INSERT INTO workers (id, kind, host, pid, capacity, "
                "registered_at, last_seen_at, deregistered_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, NULL) "
                "ON CONFLICT(id) DO UPDATE SET kind = excluded.kind, "
                "host = excluded.host, pid = excluded.pid, "
                "capacity = excluded.capacity, "
                "last_seen_at = excluded.last_seen_at, "
                "deregistered_at = NULL",
                (worker_id, kind, host, pid, int(capacity), now, now),
            )
            self._conn.commit()
        return {"id": worker_id, "kind": kind, "host": host, "pid": pid,
                "capacity": int(capacity), "registered_at": now,
                "last_seen_at": now, "deregistered_at": None,
                "inflight": 0}

    def deregister_worker(self, worker_id: str) -> bool:
        """Stamp a worker as drained (it stops counting toward the
        fleet).  Its in-flight claims, if any, are left to lapse and be
        reaped -- deregistration is bookkeeping, not revocation.

        Returns:
            Whether the worker was known.
        """
        now = time.time()
        with self._lock:
            updated = self._conn.execute(
                "UPDATE workers SET deregistered_at = ?, last_seen_at = ? "
                "WHERE id = ?", (now, now, worker_id),
            ).rowcount
            self._conn.commit()
        return bool(updated)

    def _touch_worker_locked(self, worker_id: str, now: float) -> None:
        """Refresh a worker's liveness stamp (claim/heartbeat path)."""
        self._conn.execute(
            "UPDATE workers SET last_seen_at = ? WHERE id = ?",
            (now, worker_id),
        )

    def fleet(self, include_deregistered: bool = False) -> list[dict]:
        """The registered worker fleet with per-worker in-flight counts.

        Feeds the ``/healthz``/``/metricz`` fleet gauges: one row per
        worker, ``inflight`` counting the ``running`` jobs currently
        stamped ``claimed_by`` that worker.  Drained workers are
        excluded unless ``include_deregistered``.
        """
        query = ("SELECT w.*, (SELECT COUNT(*) FROM jobs j "
                 "WHERE j.claimed_by = w.id AND j.state = 'running') "
                 "AS inflight FROM workers w")
        if not include_deregistered:
            query += " WHERE w.deregistered_at IS NULL"
        query += " ORDER BY w.registered_at ASC, w.id ASC"
        with self._lock:
            rows = self._conn.execute(query).fetchall()
        return [
            {
                "id": row["id"],
                "kind": row["kind"],
                "host": row["host"],
                "pid": (None if row["pid"] is None else int(row["pid"])),
                "capacity": int(row["capacity"]),
                "registered_at": float(row["registered_at"]),
                "last_seen_at": float(row["last_seen_at"]),
                "deregistered_at": (
                    None if row["deregistered_at"] is None
                    else float(row["deregistered_at"])),
                "inflight": int(row["inflight"]),
            }
            for row in rows
        ]

    def running_claims(self) -> list[dict]:
        """Active claims: every ``running`` job with its holder and
        lease -- the ``GET /v1/claims`` listing an operator reads to see
        who is working on what (and whose lease is about to lapse)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT analysis_id, key, label, attempts, claimed_by, "
                "started_at, heartbeat_at, lease_expires_at, "
                "cancel_requested FROM jobs WHERE state = 'running' "
                "ORDER BY started_at ASC, key ASC"
            ).fetchall()
        return [
            {
                "analysis_id": row["analysis_id"],
                "key": row["key"],
                "label": row["label"],
                "attempts": int(row["attempts"]),
                "worker": row["claimed_by"],
                "started_at": (None if row["started_at"] is None
                               else float(row["started_at"])),
                "heartbeat_at": (None if row["heartbeat_at"] is None
                                 else float(row["heartbeat_at"])),
                "lease_expires_at": (
                    None if row["lease_expires_at"] is None
                    else float(row["lease_expires_at"])),
                "cancel_requested": bool(row["cancel_requested"]),
            }
            for row in rows
        ]

    def _record_transition(self, analysis_id: str, key: str,
                           from_state: str, to_state: str,
                           at: float) -> None:
        self._conn.execute(
            "INSERT INTO transitions (analysis_id, key, from_state, "
            "to_state, at) VALUES (?, ?, ?, ?, ?)",
            (analysis_id, key, from_state, to_state, at),
        )

    # -- introspection -------------------------------------------------

    def depth(self) -> int:
        """Live (queued + running) jobs -- the admission-control load."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM jobs WHERE state IN "
                "('queued', 'running')"
            ).fetchone()
        return int(row["n"])

    def inflight_for(self, client: str) -> int:
        """One client's live jobs (per-client admission cap)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM jobs WHERE client = ? "
                "AND state IN ('queued', 'running')", (client,)
            ).fetchone()
        return int(row["n"])

    def active_clients(self) -> int:
        """Distinct clients with live jobs -- sizes each client's fair
        share of the worker pool for ``Retry-After`` estimates."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(DISTINCT client) AS n FROM jobs "
                "WHERE state IN ('queued', 'running')"
            ).fetchone()
        return int(row["n"])

    def live_keys(self) -> set[str]:
        """Keys of live jobs -- the eviction-protected set."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT DISTINCT key FROM jobs WHERE state IN "
                "('queued', 'running')"
            ).fetchall()
        return {row["key"] for row in rows}

    def recent_job_seconds(self, window: int = 20) -> float | None:
        """Mean service time of the last ``window`` finished jobs.

        Feeds the ``Retry-After`` hint; ``None`` with no history.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT finished_at - started_at AS seconds FROM jobs "
                "WHERE state IN ('done', 'failed') "
                "AND started_at IS NOT NULL AND finished_at IS NOT NULL "
                "ORDER BY finished_at DESC LIMIT ?", (window,)
            ).fetchall()
        seconds = [max(0.0, float(row["seconds"])) for row in rows]
        if not seconds:
            return None
        return sum(seconds) / len(seconds)

    def analysis_status(self, analysis_id: str) -> dict | None:
        """The HTTP status document of one analysis, or ``None``.

        The analysis-level ``state`` derives from its jobs: ``failed``
        if any failed, else ``quarantined`` if any are quarantined,
        else ``cancelled`` if any were cancelled (and the rest are
        terminal), else ``done`` when all jobs are done, ``running``
        when any is, else ``queued``.
        """
        with self._lock:
            analysis = self._conn.execute(
                "SELECT * FROM analyses WHERE id = ?", (analysis_id,)
            ).fetchone()
            if analysis is None:
                return None
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs "
                "WHERE analysis_id = ? GROUP BY state", (analysis_id,)
            ).fetchall()
        counts = {state: 0 for state in STATES}
        counts.update({row["state"]: int(row["n"]) for row in rows})
        total = sum(counts.values())
        terminal = sum(counts[state] for state in TERMINAL_STATES)
        if counts["running"]:
            state = "running"
        elif counts["queued"]:
            state = "queued"
        elif counts["failed"]:
            state = "failed"
        elif counts["quarantined"]:
            state = "quarantined"
        elif counts["cancelled"]:
            state = "cancelled"
        else:
            state = "done"
        return {
            "id": analysis_id,
            "name": analysis["name"],
            "client": analysis["client"],
            "priority": int(analysis["priority"]),
            "submitted_at": float(analysis["submitted_at"]),
            "state": state,
            "total_jobs": total,
            "counts": counts,
            "finished": terminal == total,
        }

    def analysis_jobs(self, analysis_id: str) -> list[dict]:
        """Job rows of one analysis, in submission (sweep) order."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE analysis_id = ? ORDER BY rowid",
                (analysis_id,)
            ).fetchall()
        return [
            {
                "key": row["key"],
                "label": row["label"],
                "payload": json.loads(row["payload"]),
                "state": row["state"],
                "status": row["status"],
                "error": row["error"],
                "attempts": int(row["attempts"]),
            }
            for row in rows
        ]

    def transitions(self, analysis_id: str | None = None) -> list[dict]:
        """The audit log (optionally one analysis), oldest first."""
        query = ("SELECT analysis_id, key, from_state, to_state, at "
                 "FROM transitions")
        params: tuple = ()
        if analysis_id is not None:
            query += " WHERE analysis_id = ?"
            params = (analysis_id,)
        query += " ORDER BY rowid"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [dict(row) for row in rows]

    def counts(self) -> dict[str, int]:
        """Global job counts by state (for ``/healthz``)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        out = {state: 0 for state in STATES}
        out.update({row["state"]: int(row["n"]) for row in rows})
        return out
