"""Durable result store with TTL/size-capped eviction.

Results live in the runner's content-addressed
:class:`~repro.runner.cache.ResultCache` -- the same store sweep
campaigns write through, which is exactly what makes a service-computed
answer bit-identical to (and shareable with) a direct ``repro sweep`` of
the same spec.  This module layers the *lifecycle* on top: the cache
otherwise grows without bound, so the service runs a periodic eviction
pass with two knobs (:class:`~repro.core.config.ServiceConfig`):

* ``result_ttl_seconds`` -- entries older than the TTL are dropped;
* ``result_max_bytes`` -- beyond the size cap, oldest-mtime entries go
  first.

Entries referenced by a *live* (queued or running) service job are
never evicted by either rule: the job about to hit the cache must not
have its answer pulled out from under it.  Evicting a *finished* job's
entry is allowed and documented -- its ``GET .../result`` then reports
the result as evicted (HTTP 410 semantics) and resubmitting the same
spec recomputes it.
"""

from __future__ import annotations

import threading

from repro.core.config import ServiceConfig
from repro.obs.metrics import metrics
from repro.runner.cache import ResultCache
from repro.service.store import JobStore


class ResultStore:
    """The service's view of the result cache, plus its eviction loop."""

    def __init__(self, cache: ResultCache, store: JobStore,
                 config: ServiceConfig):
        self.cache = cache
        self.store = store
        self.config = config
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def eviction_enabled(self) -> bool:
        """Whether any eviction rule is configured."""
        return (self.config.result_ttl_seconds is not None
                or self.config.result_max_bytes is not None)

    def get(self, key: str):
        """The stored result for a job key, or ``None`` (miss/evicted)."""
        return self.cache.get(key)

    def evict_once(self) -> dict:
        """One eviction pass; returns the prune report."""
        report = self.cache.prune(
            max_bytes=self.config.result_max_bytes,
            ttl_seconds=self.config.result_ttl_seconds,
            protected=self.store.live_keys(),
        )
        if report["removed"]:
            metrics().counter("service.results_evicted").inc(
                report["removed"])
            metrics().counter("service.result_bytes_evicted").inc(
                report["removed_bytes"])
        metrics().gauge("service.result_store_bytes").set(
            report["kept_bytes"])
        metrics().gauge("service.result_store_entries").set(report["kept"])
        return report

    def start(self) -> None:
        """Start the background eviction thread (no-op without rules)."""
        if not self.eviction_enabled or self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-service-eviction", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the eviction thread (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.config.eviction_interval_seconds):
            self.evict_once()
