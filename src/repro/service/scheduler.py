"""Scheduler: worker threads draining the durable queue, supervised.

Each worker thread loops ``claim -> run -> settle``: it atomically
claims the best queued job from the :class:`~repro.service.store`,
runs it through the *existing* sweep executor
(:func:`repro.runner.executor.run_sweep` on a single-job campaign --
inheriting its wall timeouts, bounded retries with backoff, chaos
hooks, process isolation, and the content-addressed result cache), and
commits the terminal state back to the store.  The service adds no
second execution engine: a job computed here is byte-for-byte the job
``repro sweep`` would have computed, which is what the bit-identical
acceptance test pins down.

Isolation: with ``ServiceConfig.isolate_jobs`` (the default) each job
runs in a worker *process* via the executor's pooled path, so a
segfaulting or wedged solve costs one job, not the service; ``False``
runs jobs on the scheduler thread (faster startup, used by tests).

Self-healing (``ServiceConfig.supervision``):

* **Leases + heartbeats.**  Every claim is time-bounded
  (``lease_seconds``); a heartbeat thread renews the lease while the
  sweep executes.  A **reaper** thread requeues jobs whose lease
  lapsed -- a worker hung inside a solve (the ``worker.hang`` chaos
  site) loses the job within one lease period, with the same
  exactly-once audit transitions as startup recovery.  Every claim
  carries a **fencing token**; heartbeats and settles present it, so
  if the hung worker eventually wakes its late settle is refused --
  even when the job is already ``running`` again under a *new* claim
  -- and the scheduler discards the stale result (counted as
  ``service.stale_settles``).  The stale worker's heartbeat loop
  likewise stops the moment a renewal reports the lease lost, so it
  can never keep a re-claimed job's lease alive.  Because heartbeats
  run on the scheduler thread (they outlive a wedged worker process),
  renewal is additionally bounded by the job's worst-case wall budget
  (attempts x wall timeout + backoff, when a wall timeout is
  derivable) and by ``max_lease_renewal_seconds`` -- past that
  horizon the lease is allowed to lapse and the reaper recovers the
  job.  Jobs with no wall timeout and no configured cap renew
  indefinitely; for those, the reaper covers dropped heartbeats and
  dead processes, not in-process wedges.
* **Poison-job quarantine.**  ``attempts`` counts store-level claims
  and survives crashes and reaps, so a job that keeps killing its
  worker converges to the terminal ``quarantined`` state once
  ``max_job_attempts`` is spent, instead of crash-looping the pool.
* **Deadlines + cooperative cancel.**  A job's end-to-end deadline
  clamps the wall timeout handed to the executor; queued jobs past
  their deadline fail fast with ``deadline_exceeded``.  A ``DELETE``
  on a running analysis raises the store's ``cancel_requested`` flag,
  which the executor polls between dispatches via ``cancel_check`` --
  the job settles ``cancelled`` within one poll interval.

Crash semantics: between ``claim`` and ``settle`` the job is
``running`` in the store.  If the process dies anywhere in that window
-- the chaos sites ``service.crash_claimed`` and
``service.crash_settling`` inject exactly that -- restart recovery
(:meth:`~repro.service.store.JobStore.recover`) requeues it, and the
re-run either recomputes (crash before the result was cached) or hits
the cache (crash after), so the job reaches a terminal state exactly
once with an unchanged answer.

Drain-on-stop reuses the executor's graceful-shutdown machinery: the
scheduler's stop event is passed to ``run_sweep`` as its ``stop_event``,
so a stop request lets the in-flight attempt finish, skips further
retries, and leaves anything unsettled for restart recovery.

Fleet position: this local pool is just *one consumer* of the store's
claim path.  It registers in the worker table under the ``local``
identity (capacity = ``num_workers``) and stamps its claims like any
remote ``repro worker`` agent; with
``ServiceConfig.local_workers=False`` (``serve --no-local-workers``)
no worker threads start at all and the service runs as a pure
coordinator -- submissions, supervision, and the reaper stay up, and
execution belongs entirely to remote agents claiming over HTTP.
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time

from repro.core.config import RunnerConfig, ServiceConfig
from repro.exceptions import ServiceError
from repro.obs.metrics import metrics
from repro.resilience.faults import maybe_fire
from repro.runner.cache import ResultCache
from repro.runner.executor import run_sweep
from repro.runner.jobs import Job
from repro.service.store import (
    InjectedServiceCrash,
    JobStore,
    service_crash,
)

logger = logging.getLogger(__name__)


class Scheduler:
    """Worker threads turning queued jobs into settled results."""

    def __init__(self, store: JobStore, cache: ResultCache | None,
                 config: ServiceConfig,
                 runner_config: RunnerConfig | None = None):
        self.store = store
        self.cache = cache
        self.config = config
        self.runner_config = runner_config or RunnerConfig(
            num_workers=2 if config.isolate_jobs else 1)
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._reaper: threading.Thread | None = None
        #: The local pool's identity in the store's worker table.
        self.worker_id = "local"

    @property
    def stop_event(self) -> threading.Event:
        """The drain signal (shared with in-flight ``run_sweep`` calls)."""
        return self._stop

    def start(self) -> None:
        """Recover orphaned jobs, then start the workers and reaper.

        With ``local_workers=False`` the pool is skipped entirely
        (coordinator mode): recovery, supervision, and the reaper still
        run -- remote agents depend on them -- but no local thread ever
        claims a job.
        """
        recovered = self.store.recover()
        if recovered:
            logger.warning(
                "recovered %d job(s) left running by a previous process",
                recovered)
            metrics().counter("service.jobs.recovered").inc(recovered)
        self._supervise_queue()
        self._stop.clear()
        if self.config.local_workers:
            self.store.register_worker(
                self.worker_id, kind="local", host=socket.gethostname(),
                pid=os.getpid(), capacity=self.config.num_workers)
            for index in range(self.config.num_workers):
                thread = threading.Thread(
                    target=self._worker_loop, args=(index,),
                    name=f"repro-service-worker-{index}", daemon=True)
                self._threads.append(thread)
                thread.start()
        self._reaper = threading.Thread(
            target=self._reaper_loop, name="repro-service-reaper",
            daemon=True)
        self._reaper.start()

    def stop(self, drain: bool = True) -> None:
        """Request a stop and join the workers.

        With ``drain`` (the default) in-flight jobs get
        ``drain_timeout_seconds`` to settle; without it the join is
        immediate.  Either way anything still ``running`` afterwards is
        requeued by the next start's recovery, never lost.
        """
        self._stop.set()
        timeout = self.config.drain_timeout_seconds if drain else 0.0
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = [t for t in self._threads if t.is_alive()]
        if self._threads:
            logger.warning(
                "%d worker(s) still busy after drain timeout; their jobs "
                "will be recovered on restart", len(self._threads))
        if self._reaper is not None:
            self._reaper.join(timeout=1.0)
            self._reaper = None
        if self.config.local_workers:
            self.store.deregister_worker(self.worker_id)

    def run_until_idle(self) -> int:
        """Drain the queue on the calling thread (tests, one-shot mode).

        Returns:
            How many jobs were settled.
        """
        settled = 0
        while not self._stop.is_set():
            if not self._run_one():
                break
            settled += 1
        return settled

    def reap_once(self) -> int:
        """One reaper pass: requeue expired leases, then re-supervise.

        Public so tests (and one-shot tools) can drive the reaper
        deterministically instead of waiting out the interval.  The
        ``reaper.tick`` chaos site skips the whole pass, delaying
        recovery by one interval.

        Returns:
            How many jobs the pass touched (requeued or cancelled).
        """
        if maybe_fire("reaper.tick"):
            logger.warning("reaper pass skipped by injected fault")
            return 0
        reaped = self.store.reap_expired()
        if reaped:
            requeued = sum(1 for job in reaped if job["requeued"])
            logger.warning(
                "reaped %d expired lease(s): %d requeued, %d cancelled",
                len(reaped), requeued, len(reaped) - requeued)
            metrics().counter("service.jobs.reaped").inc(len(reaped))
        self._supervise_queue()
        return len(reaped)

    def _reaper_loop(self) -> None:
        interval = self.config.supervision.resolved_reap_interval()
        while not self._stop.wait(interval):
            try:
                self.reap_once()
            except Exception:
                logger.exception("reaper pass failed; will retry")

    def supervise_queue(self) -> None:
        """Deadline + quarantine sweep over the queued set.

        Public because every consumer of the claim path runs it before
        claiming -- the local pool in :meth:`_run_one`, and the HTTP
        claim endpoint before handing work to a remote agent.
        """
        self._supervise_queue()

    def _supervise_queue(self) -> None:
        """Deadline + quarantine sweep over the queued set."""
        expired = self.store.expire_deadlines()
        if expired:
            logger.warning("failed %d queued job(s) past their deadline",
                           len(expired))
            metrics().counter(
                "service.jobs.deadline_exceeded").inc(len(expired))
        quarantined = self.store.quarantine_exhausted(
            self.config.supervision.max_job_attempts)
        if quarantined:
            for job in quarantined:
                logger.error(
                    "quarantined job %s after %d attempt(s)",
                    job["key"][:12], job["attempts"])
            metrics().counter(
                "service.jobs.quarantined").inc(len(quarantined))

    def _worker_loop(self, index: int) -> None:
        while not self._stop.is_set():
            try:
                ran = self._run_one()
            except InjectedServiceCrash:
                # In-process chaos: this worker thread "dies".  The
                # claimed job stays running in the store, exactly as
                # after a real crash, and restart recovery (or the
                # reaper, once its lease lapses) requeues it.
                logger.warning("worker %d killed by injected crash", index)
                return
            if not ran:
                self._stop.wait(self.config.poll_interval_seconds)

    def _run_one(self) -> bool:
        """Claim and settle one job; False when the queue is empty."""
        self._supervise_queue()
        supervision = self.config.supervision
        claimed = self.store.claim(lease_seconds=supervision.lease_seconds,
                                   worker_id=self.worker_id)
        if claimed is None:
            return False
        service_crash("service.crash_claimed", key=claimed["key"])
        analysis_id, key = claimed["analysis_id"], claimed["key"]
        token = claimed["claim_token"]
        job = Job(payload=claimed["payload"])
        metrics().gauge("service.queue_depth").set(self.store.depth())

        wall_timeout = None
        if claimed["deadline_at"] is not None:
            remaining = claimed["deadline_at"] - time.time()
            if remaining <= 0:
                # Claimed at the buzzer: fail fast rather than compute
                # an answer nobody is waiting for.
                self._settle_guarded(
                    analysis_id, key, "failed", status="deadline_exceeded",
                    error="deadline_exceeded: end-to-end deadline passed "
                          "before the job could start", token=token)
                metrics().counter("service.jobs.deadline_exceeded").inc()
                return True
            default_wall = self.runner_config.wall_timeout_for(
                job.params.get("time_limit"))
            wall_timeout = remaining if default_wall is None \
                else min(default_wall, remaining)

        heartbeat_stop = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(analysis_id, key, token, heartbeat_stop,
                  self._renewal_horizon(job, wall_timeout)),
            name="repro-service-heartbeat", daemon=True)
        heartbeat.start()

        def cancel_check() -> bool:
            return self.store.cancel_requested(analysis_id, key)

        try:
            outcome = run_sweep(
                [job],
                num_workers=2 if self.config.isolate_jobs else 1,
                cache=self.cache,
                config=self.runner_config,
                wall_timeout=wall_timeout,
                handle_signals=False,
                stop_event=self._stop,
                cancel_check=cancel_check,
                # Store-level claims carried over: attempt numbers (and
                # the chaos plan's `attempts` matching) stay continuous
                # across crashes, restarts, and lease reaps.
                attempt_base=claimed["attempts"] - 1,
            )
        except InjectedServiceCrash:
            raise
        except Exception as exc:
            # The executor settles task failures internally, so an
            # exception here is a harness bug or a poisoned payload;
            # fail the job rather than wedge it in 'running'.
            logger.exception("job %s failed outside the executor",
                             key[:12])
            self._settle_guarded(analysis_id, key, "failed", status="error",
                                 error=f"{type(exc).__name__}: {exc}",
                                 token=token)
            metrics().counter("service.jobs_failed").inc()
            return True
        finally:
            # A real process death takes the heartbeat thread with it;
            # the in-process InjectedServiceCrash must behave the same,
            # so the lease stops being renewed on every exit path.
            heartbeat_stop.set()
            heartbeat.join(timeout=1.0)
        if outcome.interrupted and not outcome.outcomes:
            # Drain request landed before the attempt even started:
            # hand the claim back so a graceful stop leaves nothing in
            # 'running'.
            self.store.release(analysis_id, key, token=token)
            return True
        settled = outcome.outcomes[0]
        service_crash("service.crash_settling", key=key)
        if settled.status == "cancelled":
            self._settle_guarded(analysis_id, key, "cancelled",
                                 status="cancelled", error=settled.error,
                                 token=token)
            metrics().counter("service.jobs_cancelled").inc()
        elif settled.ok:
            self._settle_guarded(analysis_id, key, "done",
                                 status=settled.status, token=token)
            metrics().counter("service.jobs_done").inc()
        else:
            self._settle_guarded(analysis_id, key, "failed",
                                 status=settled.status, error=settled.error,
                                 token=token)
            metrics().counter("service.jobs_failed").inc()
        return True

    def _renewal_horizon(self, job: Job,
                         wall_timeout: float | None) -> float | None:
        """Latest time this claim's heartbeat may renew the lease.

        The heartbeat thread lives on the scheduler, so it survives a
        solve wedged inside the worker process -- renewing forever
        would mean a wedged claim is never reaped.  When the job has a
        derivable wall budget (an explicit deadline clamp or a
        ``time_limit``-derived timeout), a healthy executor must have
        returned within the worst case of every attempt plus backoff;
        past that, the claim is presumed wedged and the lease is left
        to lapse.  ``max_lease_renewal_seconds`` caps the horizon
        regardless; with neither bound the horizon is ``None``
        (renew indefinitely -- documented reaper-coverage gap).
        """
        supervision = self.config.supervision
        wall = wall_timeout if wall_timeout is not None else \
            self.runner_config.wall_timeout_for(job.params.get("time_limit"))
        budget = supervision.max_lease_renewal_seconds
        if wall is not None:
            cfg = self.runner_config
            worst = ((cfg.retries + 1) * wall
                     + cfg.retries * cfg.backoff_max_seconds
                     + supervision.lease_seconds)
            budget = worst if budget is None else min(budget, worst)
        return None if budget is None else time.time() + budget

    def _heartbeat_loop(self, analysis_id: str, key: str, token: str,
                        stop: threading.Event,
                        renew_until: float | None) -> None:
        supervision = self.config.supervision
        interval = supervision.resolved_heartbeat_interval()
        while not stop.wait(interval):
            if renew_until is not None and time.time() >= renew_until:
                logger.warning(
                    "job %s exceeded its worst-case wall budget; "
                    "letting the lease lapse so the reaper recovers it",
                    key[:12])
                return
            try:
                outcome = self.store.heartbeat(
                    analysis_id, key, supervision.lease_seconds, token)
            except Exception:
                logger.exception("heartbeat for job %s failed", key[:12])
                continue
            if outcome == "lost":
                # This claim no longer owns the job (reaped, settled,
                # or re-claimed by another worker).  Stop beating: the
                # fencing token already guarantees these renewals can
                # never touch the new claim's lease, and continuing
                # would only log noise until the sweep returns.
                logger.warning(
                    "lease for job %s lost (reaped or settled); "
                    "stopping heartbeats", key[:12])
                return
            if outcome == "dropped":
                # Chaos swallowed the beat; the lease keeps aging but
                # the claim is still ours -- retry at the next tick.
                logger.debug("heartbeat for job %s dropped", key[:12])

    def _settle_guarded(self, analysis_id: str, key: str, state: str,
                        status: str | None = None,
                        error: str | None = None,
                        token: str | None = None) -> None:
        """Settle with this claim's fencing token, discarding the
        stale-worker race.

        A job reaped (or recovered) out from under a still-running
        worker is requeued -- when that worker finally produces a
        result, the store refuses the fenced settle, *even if the job
        has since been re-claimed and is running again* (the token no
        longer matches).  That is the *correct* outcome: the re-run
        hits the content-addressed cache and settles bit-identically,
        so the stale result is redundant, not lost.
        """
        try:
            self.store.settle(analysis_id, key, state, status=status,
                              error=error, token=token)
        except ServiceError:
            logger.warning(
                "job %s was requeued while this worker ran it; "
                "discarding the stale settle", key[:12])
            metrics().counter("service.stale_settles").inc()
