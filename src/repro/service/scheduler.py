"""Scheduler: worker threads draining the durable queue.

Each worker thread loops ``claim -> run -> settle``: it atomically
claims the best queued job from the :class:`~repro.service.store`,
runs it through the *existing* sweep executor
(:func:`repro.runner.executor.run_sweep` on a single-job campaign --
inheriting its wall timeouts, bounded retries with backoff, chaos
hooks, process isolation, and the content-addressed result cache), and
commits the terminal state back to the store.  The service adds no
second execution engine: a job computed here is byte-for-byte the job
``repro sweep`` would have computed, which is what the bit-identical
acceptance test pins down.

Isolation: with ``ServiceConfig.isolate_jobs`` (the default) each job
runs in a worker *process* via the executor's pooled path, so a
segfaulting or wedged solve costs one job, not the service; ``False``
runs jobs on the scheduler thread (faster startup, used by tests).

Crash semantics: between ``claim`` and ``settle`` the job is
``running`` in the store.  If the process dies anywhere in that window
-- the chaos sites ``service.crash_claimed`` and
``service.crash_settling`` inject exactly that -- restart recovery
(:meth:`~repro.service.store.JobStore.recover`) requeues it, and the
re-run either recomputes (crash before the result was cached) or hits
the cache (crash after), so the job reaches a terminal state exactly
once with an unchanged answer.

Drain-on-stop reuses the executor's graceful-shutdown machinery: the
scheduler's stop event is passed to ``run_sweep`` as its ``stop_event``,
so a stop request lets the in-flight attempt finish, skips further
retries, and leaves anything unsettled for restart recovery.
"""

from __future__ import annotations

import logging
import threading

from repro.core.config import RunnerConfig, ServiceConfig
from repro.obs.metrics import metrics
from repro.runner.cache import ResultCache
from repro.runner.executor import run_sweep
from repro.runner.jobs import Job
from repro.service.store import (
    InjectedServiceCrash,
    JobStore,
    service_crash,
)

logger = logging.getLogger(__name__)


class Scheduler:
    """Worker threads turning queued jobs into settled results."""

    def __init__(self, store: JobStore, cache: ResultCache | None,
                 config: ServiceConfig,
                 runner_config: RunnerConfig | None = None):
        self.store = store
        self.cache = cache
        self.config = config
        self.runner_config = runner_config or RunnerConfig(
            num_workers=2 if config.isolate_jobs else 1)
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []

    @property
    def stop_event(self) -> threading.Event:
        """The drain signal (shared with in-flight ``run_sweep`` calls)."""
        return self._stop

    def start(self) -> None:
        """Recover orphaned jobs, then start the worker pool."""
        recovered = self.store.recover()
        if recovered:
            logger.warning(
                "recovered %d job(s) left running by a previous process",
                recovered)
            metrics().counter("service.jobs_recovered").inc(recovered)
        self._stop.clear()
        for index in range(self.config.num_workers):
            thread = threading.Thread(
                target=self._worker_loop, args=(index,),
                name=f"repro-service-worker-{index}", daemon=True)
            self._threads.append(thread)
            thread.start()

    def stop(self, drain: bool = True) -> None:
        """Request a stop and join the workers.

        With ``drain`` (the default) in-flight jobs get
        ``drain_timeout_seconds`` to settle; without it the join is
        immediate.  Either way anything still ``running`` afterwards is
        requeued by the next start's recovery, never lost.
        """
        self._stop.set()
        timeout = self.config.drain_timeout_seconds if drain else 0.0
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = [t for t in self._threads if t.is_alive()]
        if self._threads:
            logger.warning(
                "%d worker(s) still busy after drain timeout; their jobs "
                "will be recovered on restart", len(self._threads))

    def run_until_idle(self) -> int:
        """Drain the queue on the calling thread (tests, one-shot mode).

        Returns:
            How many jobs were settled.
        """
        settled = 0
        while not self._stop.is_set():
            if not self._run_one():
                break
            settled += 1
        return settled

    def _worker_loop(self, index: int) -> None:
        while not self._stop.is_set():
            try:
                ran = self._run_one()
            except InjectedServiceCrash:
                # In-process chaos: this worker thread "dies".  The
                # claimed job stays running in the store, exactly as
                # after a real crash, and restart recovery requeues it.
                logger.warning("worker %d killed by injected crash", index)
                return
            if not ran:
                self._stop.wait(self.config.poll_interval_seconds)

    def _run_one(self) -> bool:
        """Claim and settle one job; False when the queue is empty."""
        claimed = self.store.claim()
        if claimed is None:
            return False
        service_crash("service.crash_claimed", key=claimed["key"])
        job = Job(payload=claimed["payload"])
        metrics().gauge("service.queue_depth").set(self.store.depth())
        try:
            outcome = run_sweep(
                [job],
                num_workers=2 if self.config.isolate_jobs else 1,
                cache=self.cache,
                config=self.runner_config,
                handle_signals=False,
                stop_event=self._stop,
            )
        except InjectedServiceCrash:
            raise
        except Exception as exc:
            # The executor settles task failures internally, so an
            # exception here is a harness bug or a poisoned payload;
            # fail the job rather than wedge it in 'running'.
            logger.exception("job %s failed outside the executor",
                             claimed["key"][:12])
            self.store.settle(claimed["analysis_id"], claimed["key"],
                              "failed", status="error",
                              error=f"{type(exc).__name__}: {exc}")
            metrics().counter("service.jobs_failed").inc()
            return True
        if outcome.interrupted and not outcome.outcomes:
            # Drain request landed before the attempt even started:
            # hand the claim back so a graceful stop leaves nothing in
            # 'running'.
            self.store.release(claimed["analysis_id"], claimed["key"])
            return True
        settled = outcome.outcomes[0]
        service_crash("service.crash_settling", key=claimed["key"])
        if settled.ok:
            self.store.settle(claimed["analysis_id"], claimed["key"],
                              "done", status=settled.status)
            metrics().counter("service.jobs_done").inc()
        else:
            self.store.settle(claimed["analysis_id"], claimed["key"],
                              "failed", status=settled.status,
                              error=settled.error)
            metrics().counter("service.jobs_failed").inc()
        return True
