"""A small stdlib client for the analysis service.

Wraps ``urllib`` so CLI subcommands, tests, and the CI smoke script all
talk to the service the same way -- including the unhappy paths: 429
sheds surface as :class:`~repro.exceptions.AdmissionError` carrying the
server's ``Retry-After``, other HTTP errors as
:class:`~repro.exceptions.ServiceError` with the server's JSON error
message and status attached.

Transient transport failures -- connection refused during a service
restart, a reset mid-poll -- are retried with bounded, deterministic
jittered backoff, but only where a replay is safe: idempotent GETs
(status/result/health polling) always, and ``submit`` explicitly,
because submissions are deduped by spec content hash (``spec_hash``)
so replaying one is a no-op on the second delivery.  Other POSTs and
DELETEs fail fast by default -- a replayed cancel or retry could act
on state the first delivery already changed.  HTTP *error responses*
are never retried here; they are answers, not failures.
"""

from __future__ import annotations

import hashlib
import json
import time
import urllib.error
import urllib.request

from repro.exceptions import AdmissionError, ServiceError


class ServiceClient:
    """Talks to one analysis service at ``base_url``.

    Args:
        base_url: ``http://host:port`` of the service.
        client_id: Sent as ``X-Client`` (admission bookkeeping).
        timeout: Per-request timeout in seconds.
        retries: Transient-failure retry budget for requests whose
            replay is safe (idempotent GETs; ``submit`` via spec-hash
            dedup).  ``0`` disables retrying entirely.
        retry_backoff_seconds: Base backoff before the first retry;
            doubles per attempt with deterministic per-path jitter.
        retry_backoff_max_seconds: Backoff ceiling.
    """

    def __init__(self, base_url: str, client_id: str = "anonymous",
                 timeout: float = 30.0, retries: int = 2,
                 retry_backoff_seconds: float = 0.25,
                 retry_backoff_max_seconds: float = 5.0):
        self.base_url = base_url.rstrip("/")
        self.client_id = client_id
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.retry_backoff_seconds = retry_backoff_seconds
        self.retry_backoff_max_seconds = retry_backoff_max_seconds

    def _backoff(self, attempt: int, key: str) -> float:
        """Deterministic jittered backoff before retry ``attempt``."""
        raw = self.retry_backoff_seconds * 2 ** (attempt - 1)
        digest = hashlib.sha256(f"{key}\0{attempt}".encode()).digest()
        raw *= 1.0 + 0.5 * (int.from_bytes(digest[:8], "big")
                            / float(1 << 64))
        return min(raw, self.retry_backoff_max_seconds)

    def _request(self, method: str, path: str,
                 body: dict | None = None,
                 idempotent: bool | None = None
                 ) -> tuple[int, dict, dict]:
        """One HTTP exchange, with transient retries when safe.

        ``idempotent=None`` derives the default: GETs are, everything
        else is not.  Callers whose replay is safe by construction
        (``submit``: spec-hash dedup; the fleet protocol: fenced
        claims) pass ``idempotent=True`` explicitly.
        """
        if idempotent is None:
            idempotent = method == "GET"
        budget = self.retries if idempotent else 0
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._request_once(method, path, body)
            except ServiceError as exc:
                transient = exc.status is None
                if not transient or attempt > budget:
                    raise
            time.sleep(self._backoff(attempt, key=f"{method} {path}"))

    def _request_once(self, method: str, path: str,
                      body: dict | None = None) -> tuple[int, dict, dict]:
        data = None
        headers = {"X-Client": self.client_id}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers,
            method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return (response.status,
                        json.loads(response.read() or b"{}"),
                        dict(response.headers))
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                doc = json.loads(raw or b"{}")
            except ValueError:
                doc = {"error": raw.decode("utf-8", "replace")}
            return exc.code, doc, dict(exc.headers or {})
        except urllib.error.URLError as exc:
            # No `status`: transport-level, the marker _request keys
            # retry decisions on.
            raise ServiceError(
                f"cannot reach service at {self.base_url}: "
                f"{exc.reason}") from exc

    def _raise_for(self, status: int, doc: dict, headers: dict) -> None:
        if status == 429:
            retry = doc.get("retry_after_seconds")
            if retry is None:
                try:
                    retry = float(headers.get("Retry-After", "") or 0) or None
                except ValueError:
                    retry = None
            raise AdmissionError(doc.get("error", "load shed"),
                                 retry_after=retry)
        if status >= 400:
            raise ServiceError(doc.get("error", f"HTTP {status}"),
                               status=status)

    def submit(self, spec_doc: dict, priority: int = 0,
               deadline_seconds: float | None = None) -> dict:
        """Submit a sweep spec; returns the accepted/deduped summary.

        Args:
            spec_doc: The ``sweep_spec`` document (embedded instances).
            priority: Larger numbers are claimed first.
            deadline_seconds: Optional end-to-end budget; jobs still
                queued past it fail fast with ``deadline_exceeded``,
                and running jobs get their wall timeout clamped to the
                remainder.
        """
        body = dict(spec_doc)
        if priority:
            body["priority"] = priority
        if deadline_seconds is not None:
            body["deadline_seconds"] = deadline_seconds
        # Replay-safe: a resubmission dedupes on the spec's content
        # hash, so retrying a submit whose response was lost returns
        # the already-accepted analysis.
        status, doc, headers = self._request("POST", "/v1/analyses", body,
                                             idempotent=True)
        self._raise_for(status, doc, headers)
        return doc

    def status(self, analysis_id: str) -> dict:
        status, doc, headers = self._request(
            "GET", f"/v1/analyses/{analysis_id}")
        self._raise_for(status, doc, headers)
        return doc

    def result(self, analysis_id: str) -> dict | None:
        """The results document, or ``None`` while still in progress."""
        status, doc, headers = self._request(
            "GET", f"/v1/analyses/{analysis_id}/result")
        if status == 202:
            return None
        if status == 410:
            # Gone: every computed result was evicted.  The tombstone
            # document still describes the analysis.
            return doc
        self._raise_for(status, doc, headers)
        return doc

    def wait(self, analysis_id: str, timeout: float = 300.0,
             poll_interval: float = 0.25) -> dict:
        """Poll until the analysis finishes; returns its results doc."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.result(analysis_id)
            if doc is not None:
                return doc
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"analysis {analysis_id} did not finish within "
                    f"{timeout:g}s")
            time.sleep(poll_interval)

    def cancel(self, analysis_id: str) -> dict:
        """Cancel an analysis (queued jobs now, running cooperatively).

        Raises:
            ServiceError: With ``status`` 404 for an unknown analysis,
                409 when every job is already terminal.
        """
        status, doc, headers = self._request(
            "DELETE", f"/v1/analyses/{analysis_id}")
        self._raise_for(status, doc, headers)
        return doc

    def quarantine(self, analysis_id: str | None = None) -> dict:
        """Quarantined jobs -- all of them, or one analysis's."""
        path = "/v1/quarantine" if analysis_id is None \
            else f"/v1/analyses/{analysis_id}/quarantine"
        status, doc, headers = self._request("GET", path)
        self._raise_for(status, doc, headers)
        return doc

    def retry(self, analysis_id: str) -> dict:
        """Requeue an analysis's quarantined jobs (fresh attempts)."""
        status, doc, headers = self._request(
            "POST", f"/v1/analyses/{analysis_id}/retry")
        self._raise_for(status, doc, headers)
        return doc

    def health(self) -> dict:
        status, doc, headers = self._request("GET", "/healthz")
        self._raise_for(status, doc, headers)
        return doc

    def metrics(self) -> dict:
        status, doc, headers = self._request("GET", "/metricz")
        self._raise_for(status, doc, headers)
        return doc
