"""Admission control and backpressure for the analysis service.

Analysis capacity is a shared resource: a MILP campaign can hold worker
threads for minutes, so accepting every submission would just move the
failure from "rejected at the door" (cheap, explicit, retryable) to
"accepted and starved" (invisible until a client times out).  The
controller therefore sheds load *at submission time*:

* **Global queue depth** -- a submission whose jobs would push the
  number of live (queued + running) jobs past ``max_queue_depth`` is
  shed with HTTP 429.
* **Per-client in-flight cap** -- one client cannot occupy more than
  ``max_inflight_per_client`` live jobs, so a single batch submitter
  cannot starve interactive users.

A submission that can *never* be admitted -- more jobs in one batch
than the queue can hold even when empty -- is a **permanent**
rejection: HTTP 400 with no ``Retry-After``, so clients split the
batch instead of retrying forever.

The distributed fleet adds a third pressure point on the *claim* side:
an over-scaled worker fleet polling ``POST /v1/claims`` can stampede
the store (every claim is a synchronous, fsync'd SQLite write).
``admit_claim`` therefore runs a token bucket refilled at
``DistribConfig.max_claims_per_second`` (burst of one second's worth);
claims beyond it are shed with HTTP 429 + ``Retry-After`` sized to the
bucket's refill time.  Unset (the default) admits every claim.

Retryable shed responses carry a ``Retry-After`` hint: the configured
floor, scaled up by how long the blocking backlog takes to clear when
the store has service-time history (a saturated queue of ten-minute
solves should not invite retries every five seconds).  Global sheds
divide the backlog across the whole worker pool; per-client sheds
divide the *client's* backlog by that client's effective share of the
workers (the pool split across the clients currently holding work).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.core.config import ServiceConfig
from repro.obs.metrics import metrics
from repro.service.store import JobStore


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission check.

    Attributes:
        admitted: Whether the submission may enter the queue.
        reason: Human-readable shed reason (``None`` when admitted).
        retry_after: Suggested client back-off in seconds (the HTTP
            ``Retry-After`` header); ``None`` when admitted or when the
            rejection is permanent.
        permanent: The submission can never be admitted as shaped
            (e.g. more jobs than the queue can hold even when empty);
            retrying is pointless, the API maps this to HTTP 400.
    """

    admitted: bool
    reason: str | None = None
    retry_after: float | None = None
    permanent: bool = False


class AdmissionController:
    """Decides, per submission, whether the service takes the work."""

    def __init__(self, store: JobStore, config: ServiceConfig):
        self.store = store
        self.config = config
        rate = config.distrib.max_claims_per_second
        self._claim_lock = threading.Lock()
        self._claim_burst = max(1.0, rate) if rate is not None else 0.0
        self._claim_tokens = self._claim_burst  # start full: no cold shed
        self._claim_refilled_at = time.monotonic()

    def admit(self, client: str, num_jobs: int) -> AdmissionDecision:
        """Check one submission of ``num_jobs`` jobs from ``client``.

        Deduped resubmissions never reach this check (they add no jobs);
        callers consult the store first.
        """
        if num_jobs > self.config.max_queue_depth:
            # Even an empty queue could not hold this batch: retrying
            # can never succeed, so reject permanently (HTTP 400, no
            # Retry-After) instead of inviting an infinite retry loop.
            metrics().counter("service.shed_permanent").inc()
            return AdmissionDecision(
                admitted=False,
                reason=(
                    f"submission of {num_jobs} jobs exceeds the queue "
                    f"depth cap {self.config.max_queue_depth} outright "
                    f"and can never be admitted; split the batch"
                ),
                permanent=True,
            )
        depth = self.store.depth()
        if depth + num_jobs > self.config.max_queue_depth:
            metrics().counter("service.shed_queue_depth").inc()
            return AdmissionDecision(
                admitted=False,
                reason=(
                    f"queue is saturated: {depth} live jobs + {num_jobs} "
                    f"submitted would exceed the depth cap "
                    f"{self.config.max_queue_depth}"
                ),
                retry_after=self.retry_after(depth),
            )
        inflight = self.store.inflight_for(client)
        if inflight + num_jobs > self.config.max_inflight_per_client:
            metrics().counter("service.shed_client_cap").inc()
            return AdmissionDecision(
                admitted=False,
                reason=(
                    f"client {client!r} has {inflight} jobs in flight; "
                    f"{num_jobs} more would exceed the per-client cap "
                    f"{self.config.max_inflight_per_client}"
                ),
                retry_after=self.retry_after_for_client(inflight),
            )
        return AdmissionDecision(admitted=True)

    def admit_claim(self, worker_id: str) -> AdmissionDecision:
        """Check one ``POST /v1/claims`` against the claim-rate bucket.

        Sheds (HTTP 429) when the fleet's aggregate claim rate exceeds
        ``DistribConfig.max_claims_per_second``; the ``Retry-After``
        hint is the time until one token refills, so a shed worker
        backs off exactly long enough instead of thundering back.
        """
        rate = self.config.distrib.max_claims_per_second
        if rate is None:
            return AdmissionDecision(admitted=True)
        with self._claim_lock:
            now = time.monotonic()
            self._claim_tokens = min(
                self._claim_burst,
                self._claim_tokens
                + (now - self._claim_refilled_at) * rate)
            self._claim_refilled_at = now
            if self._claim_tokens >= 1.0:
                self._claim_tokens -= 1.0
                return AdmissionDecision(admitted=True)
            wait = (1.0 - self._claim_tokens) / rate
        metrics().counter("service.shed_claims").inc()
        return AdmissionDecision(
            admitted=False,
            reason=(
                f"claim rate exceeds {rate}/s (worker {worker_id!r}); "
                f"the fleet is polling faster than the store should "
                f"absorb"
            ),
            retry_after=max(wait, 0.05),
        )

    def retry_after(self, backlog: int) -> float:
        """The ``Retry-After`` hint for a shed with ``backlog`` jobs.

        With service-time history, estimates how long the backlog takes
        to clear across the worker pool; always at least the configured
        floor, and capped at an hour so a misbehaving estimate cannot
        tell clients to go away for a week.
        """
        floor = self.config.retry_after_seconds
        per_job = self.store.recent_job_seconds()
        if per_job is None:
            return floor
        estimate = backlog * per_job / max(1, self.config.num_workers)
        return min(max(floor, estimate), 3600.0)

    def retry_after_for_client(self, backlog: int) -> float:
        """``Retry-After`` for a per-client shed with ``backlog`` jobs.

        The client's backlog does not drain across the whole pool -- it
        drains at that client's effective share of the workers (the pool
        split across every client currently holding live work).  Scaling
        by the whole pool underestimates the wait whenever other clients
        have jobs queued, inviting doomed early retries.  Same floor and
        one-hour cap as the global hint.
        """
        floor = self.config.retry_after_seconds
        per_job = self.store.recent_job_seconds()
        if per_job is None:
            return floor
        active = max(1, self.store.active_clients())
        share = self.config.num_workers / active
        estimate = backlog * per_job / max(share, 1e-9)
        return min(max(floor, estimate), 3600.0)
