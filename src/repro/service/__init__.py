"""repro.service: persistent queue-backed analysis service.

A serving layer over the batch runner: a durable SQLite job queue
(:mod:`~repro.service.store`), a claim/run/settle scheduler pool
(:mod:`~repro.service.scheduler`) that drains jobs through the existing
sweep executor, admission control with load shedding
(:mod:`~repro.service.admission`), a TTL/size-capped result store
(:mod:`~repro.service.results`), and a zero-dependency HTTP API
(:mod:`~repro.service.api`) with a matching client
(:mod:`~repro.service.client`).

The scheduler is self-healing (``ServiceConfig.supervision``): claims
are time-bounded leases renewed by worker heartbeats, a reaper requeues
jobs whose lease lapsed (hung worker), jobs that exhaust their claim
budget are quarantined instead of crash-looping the pool, submissions
can carry an end-to-end ``deadline_seconds``, and a ``DELETE`` on a
running analysis cancels it cooperatively mid-flight.

Start one with ``python -m repro serve --workdir runs/service``; talk to
it with ``python -m repro client
submit|status|result|cancel|quarantine|retry`` or any HTTP client.
"""

from repro.service.admission import AdmissionController, AdmissionDecision
from repro.service.api import AnalysisService, make_server, serve_forever
from repro.service.client import ServiceClient
from repro.service.results import ResultStore
from repro.service.scheduler import Scheduler
from repro.service.store import InjectedServiceCrash, JobStore

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AnalysisService",
    "InjectedServiceCrash",
    "JobStore",
    "ResultStore",
    "Scheduler",
    "ServiceClient",
    "make_server",
    "serve_forever",
]
