"""The analysis service: REST API over the queue, scheduler, and store.

A zero-dependency serving layer (stdlib ``http.server``) that turns the
batch sweep runner into a queryable system:

====== ================================= ===============================
verb   path                              semantics
====== ================================= ===============================
POST   ``/v1/analyses``                  submit a sweep spec; 201
                                         accepted, 200 deduped, 429
                                         shed (+ ``Retry-After``), 400
                                         invalid
GET    ``/v1/analyses/<id>``             state + per-state job counts
GET    ``/v1/analyses/<id>/result``      the results document; 202
                                         while unfinished, 410 for
                                         evicted rows
DELETE ``/v1/analyses/<id>``             cancel: queued jobs now,
                                         running jobs cooperatively;
                                         404 unknown, 409 all-terminal
GET    ``/v1/quarantine``                quarantined jobs, all analyses
GET    ``/v1/analyses/<id>/quarantine``  quarantined jobs of one
                                         analysis
POST   ``/v1/analyses/<id>/retry``       requeue quarantined jobs with
                                         a fresh attempt budget
POST   ``/v1/claims``                    claim the best queued job with
                                         a lease + fencing token (the
                                         remote worker protocol); 200
                                         with ``claim: null`` when the
                                         queue is empty, 429 when claim
                                         rate is shed
GET    ``/v1/claims``                    active claims: who runs what,
                                         whose lease expires when
POST   ``/v1/claims/<aid>/<key>/heartbeat``  renew the claim's lease
                                         (fenced on the token); 409
                                         once the claim is lost
POST   ``/v1/claims/<aid>/<key>/settle``  commit the claim's terminal
                                         state, result, and trace
                                         spans (fenced); 409 stale
POST   ``/v1/claims/<aid>/<key>/release``  hand an unstarted claim back
                                         to the queue (fenced)
POST   ``/v1/workers``                   register a worker identity
GET    ``/v1/workers``                   the fleet + per-worker
                                         in-flight counts
DELETE ``/v1/workers/<id>``              deregister (worker drain)
GET    ``/healthz``                      liveness + queue counts +
                                         fleet size
GET    ``/metricz``                      the ``repro.obs`` registry
====== ================================= ===============================

Submissions are the same ``sweep_spec`` JSON documents ``repro sweep``
takes, with two serving-layer extensions (``priority``, an integer, and
``deadline_seconds``, an end-to-end budget after which queued jobs fail
fast and running jobs have their wall timeout clamped) and one
restriction: instance documents must be *embedded*, not file references
-- the server never reads paths off its own filesystem on a client's
behalf.

Request handling is deliberately boring: every request runs on its own
thread (``ThreadingHTTPServer``), admission control happens before any
row is written, and each request is recorded as an ``http_request``
span on the ambient tracer plus ``service.http_*`` counters, so
``/metricz`` and a ``serve --trace`` file tell the same story.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.core.config import RunnerConfig, ServiceConfig
from repro.exceptions import ModelingError, ServiceError
from repro.obs.metrics import metrics
from repro.obs.trace import current_tracer
from repro.runner.cache import ResultCache
from repro.runner.jobs import _FILE_KEYS, SweepSpec
from repro.service.admission import AdmissionController
from repro.service.results import ResultStore
from repro.service.scheduler import Scheduler
from repro.service.store import JobStore

logger = logging.getLogger(__name__)

#: Default cap on accepted request bodies (a spec with embedded
#: documents for a continental-scale topology fits comfortably; a
#: runaway upload does not get to exhaust server memory).  The
#: effective limit is ``ServiceConfig.max_body_bytes`` (``serve
#: --max-body-bytes``); this constant is its default.
MAX_BODY_BYTES = 64 * 1024 * 1024


def expand_submission(doc: dict) -> tuple[str, str, int, float | None, list]:
    """Validate a submitted document and expand it to queue rows.

    Returns:
        ``(analysis_id, name, priority, deadline_seconds, jobs)`` with
        ``jobs`` a list of ``(key, label, payload)`` triples in sweep
        order and ``deadline_seconds`` the client's optional end-to-end
        budget (``None`` when absent).

    Raises:
        ServiceError: The document is not a valid self-contained sweep
            spec (message says why; maps to HTTP 400).
    """
    if not isinstance(doc, dict):
        raise ServiceError("the request body must be a JSON object",
                           status=400)
    doc = dict(doc)
    priority = doc.pop("priority", 0)
    if not isinstance(priority, int):
        raise ServiceError("priority must be an integer", status=400)
    deadline_seconds = doc.pop("deadline_seconds", None)
    if deadline_seconds is not None:
        if not isinstance(deadline_seconds, (int, float)) \
                or isinstance(deadline_seconds, bool) \
                or deadline_seconds <= 0:
            raise ServiceError(
                "deadline_seconds must be a positive number", status=400)
        deadline_seconds = float(deadline_seconds)
    instance = doc.get("instance")
    if isinstance(instance, dict):
        refs = [key for key in _FILE_KEYS
                if isinstance(instance.get(key), str)]
        if refs:
            raise ServiceError(
                f"instance documents must be embedded, not file "
                f"references (found path strings for: {', '.join(refs)}); "
                f"the server does not read files on a client's behalf",
                status=400,
            )
    try:
        spec = SweepSpec.from_dict(doc)
        jobs = spec.expand()
    except ModelingError as exc:
        raise ServiceError(f"invalid sweep spec: {exc}", status=400) \
            from exc
    return (
        spec.spec_hash,
        spec.name,
        priority,
        deadline_seconds,
        [(job.key, job.label, job.payload) for job in jobs],
    )


class AnalysisService:
    """Everything behind the HTTP surface, wired together.

    Owns the durable store, the scheduler pool, the admission
    controller, and the result store with its eviction loop.  The HTTP
    handler calls into this object only -- it holds no state of its own
    -- so tests can drive the service directly, without sockets.
    """

    def __init__(self, workdir: str, config: ServiceConfig | None = None,
                 runner_config: RunnerConfig | None = None):
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.config = config or ServiceConfig()
        self.store = JobStore(self.workdir / "service.db")
        self.cache = ResultCache(self.workdir / "cache")
        self.scheduler = Scheduler(self.store, self.cache, self.config,
                                   runner_config=runner_config)
        self.admission = AdmissionController(self.store, self.config)
        self.results = ResultStore(self.cache, self.store, self.config)
        self.started_at = time.time()

    def start(self) -> None:
        """Recover, then start the worker pool and the eviction loop."""
        self.scheduler.start()
        self.results.start()

    def stop(self, drain: bool = True) -> None:
        """Stop workers (draining by default) and the eviction loop."""
        self.scheduler.stop(drain=drain)
        self.results.stop()
        self.store.close()

    # -- operations the HTTP handler maps onto -------------------------

    def submit(self, doc: dict, client: str) -> tuple[int, dict, dict]:
        """Handle one submission; returns (status, body, headers)."""
        analysis_id, name, priority, deadline_seconds, jobs = \
            expand_submission(doc)
        existing = self.store.analysis_status(analysis_id)
        if existing is not None:
            metrics().counter("service.deduped").inc()
            return 200, {
                "id": analysis_id, "deduped": True,
                "total_jobs": existing["total_jobs"],
                "state": existing["state"],
                "location": f"/v1/analyses/{analysis_id}",
            }, {}
        decision = self.admission.admit(client, len(jobs))
        if not decision.admitted:
            metrics().counter("service.shed").inc()
            if decision.permanent:
                # Never admittable as shaped: 400, and deliberately no
                # Retry-After -- retrying the same batch cannot succeed.
                return 400, {"error": decision.reason}, {}
            return 429, {
                "error": decision.reason,
                "retry_after_seconds": decision.retry_after,
            }, {"Retry-After": str(max(1, round(decision.retry_after)))}
        accepted = self.store.submit(analysis_id, name, client, jobs,
                                     priority=priority,
                                     deadline_seconds=deadline_seconds)
        metrics().counter("service.submitted").inc()
        metrics().counter("service.jobs_accepted").inc(len(jobs))
        metrics().gauge("service.queue_depth").set(self.store.depth())
        return 201, {
            "id": accepted["id"], "deduped": accepted["deduped"],
            "total_jobs": accepted["total_jobs"],
            "state": "queued",
            "location": f"/v1/analyses/{analysis_id}",
        }, {}

    def status(self, analysis_id: str) -> tuple[int, dict, dict]:
        doc = self.store.analysis_status(analysis_id)
        if doc is None:
            return 404, {"error": f"unknown analysis {analysis_id!r}"}, {}
        return 200, doc, {}

    def result(self, analysis_id: str) -> tuple[int, dict, dict]:
        """The assembled results document of a finished analysis.

        Shaped like ``repro sweep``'s ``results.json`` jobs array, so a
        client can diff the two directly (the bit-identical acceptance
        check does exactly that).
        """
        status = self.store.analysis_status(analysis_id)
        if status is None:
            return 404, {"error": f"unknown analysis {analysis_id!r}"}, {}
        if not status["finished"]:
            retry = self.admission.retry_after(
                status["counts"]["queued"] + status["counts"]["running"])
            return 202, {
                "id": analysis_id, "state": status["state"],
                "counts": status["counts"],
                "retry_after_seconds": retry,
            }, {"Retry-After": str(max(1, round(retry)))}
        jobs = []
        evicted = 0
        for row in self.store.analysis_jobs(analysis_id):
            result = self.results.get(row["key"]) \
                if row["state"] == "done" else None
            if row["state"] == "done" and result is None:
                evicted += 1
            jobs.append({
                "key": row["key"],
                "label": row["label"],
                "params": row["payload"].get("params", {}),
                "state": row["state"],
                "status": row["status"],
                "attempts": row["attempts"],
                "result": result,
                "error": row["error"],
                "evicted": bool(row["state"] == "done" and result is None),
            })
        body = {
            "kind": "service_results",
            "id": analysis_id,
            "name": status["name"],
            "state": status["state"],
            "counts": status["counts"],
            "evicted": evicted,
            "jobs": jobs,
        }
        # Every computed result gone from the store: the document is a
        # tombstone, which HTTP spells 410 Gone.
        done = status["counts"]["done"]
        if done and evicted == done:
            return 410, body, {}
        return 200, body, {}

    def cancel(self, analysis_id: str) -> tuple[int, dict, dict]:
        """Cancel: queued jobs now, running jobs cooperatively.

        404 for an unknown analysis, 409 when every job is already
        terminal (nothing to cancel -- distinguishable from "no such
        analysis" so clients can tell a typo from a no-op).
        """
        outcome = self.store.cancel_analysis(analysis_id)
        if outcome is None:
            return 404, {"error": f"unknown analysis {analysis_id!r}"}, {}
        if outcome["already_terminal"]:
            return 409, {
                "error": f"analysis {analysis_id!r} has no live jobs; "
                         "every job is already in a terminal state",
                "id": analysis_id,
            }, {}
        metrics().counter("service.jobs_cancelled").inc(
            outcome["cancelled"])
        metrics().gauge("service.queue_depth").set(self.store.depth())
        return 200, {
            "id": analysis_id,
            "cancelled": outcome["cancelled"],
            "cancelling": outcome["cancelling"],
            "note": ("queued jobs are cancelled immediately; running "
                     "jobs are cancelled cooperatively at the "
                     "executor's next poll"),
        }, {}

    def quarantine(self, analysis_id: str | None = None
                   ) -> tuple[int, dict, dict]:
        """List quarantined jobs (optionally scoped to one analysis)."""
        jobs = self.store.quarantined_jobs(analysis_id)
        return 200, {"jobs": jobs, "total": len(jobs)}, {}

    def retry(self, analysis_id: str) -> tuple[int, dict, dict]:
        """Requeue an analysis's quarantined jobs with a fresh budget."""
        status = self.store.analysis_status(analysis_id)
        if status is None:
            return 404, {"error": f"unknown analysis {analysis_id!r}"}, {}
        retried = self.store.retry_quarantined(analysis_id)
        if retried:
            metrics().counter("service.jobs.retried").inc(retried)
            metrics().gauge("service.queue_depth").set(self.store.depth())
        return 200, {
            "id": analysis_id,
            "retried": retried,
            "location": f"/v1/analyses/{analysis_id}",
        }, {}

    # -- the remote claim protocol (repro.distrib) ----------------------

    def claim_next(self, body: dict, client: str) -> tuple[int, dict, dict]:
        """Hand the best queued job to a remote worker (fenced + leased).

        The body may carry ``worker`` (the claiming identity; defaults
        to the ``X-Client`` header) and ``lease_seconds`` (defaults to
        the service's supervision lease).  Runs the same deadline +
        quarantine sweep as the local pool before claiming, so remote
        workers never receive work the coordinator already knows is
        dead.  An empty queue is a normal answer -- 200 with
        ``claim: null`` and a poll hint -- not an error.
        """
        worker_id = body.get("worker") or client
        if not isinstance(worker_id, str) or not worker_id:
            raise ServiceError("worker must be a non-empty string",
                               status=400)
        decision = self.admission.admit_claim(worker_id)
        if not decision.admitted:
            return 429, {
                "error": decision.reason,
                "retry_after_seconds": decision.retry_after,
            }, {"Retry-After": str(max(1, round(decision.retry_after)))}
        lease = body.get("lease_seconds",
                         self.config.supervision.lease_seconds)
        if not isinstance(lease, (int, float)) \
                or isinstance(lease, bool) or lease <= 0:
            raise ServiceError("lease_seconds must be a positive number",
                               status=400)
        self.scheduler.supervise_queue()
        claimed = self.store.claim(lease_seconds=float(lease),
                                   worker_id=worker_id)
        if claimed is None:
            metrics().counter("service.claims_empty").inc()
            return 200, {
                "claim": None,
                "retry_after_seconds": self.config.poll_interval_seconds,
            }, {}
        metrics().counter("service.claims_granted").inc()
        metrics().gauge("service.queue_depth").set(self.store.depth())
        claimed["lease_seconds"] = float(lease)
        return 200, {"claim": claimed}, {}

    def claim_list(self) -> tuple[int, dict, dict]:
        """Active claims: holder, lease expiry, heartbeat freshness."""
        claims = self.store.running_claims()
        return 200, {"claims": claims, "total": len(claims)}, {}

    def claim_heartbeat(self, analysis_id: str, key: str,
                        body: dict) -> tuple[int, dict, dict]:
        """Renew a remote claim's lease (fenced on the claim token).

        The response doubles as the cancel channel: it carries the
        job's ``cancel_requested`` flag, so a remote executor learns of
        a cooperative cancel within one heartbeat interval without
        polling a second endpoint.  409 means the claim is lost
        (reaped, settled, or re-claimed) -- stop beating.
        """
        token = self._claim_token(body)
        lease = body.get("lease_seconds",
                         self.config.supervision.lease_seconds)
        if not isinstance(lease, (int, float)) \
                or isinstance(lease, bool) or lease <= 0:
            raise ServiceError("lease_seconds must be a positive number",
                               status=400)
        outcome = self.store.heartbeat(analysis_id, key, float(lease),
                                       token)
        if outcome == "lost":
            return 409, {"outcome": "lost"}, {}
        return 200, {
            "outcome": outcome,
            "cancel_requested": self.store.cancel_requested(analysis_id,
                                                            key),
        }, {}

    def claim_settle(self, analysis_id: str, key: str,
                     body: dict) -> tuple[int, dict, dict]:
        """Commit a remote claim's terminal state (fenced).

        The body carries the executor's outcome: ``state``
        (done/failed/cancelled), ``status``, ``error``, the ``result``
        document for done jobs (written to the coordinator's
        content-addressed cache *before* the store transition, matching
        the local pool's crash ordering), and optional trace ``spans``
        merged into the coordinator's ambient tracer.  A stale settle
        -- the claim was reaped and re-claimed -- is refused with 409;
        the agent treats that as already-handled, because the re-run
        settles the same content-addressed result.
        """
        token = self._claim_token(body)
        state = body.get("state")
        if state not in ("done", "failed", "cancelled"):
            raise ServiceError(
                "state must be one of done/failed/cancelled", status=400)
        status = body.get("status")
        error = body.get("error")
        result = body.get("result")
        if state == "done" and result is not None:
            self.cache.put(key, result)
        spans = body.get("spans")
        if spans and current_tracer().enabled:
            # Prefixed by job key so two workers' span ids never collide.
            current_tracer().merge(spans, prefix=f"{key[:12]}:")
        try:
            self.store.settle(analysis_id, key, state, status=status,
                              error=error, token=token)
        except ServiceError as exc:
            metrics().counter("service.stale_settles").inc()
            return 409, {"error": str(exc), "settled": False}, {}
        metrics().counter("service.remote_settles").inc()
        metrics().counter({
            "done": "service.jobs_done",
            "failed": "service.jobs_failed",
            "cancelled": "service.jobs_cancelled",
        }[state]).inc()
        metrics().gauge("service.queue_depth").set(self.store.depth())
        return 200, {"settled": True, "state": state}, {}

    def claim_release(self, analysis_id: str, key: str,
                      body: dict) -> tuple[int, dict, dict]:
        """Hand an unstarted claim back to the queue (fenced).

        The remote drain path: the claim's attempt is refunded and the
        job requeues.  409 when the claim no longer owns the job.
        """
        token = self._claim_token(body)
        released = self.store.release(analysis_id, key, token=token)
        if not released:
            return 409, {
                "error": f"job {key[:12]} is not running under this "
                         "claim; nothing to release",
                "released": False,
            }, {}
        metrics().counter("service.claims_released").inc()
        return 200, {"released": True}, {}

    @staticmethod
    def _claim_token(body: dict) -> str:
        token = body.get("token")
        if not isinstance(token, str) or not token:
            raise ServiceError("the claim token is required", status=400)
        return token

    # -- worker registration --------------------------------------------

    def worker_register(self, body: dict,
                        client: str) -> tuple[int, dict, dict]:
        """Register a worker identity (idempotent upsert)."""
        worker_id = body.get("id") or client
        if not isinstance(worker_id, str) or not worker_id:
            raise ServiceError("worker id must be a non-empty string",
                               status=400)
        capacity = body.get("capacity", 1)
        if not isinstance(capacity, int) or isinstance(capacity, bool) \
                or capacity < 1:
            raise ServiceError("capacity must be a positive integer",
                               status=400)
        row = self.store.register_worker(
            worker_id, kind=str(body.get("kind", "remote")),
            host=body.get("host"), pid=body.get("pid"),
            capacity=capacity)
        self._fleet_gauges()
        return 201, row, {}

    def worker_list(self) -> tuple[int, dict, dict]:
        """The registered fleet with per-worker in-flight counts."""
        fleet = self._fleet_gauges()
        return 200, {"workers": fleet, "total": len(fleet)}, {}

    def worker_deregister(self, worker_id: str) -> tuple[int, dict, dict]:
        """Stamp a worker as drained; 404 for an unknown identity."""
        known = self.store.deregister_worker(worker_id)
        if not known:
            return 404, {"error": f"unknown worker {worker_id!r}"}, {}
        self._fleet_gauges()
        return 200, {"id": worker_id, "deregistered": True}, {}

    def _fleet_gauges(self) -> list[dict]:
        """Refresh the fleet gauges from store state; returns the fleet."""
        fleet = self.store.fleet()
        metrics().gauge("service.fleet_size").set(len(fleet))
        metrics().gauge("service.fleet_capacity").set(
            sum(worker["capacity"] for worker in fleet))
        metrics().gauge("service.fleet_inflight").set(
            sum(worker["inflight"] for worker in fleet))
        return fleet

    # -- health + metrics ----------------------------------------------

    def health(self) -> tuple[int, dict, dict]:
        counts = self.store.counts()
        depth = counts["queued"] + counts["running"]
        metrics().gauge("service.queue_depth").set(depth)
        fleet = self._fleet_gauges()
        return 200, {
            "ok": True,
            "uptime_seconds": time.time() - self.started_at,
            "queue_depth": depth,
            "counts": counts,
            "workers": (self.config.num_workers
                        if self.config.local_workers else 0),
            "max_queue_depth": self.config.max_queue_depth,
            "fleet": {
                "workers": len(fleet),
                "capacity": sum(w["capacity"] for w in fleet),
                "inflight": {w["id"]: w["inflight"] for w in fleet},
            },
        }, {}

    def metricz(self) -> tuple[int, dict, dict]:
        metrics().gauge("service.queue_depth").set(self.store.depth())
        self._fleet_gauges()
        return 200, metrics().snapshot(), {}


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs/paths onto the :class:`AnalysisService`."""

    #: Set by make_server(); shared across handler instances.
    service: AnalysisService = None
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        logger.debug("%s %s", self.address_string(), format % args)

    def _reply(self, status: int, body: dict, headers: dict) -> None:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _client(self) -> str:
        return self.headers.get("X-Client", "anonymous")

    def _body(self, required: bool = True) -> dict:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError as exc:
            raise ServiceError("Content-Length is not an integer",
                               status=400) from exc
        limit = self.service.config.max_body_bytes
        if length > limit:
            # Rejected before a single body byte is read: an advertised
            # Content-Length is not an invitation to buffer it.
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{limit}-byte limit", status=413)
        raw = self.rfile.read(length) if length > 0 else b""
        if not raw and not required:
            return {}
        if not raw:
            raise ServiceError("a JSON request body is required",
                               status=400)
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}",
                               status=400) from exc

    def _handle(self, method: str) -> None:
        started = time.monotonic()
        status = 500
        try:
            status, body, headers = self._route(method)
            self._reply(status, body, headers)
        except ServiceError as exc:
            status = exc.status or 400
            self._reply(status, {"error": str(exc)}, {})
        except BrokenPipeError:
            pass
        except Exception as exc:
            logger.exception("unhandled error serving %s %s", method,
                             self.path)
            try:
                self._reply(500, {"error": f"internal error: {exc}"}, {})
            except OSError:
                pass
        finally:
            seconds = time.monotonic() - started
            metrics().counter("service.http_requests").inc()
            metrics().counter(f"service.http_{status}").inc()
            current_tracer().record(
                "http_request", seconds, method=method, path=self.path,
                status=status)

    def _route(self, method: str) -> tuple[int, dict, dict]:
        service = self.service
        path = self.path.split("?", 1)[0].rstrip("/")
        if method == "GET" and path == "/healthz":
            return service.health()
        if method == "GET" and path == "/metricz":
            return service.metricz()
        if path == "/v1/analyses":
            if method == "POST":
                return service.submit(self._body(), self._client())
            raise ServiceError("method not allowed", status=405)
        if path == "/v1/quarantine":
            if method == "GET":
                return service.quarantine()
            raise ServiceError("method not allowed", status=405)
        if path == "/v1/claims":
            if method == "POST":
                return service.claim_next(self._body(required=False),
                                          self._client())
            if method == "GET":
                return service.claim_list()
            raise ServiceError("method not allowed", status=405)
        if path.startswith("/v1/claims/"):
            parts = path[len("/v1/claims/"):].split("/")
            if len(parts) == 3 and all(parts) and method == "POST":
                analysis_id, key, action = parts
                if action == "heartbeat":
                    return service.claim_heartbeat(analysis_id, key,
                                                   self._body())
                if action == "settle":
                    return service.claim_settle(analysis_id, key,
                                                self._body())
                if action == "release":
                    return service.claim_release(analysis_id, key,
                                                 self._body())
        if path == "/v1/workers":
            if method == "POST":
                return service.worker_register(self._body(required=False),
                                               self._client())
            if method == "GET":
                return service.worker_list()
            raise ServiceError("method not allowed", status=405)
        if path.startswith("/v1/workers/"):
            worker_id = path[len("/v1/workers/"):]
            if worker_id and "/" not in worker_id and method == "DELETE":
                return service.worker_deregister(worker_id)
        if path.startswith("/v1/analyses/"):
            rest = path[len("/v1/analyses/"):]
            parts = rest.split("/")
            if len(parts) == 1 and parts[0]:
                if method == "GET":
                    return service.status(parts[0])
                if method == "DELETE":
                    return service.cancel(parts[0])
                raise ServiceError("method not allowed", status=405)
            if len(parts) == 2 and parts[0] and parts[1] == "result" \
                    and method == "GET":
                return service.result(parts[0])
            if len(parts) == 2 and parts[0] and parts[1] == "quarantine" \
                    and method == "GET":
                return service.quarantine(parts[0])
            if len(parts) == 2 and parts[0] and parts[1] == "retry" \
                    and method == "POST":
                return service.retry(parts[0])
        raise ServiceError(f"no route for {method} {self.path}",
                           status=404)

    # -- verbs ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")


def make_server(service: AnalysisService) -> ThreadingHTTPServer:
    """Bind the HTTP server for a service (``port=0`` = ephemeral)."""
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer(
        (service.config.host, service.config.port), handler)
    server.daemon_threads = True
    return server


def write_state_file(service: AnalysisService,
                     server: ThreadingHTTPServer) -> Path:
    """Record the bound address (and pid) in ``<workdir>/service.json``.

    Written *after* the bind so ``port=0`` users (tests, smoke CI) can
    discover the ephemeral port by polling for this file.
    """
    import os

    host, port = server.server_address[0], server.server_address[1]
    state = {"host": host, "port": int(port), "pid": os.getpid(),
             "url": f"http://{host}:{port}"}
    path = Path(service.workdir) / "service.json"
    path.write_text(json.dumps(state, sort_keys=True))
    return path


def serve_forever(service: AnalysisService,
                  server: ThreadingHTTPServer) -> None:
    """Run the server until SIGINT/SIGTERM, then drain and stop.

    The signal handler only sets an event; the actual teardown --
    ``server.shutdown()`` then a draining ``service.stop()`` -- runs on
    the main thread, mirroring the executor's graceful-shutdown
    semantics (satellite: drain-on-stop).
    """
    import signal

    stop = threading.Event()

    def _on_signal(signum, frame):
        stop.set()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        previous[signum] = signal.signal(signum, _on_signal)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-service-http", daemon=True)
    service.start()
    thread.start()
    try:
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.shutdown()
        thread.join(timeout=5.0)
        service.stop(drain=True)
