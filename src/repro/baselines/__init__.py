"""Baselines the paper compares Raha against.

* :mod:`repro.baselines.naive` -- the prior-work adversary (QARC [38] /
  Robust [9] style) that minimizes the failed network's *absolute*
  performance instead of its degradation relative to the design point
  (Figures 1 and 3).
* Up-to-k failure analysis (FFC [27] / Yu [26] style) lives in
  :mod:`repro.failures.enumeration` (exhaustive simulation) and is also
  expressible as ``RahaConfig(max_failures=k)`` (MILP); both are used by
  the Figure 5/6 benchmarks.
"""

from repro.baselines.naive import naive_fixed_peak, naive_worst_case

__all__ = ["naive_fixed_peak", "naive_worst_case"]
