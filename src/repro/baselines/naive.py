"""The naive worst-case adversary of prior work.

QARC [38] and Robust [9] "focus on the failures and demands that minimize
the performance of the failed network but do not consider how this failed
network performs relative to its design point" (Section 2.2).  Figure 1's
middle panel shows the failure mode: with a total-flow objective the
naive adversary simply shrinks the demands.

Both entry points return the same :class:`DegradationResult` type as
Raha, with the degradation computed *post hoc* against the design point,
so benchmarks can compare them on the metric that matters.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.analyzer import RahaAnalyzer
from repro.core.config import RahaConfig
from repro.core.degradation import DegradationResult
from repro.network.demand import Pair
from repro.network.topology import Topology
from repro.paths.pathset import PathSet


def naive_worst_case(
    topology: Topology,
    paths: PathSet,
    demand_bounds: Mapping[Pair, tuple[float, float]],
    max_failures: int | None = None,
    probability_threshold: float | None = None,
    connected_enforced: bool = False,
    time_limit: float | None = 1000.0,
) -> DegradationResult:
    """Jointly pick demands and failures minimizing failed performance.

    This is the comparison point of Figure 1 (middle): the adversary's
    objective is the failed network's total flow, *not* the gap, so it
    gravitates to small demands and reports scenarios whose degradation
    is modest.

    Returns:
        A :class:`DegradationResult` whose ``failed_value`` is the naive
        optimum and whose ``degradation`` is evaluated post hoc.
    """
    config = RahaConfig(
        demand_bounds=dict(demand_bounds),
        max_failures=max_failures,
        probability_threshold=probability_threshold,
        connected_enforced=connected_enforced,
        minimize_performance=True,
        time_limit=time_limit,
    )
    result = RahaAnalyzer(topology, paths, config).analyze()
    result.notes.append("naive objective: minimized failed performance")
    return result


def naive_fixed_peak(
    topology: Topology,
    paths: PathSet,
    peak_demands: Mapping[Pair, float],
    max_failures: int | None = None,
    probability_threshold: float | None = None,
    connected_enforced: bool = False,
    time_limit: float | None = 1000.0,
) -> DegradationResult:
    """Fix demands at a peak and find failures minimizing performance.

    This is Figure 3's "Max"/"Average" baseline: intuition says setting
    the demand to its peak should also reveal the worst degradation, but
    backup-path activation makes degradation depend on the design point,
    so this under-reports relative to Raha's joint search.
    """
    config = RahaConfig(
        fixed_demands=dict(peak_demands),
        max_failures=max_failures,
        probability_threshold=probability_threshold,
        connected_enforced=connected_enforced,
        time_limit=time_limit,
    )
    result = RahaAnalyzer(topology, paths, config).analyze()
    result.notes.append("baseline: fixed peak demand, failure search only")
    return result
