"""The benchmark harness: warmup + repetitions, timed and summarized.

One :func:`run_case` call executes a registered :class:`BenchCase`
``warmup`` times un-timed, then ``repetitions`` times under a
``perf_counter`` stopwatch, and folds the samples into robust
statistics (:mod:`repro.bench.stats`).  Per-repetition extra metrics
returned by the case (solver build/compile/solve seconds, cache hit
counts...) are aggregated the same way, so a result document carries
both "how long did the case take" and "where did the time go".

Peak RSS is read from ``resource.getrusage`` after each case.  The
counter is a process-wide high-water mark -- it only ever rises across
a suite -- so per-case numbers are upper bounds ordered by execution;
the *suite-level* peak (the last case's reading) is the number the
capacity planner wants.

With tracing requested, every repetition runs under a per-case
:class:`~repro.obs.trace.Tracer` installed ambiently, so the
instrumented hot paths (analyzer phases, solver compile/solve) emit
spans exactly as they do under ``analyze --trace``.  The case's span
phase totals land in the result document, and the raw spans merge into
the caller's campaign tracer for the JSONL file.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field

from repro.bench.registry import BenchCase
from repro.bench.stats import SampleStats, summarize
from repro.core.config import BenchConfig
from repro.obs.sinks import phase_totals
from repro.obs.trace import Tracer, tracing


def peak_rss_bytes() -> int | None:
    """The process's peak resident set size, in bytes (``None`` when
    the platform has no ``resource`` module, e.g. Windows)."""
    try:
        import resource
    except ImportError:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


@dataclass(frozen=True)
class CaseResult:
    """One case's measured run: samples, summaries, and telemetry."""

    name: str
    tags: tuple[str, ...]
    warmup: int
    repetitions: int
    wall: SampleStats
    metrics: dict[str, SampleStats] = field(default_factory=dict)
    peak_rss_bytes: int | None = None
    phase_seconds: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The JSON form stored under ``cases.<name>`` in a result doc."""
        return {
            "tags": sorted(self.tags),
            "warmup": self.warmup,
            "repetitions": self.repetitions,
            "wall_seconds": self.wall.to_dict(),
            "metrics": {name: stats.to_dict()
                        for name, stats in sorted(self.metrics.items())},
            "peak_rss_bytes": self.peak_rss_bytes,
            "phase_seconds": dict(sorted(self.phase_seconds.items())),
        }


def run_case(case: BenchCase, config: BenchConfig | None = None,
             tracer=None) -> CaseResult:
    """Run one case under the harness and summarize its samples.

    Args:
        case: The registered case.
        config: Sampling knobs (warmup/repetitions); default
            :class:`BenchConfig`.
        tracer: An *enabled* campaign tracer to collect per-case spans
            into (``None`` or a disabled tracer runs untraced -- the
            instrumented paths then cost one no-op call per phase,
            identical to production).
    """
    config = config or BenchConfig()
    trace = tracer is not None and getattr(tracer, "enabled", False)
    case_tracer = Tracer() if trace else None

    for _ in range(config.warmup):
        case.run()

    wall_samples: list[float] = []
    metric_samples: dict[str, list[float]] = {}
    for repetition in range(config.repetitions):
        if case_tracer is not None:
            with tracing(case_tracer), case_tracer.span(
                    "bench_case", case=case.name, repetition=repetition):
                started = time.perf_counter()
                metrics = case.run()
                elapsed = time.perf_counter() - started
        else:
            started = time.perf_counter()
            metrics = case.run()
            elapsed = time.perf_counter() - started
        wall_samples.append(elapsed)
        for name, value in metrics.items():
            metric_samples.setdefault(name, []).append(value)

    phase_seconds: dict[str, float] = {}
    if case_tracer is not None:
        spans = case_tracer.export()
        phase_seconds = {
            name: entry["seconds"]
            for name, entry in phase_totals(spans).items()
            if name != "bench_case"
        }
        tracer.merge(spans, prefix=f"{case.name}:")

    return CaseResult(
        name=case.name,
        tags=tuple(sorted(case.tags)),
        warmup=config.warmup,
        repetitions=config.repetitions,
        wall=summarize(wall_samples),
        metrics={name: summarize(samples)
                 for name, samples in metric_samples.items()},
        peak_rss_bytes=peak_rss_bytes(),
        phase_seconds=phase_seconds,
    )


def run_suite(cases, config: BenchConfig | None = None, tracer=None,
              log=None) -> list[CaseResult]:
    """Run every case in order; ``log`` receives one progress line each."""
    config = config or BenchConfig()
    results = []
    for index, case in enumerate(cases, 1):
        result = run_case(case, config=config, tracer=tracer)
        if log is not None:
            log(f"[{index}/{len(cases)}] {case.name}: "
                f"median {result.wall.median:.4f}s "
                f"(mad {result.wall.mad:.4f}s, "
                f"{result.repetitions} reps)")
        results.append(result)
    return results
