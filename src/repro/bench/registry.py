"""The :class:`BenchCase` registry.

A bench case is a named, tagged, zero-argument callable wrapping one
performance-relevant scenario -- a compile microbenchmark, a sweep
cell, a cache replay.  Cases register themselves at import time via the
:func:`bench_case` decorator; the CLI loads a *cases module* (by
default ``benchmarks.bench_cases``, the repo's registration file) and
then selects by tag or name.

Tagging convention:

* ``smoke`` -- seconds-scale cases safe to run on every CI push; the
  ``bench-smoke`` job runs exactly this tag against the committed
  baseline.
* ``full``  -- the larger local set (everything, including the slow
  cases), for before/after comparisons on a developer machine.

A case function returns ``None`` or a flat ``{name: number}`` dict of
extra metrics (solver build/compile/solve seconds, cache hit counts,
matrix sizes...).  Wall time and peak RSS are measured by the harness;
returned metrics are aggregated across repetitions alongside them.
"""

from __future__ import annotations

import importlib
import re
from dataclasses import dataclass, field

from repro.exceptions import BenchError

#: The default registration module: the repo's ``benchmarks/`` package.
DEFAULT_CASES_MODULE = "benchmarks.bench_cases"

#: The two conventional tags (free-form tags are allowed on top).
SMOKE, FULL = "smoke", "full"

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9._-]*$")

#: name -> BenchCase, in registration order.
_REGISTRY: dict[str, "BenchCase"] = {}


@dataclass(frozen=True)
class BenchCase:
    """One registered benchmark scenario."""

    name: str
    fn: object = field(repr=False)
    tags: frozenset = frozenset()
    description: str = ""

    def run(self):
        """Execute the case once; returns its extra-metrics dict."""
        out = self.fn()
        if out is None:
            return {}
        if not isinstance(out, dict):
            raise BenchError(
                f"case {self.name!r} returned {type(out).__name__}; "
                f"cases must return None or a flat metrics dict"
            )
        metrics = {}
        for key, value in out.items():
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                raise BenchError(
                    f"case {self.name!r} metric {key!r} is not numeric "
                    f"({type(value).__name__})"
                )
            metrics[str(key)] = float(value)
        return metrics


def bench_case(name: str, tags=(FULL,), description: str = ""):
    """Decorator registering a zero-argument callable as a bench case.

    ::

        @bench_case("compile.edge_mcf_batch", tags=("smoke",),
                    description="array fast-path build+compile")
        def _batch_compile():
            ...
            return {"rows": rows, "nnz": nnz}
    """
    if not _NAME_RE.match(name):
        raise BenchError(
            f"bad case name {name!r} (lowercase letters, digits, dots, "
            f"dashes, underscores; must start alphanumeric)"
        )
    tag_set = frozenset(str(t) for t in tags)
    if not tag_set:
        raise BenchError(f"case {name!r} needs at least one tag")

    def decorate(fn):
        if name in _REGISTRY:
            raise BenchError(f"duplicate bench case {name!r}")
        _REGISTRY[name] = BenchCase(name=name, fn=fn, tags=tag_set,
                                    description=description)
        return fn

    return decorate


def registered_cases() -> list[BenchCase]:
    """Every registered case, in registration order."""
    return list(_REGISTRY.values())


def clear_registry() -> None:
    """Drop all registrations (test isolation)."""
    _REGISTRY.clear()


def load_cases(module: str = DEFAULT_CASES_MODULE) -> list[BenchCase]:
    """Import a cases module and return the resulting registry.

    Importing runs the module's ``@bench_case`` decorators; a module
    already imported contributes its existing registrations (Python
    caches imports, so double registration cannot occur).
    """
    try:
        importlib.import_module(module)
    except ImportError as exc:
        raise BenchError(
            f"cannot import bench cases module {module!r}: {exc} "
            f"(run from the repository root, or pass --cases-module)"
        ) from exc
    cases = registered_cases()
    if not cases:
        raise BenchError(f"cases module {module!r} registered no cases")
    return cases


def select_cases(cases, tag: str | None = None,
                 names=None) -> list[BenchCase]:
    """Filter cases by tag and/or explicit names (both optional).

    Unknown names are an error -- a typo'd ``--case`` must not silently
    benchmark nothing.
    """
    selected = list(cases)
    if tag is not None:
        selected = [c for c in selected if tag in c.tags]
        if not selected:
            known = sorted({t for c in cases for t in c.tags})
            raise BenchError(
                f"no cases tagged {tag!r} (known tags: {', '.join(known)})"
            )
    if names:
        by_name = {c.name: c for c in selected}
        missing = [n for n in names if n not in by_name]
        if missing:
            raise BenchError(
                f"unknown bench case(s): {', '.join(sorted(missing))}"
            )
        selected = [by_name[n] for n in names]
    return selected
