"""Robust summary statistics for benchmark samples.

Benchmark timings are small samples from a long-tailed distribution: a
GC pause, a cold cache line, or a noisy CI neighbor can inflate one
repetition by an order of magnitude.  The harness therefore summarizes
with the **median** (headline number) and the **median absolute
deviation** (noise estimate) -- both ignore a single wild outlier where
mean and standard deviation would be dragged by it.  The mean, min, and
max ride along for context, and the raw samples are preserved in the
result document so thresholds can be re-derived later without re-running
anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import BenchError


def median(samples) -> float:
    """The middle value (mean of the middle two for even counts)."""
    ordered = sorted(samples)
    if not ordered:
        raise BenchError("median of an empty sample set")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(samples, center: float | None = None) -> float:
    """Median absolute deviation around ``center`` (default: the median).

    Unscaled (no normal-consistency factor): the compare thresholds
    consume it as raw observed spread, not as a sigma estimate.
    """
    center = median(samples) if center is None else center
    return median([abs(x - center) for x in samples])


@dataclass(frozen=True)
class SampleStats:
    """One metric's robust summary plus its raw samples."""

    median: float
    mad: float
    mean: float
    min: float
    max: float
    samples: tuple[float, ...]

    @property
    def count(self) -> int:
        """How many samples the summary covers."""
        return len(self.samples)

    def to_dict(self) -> dict:
        """The JSON form stored in a ``BENCH_*.json`` document."""
        return {
            "median": self.median,
            "mad": self.mad,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "samples": list(self.samples),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SampleStats":
        """Rebuild a summary from its JSON form.

        Summaries are *recomputed* from the stored samples when they
        are present -- the samples are the ground truth, and
        recomputing makes a hand-edited or schema-drifted summary
        self-heal -- falling back to the stored fields for documents
        that dropped the raw samples to save space.
        """
        try:
            samples = [float(x) for x in doc.get("samples", [])]
            if samples:
                return summarize(samples)
            return cls(
                median=float(doc["median"]), mad=float(doc["mad"]),
                mean=float(doc["mean"]), min=float(doc["min"]),
                max=float(doc["max"]), samples=(),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BenchError(
                f"malformed sample-stats document: {exc}"
            ) from exc


def summarize(samples) -> SampleStats:
    """Summarize raw samples into a :class:`SampleStats`."""
    values = [float(x) for x in samples]
    if not values:
        raise BenchError("cannot summarize an empty sample set")
    mid = median(values)
    return SampleStats(
        median=mid,
        mad=mad(values, center=mid),
        mean=sum(values) / len(values),
        min=min(values),
        max=max(values),
        samples=tuple(values),
    )
