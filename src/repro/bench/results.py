"""Schema-versioned benchmark result documents (``BENCH_*.json``).

A result document is the durable artifact of one ``repro bench run``:
every case's robust statistics plus an **environment fingerprint**
(git sha, python version, platform, CPU count) so a comparison can
tell "the code got slower" apart from "this ran on different iron".
The schema is versioned; :func:`load_results` refuses documents from a
*newer* schema (forward compatibility is a lie worth not telling) and
validates the shape it accepts, so ``bench compare`` fails loudly on a
truncated or hand-mangled file instead of comparing garbage.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

from repro.bench.harness import CaseResult
from repro.bench.stats import SampleStats
from repro.exceptions import BenchError

#: Bumped whenever the document shape changes incompatibly.
SCHEMA_VERSION = 1

#: The ``kind`` marker distinguishing bench results from the repo's
#: other JSON artifacts (sweep results, topologies, ...).
KIND = "bench_results"


def git_sha(cwd: str | os.PathLike | None = None) -> str | None:
    """The current git commit sha, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def environment_fingerprint() -> dict:
    """Where and on what this run happened."""
    return {
        "git_sha": git_sha(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def results_document(results, label: str, config, tag: str | None = None,
                     created: float | None = None) -> dict:
    """Assemble the full ``BENCH_<label>.json`` document.

    Args:
        results: :class:`~repro.bench.harness.CaseResult` list.
        label: The run's human label (``ci``, ``baseline``, a branch
            name...).
        config: The :class:`~repro.core.config.BenchConfig` used.
        tag: The tag filter the run used, if any (recorded so a
            compare can warn when smoke numbers meet full numbers).
        created: Unix timestamp override (default: now).
    """
    return {
        "schema": SCHEMA_VERSION,
        "kind": KIND,
        "label": label,
        "tag": tag,
        "created_unix": time.time() if created is None else created,
        "environment": environment_fingerprint(),
        "config": {
            "warmup": config.warmup,
            "repetitions": config.repetitions,
        },
        "cases": {r.name: r.to_dict() for r in results},
    }


def save_results(document: dict, path: str | os.PathLike) -> None:
    """Write a result document (pretty-printed, trailing newline)."""
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n")


def load_results(path: str | os.PathLike) -> dict:
    """Read and validate a result document.

    Raises:
        BenchError: The file is unreadable, is not a bench-results
            document, comes from a newer schema, or has a malformed
            ``cases`` section.
    """
    try:
        document = json.loads(Path(path).read_text())
    except OSError as exc:
        raise BenchError(f"cannot read bench results {path}: {exc}") from exc
    except ValueError as exc:
        raise BenchError(
            f"bench results {path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get("kind") != KIND:
        raise BenchError(
            f"{path} is not a bench results document "
            f"(kind={document.get('kind') if isinstance(document, dict) else None!r})"
        )
    schema = document.get("schema")
    if not isinstance(schema, int) or schema < 1:
        raise BenchError(f"{path} has a malformed schema marker {schema!r}")
    if schema > SCHEMA_VERSION:
        raise BenchError(
            f"{path} uses bench schema {schema}, newer than this code's "
            f"{SCHEMA_VERSION}; upgrade before comparing"
        )
    cases = document.get("cases")
    if not isinstance(cases, dict):
        raise BenchError(f"{path} has no cases section")
    for name, doc in cases.items():
        if not isinstance(doc, dict) or "wall_seconds" not in doc:
            raise BenchError(
                f"{path}: case {name!r} is malformed (no wall_seconds)")
    return document


def case_stats(document: dict, name: str) -> SampleStats:
    """A case's wall-time summary out of a loaded document."""
    try:
        return SampleStats.from_dict(document["cases"][name]["wall_seconds"])
    except KeyError as exc:
        raise BenchError(
            f"case {name!r} not present in results "
            f"{document.get('label')!r}") from exc


def results_from_document(document: dict) -> dict[str, SampleStats]:
    """Every case's wall summary, keyed by name."""
    return {name: case_stats(document, name) for name in document["cases"]}


__all__ = [
    "SCHEMA_VERSION", "KIND", "git_sha", "environment_fingerprint",
    "results_document", "save_results", "load_results", "case_stats",
    "results_from_document", "CaseResult",
]
