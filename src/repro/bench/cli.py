"""The ``python -m repro bench`` command: run, compare, list.

* ``bench run``     -- execute registered cases (filtered by ``--tag``
  or ``--case``) under the harness and write a schema-versioned
  ``BENCH_<label>.json`` result document.
* ``bench compare`` -- diff two result documents, print the human
  table (and optionally a machine JSON verdict), and exit
  :data:`EXIT_BENCH_REGRESSION` when any case's median exceeds its
  noise-scaled threshold.  This is the CI gate.
* ``bench list``    -- show the registered cases and their tags.

Typical loop::

    python -m repro bench run --tag smoke --out BENCH_ci.json
    python -m repro bench compare benchmarks/baseline.json BENCH_ci.json

Updating the committed baseline after an intentional perf change::

    python -m repro bench run --tag smoke --label baseline \\
        --out benchmarks/baseline.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.exceptions import BenchError

#: Exit code when ``bench compare`` finds at least one regression.
#: Distinct from 1 (operational error: unreadable file, bad schema) so
#: CI can tell "the code got slower" from "the gate itself broke".
EXIT_BENCH_REGRESSION = 8


def _bench_config(args):
    from repro.core.config import BenchConfig

    kwargs = {}
    for attr in ("warmup", "repetitions", "rel_tolerance",
                 "mad_multiplier", "abs_floor_seconds"):
        value = getattr(args, attr, None)
        if value is not None:
            kwargs[attr] = value
    return BenchConfig(**kwargs)


def _loaded_cases(args):
    from repro.bench.registry import load_cases, select_cases

    cases = load_cases(args.cases_module)
    return select_cases(cases, tag=args.tag,
                        names=getattr(args, "case", None))


def _cmd_bench_run(args) -> int:
    from repro.bench.harness import run_suite
    from repro.bench.results import results_document, save_results

    config = _bench_config(args)
    cases = _loaded_cases(args)

    def log(line: str) -> None:
        if not args.quiet:
            print(line, file=sys.stderr, flush=True)

    tracer = None
    writer = None
    if args.trace:
        from repro.obs import JsonlTraceWriter, Tracer

        writer = JsonlTraceWriter(args.trace, name="bench")
        tracer = Tracer(sink=writer.write)
    try:
        results = run_suite(cases, config=config, tracer=tracer, log=log)
    finally:
        if writer is not None:
            from repro.obs import metrics

            writer.close(metrics().snapshot())
            print(f"trace: {args.trace}", file=sys.stderr)
    document = results_document(results, label=args.label, config=config,
                                tag=args.tag)
    save_results(document, args.out)
    print(f"wrote {len(results)} case(s) to {args.out}")
    return 0


def _cmd_bench_compare(args) -> int:
    from repro.bench.compare import compare_results, render_table
    from repro.bench.results import load_results

    config = _bench_config(args)
    base_doc = load_results(args.base)
    new_doc = load_results(args.new)
    comparison = compare_results(base_doc, new_doc, config=config)
    print(render_table(comparison))
    if args.json:
        Path(args.json).write_text(
            json.dumps(comparison.to_dict(), indent=2, sort_keys=True)
            + "\n")
        print(f"wrote machine verdict to {args.json}")
    if not comparison.deltas:
        # Nothing overlapped: the gate cannot have checked anything.
        print("warning: no case appears in both documents",
              file=sys.stderr)
    return 0 if comparison.ok else EXIT_BENCH_REGRESSION


def _cmd_bench_list(args) -> int:
    cases = _loaded_cases(args)
    for case in cases:
        tags = ",".join(sorted(case.tags))
        line = f"{case.name}  [{tags}]"
        if case.description:
            line += f"  {case.description}"
        print(line)
    print(f"{len(cases)} case(s)")
    return 0


def _cmd_bench(args) -> int:
    handler = {
        "run": _cmd_bench_run,
        "compare": _cmd_bench_compare,
        "list": _cmd_bench_list,
    }[args.bench_action]
    try:
        return handler(args)
    except BenchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def add_bench_parser(sub) -> None:
    """Attach the ``bench`` subcommand to the CLI's subparsers."""
    from repro.bench.registry import DEFAULT_CASES_MODULE

    p_be = sub.add_parser(
        "bench",
        help="run/compare performance benchmarks (regression gate)")
    actions = p_be.add_subparsers(dest="bench_action", required=True)

    def common(p):
        p.add_argument("--cases-module", default=DEFAULT_CASES_MODULE,
                       help="importable module registering the bench "
                            f"cases (default: {DEFAULT_CASES_MODULE})")
        p.add_argument("--tag", default=None,
                       help='only cases with this tag ("smoke" for the '
                            'CI set, "full" for the local set)')

    p_run = actions.add_parser(
        "run", help="run cases and write a BENCH_*.json result document")
    common(p_run)
    p_run.add_argument("--case", action="append", default=None,
                       metavar="NAME",
                       help="run only this case (repeatable)")
    p_run.add_argument("--out", default="BENCH_local.json",
                       help="result document path (default: "
                            "BENCH_local.json)")
    p_run.add_argument("--label", default="local",
                       help="label stamped into the document")
    p_run.add_argument("--warmup", type=int, default=None,
                       help="un-timed runs per case before sampling")
    p_run.add_argument("--repetitions", type=int, default=None,
                       help="timed runs per case (median/MAD basis)")
    p_run.add_argument("--trace", default=None, metavar="FILE",
                       help="write per-case JSONL spans (analyzer/solver "
                            "phases under bench_case spans)")
    p_run.add_argument("--quiet", action="store_true",
                       help="suppress per-case progress on stderr")
    p_run.set_defaults(func=_cmd_bench)

    p_cmp = actions.add_parser(
        "compare",
        help="diff two result documents; exit "
             f"{EXIT_BENCH_REGRESSION} on regression")
    p_cmp.add_argument("base", help="baseline BENCH_*.json")
    p_cmp.add_argument("new", help="candidate BENCH_*.json")
    p_cmp.add_argument("--rel-tolerance", type=float, default=None,
                       dest="rel_tolerance",
                       help="fractional slowdown tolerated (0.25 = 25%%)")
    p_cmp.add_argument("--mad-multiplier", type=float, default=None,
                       dest="mad_multiplier",
                       help="MADs of noise-scaled slack on the ceiling")
    p_cmp.add_argument("--abs-floor", type=float, default=None,
                       dest="abs_floor_seconds", metavar="SECONDS",
                       help="absolute slack added to every ceiling")
    p_cmp.add_argument("--json", default=None, metavar="FILE",
                       help="also write the machine-readable verdict")
    p_cmp.set_defaults(func=_cmd_bench)

    p_ls = actions.add_parser("list", help="list registered cases")
    common(p_ls)
    p_ls.set_defaults(func=_cmd_bench)
