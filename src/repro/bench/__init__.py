"""``repro.bench``: benchmark orchestration and regression detection.

The perf observability layer the ROADMAP's "fast as the hardware
allows" goal needs a feedback loop for: a registry of tagged
:class:`BenchCase` scenarios (:mod:`repro.bench.registry`), a
warmup-and-repetitions harness collecting wall time, solver telemetry,
cache hits, and peak RSS (:mod:`repro.bench.harness`), robust
median/MAD statistics (:mod:`repro.bench.stats`), schema-versioned
``BENCH_*.json`` documents with environment fingerprints
(:mod:`repro.bench.results`), and a noise-scaled comparison gate
(:mod:`repro.bench.compare`) -- all driven by ``python -m repro bench
run|compare|list`` (:mod:`repro.bench.cli`).

The repo's cases live in ``benchmarks/bench_cases.py``; the committed
``benchmarks/baseline.json`` plus the ``bench-smoke`` CI job close the
regression loop.  See docs/operations.md "Tracking performance".
"""

from repro.bench.compare import (
    CaseDelta,
    Comparison,
    allowed_ceiling,
    compare_results,
    render_table,
)
from repro.bench.harness import CaseResult, peak_rss_bytes, run_case, run_suite
from repro.bench.registry import (
    DEFAULT_CASES_MODULE,
    BenchCase,
    bench_case,
    clear_registry,
    load_cases,
    registered_cases,
    select_cases,
)
from repro.bench.results import (
    SCHEMA_VERSION,
    environment_fingerprint,
    load_results,
    results_document,
    save_results,
)
from repro.bench.stats import SampleStats, mad, median, summarize

__all__ = [
    "BenchCase",
    "CaseDelta",
    "CaseResult",
    "Comparison",
    "DEFAULT_CASES_MODULE",
    "SCHEMA_VERSION",
    "SampleStats",
    "allowed_ceiling",
    "bench_case",
    "clear_registry",
    "compare_results",
    "environment_fingerprint",
    "load_cases",
    "load_results",
    "mad",
    "median",
    "peak_rss_bytes",
    "registered_cases",
    "render_table",
    "results_document",
    "run_case",
    "run_suite",
    "save_results",
    "select_cases",
    "summarize",
]
