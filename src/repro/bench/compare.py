"""Regression detection between two benchmark result documents.

``repro bench compare BASELINE NEW`` is the gate every perf PR runs
through: for each case present in both documents it compares medians
against a **noise-scaled ceiling**

::

    allowed = base_median * (1 + rel_tolerance)
              + mad_multiplier * max(base_mad, new_mad)
              + abs_floor_seconds

and flags a regression when the new median exceeds it.  The MAD term
makes the threshold self-calibrating: a case whose repetitions jitter
by 30% run-to-run earns 30%-scale slack, while a rock-steady
microbenchmark is held to its tight observed spread.  The relative
term catches the genuine slow-creep the fixed terms would forgive on
long cases, and the absolute floor keeps sub-millisecond cases from
crying wolf over scheduler noise.

Cases present in only one document are *reported* but never fail the
comparison -- adding a benchmark must not break CI retroactively, and
a case retired from the suite must not pin the baseline forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.stats import SampleStats
from repro.core.config import BenchConfig


@dataclass(frozen=True)
class CaseDelta:
    """One case's baseline-vs-new verdict."""

    name: str
    base: SampleStats
    new: SampleStats
    allowed: float
    regressed: bool
    improved: bool

    @property
    def ratio(self) -> float:
        """New median over baseline median (1.0 = unchanged)."""
        if self.base.median == 0.0:
            return float("inf") if self.new.median > 0.0 else 1.0
        return self.new.median / self.base.median

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "base_median": self.base.median,
            "base_mad": self.base.mad,
            "new_median": self.new.median,
            "new_mad": self.new.mad,
            "allowed": self.allowed,
            "ratio": self.ratio,
            "regressed": self.regressed,
            "improved": self.improved,
        }


@dataclass
class Comparison:
    """The full verdict of one baseline-vs-new comparison."""

    deltas: list[CaseDelta]
    missing: list[str] = field(default_factory=list)  # baseline only
    added: list[str] = field(default_factory=list)    # new only
    base_label: str = ""
    new_label: str = ""

    @property
    def regressions(self) -> list[CaseDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def improvements(self) -> list[CaseDelta]:
        return [d for d in self.deltas if d.improved]

    @property
    def ok(self) -> bool:
        """Whether the gate passes (no regression)."""
        return not self.regressions

    def to_dict(self) -> dict:
        """The machine-readable verdict (``compare --json``)."""
        return {
            "kind": "bench_comparison",
            "base_label": self.base_label,
            "new_label": self.new_label,
            "ok": self.ok,
            "num_regressions": len(self.regressions),
            "num_improvements": len(self.improvements),
            "cases": [d.to_dict() for d in self.deltas],
            "missing_in_new": list(self.missing),
            "added_in_new": list(self.added),
        }


def allowed_ceiling(base: SampleStats, new: SampleStats,
                    config: BenchConfig) -> float:
    """The noise-scaled median ceiling for one case (see module doc)."""
    return (
        base.median * (1.0 + config.rel_tolerance)
        + config.mad_multiplier * max(base.mad, new.mad)
        + config.abs_floor_seconds
    )


def compare_results(base_doc: dict, new_doc: dict,
                    config: BenchConfig | None = None) -> Comparison:
    """Compare two loaded result documents case by case."""
    config = config or BenchConfig()
    base_cases = base_doc["cases"]
    new_cases = new_doc["cases"]
    deltas = []
    for name in sorted(set(base_cases) & set(new_cases)):
        base = SampleStats.from_dict(base_cases[name]["wall_seconds"])
        new = SampleStats.from_dict(new_cases[name]["wall_seconds"])
        allowed = allowed_ceiling(base, new, config)
        deltas.append(CaseDelta(
            name=name, base=base, new=new, allowed=allowed,
            regressed=new.median > allowed,
            # Symmetric signal, informational only: the gate never
            # fails on a speedup, but a compare that prints "improved"
            # is how a perf PR proves its claim.
            improved=new.median < base.median * (1.0 - config.rel_tolerance),
        ))
    return Comparison(
        deltas=deltas,
        missing=sorted(set(base_cases) - set(new_cases)),
        added=sorted(set(new_cases) - set(base_cases)),
        base_label=str(base_doc.get("label", "")),
        new_label=str(new_doc.get("label", "")),
    )


def _verdict(delta: CaseDelta) -> str:
    if delta.regressed:
        return "REGRESSED"
    if delta.improved:
        return "improved"
    return "ok"


def render_table(comparison: Comparison) -> str:
    """The human-readable comparison table ``bench compare`` prints."""
    headers = ["case", "base median", "new median", "ratio", "allowed",
               "verdict"]
    rows = [
        (
            d.name,
            f"{d.base.median:.4f}s",
            f"{d.new.median:.4f}s",
            f"{d.ratio:.2f}x",
            f"{d.allowed:.4f}s",
            _verdict(d),
        )
        for d in comparison.deltas
    ]
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    lines = [
        f"bench compare: {comparison.base_label or 'baseline'} -> "
        f"{comparison.new_label or 'new'}",
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths))
              for row in rows]
    if comparison.missing:
        lines.append(f"missing in new run: {', '.join(comparison.missing)}")
    if comparison.added:
        lines.append(f"new cases (no baseline): "
                     f"{', '.join(comparison.added)}")
    if comparison.ok:
        lines.append(
            f"OK: {len(comparison.deltas)} case(s) within thresholds"
            + (f", {len(comparison.improvements)} improved"
               if comparison.improvements else ""))
    else:
        worst = max(comparison.regressions, key=lambda d: d.ratio)
        lines.append(
            f"REGRESSION: {len(comparison.regressions)} case(s) over "
            f"threshold (worst: {worst.name} at {worst.ratio:.2f}x)")
    return "\n".join(lines)
