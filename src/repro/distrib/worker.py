"""The remote worker agent behind ``python -m repro worker``.

A :class:`WorkerAgent` is the pull half of the fleet: ``num_workers``
slot threads loop ``claim -> run -> settle`` against a coordinator's
HTTP claim protocol, executing every job through the *existing* sweep
executor (:func:`repro.runner.executor.run_sweep` on a single-job
campaign) -- the same wall timeouts, bounded retries, process
isolation, content-addressed result cache, and chaos hooks as the
coordinator's local pool.  A job computed here is byte-for-byte the
job ``repro sweep`` would have computed; the distributed equivalence
tests pin that down.

Mirrors of the local pool's supervision contract:

* **Leases + fencing.**  Every claim is renewed from a per-job
  heartbeat thread; a renewal answered ``lost`` means the reaper took
  the job (our fence is stale), so the slot stops computing and skips
  the settle -- the re-run under the new claim hits the cache on the
  coordinator and settles identically.
* **Remote cancel.**  The heartbeat response carries the job's
  ``cancel_requested`` flag; the slot hands the executor a
  ``cancel_check`` wired to it, so a ``DELETE`` on the coordinator
  cancels a remotely-running job within one heartbeat interval plus
  one executor poll.
* **Deadlines.**  The claim document carries ``deadline_at``; a job
  claimed past it settles ``deadline_exceeded`` without computing, and
  otherwise the remaining budget clamps the executor's wall timeout.
* **Attempt continuity.**  ``attempt_base`` carries the store-level
  attempt count into the executor, so chaos plans keyed on attempt
  numbers behave identically whether the job runs locally, remotely,
  or bounces between workers across a reap.
* **Graceful drain.**  SIGINT/SIGTERM set the agent's stop event: the
  executor finishes the in-flight attempt, unstarted claims are
  *released* back to the queue (attempt refunded), slots join within
  ``drain_timeout_seconds``, and the agent deregisters.  Anything
  still running past the timeout is abandoned to its lease -- the
  reaper requeues it, never loses it.

The settle payload ships the result document (written to the
coordinator's cache before the store transition) and the job's trace
spans, so a traced coordinator sees remote work in the same timeline
as local work.
"""

from __future__ import annotations

import logging
import os
import signal
import socket
import threading
import time

from repro.core.config import DistribConfig, RunnerConfig
from repro.exceptions import AdmissionError, ServiceError
from repro.obs.trace import Tracer
from repro.runner.cache import ResultCache
from repro.runner.executor import run_sweep
from repro.runner.jobs import Job

from repro.distrib.client import FleetClient

logger = logging.getLogger(__name__)


class WorkerAgent:
    """``num_workers`` slots pulling jobs from one coordinator.

    Args:
        connect_url: ``http://host:port`` of the coordinating service.
        config: Fleet knobs (slots, lease/heartbeat cadence, retry
            budget, drain timeout).
        runner_config: Executor knobs for the jobs themselves; defaults
            match the scheduler's (2 pooled workers when isolating).
        worker_id: Fleet identity; defaults to ``<hostname>-<pid>``.
        cache_dir: Local result-cache directory; ``None`` runs
            cacheless (the coordinator's cache still dedups re-runs,
            because results ship in the settle payload).
        isolate_jobs: Run each job in a worker *process* (the
            executor's pooled path) so a segfaulting solve costs one
            job, not the agent.
    """

    def __init__(self, connect_url: str,
                 config: DistribConfig | None = None,
                 runner_config: RunnerConfig | None = None,
                 worker_id: str | None = None,
                 cache_dir: str | os.PathLike | None = None,
                 isolate_jobs: bool = True):
        self.config = config or DistribConfig()
        self.worker_id = worker_id \
            or f"{socket.gethostname()}-{os.getpid()}"
        self.client = FleetClient(connect_url, self.worker_id,
                                  config=self.config)
        self.runner_config = runner_config or RunnerConfig(
            num_workers=2 if isolate_jobs else 1)
        self.isolate_jobs = isolate_jobs
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._counts_lock = threading.Lock()
        #: Settled-job tally by terminal state (``done``/``failed``/
        #: ``cancelled``/``stale``/``released``), for drain-time logs
        #: and tests.
        self.counts: dict[str, int] = {}

    @property
    def stop_event(self) -> threading.Event:
        """The drain signal (shared with in-flight ``run_sweep`` calls)."""
        return self._stop

    def _count(self, outcome: str) -> None:
        with self._counts_lock:
            self.counts[outcome] = self.counts.get(outcome, 0) + 1

    def start(self) -> None:
        """Register with the coordinator and start the slot threads."""
        self._stop.clear()
        self.client.register(capacity=self.config.num_workers,
                             host=socket.gethostname(), pid=os.getpid())
        logger.info("worker %s registered (%d slot(s))", self.worker_id,
                    self.config.num_workers)
        for index in range(self.config.num_workers):
            thread = threading.Thread(
                target=self._slot_loop, args=(index,),
                name=f"repro-fleet-slot-{index}", daemon=True)
            self._threads.append(thread)
            thread.start()

    def stop(self, drain: bool = True) -> None:
        """Request a stop, join the slots, deregister.

        With ``drain`` (the default) in-flight jobs get
        ``drain_timeout_seconds`` to settle; without it the join is
        immediate.  Abandoned claims are left to their leases -- the
        coordinator's reaper requeues them.
        """
        self._stop.set()
        timeout = self.config.drain_timeout_seconds if drain else 0.0
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        abandoned = [t for t in self._threads if t.is_alive()]
        self._threads = abandoned
        if abandoned:
            logger.warning(
                "%d slot(s) still busy after drain timeout; their "
                "claims will lapse and be reaped", len(abandoned))
        try:
            self.client.deregister()
        except ServiceError as exc:
            # Deregistration is bookkeeping, not correctness -- a
            # coordinator that died first must not turn a clean drain
            # into a crash.
            logger.warning("could not deregister %s: %s",
                           self.worker_id, exc)

    def run_until_idle(self) -> int:
        """Drain the coordinator's queue on the calling thread (tests).

        Returns:
            How many claims this call processed (settled or released).
        """
        processed = 0
        while not self._stop.is_set():
            if not self._run_one():
                break
            processed += 1
        return processed

    def _slot_loop(self, index: int) -> None:
        while not self._stop.is_set():
            try:
                ran = self._run_one()
            except AdmissionError as exc:
                # The coordinator shed our claim: honor its Retry-After
                # instead of thundering back.
                self._stop.wait(exc.retry_after
                                or self.config.poll_interval_seconds)
                continue
            except ServiceError as exc:
                # Transport retries are already spent inside the
                # client; treat a still-unreachable coordinator as a
                # long poll, not a crash -- it may be restarting.
                logger.warning("slot %d: coordinator unreachable: %s",
                               index, exc)
                self._stop.wait(self.config.poll_interval_seconds)
                continue
            if not ran:
                self._stop.wait(self.config.poll_interval_seconds)

    def _run_one(self) -> bool:
        """Claim and settle one job; False when the queue is empty."""
        claimed, retry_after = self.client.claim(
            lease_seconds=self.config.lease_seconds)
        if claimed is None:
            return False
        analysis_id, key = claimed["analysis_id"], claimed["key"]
        token = claimed["claim_token"]
        if self._stop.is_set():
            # Drain request raced the claim: hand it straight back so
            # the attempt is refunded instead of burning a lease.
            self.client.release(analysis_id, key, token)
            self._count("released")
            return True
        job = Job(payload=claimed["payload"])

        wall_timeout = None
        if claimed["deadline_at"] is not None:
            remaining = claimed["deadline_at"] - time.time()
            if remaining <= 0:
                self.client.settle(
                    analysis_id, key, token, "failed",
                    status="deadline_exceeded",
                    error="deadline_exceeded: end-to-end deadline passed "
                          "before the job could start")
                self._count("failed")
                return True
            default_wall = self.runner_config.wall_timeout_for(
                job.params.get("time_limit"))
            wall_timeout = remaining if default_wall is None \
                else min(default_wall, remaining)

        cancel = threading.Event()
        lost = threading.Event()
        heartbeat_stop = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(analysis_id, key, token, heartbeat_stop, cancel, lost),
            name="repro-fleet-heartbeat", daemon=True)
        heartbeat.start()

        tracer = Tracer()
        try:
            outcome = run_sweep(
                [job],
                num_workers=2 if self.isolate_jobs else 1,
                cache=self.cache,
                config=self.runner_config,
                wall_timeout=wall_timeout,
                tracer=tracer,
                handle_signals=False,
                stop_event=self._stop,
                cancel_check=cancel.is_set,
                # Store-level attempt numbers carried over, so chaos
                # plans keyed on attempts behave identically to the
                # local pool across reaps and worker hops.
                attempt_base=claimed["attempts"] - 1,
            )
        except Exception as exc:
            logger.exception("job %s failed outside the executor",
                             key[:12])
            settled = self.client.settle(
                analysis_id, key, token, "failed", status="error",
                error=f"{type(exc).__name__}: {exc}")
            self._count("failed" if settled else "stale")
            return True
        finally:
            heartbeat_stop.set()
            heartbeat.join(timeout=1.0)

        if lost.is_set():
            # The reaper took this job mid-run; our fence is stale and
            # a settle would only be refused.  The re-claim recomputes
            # (or cache-hits) and settles the identical result.
            logger.warning(
                "claim for job %s was reaped while running; discarding "
                "the stale outcome", key[:12])
            self._count("stale")
            return True
        if outcome.interrupted and not outcome.outcomes:
            # Drain landed before the attempt started: refund it.
            released = self.client.release(analysis_id, key, token)
            self._count("released" if released else "stale")
            return True

        settled_outcome = outcome.outcomes[0]
        spans = tracer.export() or None
        if settled_outcome.status == "cancelled":
            landed = self.client.settle(
                analysis_id, key, token, "cancelled", status="cancelled",
                error=settled_outcome.error, spans=spans)
            self._count("cancelled" if landed else "stale")
        elif settled_outcome.ok:
            landed = self.client.settle(
                analysis_id, key, token, "done",
                status=settled_outcome.status,
                result=settled_outcome.result, spans=spans)
            self._count("done" if landed else "stale")
        else:
            landed = self.client.settle(
                analysis_id, key, token, "failed",
                status=settled_outcome.status,
                error=settled_outcome.error, spans=spans)
            self._count("failed" if landed else "stale")
        if not landed:
            logger.warning(
                "settle for job %s refused by the fence (reaped and "
                "re-claimed); the re-run settles identically", key[:12])
        return True

    def _heartbeat_loop(self, analysis_id: str, key: str, token: str,
                        stop: threading.Event, cancel: threading.Event,
                        lost: threading.Event) -> None:
        interval = self.config.resolved_heartbeat_interval()
        while not stop.wait(interval):
            try:
                doc = self.client.heartbeat(
                    analysis_id, key, token, self.config.lease_seconds)
            except ServiceError:
                # Retries already spent in the client; the lease keeps
                # aging but the claim may still be ours -- try again at
                # the next tick, and let the reaper arbitrate if the
                # coordinator stays unreachable.
                logger.warning("heartbeat for job %s failed", key[:12])
                continue
            if doc.get("outcome") == "lost":
                # Reaped out from under us: stop renewing AND stop
                # computing -- the answer now belongs to the new claim,
                # and our settle would be refused anyway.
                lost.set()
                cancel.set()
                return
            if doc.get("cancel_requested"):
                cancel.set()

    def run_forever(self) -> None:
        """Block until the stop event fires (signal handlers set it)."""
        while not self._stop.wait(0.2):
            pass


def run_worker(connect_url: str, config: DistribConfig | None = None,
               worker_id: str | None = None,
               cache_dir: str | os.PathLike | None = None,
               isolate_jobs: bool = True,
               runner_config: RunnerConfig | None = None) -> int:
    """The ``repro worker`` entry point: run an agent until signalled.

    Installs SIGINT/SIGTERM handlers that trigger a graceful drain
    (release unstarted claims, finish in-flight jobs within the drain
    timeout, deregister), then exits 0.

    Returns:
        Process exit code.
    """
    agent = WorkerAgent(connect_url, config=config, worker_id=worker_id,
                        cache_dir=cache_dir, isolate_jobs=isolate_jobs,
                        runner_config=runner_config)

    def _signalled(signum, frame):
        logger.info("worker %s: received signal %d, draining",
                    agent.worker_id, signum)
        agent.stop_event.set()

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        previous[sig] = signal.signal(sig, _signalled)
    try:
        agent.start()
        agent.run_forever()
        agent.stop(drain=True)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    logger.info("worker %s drained: %s", agent.worker_id,
                agent.counts or "no jobs")
    return 0
