"""Distributed worker fleet: remote job execution over HTTP.

The analysis service's durable queue (:mod:`repro.service`) was built
around one invariant -- every job reaches a terminal state exactly
once, with the answer a direct ``repro sweep`` would have produced --
and its claim path (fenced tokens, time-bounded leases, the reaper)
already enforces that invariant against crashing and wedging *local*
worker threads.  This package stretches the same claim path across
machine boundaries:

* :class:`~repro.distrib.client.FleetClient` -- the wire protocol: a
  :class:`~repro.service.client.ServiceClient` extended with the
  fenced claim endpoints (``POST /v1/claims``, per-claim
  heartbeat/settle/release) plus worker registration, with bounded
  deterministic retries and the ``distrib.*`` chaos sites.
* :class:`~repro.distrib.worker.WorkerAgent` -- the pull-based agent
  behind ``python -m repro worker``: N slots claiming jobs over HTTP,
  executing each through the *existing* sweep executor (same cache,
  retries, wall timeouts, cooperative cancel, and trace spans as the
  local pool), renewing leases from a heartbeat thread, and draining
  gracefully on SIGINT/SIGTERM.

Nothing here adds a second execution engine or a second state machine:
a remote worker is just another consumer of
:meth:`repro.service.store.JobStore.claim`, reached through HTTP
instead of a function call, so every supervision guarantee the local
pool enjoys -- reaping, quarantine, fencing against stale settles --
applies to the fleet unchanged.
"""

from repro.distrib.client import FleetClient
from repro.distrib.worker import WorkerAgent, run_worker

__all__ = ["FleetClient", "WorkerAgent", "run_worker"]
