"""The fleet side of the claim protocol: an HTTP client for workers.

:class:`FleetClient` extends :class:`~repro.service.client.ServiceClient`
with the endpoints a remote worker agent needs -- claim, heartbeat,
settle, release, and worker registration -- and gives every one of them
bounded, deterministic retries, because *each is replay-safe by
construction*:

* **claim** -- a claim request that died on the wire claimed nothing; a
  claim whose *response* was lost left an orphaned lease that simply
  lapses and is reaped.  Either way a retry is harmless.
* **heartbeat / release** -- fenced on the claim token; a replay either
  renews/releases the same claim again (idempotent) or is refused with
  409 because the claim is no longer live.
* **settle** -- a replay of a settle that in fact landed is refused
  (409) by the fence; the agent treats that as *already settled*, which
  is exactly what it means.
* **register / deregister** -- upserts keyed on the worker id.

The ``distrib.claim`` / ``distrib.heartbeat`` / ``distrib.settle``
chaos sites (:mod:`repro.resilience.faults`) hook the per-attempt send
path here: a firing site drops the request *before it reaches the
wire*, consuming one retry attempt -- so a plan with the default
``attempts=(1,)`` makes the first send vanish and the retry succeed,
deterministically, with no real network flakiness required.

HTTP error responses are never retried -- they are answers (409 = the
fence refused you; 429 = back off), not transport failures.
"""

from __future__ import annotations

import time

from repro.core.config import DistribConfig
from repro.exceptions import ServiceError
from repro.resilience.faults import maybe_fire
from repro.service.client import ServiceClient


class FleetClient(ServiceClient):
    """A worker agent's connection to one coordinator.

    Args:
        base_url: ``http://host:port`` of the coordinating service.
        worker_id: This worker's fleet identity; sent as ``X-Client``
            and stamped on every claim.
        config: Fleet knobs (timeouts, retry budget, backoff shape).
    """

    def __init__(self, base_url: str, worker_id: str,
                 config: DistribConfig | None = None):
        config = config or DistribConfig()
        super().__init__(
            base_url, client_id=worker_id,
            timeout=config.request_timeout_seconds,
            retries=config.retries,
            retry_backoff_seconds=config.retry_backoff_seconds,
            retry_backoff_max_seconds=config.retry_backoff_max_seconds)
        self.worker_id = worker_id
        self.config = config

    def _fleet_request(self, site: str, key: str, method: str, path: str,
                       body: dict | None = None) -> tuple[int, dict, dict]:
        """One fleet exchange with per-attempt chaos and retries.

        Mirrors :meth:`ServiceClient._request` but threads the attempt
        number through the ``site`` chaos hook, so injected wire drops
        consume retry attempts exactly like real transport failures.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                if maybe_fire(site, key=key, attempt=attempt):
                    # Dropped before the send: the coordinator never
                    # saw this attempt.  Same marker as a transport
                    # failure (no status) so the retry logic below is
                    # shared.
                    raise ServiceError(
                        f"injected {site} drop for {key[:12]} "
                        f"(attempt {attempt})")
                return self._request_once(method, path, body)
            except ServiceError as exc:
                transient = exc.status is None
                if not transient or attempt > self.retries:
                    raise
            time.sleep(self._backoff(attempt, key=f"{site}:{key}"))

    # -- worker registration --------------------------------------------

    def register(self, capacity: int = 1, kind: str = "remote",
                 host: str | None = None, pid: int | None = None) -> dict:
        """Announce this worker to the coordinator (idempotent upsert)."""
        status, doc, headers = self._request(
            "POST", "/v1/workers",
            {"id": self.worker_id, "kind": kind, "host": host,
             "pid": pid, "capacity": int(capacity)},
            idempotent=True)
        self._raise_for(status, doc, headers)
        return doc

    def deregister(self) -> bool:
        """Stamp this worker as drained; False if it was never known."""
        status, doc, headers = self._request(
            "DELETE", f"/v1/workers/{self.worker_id}", idempotent=True)
        if status == 404:
            return False
        self._raise_for(status, doc, headers)
        return True

    def fleet(self) -> dict:
        """The coordinator's registered-worker roster."""
        status, doc, headers = self._request("GET", "/v1/workers")
        self._raise_for(status, doc, headers)
        return doc

    # -- the fenced claim protocol --------------------------------------

    def claim(self, lease_seconds: float | None = None
              ) -> tuple[dict | None, float]:
        """Claim the best queued job, or learn the queue is empty.

        Returns:
            ``(claim, retry_after)``: the claim document (with its
            ``claim_token`` fence and ``lease_expires_at``) or ``None``
            on an empty queue, plus the coordinator's poll-back hint in
            seconds.

        Raises:
            AdmissionError: The coordinator shed this claim (the fleet
                is polling past ``max_claims_per_second``); carries the
                ``Retry-After`` to honor.
        """
        body: dict = {"worker": self.worker_id}
        if lease_seconds is not None:
            body["lease_seconds"] = float(lease_seconds)
        status, doc, headers = self._fleet_request(
            "distrib.claim", self.worker_id, "POST", "/v1/claims", body)
        self._raise_for(status, doc, headers)
        retry_after = float(
            doc.get("retry_after_seconds")
            or self.config.poll_interval_seconds)
        return doc.get("claim"), retry_after

    def heartbeat(self, analysis_id: str, key: str, token: str,
                  lease_seconds: float) -> dict:
        """Renew a claim's lease; the response is also the cancel channel.

        Returns:
            ``{"outcome": "lost"}`` when the fence refused the renewal
            (the claim was reaped, settled, or superseded -- stop
            beating); otherwise the coordinator's document carrying
            ``outcome`` and ``cancel_requested``.
        """
        status, doc, headers = self._fleet_request(
            "distrib.heartbeat", key, "POST",
            f"/v1/claims/{analysis_id}/{key}/heartbeat",
            {"token": token, "lease_seconds": float(lease_seconds)})
        if status == 409:
            return {"outcome": "lost"}
        self._raise_for(status, doc, headers)
        return doc

    def settle(self, analysis_id: str, key: str, token: str, state: str,
               status: str | None = None, error: str | None = None,
               result: dict | None = None,
               spans: list[dict] | None = None) -> bool:
        """Commit a claim's terminal state to the coordinator.

        Returns:
            ``True`` when this settle landed; ``False`` when the fence
            refused it (stale claim, or a replay of a settle that
            already landed) -- the job is terminal either way, just not
            by our hand, so the agent moves on.
        """
        body: dict = {"token": token, "state": state}
        if status is not None:
            body["status"] = status
        if error is not None:
            body["error"] = error
        if result is not None:
            body["result"] = result
        if spans:
            body["spans"] = spans
        http_status, doc, headers = self._fleet_request(
            "distrib.settle", key, "POST",
            f"/v1/claims/{analysis_id}/{key}/settle", body)
        if http_status == 409:
            return False
        self._raise_for(http_status, doc, headers)
        return True

    def release(self, analysis_id: str, key: str, token: str) -> bool:
        """Hand an unstarted claim back (drain path); False if stale."""
        status, doc, headers = self._fleet_request(
            "distrib.claim", key, "POST",
            f"/v1/claims/{analysis_id}/{key}/release", {"token": token})
        if status == 409:
            return False
        self._raise_for(status, doc, headers)
        return True

    def claims(self) -> dict:
        """The coordinator's active-claim listing (ops visibility)."""
        status, doc, headers = self._request("GET", "/v1/claims")
        self._raise_for(status, doc, headers)
        return doc
