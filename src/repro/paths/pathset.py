"""The ordered primary/backup path model Raha's encodings consume.

The paper orders each demand's paths as "the first ``n_kp`` are primary
and the remaining are an ordered list of backups" (Eq. 5).  Backups
activate in order: the r-th backup may carry traffic only once at least
``r`` higher-priority paths (primary or earlier backup) are down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.exceptions import PathError
from repro.network.demand import Pair
from repro.network.topology import Topology
from repro.paths.ksp import Path, WeightFn, k_shortest_paths


@dataclass
class DemandPaths:
    """The ordered paths configured for one demand pair.

    Attributes:
        pair: The ``(source, destination)`` demand.
        paths: All paths, primaries first, then backups in fail-over order.
        num_primary: How many of ``paths`` are primary (``n_kp``).
    """

    pair: Pair
    paths: list[Path]
    num_primary: int

    def __post_init__(self):
        if not self.paths:
            raise PathError(f"demand {self.pair} has no paths")
        if not (1 <= self.num_primary <= len(self.paths)):
            raise PathError(
                f"demand {self.pair}: num_primary={self.num_primary} out of "
                f"range for {len(self.paths)} paths"
            )
        src, dst = self.pair
        for path in self.paths:
            if path[0] != src or path[-1] != dst:
                raise PathError(
                    f"path {path} does not connect {src!r} to {dst!r}"
                )
        if len(set(self.paths)) != len(self.paths):
            raise PathError(f"demand {self.pair} has duplicate paths")

    @property
    def primaries(self) -> list[Path]:
        """The primary paths (usable while they are up)."""
        return self.paths[: self.num_primary]

    @property
    def backups(self) -> list[Path]:
        """The ordered backup paths (``B_k``)."""
        return self.paths[self.num_primary:]

    @property
    def num_backup(self) -> int:
        return len(self.paths) - self.num_primary

    def validate_against(self, topology: Topology) -> None:
        """Check every path is simple and uses existing LAGs."""
        for path in self.paths:
            if not topology.path_is_valid(path):
                raise PathError(f"invalid path {path} for {self.pair}")


class PathSet(dict):
    """Mapping from demand pair to :class:`DemandPaths`.

    Build directly from explicit paths (any tunnel selection policy), or
    with :meth:`k_shortest` for the paper's default.

    Attributes:
        computation_seconds: Time spent computing paths; the paper includes
            path computation in its runtime numbers (Section 8.5), so the
            experiment harness adds this to solve times.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.computation_seconds: float = 0.0

    @classmethod
    def k_shortest(
        cls,
        topology: Topology,
        pairs: list[Pair],
        num_primary: int = 2,
        num_backup: int = 1,
        weight: WeightFn | None = None,
    ) -> PathSet:
        """Compute ``num_primary + num_backup`` shortest paths per pair.

        Pairs with fewer available routes keep what exists (at least one
        path is required; unreachable pairs raise :class:`PathError`).
        """
        started = time.monotonic()
        out = cls()
        for pair in pairs:
            src, dst = pair
            want = num_primary + num_backup
            paths = k_shortest_paths(topology, src, dst, k=want, weight=weight)
            if not paths:
                raise PathError(f"no route between {src!r} and {dst!r}")
            primary = min(num_primary, len(paths))
            out[pair] = DemandPaths(pair=pair, paths=paths, num_primary=primary)
        out.computation_seconds = time.monotonic() - started
        return out

    def validate_against(self, topology: Topology) -> None:
        """Validate every demand's paths against a topology."""
        for demand_paths in self.values():
            demand_paths.validate_against(topology)

    def restricted_to(self, pairs) -> PathSet:
        """A new PathSet containing only the given pairs."""
        wanted = set(pairs)
        out = PathSet({p: dp for p, dp in self.items() if p in wanted})
        out.computation_seconds = self.computation_seconds
        return out

    def max_paths_per_demand(self) -> int:
        """The largest path count over all demands."""
        return max(len(dp.paths) for dp in self.values()) if self else 0
