"""Greedy edge-disjoint path selection.

Section 9 ("On paths") observes that non-edge-disjoint path sets let Raha
"create larger degradations when it picks links that participate in a
larger number of paths".  Operators who want to harden a WAN therefore
prefer (partially) disjoint path sets; this module provides the standard
greedy construction: repeatedly take a shortest path, then ban its LAGs.
"""

from __future__ import annotations

from repro.exceptions import PathError
from repro.network.topology import Topology
from repro.paths.ksp import Path, WeightFn, shortest_path


def edge_disjoint_paths(
    topology: Topology,
    source: str,
    target: str,
    k: int,
    weight: WeightFn | None = None,
) -> list[Path]:
    """Up to ``k`` mutually edge-disjoint paths, shortest first.

    Greedy (not max-flow based), matching what WAN controllers typically
    deploy; returns fewer than ``k`` paths when disjoint routes run out.

    Raises:
        PathError: If no path at all exists between the endpoints.
    """
    if k < 1:
        raise PathError(f"k must be positive, got {k}")
    banned: set = set()
    paths: list[Path] = []
    for _ in range(k):
        path = shortest_path(
            topology, source, target, weight=weight,
            banned_lags=frozenset(banned),
        )
        if path is None:
            break
        paths.append(path)
        for lag in topology.lags_on_path(path):
            banned.add(lag.key)
    if not paths:
        raise PathError(f"no route between {source!r} and {target!r}")
    return paths
