"""Demand-oblivious routing templates (Azar et al. [4]).

The paper lists oblivious routing as one of the tunnel-selection schemes
Raha supports.  An oblivious template fixes, per demand, the *fractions*
of traffic sent down each candidate path -- independent of the actual
demand matrix -- and is judged by its *performance ratio*: the worst
case, over all demand matrices routable with congestion 1, of the
congestion the template causes.

This module computes the optimal path-restricted template with the
classical constraint-generation scheme (the LP-duality approach of
Applegate & Cohen made iterative):

1. **Master LP**: minimize ``r`` subject to, for every adversarial demand
   matrix found so far and every LAG, template load <= ``r *`` capacity.
2. **Separation LP** (per LAG): find the demand matrix maximizing that
   LAG's template load among matrices routable with congestion <= 1 on
   the same candidate paths.  A violation joins the pool; repeat.

The loop terminates because each round adds a most-violated constraint
of the (finitely generated) adversarial polytope.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.exceptions import ModelingError, PathError
from repro.network.demand import Pair
from repro.network.topology import LagKey, Topology
from repro.paths.ksp import Path
from repro.paths.pathset import DemandPaths, PathSet
from repro.solver import Model, quicksum


@dataclass
class ObliviousRouting:
    """An oblivious routing template and its performance ratio.

    Attributes:
        fractions: ``(pair, path) -> fraction`` of the pair's demand the
            template sends down that path (fractions sum to 1 per pair).
        ratio: The template's performance ratio against the best
            path-restricted routing (>= 1; equal to 1 only when one
            routing is simultaneously optimal for all demands).
        iterations: Constraint-generation rounds used.
    """

    fractions: dict[tuple[Pair, Path], float]
    ratio: float
    iterations: int

    def to_pathset(self, paths: PathSet) -> PathSet:
        """The input path set reordered by template fraction.

        Raha takes paths as input; ordering them by oblivious fraction
        (all primary) lets the analyzer evaluate the oblivious design.
        """
        out = PathSet()
        for pair, dp in paths.items():
            ordered = sorted(
                dp.paths,
                key=lambda p: self.fractions.get((pair, p), 0.0),
                reverse=True,
            )
            out[pair] = DemandPaths(pair=pair, paths=ordered,
                                    num_primary=len(ordered))
        out.computation_seconds = paths.computation_seconds
        return out


def _template_loads(topology, paths, fractions):
    """Per-LAG expressions of template load coefficients u_ke."""
    loads: dict[LagKey, dict[Pair, float]] = defaultdict(lambda: defaultdict(float))
    for (pair, path), fraction in fractions.items():
        if fraction <= 0:
            continue
        for lag in topology.lags_on_path(path):
            loads[lag.key][pair] += fraction
    return loads


def _separation(topology: Topology, paths: PathSet, loads_on_lag,
                capacity: float):
    """Worst congestion-1-routable demand for one LAG's template load."""
    model = Model("oblivious-sep")
    demand = {pair: model.add_var(name=f"d[{pair}]") for pair in paths}
    flow: dict[tuple[Pair, Path], object] = {}
    per_lag: dict[LagKey, list] = defaultdict(list)
    for pair, dp in paths.items():
        terms = []
        for path in dp.paths:
            y = model.add_var(name=f"y[{pair}]")
            flow[(pair, path)] = y
            terms.append(y)
            for lag in topology.lags_on_path(path):
                per_lag[lag.key].append(y)
        model.add_constr(quicksum(terms) == demand[pair])
    for key, vars_on_lag in per_lag.items():
        model.add_constr(
            quicksum(vars_on_lag) <= topology.require_lag(*key).capacity
        )
    objective = quicksum(
        coef * demand[pair] for pair, coef in loads_on_lag.items()
    )
    model.set_objective(objective, sense="max")
    result = model.solve().require_ok()
    worst = {pair: result.value(var) for pair, var in demand.items()}
    return result.objective / capacity, worst


def oblivious_routing(
    topology: Topology,
    paths: PathSet,
    max_iterations: int = 50,
    tol: float = 1e-6,
) -> ObliviousRouting:
    """Compute the optimal path-restricted oblivious template.

    Args:
        topology: The WAN.
        paths: Candidate paths per pair (all treated as usable).
        max_iterations: Constraint-generation budget.
        tol: Violation tolerance for termination.

    Raises:
        ModelingError: If the loop fails to converge in the budget
            (raise ``max_iterations`` for large instances).
    """
    if not paths:
        raise PathError("oblivious routing needs at least one demand")
    pairs = list(paths)
    pool: list[dict[Pair, float]] = [
        {pair: 1.0 if pair == seed else 0.0 for pair in pairs}
        for seed in pairs
    ]

    for iteration in range(1, max_iterations + 1):
        # Master: best template against the adversarial pool.
        master = Model("oblivious-master")
        ratio = master.add_var(name="r")
        x = {}
        for pair, dp in paths.items():
            fractions = [
                master.add_var(ub=1.0, name=f"x[{pair}][{j}]")
                for j in range(len(dp.paths))
            ]
            for j, path in enumerate(dp.paths):
                x[(pair, path)] = fractions[j]
            master.add_constr(quicksum(fractions) == 1.0)
        for demand in pool:
            per_lag: dict[LagKey, list] = defaultdict(list)
            for pair, dp in paths.items():
                volume = demand.get(pair, 0.0)
                if volume <= 0:
                    continue
                for path in dp.paths:
                    for lag in topology.lags_on_path(path):
                        per_lag[lag.key].append(volume * x[(pair, path)])
            for key, terms in per_lag.items():
                capacity = topology.require_lag(*key).capacity
                if capacity <= 0:
                    raise ModelingError(f"LAG {key} has zero capacity")
                master.add_constr(quicksum(terms) <= capacity * ratio)
        master.set_objective(ratio, sense="min")
        result = master.solve().require_ok()
        template = {key: result.value(var) for key, var in x.items()}
        current_ratio = result.objective

        # Separation: is some demand worse than current_ratio?
        loads = _template_loads(topology, paths, template)
        worst_violation = 0.0
        worst_demand = None
        for lag in topology.lags:
            if lag.key not in loads or lag.capacity <= 0:
                continue
            congestion, demand = _separation(
                topology, paths, loads[lag.key], lag.capacity
            )
            if congestion > current_ratio + tol and congestion > worst_violation:
                worst_violation = congestion
                worst_demand = demand
        if worst_demand is None:
            return ObliviousRouting(
                fractions=template,
                ratio=max(current_ratio, 1.0),
                iterations=iteration,
            )
        pool.append(worst_demand)
    raise ModelingError(
        f"oblivious routing did not converge in {max_iterations} iterations"
    )
