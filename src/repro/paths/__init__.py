"""Path selection: k-shortest paths, diversity-weighted and disjoint sets.

Raha takes the path set as an *input* ("this is why Raha supports any
path selection policy -- it runs k shortest path if this input is
missing").  This package provides:

* :mod:`repro.paths.pathset` -- the ordered primary/backup
  :class:`PathSet` model the encodings consume (Eq. 5's path ordering).
* :mod:`repro.paths.ksp` -- Yen's k-shortest-paths over a topology.
* :mod:`repro.paths.weighted` -- LAG-usage-penalized selection (the
  alternative scheme of Figure 13 that reduces fate sharing).
* :mod:`repro.paths.disjoint` -- greedy edge-disjoint selection.
"""

from repro.paths.disjoint import edge_disjoint_paths
from repro.paths.ksp import k_shortest_paths, shortest_path
from repro.paths.pathset import DemandPaths, PathSet
from repro.paths.weighted import diversity_weighted_paths

__all__ = [
    "DemandPaths",
    "PathSet",
    "diversity_weighted_paths",
    "edge_disjoint_paths",
    "k_shortest_paths",
    "shortest_path",
]
