"""Diversity-weighted path selection (the scheme behind Figure 13).

Plain k-shortest paths tends to reuse the same short LAGs, so "the paths
we find often share LAGs -- the algorithm exploits the increase in shared
failure modes to increase the degradation" (Figure 12's caption).  The
paper then repeats the experiment "with paths which we select differently
(we apply weights to LAGs to change which paths we select)" and the
degradation starts *decreasing* with more paths (Figure 13).

This module implements that alternative: paths are selected one at a time
and every selected path raises the weight of the LAGs it uses, steering
later paths away from shared LAGs (within one demand and across demands).
"""

from __future__ import annotations

import time
from collections import defaultdict

from repro.exceptions import PathError
from repro.network.demand import Pair
from repro.network.topology import Topology
from repro.paths.ksp import shortest_path
from repro.paths.pathset import DemandPaths, PathSet


def diversity_weighted_paths(
    topology: Topology,
    pairs: list[Pair],
    num_primary: int = 2,
    num_backup: int = 1,
    penalty: float = 1.0,
) -> PathSet:
    """Select paths with usage-penalized weights.

    Each LAG's weight is ``1 + penalty * uses`` where ``uses`` counts the
    already-selected paths crossing it; this mirrors "the k shortest path
    where we use the number of paths as the weight of each LAG"
    (Section D.3).  Duplicate paths within one demand are skipped by
    temporarily bumping their LAG weights until a new route appears.

    Args:
        topology: The WAN.
        pairs: Demands needing paths.
        num_primary: Primary paths per demand.
        num_backup: Backup paths per demand.
        penalty: Weight increment per selecting path.

    Returns:
        A :class:`PathSet` with ``computation_seconds`` filled in.
    """
    if penalty < 0:
        raise PathError(f"penalty must be nonnegative, got {penalty}")
    started = time.monotonic()
    uses: dict = defaultdict(int)
    out = PathSet()
    want = num_primary + num_backup
    for pair in pairs:
        src, dst = pair
        chosen = []
        local_bump: dict = defaultdict(int)

        def weight(lag):
            # The duplicate-avoidance bump is applied even with a zero
            # penalty, otherwise retries would find the same route forever.
            return 1.0 + penalty * uses[lag.key] + local_bump[lag.key]

        for _ in range(want * 3):  # retry budget for duplicate avoidance
            if len(chosen) >= want:
                break
            path = shortest_path(topology, src, dst, weight=weight)
            if path is None:
                break
            if path in chosen:
                # Discourage this exact route and retry.
                for lag in topology.lags_on_path(path):
                    local_bump[lag.key] += 1
                continue
            chosen.append(path)
            for lag in topology.lags_on_path(path):
                uses[lag.key] += 1
        if not chosen:
            raise PathError(f"no route between {src!r} and {dst!r}")
        out[pair] = DemandPaths(
            pair=pair, paths=chosen,
            num_primary=min(num_primary, len(chosen)),
        )
    out.computation_seconds = time.monotonic() - started
    return out
