"""Shortest path and Yen's k-shortest loopless paths over a topology.

Implemented from scratch (Dijkstra + Yen) rather than through networkx so
the path substrate has no hidden dependencies and deterministic
tie-breaking: ties are broken by path node sequence, which keeps every
experiment reproducible across runs.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro.exceptions import PathError
from repro.network.topology import Lag, LagKey, Topology

#: A path is a tuple of node names from source to destination.
Path = tuple[str, ...]

#: Weight function: LAG -> cost.  Defaults to hop count (weight 1).
WeightFn = Callable[[Lag], float]


def _unit_weight(_: Lag) -> float:
    return 1.0


def shortest_path(
    topology: Topology,
    source: str,
    target: str,
    weight: WeightFn | None = None,
    banned_lags: frozenset[LagKey] | None = None,
    banned_nodes: frozenset[str] | None = None,
) -> Path | None:
    """Dijkstra shortest path, or ``None`` when disconnected.

    Args:
        topology: The WAN.
        source: Start node.
        target: End node.
        weight: Per-LAG cost; hop count when omitted.  Must be positive.
        banned_lags: LAG keys that may not be traversed (used by Yen).
        banned_nodes: Nodes that may not be visited (used by Yen).
    """
    if source == target:
        raise PathError("source and target must differ")
    for node in (source, target):
        if not topology.has_node(node):
            raise PathError(f"unknown node {node!r}")
    weight = weight or _unit_weight
    banned_lags = banned_lags or frozenset()
    banned_nodes = banned_nodes or frozenset()
    if source in banned_nodes or target in banned_nodes:
        return None

    # Heap entries carry the path tuple for deterministic tie-breaking.
    heap: list[tuple[float, Path]] = [(0.0, (source,))]
    settled: set[str] = set()
    while heap:
        cost, path = heapq.heappop(heap)
        node = path[-1]
        if node == target:
            return path
        if node in settled:
            continue
        settled.add(node)
        for lag in topology.incident_lags(node):
            if lag.key in banned_lags:
                continue
            nxt = lag.other(node)
            if nxt in settled or nxt in banned_nodes or nxt in path:
                continue
            step = weight(lag)
            if step <= 0:
                raise PathError(f"nonpositive weight {step} on LAG {lag.key}")
            heapq.heappush(heap, (cost + step, path + (nxt,)))
    return None


def _path_cost(topology: Topology, path: Path, weight: WeightFn) -> float:
    return sum(weight(lag) for lag in topology.lags_on_path(path))


def k_shortest_paths(
    topology: Topology,
    source: str,
    target: str,
    k: int,
    weight: WeightFn | None = None,
) -> list[Path]:
    """Yen's algorithm: up to ``k`` loopless paths by increasing cost.

    Returns fewer than ``k`` paths when the graph does not contain that
    many distinct loopless routes.  This is the paper's default tunnel
    selection ("we use the k shortest path algorithm").
    """
    if k < 1:
        raise PathError(f"k must be positive, got {k}")
    weight = weight or _unit_weight
    first = shortest_path(topology, source, target, weight=weight)
    if first is None:
        return []
    accepted: list[Path] = [first]
    candidates: list[tuple[float, Path]] = []
    seen_candidates: set[Path] = {first}

    while len(accepted) < k:
        previous = accepted[-1]
        # Branch at every spur node of the previous accepted path.
        for spur_index in range(len(previous) - 1):
            spur_node = previous[spur_index]
            root = previous[: spur_index + 1]

            banned_lags = set()
            for path in accepted:
                if path[: spur_index + 1] == root and len(path) > spur_index + 1:
                    banned = topology.lag_between(
                        path[spur_index], path[spur_index + 1]
                    )
                    if banned is not None:
                        banned_lags.add(banned.key)
            banned_nodes = frozenset(root[:-1])

            spur = shortest_path(
                topology,
                spur_node,
                target,
                weight=weight,
                banned_lags=frozenset(banned_lags),
                banned_nodes=banned_nodes,
            )
            if spur is None:
                continue
            candidate = root[:-1] + spur
            if candidate in seen_candidates:
                continue
            seen_candidates.add(candidate)
            heapq.heappush(
                candidates, (_path_cost(topology, candidate, weight), candidate)
            )
        if not candidates:
            break
        _, best = heapq.heappop(candidates)
        accepted.append(best)
    return accepted
