"""Shared experiment harness and reporting used by the benchmarks.

Every figure/table benchmark in ``benchmarks/`` builds its workload
through :mod:`repro.analysis.experiments` (so the scaled-down instances
are consistent across figures) and prints its rows through
:mod:`repro.analysis.reporting` (so the output mirrors the paper's
figures in tabular form).
"""

from repro.analysis.continental import (
    ContinentalSplit,
    analyze_continents,
    split_continents,
)
from repro.analysis.experiments import BenchNetwork, bench_wan
from repro.analysis.reporting import format_table, print_table

__all__ = [
    "BenchNetwork",
    "ContinentalSplit",
    "analyze_continents",
    "bench_wan",
    "format_table",
    "print_table",
    "split_continents",
]
