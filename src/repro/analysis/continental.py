"""Per-continent analysis (Section 9, "On continental analysis").

"We analyze the WAN in each of our continents separately and then the
network that connects them.  This helps scale and allows us to quickly
find a mitigation, isolate, and explain where the network degrades."

Given a node-to-continent assignment, :func:`split_continents` carves the
WAN into per-continent subtopologies plus the *backbone*: the gateway
nodes (those with inter-continent LAGs) and the LAGs between them.
:func:`analyze_continents` then runs Raha on each piece with the demands
that piece owns and aggregates the findings, so an operator sees *where*
the risk lives instead of one global number.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.core.analyzer import RahaAnalyzer
from repro.core.config import RahaConfig
from repro.core.degradation import DegradationResult
from repro.exceptions import TopologyError
from repro.network.demand import Pair
from repro.network.topology import Topology
from repro.paths.pathset import PathSet


@dataclass
class ContinentalSplit:
    """The pieces of a continent-decomposed WAN.

    Attributes:
        continents: Continent name -> its subtopology (intra-continent
            nodes and LAGs only).
        backbone: The inter-continent network: gateway nodes plus the
            LAGs crossing continents.
        gateways: Continent name -> its gateway nodes (nodes with at
            least one inter-continent LAG).
    """

    continents: dict[str, Topology]
    backbone: Topology
    gateways: dict[str, list[str]] = field(default_factory=dict)


def split_continents(
    topology: Topology, assignment: Mapping[str, str]
) -> ContinentalSplit:
    """Split a WAN into per-continent topologies and the backbone.

    Args:
        topology: The global WAN.
        assignment: Node -> continent name; every node must be assigned.

    Raises:
        TopologyError: On unassigned nodes or empty continents.
    """
    for node in topology.nodes:
        if node not in assignment:
            raise TopologyError(f"node {node!r} has no continent assignment")

    names = sorted(set(assignment.values()))
    continents: dict[str, Topology] = {}
    for name in names:
        sub = Topology(name=f"{topology.name}:{name}")
        members = [n for n in topology.nodes if assignment[n] == name]
        if not members:
            raise TopologyError(f"continent {name!r} has no nodes")
        sub.add_nodes(members)
        continents[name] = sub

    backbone = Topology(name=f"{topology.name}:backbone")
    gateway_sets: dict[str, set[str]] = {name: set() for name in names}
    for lag in topology.lags:
        cu, cv = assignment[lag.u], assignment[lag.v]
        if cu == cv:
            sub = continents[cu]
            copied = sub.add_lag(lag.u, lag.v,
                                 link_capacities=[l.capacity for l in lag.links])
            copied.links = list(lag.links)
        else:
            for node in (lag.u, lag.v):
                if not backbone.has_node(node):
                    backbone.add_node(node)
            copied = backbone.add_lag(
                lag.u, lag.v, link_capacities=[l.capacity for l in lag.links]
            )
            copied.links = list(lag.links)
            gateway_sets[cu].add(lag.u)
            gateway_sets[cv].add(lag.v)
    return ContinentalSplit(
        continents=continents,
        backbone=backbone,
        gateways={name: sorted(nodes) for name, nodes in gateway_sets.items()},
    )


@dataclass
class ContinentalFinding:
    """One piece's analysis outcome."""

    name: str
    result: DegradationResult | None
    skipped_reason: str = ""


def analyze_continents(
    topology: Topology,
    assignment: Mapping[str, str],
    demands: Mapping[Pair, float],
    num_primary: int = 2,
    num_backup: int = 1,
    probability_threshold: float | None = 1e-4,
    time_limit: float = 120.0,
) -> list[ContinentalFinding]:
    """Run the fixed-demand analysis per continent and on the backbone.

    Demands whose endpoints share a continent are analyzed inside it;
    demands between gateways are analyzed on the backbone.  Demands
    between non-gateway nodes of different continents are skipped with a
    note (analyzing them end-to-end requires the gateway-equivalence
    transformation of Section 9; see :mod:`repro.network.virtual`).

    Returns:
        One finding per piece, ordered: continents (sorted), backbone.
    """
    split = split_continents(topology, assignment)
    findings: list[ContinentalFinding] = []

    def analyze_piece(name, piece, piece_demands):
        if not piece_demands:
            return ContinentalFinding(
                name=name, result=None, skipped_reason="no demands",
            )
        try:
            paths = PathSet.k_shortest(
                piece, list(piece_demands), num_primary=num_primary,
                num_backup=num_backup,
            )
        except Exception as exc:  # disconnected piece
            return ContinentalFinding(
                name=name, result=None, skipped_reason=str(exc),
            )
        config = RahaConfig(
            fixed_demands=dict(piece_demands),
            probability_threshold=probability_threshold,
            time_limit=time_limit,
        )
        result = RahaAnalyzer(piece, paths, config).analyze()
        return ContinentalFinding(name=name, result=result)

    for name in sorted(split.continents):
        piece = split.continents[name]
        local = {
            pair: volume for pair, volume in demands.items()
            if assignment[pair[0]] == name and assignment[pair[1]] == name
        }
        findings.append(analyze_piece(name, piece, local))

    backbone_nodes = set(split.backbone.nodes)
    crossing = {
        pair: volume for pair, volume in demands.items()
        if assignment[pair[0]] != assignment[pair[1]]
    }
    on_backbone = {
        pair: volume for pair, volume in crossing.items()
        if pair[0] in backbone_nodes and pair[1] in backbone_nodes
    }
    findings.append(analyze_piece("backbone", split.backbone, on_backbone))
    skipped = len(crossing) - len(on_backbone)
    if skipped:
        findings[-1].skipped_reason = (
            f"{skipped} cross-continent demands not between gateways were "
            "skipped; attach virtual gateway nodes to analyze them"
        )
    return findings
