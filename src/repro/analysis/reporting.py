"""ASCII tables for benchmark output.

The paper's evaluation is figures; our benchmarks regenerate each one as
a table of the same series (x value, series label, y value) so the shape
-- who wins, by what factor, where crossovers fall -- is inspectable in
CI logs without a plotting stack.
"""

from __future__ import annotations

from collections.abc import Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence]) -> str:
    """Render a fixed-width table with a title rule."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [title, "=" * max(len(title), sum(widths) + 2 * len(widths))]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


#: Tables printed during this process, in order.  The benchmarks\'
#: conftest replays them in pytest\'s terminal summary so the recorded
#: ``pytest benchmarks/ --benchmark-only`` output contains every figure
#: even though pytest captures per-test stdout.
recorded_tables: list[str] = []


def print_table(title: str, headers: Sequence[str],
                rows: Sequence[Sequence]) -> None:
    """Print a table and record it for end-of-run replay.

    The inline print is visible under ``-s`` (and in plain scripts); the
    recorded copy is what survives pytest\'s output capture.
    """
    text = format_table(title, headers, rows)
    recorded_tables.append(text)
    print("\n" + text, flush=True)
