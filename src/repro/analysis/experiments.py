"""Standard scaled-down experiment instances for the benchmarks.

The paper's evaluation runs on a ~76-node production WAN with Gurobi for
tens of minutes per point.  Our CI budget is seconds per point on HiGHS,
so every benchmark runs the *same code path* on a smaller instance built
here.  Centralizing the instance construction keeps all figures
comparable with each other (same WAN, same demand scaling) exactly as in
the paper.

The key scaling decision: demands are normalized so the largest pair
demand is a configurable fraction of the average LAG capacity.  The
paper's degradations are reported in units of average LAG capacity and
reach 0.5-25x; with capacity-comparable demands our scaled instances land
in the same band.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.analyzer import RahaAnalyzer
from repro.core.config import RahaConfig
from repro.core.degradation import DegradationResult
from repro.network.demand import DemandMatrix, Pair, synthesize_monthly_demands, top_pairs
from repro.network.generators import production_wan
from repro.network.topology import Topology
from repro.paths.pathset import PathSet
from repro.paths.weighted import diversity_weighted_paths


@dataclass
class BenchNetwork:
    """A benchmark instance: topology plus calibrated monthly demands.

    Attributes:
        topology: The WAN under test.
        pairs: The demand pairs analyzed (the top pairs by volume, as the
            scaled-down stand-in for "all pairs").
        avg_demands: Month-average demand per pair.
        peak_demands: Month-maximum demand per pair.
    """

    topology: Topology
    pairs: list[Pair]
    avg_demands: DemandMatrix
    peak_demands: DemandMatrix

    def paths(self, num_primary: int = 2, num_backup: int = 1,
              weighted: bool = False) -> PathSet:
        """K-shortest (or diversity-weighted) paths for the bench pairs."""
        if weighted:
            return diversity_weighted_paths(
                self.topology, self.pairs, num_primary=num_primary,
                num_backup=num_backup,
            )
        return PathSet.k_shortest(
            self.topology, self.pairs, num_primary=num_primary,
            num_backup=num_backup,
        )


def bench_wan(
    num_regions: int = 3,
    nodes_per_region: int = 5,
    num_pairs: int = 6,
    demand_to_capacity: float = 1.0,
    dead_share: float = 0.12,
    flaky_share: float = 0.02,
    single_link_share: float = 0.35,
    seed: int = 0,
) -> BenchNetwork:
    """The standard production-like benchmark WAN.

    Args:
        num_regions / nodes_per_region: Topology size (defaults: 15 nodes,
            ~70 LAGs -- a 1:5 scale model of the paper's Africa WAN).
        num_pairs: How many top demand pairs to analyze.
        demand_to_capacity: Largest average pair demand as a fraction of
            the average LAG capacity.
        dead_share / flaky_share: Probability-mixture weights.  The bench
            defaults are higher than the paper-scale defaults because the
            instance is ~1:5 scale and only analyzes its top pairs: the
            *density* of probable-failure LAGs relative to the analyzed
            demands is what must match the production WAN for the
            Figure 5 shape to appear.
        seed: Generator seed (topology, probabilities, demands).
    """
    topology = production_wan(
        num_regions=num_regions, nodes_per_region=nodes_per_region,
        dead_share=dead_share, flaky_share=flaky_share,
        single_link_share=single_link_share, seed=seed,
    )
    avg, peak = synthesize_monthly_demands(topology, scale=100, seed=seed)
    pairs = top_pairs(avg, num_pairs)
    avg = avg.restricted_to(pairs)
    peak = peak.restricted_to(pairs)
    target = demand_to_capacity * topology.average_lag_capacity()
    factor = target / max(avg.values())
    return BenchNetwork(
        topology=topology,
        pairs=pairs,
        avg_demands=avg.scaled(factor),
        peak_demands=peak.scaled(factor),
    )


def timed_analysis(topology: Topology, paths: PathSet,
                   config: RahaConfig) -> tuple[DegradationResult, float]:
    """Run one analysis and return (result, wall seconds incl. paths).

    The paper includes path computation in reported runtimes; callers that
    computed paths inside the timed region get that for free via
    ``paths.computation_seconds`` (already counted in ``total_seconds``).
    """
    started = time.monotonic()
    result = RahaAnalyzer(topology, paths, config).analyze()
    wall = time.monotonic() - started + paths.computation_seconds
    return result, wall


def degradation_sweep(
    net: BenchNetwork,
    paths: PathSet,
    demand_mode: str,
    thresholds: list[float],
    failure_budgets: list[int | None],
    connected_enforced: bool = False,
    slack: float = 0.0,
    time_limit: float = 60.0,
    mip_rel_gap: float | None = 0.01,
) -> list[tuple[float, object, float]]:
    """The Figure 5/6 grid: degradation per (threshold, failure budget).

    The ``k``-failure series reproduce the *prior-work baselines* (FFC /
    Yu style): those tools are probability-unaware, so their rows carry no
    threshold (they appear as the flat horizontal lines of Figures 5/6).
    Only the unlimited (``None`` -> "inf") series -- Raha proper -- sweeps
    the probability threshold.

    Args:
        net: Benchmark instance.
        paths: Configured paths.
        demand_mode: ``"avg"`` (fixed average), ``"max"`` (fixed peak) or
            ``"variable"`` (joint search over ``[0, peak * (1+slack)]``).
        thresholds: Probability thresholds ``T`` (x axis).
        failure_budgets: Max-failure values; ``None`` means unlimited (the
            paper's ``infinity`` series).
        connected_enforced: Apply CE constraints (Figure 6).
        slack: Envelope widening for the variable mode, in percent.
        time_limit: Per-solve budget.

    Returns:
        Rows ``(threshold_or_dash, budget_label, normalized_degradation)``.
    """

    def config_for(threshold, budget):
        kwargs = dict(
            probability_threshold=threshold,
            max_failures=budget,
            connected_enforced=connected_enforced,
            time_limit=time_limit,
            mip_rel_gap=mip_rel_gap,
        )
        if demand_mode == "avg":
            return RahaConfig(fixed_demands=dict(net.avg_demands), **kwargs)
        if demand_mode == "max":
            return RahaConfig(fixed_demands=dict(net.peak_demands), **kwargs)
        if demand_mode == "variable":
            from repro.network.demand import demand_envelope

            return RahaConfig(
                demand_bounds=demand_envelope(net.peak_demands, slack=slack),
                **kwargs,
            )
        raise ValueError(f"unknown demand mode {demand_mode!r}")

    rows = []
    for budget in failure_budgets:
        if budget is None:
            continue
        result = RahaAnalyzer(
            net.topology, paths, config_for(None, budget)
        ).analyze()
        rows.append(("-", budget, result.normalized_degradation))
    if None in failure_budgets:
        for threshold in thresholds:
            result = RahaAnalyzer(
                net.topology, paths, config_for(threshold, None)
            ).analyze()
            rows.append((threshold, "inf", result.normalized_degradation))
    return rows
