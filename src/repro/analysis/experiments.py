"""Standard scaled-down experiment instances for the benchmarks.

The paper's evaluation runs on a ~76-node production WAN with Gurobi for
tens of minutes per point.  Our CI budget is seconds per point on HiGHS,
so every benchmark runs the *same code path* on a smaller instance built
here.  Centralizing the instance construction keeps all figures
comparable with each other (same WAN, same demand scaling) exactly as in
the paper.

The key scaling decision: demands are normalized so the largest pair
demand is a configurable fraction of the average LAG capacity.  The
paper's degradations are reported in units of average LAG capacity and
reach 0.5-25x; with capacity-comparable demands our scaled instances land
in the same band.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.analyzer import RahaAnalyzer
from repro.core.config import RahaConfig
from repro.core.degradation import DegradationResult
from repro.network.demand import DemandMatrix, Pair, synthesize_monthly_demands, top_pairs
from repro.network.generators import production_wan
from repro.network.topology import Topology
from repro.paths.pathset import PathSet
from repro.paths.weighted import diversity_weighted_paths


@dataclass
class BenchNetwork:
    """A benchmark instance: topology plus calibrated monthly demands.

    Attributes:
        topology: The WAN under test.
        pairs: The demand pairs analyzed (the top pairs by volume, as the
            scaled-down stand-in for "all pairs").
        avg_demands: Month-average demand per pair.
        peak_demands: Month-maximum demand per pair.
    """

    topology: Topology
    pairs: list[Pair]
    avg_demands: DemandMatrix
    peak_demands: DemandMatrix

    def paths(self, num_primary: int = 2, num_backup: int = 1,
              weighted: bool = False) -> PathSet:
        """K-shortest (or diversity-weighted) paths for the bench pairs."""
        if weighted:
            return diversity_weighted_paths(
                self.topology, self.pairs, num_primary=num_primary,
                num_backup=num_backup,
            )
        return PathSet.k_shortest(
            self.topology, self.pairs, num_primary=num_primary,
            num_backup=num_backup,
        )


def bench_wan(
    num_regions: int = 3,
    nodes_per_region: int = 5,
    num_pairs: int = 6,
    demand_to_capacity: float = 1.0,
    dead_share: float = 0.12,
    flaky_share: float = 0.02,
    single_link_share: float = 0.35,
    seed: int = 0,
) -> BenchNetwork:
    """The standard production-like benchmark WAN.

    Args:
        num_regions / nodes_per_region: Topology size (defaults: 15 nodes,
            ~70 LAGs -- a 1:5 scale model of the paper's Africa WAN).
        num_pairs: How many top demand pairs to analyze.
        demand_to_capacity: Largest average pair demand as a fraction of
            the average LAG capacity.
        dead_share / flaky_share: Probability-mixture weights.  The bench
            defaults are higher than the paper-scale defaults because the
            instance is ~1:5 scale and only analyzes its top pairs: the
            *density* of probable-failure LAGs relative to the analyzed
            demands is what must match the production WAN for the
            Figure 5 shape to appear.
        seed: Generator seed (topology, probabilities, demands).
    """
    topology = production_wan(
        num_regions=num_regions, nodes_per_region=nodes_per_region,
        dead_share=dead_share, flaky_share=flaky_share,
        single_link_share=single_link_share, seed=seed,
    )
    avg, peak = synthesize_monthly_demands(topology, scale=100, seed=seed)
    pairs = top_pairs(avg, num_pairs)
    avg = avg.restricted_to(pairs)
    peak = peak.restricted_to(pairs)
    target = demand_to_capacity * topology.average_lag_capacity()
    factor = target / max(avg.values())
    return BenchNetwork(
        topology=topology,
        pairs=pairs,
        avg_demands=avg.scaled(factor),
        peak_demands=peak.scaled(factor),
    )


def timed_analysis(topology: Topology, paths: PathSet,
                   config: RahaConfig) -> tuple[DegradationResult, float]:
    """Run one analysis and return (result, wall seconds incl. paths).

    The paper includes path computation in reported runtimes; callers that
    computed paths inside the timed region get that for free via
    ``paths.computation_seconds`` (already counted in ``total_seconds``).
    """
    started = time.monotonic()
    result = RahaAnalyzer(topology, paths, config).analyze()
    wall = time.monotonic() - started + paths.computation_seconds
    return result, wall


def sweep_cells(
    thresholds: list[float],
    failure_budgets: list[int | None],
    **extra,
) -> list[dict]:
    """The Figure 5/6 cell pairing as explicit sweep-spec cells.

    Finite budgets reproduce the probability-unaware prior-work
    baselines, so they carry no threshold; only the unlimited series --
    Raha proper -- sweeps the probability threshold.  ``extra`` is
    merged into every cell (e.g. ``connected_enforced=True``).
    """
    cells = []
    for budget in failure_budgets:
        if budget is not None:
            cells.append({"threshold": None, "max_failures": budget, **extra})
    if None in failure_budgets:
        for threshold in thresholds:
            cells.append({"threshold": threshold, "max_failures": None,
                          **extra})
    return cells


def degradation_sweep_spec(
    net: BenchNetwork,
    paths: PathSet,
    demand_mode: str,
    cells: list[dict],
    *,
    slack: float = 0.0,
    time_limit: float = 60.0,
    mip_rel_gap: float | None = 0.01,
    name: str = "degradation-sweep",
):
    """A runner :class:`~repro.runner.jobs.SweepSpec` for a bench grid.

    The instance (topology, monthly demands, paths) is embedded as its
    serialized documents, so jobs are self-contained for worker
    processes and content-addressed for the result cache.
    """
    from repro.network import serialization as ser
    from repro.runner.jobs import SweepSpec

    return SweepSpec(
        instance={
            "topology": ser.topology_to_dict(net.topology),
            "avg_demands": ser.demands_to_dict(net.avg_demands),
            "peak_demands": ser.demands_to_dict(net.peak_demands),
            "paths": ser.paths_to_dict(paths),
        },
        base={
            "demand_mode": demand_mode,
            "slack": slack,
            "time_limit": time_limit,
            "mip_rel_gap": mip_rel_gap,
        },
        cells=cells,
        name=name,
    )


def sweep_rows(outcome) -> list[tuple[object, object, float]]:
    """Degradation-task results as classic benchmark table rows.

    Maps each successful job to ``(threshold_or_dash, budget_label,
    normalized_degradation)`` in job order; raises on any failed job
    (benchmarks must not silently chart partial campaigns).
    """
    outcome.raise_on_error()
    rows = []
    for result in outcome.results():
        threshold = result["threshold"]
        budget = result["max_failures"]
        rows.append((
            "-" if threshold is None else threshold,
            "inf" if budget is None else budget,
            result["normalized_degradation"],
        ))
    return rows


def degradation_sweep(
    net: BenchNetwork,
    paths: PathSet,
    demand_mode: str,
    thresholds: list[float],
    failure_budgets: list[int | None],
    connected_enforced: bool = False,
    slack: float = 0.0,
    time_limit: float = 60.0,
    mip_rel_gap: float | None = 0.01,
    num_workers: int = 1,
    cache=None,
    journal=None,
    resume: bool = False,
    progress=None,
) -> list[tuple[float, object, float]]:
    """The Figure 5/6 grid: degradation per (threshold, failure budget).

    The ``k``-failure series reproduce the *prior-work baselines* (FFC /
    Yu style): those tools are probability-unaware, so their rows carry no
    threshold (they appear as the flat horizontal lines of Figures 5/6).
    Only the unlimited (``None`` -> "inf") series -- Raha proper -- sweeps
    the probability threshold.

    The grid executes through the :mod:`repro.runner` subsystem -- the
    same code path as ``python -m repro sweep`` -- so campaigns can run
    on worker processes, hit the result cache, and resume from a
    journal; the defaults (serial, uncached) reproduce the historical
    behavior and numbers exactly.

    Args:
        net: Benchmark instance.
        paths: Configured paths.
        demand_mode: ``"avg"`` (fixed average), ``"max"`` (fixed peak) or
            ``"variable"`` (joint search over ``[0, peak * (1+slack)]``).
        thresholds: Probability thresholds ``T`` (x axis).
        failure_budgets: Max-failure values; ``None`` means unlimited (the
            paper's ``infinity`` series).
        connected_enforced: Apply CE constraints (Figure 6).
        slack: Envelope widening for the variable mode, in percent.
        time_limit: Per-solve budget.
        num_workers: Worker processes (1 = in-process, serial).
        cache / journal / resume / progress: Forwarded to
            :func:`repro.runner.run_sweep`.

    Returns:
        Rows ``(threshold_or_dash, budget_label, normalized_degradation)``.
    """
    from repro.runner.executor import run_sweep

    if demand_mode not in ("avg", "max", "variable"):
        raise ValueError(f"unknown demand mode {demand_mode!r}")
    spec = degradation_sweep_spec(
        net, paths, demand_mode,
        sweep_cells(thresholds, failure_budgets,
                    connected_enforced=connected_enforced),
        slack=slack, time_limit=time_limit, mip_rel_gap=mip_rel_gap,
    )
    outcome = run_sweep(
        spec, num_workers=num_workers, cache=cache, journal=journal,
        resume=resume, progress=progress,
    )
    return sweep_rows(outcome)
