"""repro: a from-scratch reproduction of Raha (SIGCOMM 2025).

Raha analyzes the probable worst-case *degradation* of a traffic-
engineered WAN: the joint failure scenario and demand matrix that
maximize the gap between the healthy network's performance and the same
network under failure, via a MetaOpt-style bi-level optimization.

Quickstart::

    from repro import (
        PathSet, RahaAnalyzer, RahaConfig, demand_envelope, gravity_demands,
    )
    from repro.network.zoo import b4

    topology = b4()
    pairs = [("s1", "s12"), ("s3", "s10")]
    paths = PathSet.k_shortest(topology, pairs, num_primary=2, num_backup=1)
    demands = gravity_demands(topology, scale=2000, pairs=pairs)
    config = RahaConfig(
        demand_bounds=demand_envelope(demands, slack=30),
        probability_threshold=1e-4,
    )
    result = RahaAnalyzer(topology, paths, config).analyze()
    print(result.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproduction index.
"""

from repro.core.alerts import Alert, AlertPipeline, AlertSeverity
from repro.core.analyzer import RahaAnalyzer
from repro.core.augment import (
    AugmentResult,
    augment_existing_lags,
    augment_new_lags,
)
from repro.core.config import (
    ObsConfig,
    RahaConfig,
    ResilienceConfig,
    RunnerConfig,
)
from repro.core.degradation import DegradationResult, PartialResult
from repro.exceptions import (
    InfeasibleError,
    ModelingError,
    PathError,
    ReproError,
    SolverError,
    TopologyError,
    VerificationError,
)
from repro.failures.enumeration import worst_case_k_failures
from repro.failures.montecarlo import estimate_availability
from repro.failures.probability import max_simultaneous_failures
from repro.failures.scenario import FailureScenario, simulate_failed_network
from repro.metaopt.clustering import analyze_with_clustering, cluster_nodes
from repro.network.demand import (
    DemandMatrix,
    demand_envelope,
    gravity_demands,
    synthesize_monthly_demands,
)
from repro.network.srlg import Srlg
from repro.network.topology import Lag, Link, Topology
from repro.paths.pathset import DemandPaths, PathSet
from repro.resilience.faults import FaultPlan, FaultPoint
from repro.runner.executor import run_sweep
from repro.runner.jobs import Job, SweepSpec

__version__ = "1.0.0"

__all__ = [
    "Alert",
    "AlertPipeline",
    "AlertSeverity",
    "AugmentResult",
    "DegradationResult",
    "DemandMatrix",
    "DemandPaths",
    "FailureScenario",
    "FaultPlan",
    "FaultPoint",
    "InfeasibleError",
    "Job",
    "Lag",
    "Link",
    "ModelingError",
    "ObsConfig",
    "PartialResult",
    "PathError",
    "PathSet",
    "RahaAnalyzer",
    "RahaConfig",
    "ReproError",
    "ResilienceConfig",
    "RunnerConfig",
    "SolverError",
    "Srlg",
    "SweepSpec",
    "Topology",
    "TopologyError",
    "VerificationError",
    "analyze_with_clustering",
    "augment_existing_lags",
    "augment_new_lags",
    "cluster_nodes",
    "demand_envelope",
    "estimate_availability",
    "gravity_demands",
    "max_simultaneous_failures",
    "run_sweep",
    "simulate_failed_network",
    "synthesize_monthly_demands",
    "worst_case_k_failures",
]
