"""Exception hierarchy for the repro package.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch one type at the boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SolverError(ReproError):
    """The backend LP/MILP solver failed or returned no usable solution."""


class InfeasibleError(SolverError):
    """A model was proven infeasible.

    The paper notes this arises naturally in MLU mode when failures fully
    disconnect a source-destination pair (Appendix A), which is why the
    connected-enforced constraint is mandatory there.
    """


class TopologyError(ReproError):
    """The topology input is malformed (unknown node, duplicate LAG, ...)."""


class PathError(ReproError):
    """Path computation or validation failed (no route, bad path, ...)."""


class ModelingError(ReproError):
    """A formulation was assembled inconsistently.

    Raised, for example, when an adversarial inner problem is embedded with
    an aligned sign (which would make the bi-level reduction inexact), or
    when a big-M bound required for a linearization is missing or infinite.
    """


class VerificationError(ReproError):
    """Post-solve verification of inner-problem optimality failed.

    After the single-level MILP solves, Raha re-solves each inner problem
    as a plain LP at the chosen outer assignment and compares objectives.
    A mismatch means a big-M bound was too small; this error reports it
    instead of silently returning a wrong worst case.
    """
