"""Exception hierarchy for the repro package.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch one type at the boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SolverError(ReproError):
    """The backend LP/MILP solver failed or returned no usable solution."""


class InfeasibleError(SolverError):
    """A model was proven infeasible.

    The paper notes this arises naturally in MLU mode when failures fully
    disconnect a source-destination pair (Appendix A), which is why the
    connected-enforced constraint is mandatory there.
    """


class TopologyError(ReproError):
    """The topology input is malformed (unknown node, duplicate LAG, ...)."""


class PathError(ReproError):
    """Path computation or validation failed (no route, bad path, ...)."""


class CacheKeyError(ReproError):
    """A job payload cannot be content-addressed.

    Raised by :func:`repro.runner.cache.canonical_json` when a payload
    contains a value that does not round-trip through canonical JSON
    deterministically (NaN/Inf floats, or a non-JSON type).  The message
    names the offending payload field so the error surfacing from deep
    inside a worker pool points at the bad input, not at ``json.dumps``.
    """


class ServiceError(ReproError):
    """The analysis service failed an operation or returned an error.

    Raised by the service client on non-2xx HTTP responses and by the
    service stack for invalid submissions, unknown analyses, and store
    failures.  Carries ``status`` (the HTTP status code, when one
    applies) so callers can branch without parsing messages.
    """

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        self.status = status


class AdmissionError(ServiceError):
    """A submission was load-shed by the service's admission control.

    Maps to HTTP 429; ``retry_after`` carries the server's suggested
    back-off in seconds (the ``Retry-After`` header).
    """

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message, status=429)
        self.retry_after = retry_after


class BenchError(ReproError):
    """A benchmark harness operation failed.

    Raised by :mod:`repro.bench` for unloadable case modules, unknown
    case names or tags, malformed or wrong-schema result documents, and
    comparisons over incompatible result files.  Performance
    *regressions* are not errors -- ``repro bench compare`` reports
    them through its exit code so CI can gate on them.
    """


class ModelingError(ReproError):
    """A formulation was assembled inconsistently.

    Raised, for example, when an adversarial inner problem is embedded with
    an aligned sign (which would make the bi-level reduction inexact), or
    when a big-M bound required for a linearization is missing or infinite.
    """


class VerificationError(ReproError):
    """Post-solve verification of inner-problem optimality failed.

    After the single-level MILP solves, Raha re-solves each inner problem
    as a plain LP at the chosen outer assignment and compares objectives.
    A mismatch means a big-M bound was too small; this error reports it
    instead of silently returning a wrong worst case.
    """
