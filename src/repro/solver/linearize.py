"""MILP linearization gadgets.

These implement the "standard optimization techniques" ([7] in the paper)
Raha relies on to keep the outer problem linear:

* :func:`indicator_geq` linearizes the indicator function ``I(expr >= t)``
  used by Eq. 5 to decide when a backup path becomes active.
* :func:`product_binary_bounded` linearizes ``z * x`` (binary times bounded
  continuous), used to set path-extension capacities ``C_kp = d_k * a_kp``.

All helpers take the host :class:`repro.solver.model.Model` and return the
newly created variable; constraints are added to the model directly.
"""

from __future__ import annotations

from repro.exceptions import ModelingError
from repro.solver.expr import LinExpr, Var
from repro.solver.model import Model


def indicator_geq(
    model: Model,
    expr,
    threshold: float,
    expr_lb: float,
    expr_ub: float,
    name: str = "ind",
) -> Var:
    """Create a binary ``z`` with ``z = 1  <=>  expr >= threshold``.

    ``expr`` must take *integer* values at any feasible point (in Raha it
    is always a sum of failure binaries plus an integer constant), and
    ``threshold`` must be an integer, so that ``expr <= threshold - 1`` is
    the exact complement of ``expr >= threshold``.

    Args:
        model: Host model that receives the binary and two constraints.
        expr: Integer-valued linear expression.
        threshold: Integer threshold of the test.
        expr_lb: A valid lower bound on ``expr`` over the feasible set.
        expr_ub: A valid upper bound on ``expr`` over the feasible set.
        name: Name stem for the created variable.

    Returns:
        The indicator binary.
    """
    if round(threshold) != threshold:
        raise ModelingError(f"indicator threshold must be integral, got {threshold}")
    if expr_lb > expr_ub:
        raise ModelingError(f"indicator bounds inverted: [{expr_lb}, {expr_ub}]")
    expr = LinExpr._coerce(expr) if not isinstance(expr, LinExpr) else expr

    z = model.add_var(binary=True, name=name)
    if expr_ub < threshold:
        # The test can never pass; pin the indicator to zero.
        model.add_constr(z.to_expr() <= 0, name=f"{name}:never")
        return z
    if expr_lb >= threshold:
        # The test always passes; pin the indicator to one.
        model.add_constr(z.to_expr() >= 1, name=f"{name}:always")
        return z

    # z = 1  =>  expr >= threshold:
    #   expr >= threshold - (threshold - expr_lb) * (1 - z)
    m_low = threshold - expr_lb
    model.add_constr(
        expr >= threshold - m_low * (1 - z.to_expr()), name=f"{name}:on"
    )
    # z = 0  =>  expr <= threshold - 1:
    #   expr <= threshold - 1 + (expr_ub - threshold + 1) * z
    m_high = expr_ub - threshold + 1
    model.add_constr(
        expr <= (threshold - 1) + m_high * z.to_expr(), name=f"{name}:off"
    )
    return z


def product_binary_bounded(
    model: Model,
    binary: Var,
    factor,
    factor_ub: float,
    name: str = "prod",
) -> Var:
    """Create ``w = binary * factor`` for a continuous ``factor in [0, ub]``.

    This is the exact McCormick envelope for a product with one binary
    term.  Used by Eq. 5: ``C_kp = d_k * active_kp``.

    Args:
        model: Host model.
        binary: A 0/1 variable.
        factor: Variable or expression known to lie in ``[0, factor_ub]``.
        factor_ub: Finite upper bound on ``factor``.
        name: Name stem for the created variable.

    Returns:
        A continuous variable equal to the product at every feasible point.
    """
    if not binary.is_binary:
        raise ModelingError(f"{binary!r} must be binary for an exact product")
    if not (factor_ub >= 0 and factor_ub != float("inf")):
        raise ModelingError(f"product needs a finite nonnegative bound, got {factor_ub}")

    w = model.add_var(lb=0.0, ub=factor_ub, name=name)
    b = binary.to_expr()
    model.add_constr(w <= factor_ub * b, name=f"{name}:cap")
    model.add_constr(w <= factor, name=f"{name}:le")
    model.add_constr(w >= factor - factor_ub * (1 - b), name=f"{name}:ge")
    return w


def force_all_or_none(model: Model, binaries: list[Var], name: str = "group") -> None:
    """Force a group of binaries to share one value (SRLG fate-sharing).

    Links in the same shared-risk group fail together; this pins every
    binary in ``binaries`` to the first one.
    """
    if len(binaries) < 2:
        return
    first = binaries[0].to_expr()
    for i, other in enumerate(binaries[1:]):
        model.add_constr(other.to_expr() == first, name=f"{name}[{i}]")


def exactly_one(model: Model, binaries: list[Var], name: str = "one") -> None:
    """Force exactly one of the binaries to be set."""
    from repro.solver.expr import quicksum

    if not binaries:
        raise ModelingError("exactly_one over an empty group is infeasible")
    model.add_constr(quicksum(binaries) == 1, name=name)
