"""Solve results and statuses returned by :class:`repro.solver.model.Model`."""

from __future__ import annotations

import enum
import numbers
from dataclasses import dataclass, field

import numpy as np

from repro.solver.expr import LinExpr, Var


class SolveStatus(enum.Enum):
    """Outcome of a solve call.

    ``TIME_LIMIT`` mirrors the paper's use of MetaOpt's ``timeout`` feature
    (Section 6): the solver was stopped early but may still carry a feasible
    incumbent, in which case :attr:`SolveResult.has_solution` is true.
    """

    OPTIMAL = "optimal"
    TIME_LIMIT = "time_limit"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"

    @property
    def ok(self) -> bool:
        """Whether the status may carry a usable solution."""
        return self in (SolveStatus.OPTIMAL, SolveStatus.TIME_LIMIT)


@dataclass
class SolveResult:
    """The outcome of solving a model.

    Attributes:
        status: Terminal solver status.
        objective: Objective value in the model's own sense (max problems
            report the maximum), or ``nan`` when no solution exists.
        x: Variable values in column order, or ``None`` without a solution.
        duals: Per-constraint dual values for pure LPs solved through
            :func:`scipy.optimize.linprog` (``None`` for MILPs).  Signs
            follow the model's stated sense: for a maximization, the dual
            of a binding ``<=`` constraint is nonnegative.
        mip_gap: Relative MIP gap reported by HiGHS when available.
        solve_seconds: Wall-clock time spent inside the backend call.
    """

    status: SolveStatus
    objective: float = float("nan")
    x: np.ndarray | None = None
    duals: np.ndarray | None = None
    mip_gap: float | None = None
    solve_seconds: float = 0.0
    message: str = ""
    _names: list[str] = field(default_factory=list, repr=False)

    @property
    def has_solution(self) -> bool:
        """Whether variable values are available."""
        return self.x is not None

    def value(self, item) -> float:
        """Evaluate a variable or linear expression at the solution."""
        if self.x is None:
            raise ValueError(f"no solution available (status={self.status})")
        if isinstance(item, Var):
            return float(self.x[item.index])
        if isinstance(item, LinExpr):
            total = item.constant
            for idx, coef in item.terms.items():
                total += coef * self.x[idx]
            return float(total)
        if isinstance(item, numbers.Real):
            return float(item)
        raise TypeError(f"cannot evaluate {item!r}")

    def values(self, items) -> list[float]:
        """Evaluate a sequence of variables/expressions at the solution."""
        return [self.value(item) for item in items]

    def require_ok(self) -> SolveResult:
        """Raise :class:`repro.exceptions.SolverError` unless usable.

        Returns self so calls can be chained:
        ``result = model.solve().require_ok()``.
        """
        from repro.exceptions import SolverError

        if not self.status.ok or self.x is None:
            raise SolverError(
                f"solve failed: status={self.status.value} message={self.message!r}"
            )
        return self
