"""Solve results, statuses, and telemetry returned by the solver layer."""

from __future__ import annotations

import enum
import numbers
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.solver.expr import LinExpr, Var


class SolveStatus(enum.Enum):
    """Outcome of a solve call.

    ``TIME_LIMIT`` mirrors the paper's use of MetaOpt's ``timeout`` feature
    (Section 6): the solver was stopped early but may still carry a feasible
    incumbent, in which case :attr:`SolveResult.has_solution` is true.
    """

    OPTIMAL = "optimal"
    TIME_LIMIT = "time_limit"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"

    @property
    def ok(self) -> bool:
        """Whether the status may carry a usable solution."""
        return self in (SolveStatus.OPTIMAL, SolveStatus.TIME_LIMIT)


@dataclass(frozen=True)
class SolveStats:
    """Per-solve telemetry: where the time went and how big the model was.

    Attached to every :class:`SolveResult` so callers (the analyzer, the
    sweep runner, the CLI's ``--stats`` flag) can attribute wall time to
    build vs. compile vs. solve and spot numerically risky encodings.

    Attributes:
        rows / cols / nnz: Compiled constraint-matrix dimensions.
        num_integer: Integer (including binary) variable count.
        build_seconds: Wall time from model creation to first compile --
            the modeling-layer cost of assembling the formulation.
        compile_seconds: Time spent turning the model into CSR matrices
            (zero when the compile cache was reused).
        solve_seconds: Time inside the HiGHS backend call.
        backend: ``"milp"`` or ``"linprog"``.
        max_abs_coefficient: Largest coefficient magnitude in the matrix
            -- a proxy for big-M magnitudes (large values flag loose
            linearizations that invite numerical trouble).
        max_abs_rhs: Largest finite row-bound magnitude.
        dual_mode: How duals were recovered: ``"lp"`` (linprog
            marginals, range-row marginals summed) or ``"none"`` (MILPs).
        incremental: Whether this was a :meth:`Model.resolve_with`
            re-solve reusing the compiled structure.
        compile_cached: Whether the compile cache supplied the matrices.
    """

    rows: int
    cols: int
    nnz: int
    num_integer: int
    build_seconds: float
    compile_seconds: float
    solve_seconds: float
    backend: str
    max_abs_coefficient: float
    max_abs_rhs: float
    dual_mode: str
    incremental: bool = False
    compile_cached: bool = False

    @property
    def total_seconds(self) -> float:
        """Compile plus solve time (build overlaps caller code)."""
        return self.compile_seconds + self.solve_seconds

    def to_dict(self) -> dict:
        """A JSON-serializable form (sweep results, journals, caches)."""
        return asdict(self)

    def summary(self) -> str:
        """One-line human-readable form."""
        return (
            f"{self.rows}x{self.cols} ({self.nnz} nnz, "
            f"{self.num_integer} int) via {self.backend}: "
            f"build {self.build_seconds:.3f}s, "
            f"compile {self.compile_seconds:.3f}s"
            f"{' (cached)' if self.compile_cached else ''}, "
            f"solve {self.solve_seconds:.3f}s"
            f"{' (incremental)' if self.incremental else ''}; "
            f"|A|max {self.max_abs_coefficient:g}, "
            f"|b|max {self.max_abs_rhs:g}, duals {self.dual_mode}"
        )


@dataclass
class SolveResult:
    """The outcome of solving a model.

    Attributes:
        status: Terminal solver status.
        objective: Objective value in the model's own sense (max problems
            report the maximum), or ``nan`` when no solution exists.
        x: Variable values in column order, or ``None`` without a solution.
        duals: Per-constraint dual values for pure LPs solved through
            :func:`scipy.optimize.linprog` (``None`` for MILPs).  Signs
            follow the model's stated sense: for a maximization, the dual
            of a binding ``<=`` constraint is nonnegative.
        mip_gap: Relative MIP gap reported by HiGHS when available.
        solve_seconds: Wall-clock time spent inside the backend call.
        stats: Per-solve :class:`SolveStats` telemetry (``None`` only for
            results constructed by hand, e.g. in tests).
    """

    status: SolveStatus
    objective: float = float("nan")
    x: np.ndarray | None = None
    duals: np.ndarray | None = None
    mip_gap: float | None = None
    solve_seconds: float = 0.0
    message: str = ""
    stats: SolveStats | None = None
    _names: list[str] = field(default_factory=list, repr=False)

    @property
    def has_solution(self) -> bool:
        """Whether variable values are available.

        A :class:`SolveStatus.TIME_LIMIT` result *without* an incumbent
        (the solver expired before finding any feasible point) reports
        ``False`` here -- callers must check this before trusting a
        timeout result, since ``objective`` is ``nan`` in that case.
        """
        return self.x is not None

    def value(self, item) -> float:
        """Evaluate a variable or linear expression at the solution."""
        if self.x is None:
            raise ValueError(f"no solution available (status={self.status})")
        if isinstance(item, Var):
            return float(self.x[item.index])
        if isinstance(item, LinExpr):
            total = item.constant
            for idx, coef in item.terms.items():
                total += coef * self.x[idx]
            return float(total)
        if isinstance(item, numbers.Real):
            return float(item)
        raise TypeError(f"cannot evaluate {item!r}")

    def values(self, items) -> list[float]:
        """Evaluate a sequence of variables/expressions at the solution."""
        return [self.value(item) for item in items]

    def require_ok(self) -> SolveResult:
        """Raise :class:`repro.exceptions.SolverError` unless usable.

        Returns self so calls can be chained:
        ``result = model.solve().require_ok()``.
        """
        from repro.exceptions import SolverError

        if not self.status.ok or self.x is None:
            raise SolverError(
                f"solve failed: status={self.status.value} message={self.message!r}"
            )
        return self
