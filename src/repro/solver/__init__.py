"""Linear and mixed-integer modeling layer over scipy's HiGHS solvers.

The paper implements Raha on top of MetaOpt, which in turn drives Gurobi.
Neither is available offline, so this package provides the substrate both
of them supply:

* :mod:`repro.solver.expr` -- variables, linear expressions and constraints
  with operator overloading (``2 * x + y <= 5``).
* :mod:`repro.solver.model` -- a :class:`Model` that compiles expressions
  into sparse matrices and dispatches to :func:`scipy.optimize.milp` (for
  mixed-integer programs) or :func:`scipy.optimize.linprog` (for pure LPs,
  where dual values are also recovered).
* :mod:`repro.solver.linearize` -- standard MILP linearization gadgets:
  indicator variables for threshold tests on integer expressions, and
  McCormick products of a binary and a bounded continuous variable.  These
  implement the "standard optimization techniques [7]" the paper uses to
  linearize the indicator in Eq. 5.
* :mod:`repro.solver.duality` -- emission of LP KKT optimality conditions
  (dual feasibility + big-M complementary slackness) into a host model.
  This is the mechanism that lets Raha embed the *failed* network's traffic
  engineering optimum inside a single-level MILP (Section 4.1 of the paper).
"""

from repro.solver.expr import (
    Constraint,
    LinExpr,
    RangeConstraint,
    Var,
    indices_of,
    quicksum,
)
from repro.solver.linearize import (
    indicator_geq,
    product_binary_bounded,
)
from repro.solver.model import Model
from repro.solver.result import SolveResult, SolveStats, SolveStatus

__all__ = [
    "Constraint",
    "LinExpr",
    "Model",
    "RangeConstraint",
    "SolveResult",
    "SolveStats",
    "SolveStatus",
    "Var",
    "indicator_geq",
    "indices_of",
    "product_binary_bounded",
    "quicksum",
]
