"""Embedding parameterized inner LPs and their KKT optimality conditions.

This module is the mechanism behind the paper's key move (Section 4.1):
MetaOpt solves a Stackelberg game whose *second inner problem* (the failed
network) must be held at *its own optimum* while the outer adversary picks
demands and failures.  For an LP inner problem that is exact when we embed,
alongside the primal constraints, the LP's KKT conditions:

* dual feasibility:      ``A' y >= c`` (for a maximization ``max c'x``),
* complementary slackness on rows:      ``y_i * (b_i - A_i x) = 0``,
* complementary slackness on columns:   ``x_j * (A'y - c)_j = 0``,

with each complementarity product linearized through a big-M binary.  The
crucial property that keeps everything *linear* even though the right-hand
sides ``b(I)`` contain outer variables (variable LAG capacities, demands,
path-extension capacities): complementarity never multiplies a dual by an
outer variable -- only by a binary with constant big-M bounds.

:class:`InnerLP` tracks an inner problem *inside* a host
:class:`repro.solver.model.Model`: primal variables and constraints are
posted to the host immediately (they are needed for both aligned and
adversarial embeddings); :meth:`InnerLP.embed_kkt` then posts the dual
side.  :meth:`InnerLP.resolve_at` re-solves the inner problem as a plain
LP at a candidate outer assignment, which Raha uses to *verify* that every
big-M bound was large enough before trusting a result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ModelingError, VerificationError
from repro.solver.expr import LinExpr, Var
from repro.solver.model import Model
from repro.solver.result import SolveResult


@dataclass
class _InnerRow:
    """One inner constraint ``lhs(x) SENSE rhs(I)`` plus its KKT metadata."""

    lhs: LinExpr  # over inner variables only
    rhs: LinExpr  # over outer variables only (plus constant)
    sense: str  # "<=" or "=="
    dual_bound: float
    slack_bound: float  # finite for "<=" rows, unused for "=="
    name: str
    dual: Var | None = None


@dataclass
class _InnerCol:
    """One inner variable plus its KKT metadata."""

    var: Var
    obj_coef: float  # in the *maximization* convention used internally
    value_bound: float  # finite upper bound on the variable's value
    rows: list[tuple[int, float]] = field(default_factory=list)  # (row, coef)


class InnerLP:
    """An inner LP embedded in a host model, parameterized by outer vars.

    Inner variables must be nonnegative with no native upper bound: bounds
    that matter must be expressed as constraints so they receive duals.
    Every constraint is split as ``lhs SENSE rhs`` where ``lhs`` mentions
    only inner variables (with constant coefficients) and ``rhs`` mentions
    only outer variables -- exactly the structure the paper exploits
    ("the variables of the outer problem are treated as constants by the
    inner problems").

    Args:
        model: Host model receiving all variables and constraints.
        name: Stem for generated names.
        sense: ``"max"`` or ``"min"`` -- the inner problem's own objective
            sense.  Internally everything is normalized to maximization.
    """

    def __init__(self, model: Model, name: str, sense: str = "max"):
        if sense not in ("max", "min"):
            raise ModelingError(f"inner sense must be min or max, got {sense!r}")
        self.model = model
        self.name = name
        self.sense = sense
        self._cols: list[_InnerCol] = []
        self._rows: list[_InnerRow] = []
        self._col_of_var: dict[int, int] = {}
        self._kkt_embedded = False
        # Cached verification LP for resolve_at(): (signature, model, rows).
        self._verify_cache: tuple[tuple[int, int], Model, range] | None = None

    # -- building ----------------------------------------------------------
    def add_var(
        self, obj_coef: float, value_bound: float, name: str = ""
    ) -> Var:
        """Create an inner variable ``x >= 0``.

        Args:
            obj_coef: Coefficient in the inner objective (in the problem's
                own sense -- the class normalizes internally).
            value_bound: A finite bound on the variable's value over every
                feasible point; used as the big-M in column complementarity.
            name: Debugging name.
        """
        if not (value_bound < float("inf")):
            raise ModelingError(
                f"inner variable {name!r} needs a finite value bound for KKT"
            )
        var = self.model.add_var(lb=0.0, name=name or f"{self.name}:x")
        internal_coef = obj_coef if self.sense == "max" else -obj_coef
        col = _InnerCol(var=var, obj_coef=internal_coef, value_bound=value_bound)
        self._col_of_var[var.index] = len(self._cols)
        self._cols.append(col)
        return var

    def _split(self, lhs: LinExpr) -> tuple[LinExpr, LinExpr]:
        """Split a mixed expression into (inner part, outer part)."""
        inner = LinExpr()
        outer = LinExpr({}, lhs.constant)
        for idx, coef in lhs.terms.items():
            if idx in self._col_of_var:
                inner.terms[idx] = coef
            else:
                outer.terms[idx] = coef
        return inner, outer

    def add_constr(
        self,
        constraint,
        dual_bound: float,
        slack_bound: float = float("inf"),
        name: str = "",
    ) -> None:
        """Add an inner constraint (posted to the host model immediately).

        The constraint may mix inner and outer variables; it is split
        automatically.  ``>=`` rows are flipped to ``<=``.

        Args:
            constraint: A Constraint built with ``<=``, ``>=`` or ``==``.
            dual_bound: Valid bound on the magnitude of an optimal dual for
                this row.  For the flow LPs in this repository the bound is
                1 (see :mod:`repro.metaopt.bilevel` for the argument).
            slack_bound: Valid bound on the row's slack ``rhs - lhs`` over
                the feasible set; required finite for ``<=`` rows when KKT
                conditions will be embedded.
            name: Debugging name.
        """
        if self._kkt_embedded:
            raise ModelingError("cannot add constraints after embed_kkt()")
        expr, sense = constraint.expr, constraint.sense
        if sense == ">=":
            expr, sense = -expr, "<="
        inner, outer = self._split(expr)
        # Normalized row: inner(x) SENSE -outer(I).
        rhs = -outer
        row_index = len(self._rows)
        row = _InnerRow(
            lhs=inner,
            rhs=rhs,
            sense=sense,
            dual_bound=float(dual_bound),
            slack_bound=float(slack_bound),
            name=name or f"{self.name}:r{row_index}",
        )
        self._rows.append(row)
        for idx, coef in inner.terms.items():
            self._cols[self._col_of_var[idx]].rows.append((row_index, coef))
        # Post the primal constraint to the host.
        if sense == "<=":
            self.model.add_constr(inner <= rhs, name=row.name)
        else:
            self.model.add_constr(inner == rhs, name=row.name)

    # -- objective accessors -------------------------------------------------
    def objective_expr(self) -> LinExpr:
        """The inner objective over inner variables, in the *native* sense."""
        flip = 1.0 if self.sense == "max" else -1.0
        expr = LinExpr()
        for col in self._cols:
            if col.obj_coef:
                expr.add_term(col.var, flip * col.obj_coef)
        return expr

    # -- embeddings -----------------------------------------------------------
    def embed_kkt(self) -> None:
        """Post dual feasibility and complementary slackness to the host.

        After this call, every feasible point of the host model has the
        inner variables at an *optimal* solution of the inner LP for the
        outer assignment -- which is what makes the single-level reduction
        of the Stackelberg game exact.
        """
        if self._kkt_embedded:
            raise ModelingError("embed_kkt() called twice")
        self._kkt_embedded = True
        model = self.model

        # Dual variables per row.
        for row in self._rows:
            if row.sense == "<=":
                row.dual = model.add_var(
                    lb=0.0, ub=row.dual_bound, name=f"{row.name}:dual"
                )
            else:
                row.dual = model.add_var(
                    lb=-row.dual_bound, ub=row.dual_bound, name=f"{row.name}:dual"
                )
        # Complementarity binaries: t per column, s per inequality row.
        t_vars = [
            model.add_var(binary=True, name=f"{col.var.name}:basic")
            for col in self._cols
        ]
        ineq_rows = [row for row in self._rows if row.sense == "<="]
        for row in ineq_rows:
            if not (row.slack_bound < float("inf")):
                raise ModelingError(
                    f"row {row.name!r} needs a finite slack bound for KKT"
                )
        s_vars = [
            model.add_var(binary=True, name=f"{row.name}:tight")
            for row in ineq_rows
        ]

        # The five KKT constraint families, each posted as one batch.
        # Dual feasibility per column:  sum(coef * dual_r) >= obj_coef.
        df_cols: list[int] = []
        df_data: list[float] = []
        df_indptr: list[int] = [0]
        df_rhs: list[float] = []
        # Column complementarity (reduced cost side):
        #   sum(coef * dual_r) - rc_bound * t <= obj_coef.
        rc_cols: list[int] = []
        rc_data: list[float] = []
        rc_indptr: list[int] = [0]
        rc_rhs: list[float] = []
        # Column complementarity (value side):  x + value_bound * t <= value_bound.
        cx_cols: list[int] = []
        cx_data: list[float] = []
        cx_rhs: list[float] = []
        for col, t in zip(self._cols, t_vars):
            rc_bound = abs(col.obj_coef)
            for r, coef in col.rows:
                dual_idx = self._rows[r].dual.index
                df_cols.append(dual_idx)
                df_data.append(coef)
                rc_cols.append(dual_idx)
                rc_data.append(coef)
                rc_bound += abs(coef) * self._rows[r].dual_bound
            df_indptr.append(len(df_cols))
            df_rhs.append(col.obj_coef)
            rc_cols.append(t.index)
            rc_data.append(-rc_bound)
            rc_indptr.append(len(rc_cols))
            rc_rhs.append(col.obj_coef)
            cx_cols += [col.var.index, t.index]
            cx_data += [1.0, col.value_bound]
            cx_rhs.append(col.value_bound)
        model.add_constrs_batch(
            df_indptr, df_cols, df_data, sense=">=", rhs=df_rhs, name="dualfeas"
        )
        model.add_constrs_batch(
            rc_indptr, rc_cols, rc_data, sense="<=", rhs=rc_rhs, name="cs_rc"
        )
        model.add_constrs_batch(
            np.arange(0, len(cx_cols) + 1, 2), cx_cols, cx_data,
            sense="<=", rhs=cx_rhs, name="cs_x",
        )

        # Row complementarity (dual side):  dual - dual_bound * s <= 0.
        cd_cols: list[int] = []
        cd_data: list[float] = []
        # Row complementarity (slack side):
        #   (rhs - lhs) + slack_bound * s <= slack_bound, with the outer
        #   rhs terms on the left so the row stays linear in outer vars.
        sl_cols: list[int] = []
        sl_data: list[float] = []
        sl_indptr: list[int] = [0]
        sl_rhs: list[float] = []
        for row, s in zip(ineq_rows, s_vars):
            cd_cols += [row.dual.index, s.index]
            cd_data += [1.0, -row.dual_bound]
            for idx, coef in row.rhs.terms.items():
                sl_cols.append(idx)
                sl_data.append(coef)
            for idx, coef in row.lhs.terms.items():
                sl_cols.append(idx)
                sl_data.append(-coef)
            sl_cols.append(s.index)
            sl_data.append(row.slack_bound)
            sl_indptr.append(len(sl_cols))
            sl_rhs.append(row.slack_bound - row.rhs.constant)
        model.add_constrs_batch(
            np.arange(0, len(cd_cols) + 1, 2), cd_cols, cd_data,
            sense="<=", rhs=0.0, name="cs_dual",
        )
        model.add_constrs_batch(
            sl_indptr, sl_cols, sl_data, sense="<=", rhs=sl_rhs, name="cs_slack"
        )

    # -- verification -----------------------------------------------------------
    def _outer_value(self, result: SolveResult, expr: LinExpr) -> float:
        """Evaluate an outer expression with integer variables snapped.

        MILP incumbents can carry binaries at 0.9999...; evaluating the
        Eq. 5 capacity products with such values makes the verification
        LP spuriously infeasible, so integral variables are rounded.
        """
        total = expr.constant
        for idx, coef in expr.terms.items():
            value = float(result.x[idx])
            if self.model.variables[idx].integer:
                value = round(value)
            total += coef * value
        return total

    def _verification_lp(self) -> tuple[Model, range]:
        """The structural verification LP, built once and cached.

        The LP's matrix depends only on the inner rows/columns; only the
        right-hand sides vary with the outer assignment, so
        :meth:`resolve_at` patches them through
        :meth:`repro.solver.model.Model.resolve_with` instead of
        rebuilding the model per verification.
        """
        signature = (len(self._cols), len(self._rows))
        if self._verify_cache is not None and self._verify_cache[0] == signature:
            return self._verify_cache[1], self._verify_cache[2]
        lp = Model(f"{self.name}:verify")
        for col in self._cols:
            lp.add_var(lb=0.0, name=col.var.name)
        # Local column index of inner var j is its position in self._cols.
        cols_l: list[int] = []
        data_l: list[float] = []
        indptr: list[int] = [0]
        senses: list[str] = []
        for row in self._rows:
            for idx, coef in row.lhs.terms.items():
                cols_l.append(self._col_of_var[idx])
                data_l.append(coef)
            indptr.append(len(cols_l))
            senses.append(row.sense)
        rows = lp.add_constrs_batch(
            indptr, cols_l, data_l, sense=senses, rhs=0.0, name="inner"
        )
        lp.set_objective(
            LinExpr.from_arrays(
                np.arange(len(self._cols)),
                np.array([col.obj_coef for col in self._cols]),
            ),
            sense="max",
        )
        self._verify_cache = (signature, lp, rows)
        return lp, rows

    def resolve_at(self, result: SolveResult, time_limit: float | None = None):
        """Re-solve the inner LP with outer variables fixed at a solution.

        The LP structure is cached across calls (Monte Carlo availability
        estimation and sweep verification re-solve the same inner problem
        hundreds of times); each call only patches the right-hand sides.

        Args:
            result: A solution of the host model.
            time_limit: Optional LP time limit.

        Returns:
            The plain-LP :class:`SolveResult` of the inner problem.
        """
        lp, rows = self._verification_lp()
        overrides = {
            rows[i]: self._outer_value(result, row.rhs)
            for i, row in enumerate(self._rows)
        }
        return lp.resolve_with(rhs_overrides=overrides, time_limit=time_limit)

    def verify_optimality(self, result: SolveResult, tol: float = 1e-4) -> float:
        """Check the embedded solution matches the true inner optimum.

        Args:
            result: A solution of the host model (KKT already embedded).
            tol: Absolute/relative tolerance on the objective mismatch.

        Returns:
            The true inner objective (native sense).

        Raises:
            VerificationError: If the embedded objective deviates from the
                re-solved optimum by more than ``tol`` -- i.e. a big-M
                bound was too small and the result cannot be trusted.
        """
        flip = 1.0 if self.sense == "max" else -1.0
        embedded = result.value(self.objective_expr())
        lp_result = self.resolve_at(result)
        if not lp_result.status.ok:
            raise VerificationError(
                f"inner {self.name!r} verification LP failed: {lp_result.status}"
            )
        true_native = flip * lp_result.objective
        scale = max(1.0, abs(true_native))
        if abs(embedded - true_native) > tol * scale:
            raise VerificationError(
                f"inner {self.name!r} embedded objective {embedded:.6g} != "
                f"true optimum {true_native:.6g}; a big-M bound is too small"
            )
        return true_native
