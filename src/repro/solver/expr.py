"""Linear expressions, variables, and constraints.

These classes give the modeling layer a small algebra: variables combine
with floats and each other into :class:`LinExpr` objects, and comparison
operators turn expressions into :class:`Constraint` objects that a
:class:`repro.solver.model.Model` can ingest.

The representation is deliberately simple -- a dict from variable index to
coefficient plus a constant -- because every formulation in this repository
is linear by construction (the paper's whole point is extracting
non-convexities into linear outer constraints).
"""

from __future__ import annotations

import numbers
from collections.abc import Iterable


class Var:
    """A decision variable owned by a :class:`repro.solver.model.Model`.

    Variables are created through :meth:`Model.add_var`; constructing one
    directly will not register it with any model.

    Attributes:
        index: Position of the variable in the model's column order.
        name: Human-readable name used in debugging output.
        lb: Lower bound (may be ``-inf``).
        ub: Upper bound (may be ``inf``).
        integer: Whether the variable is integral.
    """

    __slots__ = ("index", "name", "lb", "ub", "integer")

    def __init__(
        self,
        index: int,
        name: str,
        lb: float = 0.0,
        ub: float = float("inf"),
        integer: bool = False,
    ):
        self.index = index
        self.name = name
        self.lb = lb
        self.ub = ub
        self.integer = integer

    @property
    def is_binary(self) -> bool:
        """Whether this is a 0/1 variable."""
        return self.integer and self.lb == 0.0 and self.ub == 1.0

    def to_expr(self) -> LinExpr:
        """Return this variable as a single-term linear expression."""
        return LinExpr({self.index: 1.0}, 0.0)

    # -- arithmetic delegates to LinExpr ---------------------------------
    def __add__(self, other):
        return self.to_expr() + other

    def __radd__(self, other):
        return self.to_expr() + other

    def __sub__(self, other):
        return self.to_expr() - other

    def __rsub__(self, other):
        return (-self.to_expr()) + other

    def __mul__(self, other):
        return self.to_expr() * other

    def __rmul__(self, other):
        return self.to_expr() * other

    def __truediv__(self, other):
        return self.to_expr() / other

    def __neg__(self):
        return -self.to_expr()

    def __le__(self, other):
        return self.to_expr() <= other

    def __ge__(self, other):
        return self.to_expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (Var, LinExpr, numbers.Real)):
            return self.to_expr() == other
        return NotImplemented

    def __hash__(self):
        return hash((id(type(self)), self.index))

    def __repr__(self):
        return f"Var({self.name!r})"


class LinExpr:
    """An affine expression ``sum(coef_i * x_i) + constant``.

    Supports ``+``, ``-``, multiplication/division by scalars, and
    comparisons (which produce :class:`Constraint` objects).  Expressions
    are immutable from the caller's point of view; arithmetic returns new
    objects.
    """

    __slots__ = ("terms", "constant")

    def __init__(self, terms: dict[int, float] | None = None, constant: float = 0.0):
        self.terms = dict(terms) if terms else {}
        self.constant = float(constant)

    @staticmethod
    def _coerce(value) -> LinExpr:
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Var):
            return value.to_expr()
        if isinstance(value, numbers.Real):
            return LinExpr({}, float(value))
        raise TypeError(f"cannot build a linear expression from {value!r}")

    def copy(self) -> LinExpr:
        """Return an independent copy of this expression."""
        return LinExpr(dict(self.terms), self.constant)

    def add_term(self, var: Var, coef: float) -> None:
        """Accumulate ``coef * var`` in place (builder-style mutation)."""
        idx = var.index
        new = self.terms.get(idx, 0.0) + coef
        if new == 0.0:
            self.terms.pop(idx, None)
        else:
            self.terms[idx] = new

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other) -> LinExpr:
        other = self._coerce(other)
        result = self.copy()
        for idx, coef in other.terms.items():
            new = result.terms.get(idx, 0.0) + coef
            if new == 0.0:
                result.terms.pop(idx, None)
            else:
                result.terms[idx] = new
        result.constant += other.constant
        return result

    def __radd__(self, other) -> LinExpr:
        return self.__add__(other)

    def __sub__(self, other) -> LinExpr:
        return self.__add__(self._coerce(other) * -1.0)

    def __rsub__(self, other) -> LinExpr:
        return (self * -1.0).__add__(other)

    def __mul__(self, scalar) -> LinExpr:
        if not isinstance(scalar, numbers.Real):
            raise TypeError("expressions can only be scaled by real numbers")
        scalar = float(scalar)
        if scalar == 0.0:
            return LinExpr()
        return LinExpr(
            {idx: coef * scalar for idx, coef in self.terms.items()},
            self.constant * scalar,
        )

    def __rmul__(self, scalar) -> LinExpr:
        return self.__mul__(scalar)

    def __truediv__(self, scalar) -> LinExpr:
        if not isinstance(scalar, numbers.Real) or scalar == 0:
            raise TypeError("expressions can only be divided by nonzero numbers")
        return self.__mul__(1.0 / float(scalar))

    def __neg__(self) -> LinExpr:
        return self.__mul__(-1.0)

    # -- comparisons produce constraints ----------------------------------
    def __le__(self, other) -> Constraint:
        return Constraint(self - self._coerce(other), "<=")

    def __ge__(self, other) -> Constraint:
        return Constraint(self - self._coerce(other), ">=")

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (Var, LinExpr, numbers.Real)):
            return Constraint(self - self._coerce(other), "==")
        return NotImplemented

    def __hash__(self):
        return id(self)

    def __repr__(self):
        parts = [f"{coef:+g}*x{idx}" for idx, coef in sorted(self.terms.items())]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"


class Constraint:
    """A normalized linear constraint ``expr SENSE 0``.

    ``expr`` holds all variable terms and the constant moved to the left
    side, so the right side is always zero.  ``sense`` is one of ``"<="``,
    ``">="``, or ``"=="``.
    """

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: str, name: str = ""):
        if sense not in ("<=", ">=", "=="):
            raise ValueError(f"unknown constraint sense {sense!r}")
        self.expr = expr
        self.sense = sense
        self.name = name

    def rhs(self) -> float:
        """Constant right-hand side after moving the constant term over."""
        return -self.expr.constant

    def __repr__(self):
        label = f" {self.name!r}" if self.name else ""
        return f"Constraint({self.expr!r} {self.sense} 0{label})"


def quicksum(items: Iterable) -> LinExpr:
    """Sum variables/expressions/numbers into one :class:`LinExpr`.

    Unlike built-in :func:`sum`, this accumulates into a single expression
    without creating an intermediate object per addition, which matters
    when a capacity constraint sums thousands of flow terms.
    """
    result = LinExpr()
    terms = result.terms
    for item in items:
        if isinstance(item, Var):
            new = terms.get(item.index, 0.0) + 1.0
            if new == 0.0:
                terms.pop(item.index, None)
            else:
                terms[item.index] = new
        elif isinstance(item, LinExpr):
            for idx, coef in item.terms.items():
                new = terms.get(idx, 0.0) + coef
                if new == 0.0:
                    terms.pop(idx, None)
                else:
                    terms[idx] = new
            result.constant += item.constant
        elif isinstance(item, numbers.Real):
            result.constant += float(item)
        else:
            raise TypeError(f"cannot sum {item!r} into a linear expression")
    return result
