"""Linear expressions, variables, and constraints.

These classes give the modeling layer a small algebra: variables combine
with floats and each other into :class:`LinExpr` objects, and comparison
operators turn expressions into :class:`Constraint` objects that a
:class:`repro.solver.model.Model` can ingest.

The representation is deliberately simple -- a dict from variable index to
coefficient plus a constant -- because every formulation in this repository
is linear by construction (the paper's whole point is extracting
non-convexities into linear outer constraints).
"""

from __future__ import annotations

import numbers
from collections.abc import Iterable, Sequence

import numpy as np


class Var:
    """A decision variable owned by a :class:`repro.solver.model.Model`.

    Variables are created through :meth:`Model.add_var`; constructing one
    directly will not register it with any model.

    Attributes:
        index: Position of the variable in the model's column order.
        name: Human-readable name used in debugging output.
        lb: Lower bound (may be ``-inf``).
        ub: Upper bound (may be ``inf``).
        integer: Whether the variable is integral.
    """

    __slots__ = ("index", "name", "lb", "ub", "integer")

    def __init__(
        self,
        index: int,
        name: str,
        lb: float = 0.0,
        ub: float = float("inf"),
        integer: bool = False,
    ):
        self.index = index
        self.name = name
        self.lb = lb
        self.ub = ub
        self.integer = integer

    @property
    def is_binary(self) -> bool:
        """Whether this is a 0/1 variable."""
        return self.integer and self.lb == 0.0 and self.ub == 1.0

    def to_expr(self) -> LinExpr:
        """Return this variable as a single-term linear expression."""
        return LinExpr({self.index: 1.0}, 0.0)

    # -- arithmetic delegates to LinExpr ---------------------------------
    def __add__(self, other):
        return self.to_expr() + other

    def __radd__(self, other):
        return self.to_expr() + other

    def __sub__(self, other):
        return self.to_expr() - other

    def __rsub__(self, other):
        return (-self.to_expr()) + other

    def __mul__(self, other):
        return self.to_expr() * other

    def __rmul__(self, other):
        return self.to_expr() * other

    def __truediv__(self, other):
        return self.to_expr() / other

    def __neg__(self):
        return -self.to_expr()

    def __le__(self, other):
        return self.to_expr() <= other

    def __ge__(self, other):
        return self.to_expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (Var, LinExpr, numbers.Real)):
            return self.to_expr() == other
        return NotImplemented

    def __hash__(self):
        return hash((id(type(self)), self.index))

    def __repr__(self):
        return f"Var({self.name!r})"


class LinExpr:
    """An affine expression ``sum(coef_i * x_i) + constant``.

    Supports ``+``, ``-``, multiplication/division by scalars, and
    comparisons (which produce :class:`Constraint` objects).  Expressions
    are immutable from the caller's point of view; arithmetic returns new
    objects.
    """

    __slots__ = ("terms", "constant")

    def __init__(self, terms: dict[int, float] | None = None, constant: float = 0.0):
        self.terms = dict(terms) if terms else {}
        self.constant = float(constant)

    @staticmethod
    def _coerce(value) -> LinExpr:
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Var):
            return value.to_expr()
        if isinstance(value, numbers.Real):
            return LinExpr({}, float(value))
        raise TypeError(f"cannot build a linear expression from {value!r}")

    @staticmethod
    def from_arrays(indices, coefs, constant: float = 0.0) -> LinExpr:
        """Build ``sum(coefs[i] * x_{indices[i]}) + constant`` vectorized.

        The array-backed construction path: duplicate indices are summed
        and exact-zero coefficients dropped without any per-term Python
        dict traffic.  ``indices`` are variable *column indices*
        (``Var.index``), not :class:`Var` objects.
        """
        idx = np.asarray(indices, dtype=np.intp)
        val = np.asarray(coefs, dtype=np.float64)
        if idx.shape != val.shape or idx.ndim != 1:
            raise ValueError(
                f"from_arrays needs matching 1-D arrays, got shapes "
                f"{idx.shape} and {val.shape}"
            )
        if idx.size == 0:
            return LinExpr({}, constant)
        unique, inverse = np.unique(idx, return_inverse=True)
        sums = np.bincount(inverse, weights=val, minlength=unique.size)
        keep = sums != 0.0
        if not keep.all():
            unique, sums = unique[keep], sums[keep]
        expr = LinExpr(None, constant)
        expr.terms = dict(zip(unique.tolist(), sums.tolist()))
        return expr

    def copy(self) -> LinExpr:
        """Return an independent copy of this expression."""
        return LinExpr(dict(self.terms), self.constant)

    def add_term(self, var: Var, coef: float) -> None:
        """Accumulate ``coef * var`` in place (builder-style mutation)."""
        idx = var.index
        new = self.terms.get(idx, 0.0) + coef
        if new == 0.0:
            self.terms.pop(idx, None)
        else:
            self.terms[idx] = new

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other) -> LinExpr:
        other = self._coerce(other)
        result = self.copy()
        for idx, coef in other.terms.items():
            new = result.terms.get(idx, 0.0) + coef
            if new == 0.0:
                result.terms.pop(idx, None)
            else:
                result.terms[idx] = new
        result.constant += other.constant
        return result

    def __radd__(self, other) -> LinExpr:
        return self.__add__(other)

    def __sub__(self, other) -> LinExpr:
        return self.__add__(self._coerce(other) * -1.0)

    def __rsub__(self, other) -> LinExpr:
        return (self * -1.0).__add__(other)

    def __mul__(self, scalar) -> LinExpr:
        if not isinstance(scalar, numbers.Real):
            raise TypeError("expressions can only be scaled by real numbers")
        scalar = float(scalar)
        if scalar == 0.0:
            return LinExpr()
        return LinExpr(
            {idx: coef * scalar for idx, coef in self.terms.items()},
            self.constant * scalar,
        )

    def __rmul__(self, scalar) -> LinExpr:
        return self.__mul__(scalar)

    def __truediv__(self, scalar) -> LinExpr:
        if not isinstance(scalar, numbers.Real) or scalar == 0:
            raise TypeError("expressions can only be divided by nonzero numbers")
        return self.__mul__(1.0 / float(scalar))

    def __neg__(self) -> LinExpr:
        return self.__mul__(-1.0)

    # -- comparisons produce constraints ----------------------------------
    def __le__(self, other) -> Constraint:
        return Constraint(self - self._coerce(other), "<=")

    def __ge__(self, other) -> Constraint:
        return Constraint(self - self._coerce(other), ">=")

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (Var, LinExpr, numbers.Real)):
            return Constraint(self - self._coerce(other), "==")
        return NotImplemented

    def __hash__(self):
        return id(self)

    def __repr__(self):
        parts = [f"{coef:+g}*x{idx}" for idx, coef in sorted(self.terms.items())]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"


class Constraint:
    """A normalized linear constraint ``expr SENSE 0``.

    ``expr`` holds all variable terms and the constant moved to the left
    side, so the right side is always zero.  ``sense`` is one of ``"<="``,
    ``">="``, or ``"=="``.

    Once registered with a model, :attr:`row` holds the constraint's row
    index -- the handle :meth:`repro.solver.model.Model.resolve_with`
    accepts for right-hand-side overrides.
    """

    __slots__ = ("expr", "sense", "name", "row")

    def __init__(self, expr: LinExpr, sense: str, name: str = ""):
        if sense not in ("<=", ">=", "=="):
            raise ValueError(f"unknown constraint sense {sense!r}")
        self.expr = expr
        self.sense = sense
        self.name = name
        self.row: int | None = None

    def rhs(self) -> float:
        """Constant right-hand side after moving the constant term over."""
        return -self.expr.constant

    def __repr__(self):
        label = f" {self.name!r}" if self.name else ""
        return f"Constraint({self.expr!r} {self.sense} 0{label})"


class RangeConstraint(Constraint):
    """A two-sided row ``lo <= expr <= hi`` occupying a single matrix row.

    Range rows are how HiGHS natively models interval constraints; one
    row with both bounds is cheaper than the ``<=``/``>=`` pair and --
    after the dual-recovery fix in ``Model._recover_duals`` -- reports a
    single combined marginal for shifting the whole interval.
    Build via :meth:`repro.solver.model.Model.add_range_constr`.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, expr: LinExpr, lo: float, hi: float, name: str = ""):
        lo, hi = float(lo), float(hi)
        if not lo <= hi:
            raise ValueError(f"range constraint has lo {lo} > hi {hi}")
        self.expr = expr
        self.sense = "range"
        self.name = name
        self.row = None
        self.lo = lo
        self.hi = hi

    def rhs(self) -> float:
        raise TypeError(
            "range constraints have two right-hand sides; use .lo/.hi"
        )

    def __repr__(self):
        label = f" {self.name!r}" if self.name else ""
        return (
            f"RangeConstraint({self.lo:g} <= {self.expr!r} <= "
            f"{self.hi:g}{label})"
        )


def indices_of(variables: Iterable[Var]) -> np.ndarray:
    """The column indices of a variable sequence, as an array.

    The bridge between :class:`Var` handles and the array-backed APIs
    (:meth:`LinExpr.from_arrays`,
    :meth:`repro.solver.model.Model.add_constrs_batch`).
    """
    if isinstance(variables, Sequence):
        return np.fromiter(
            (v.index for v in variables), dtype=np.intp,
            count=len(variables),
        )
    return np.fromiter((v.index for v in variables), dtype=np.intp)


def quicksum(items: Iterable, coefs=None) -> LinExpr:
    """Sum variables/expressions/numbers into one :class:`LinExpr`.

    Unlike built-in :func:`sum`, this accumulates into a single expression
    without creating an intermediate object per addition, which matters
    when a capacity constraint sums thousands of flow terms.

    Args:
        items: Variables, expressions, or numbers to sum.
        coefs: Optional per-item weights.  When every item is a
            :class:`Var` the weighted sum is assembled through the
            vectorized :meth:`LinExpr.from_arrays` path (the batched
            form of the old ``quicksum(c * x for ...)`` idiom).
    """
    if coefs is not None:
        items = list(items)
        coefs = np.asarray(coefs, dtype=np.float64)
        if coefs.shape != (len(items),):
            raise ValueError(
                f"quicksum got {len(items)} items but coefs shape "
                f"{coefs.shape}"
            )
        if all(isinstance(item, Var) for item in items):
            return LinExpr.from_arrays(indices_of(items), coefs)
        result = LinExpr()
        for item, coef in zip(items, coefs):
            result = result + LinExpr._coerce(item) * float(coef)
        return result
    result = LinExpr()
    terms = result.terms
    for item in items:
        if isinstance(item, Var):
            new = terms.get(item.index, 0.0) + 1.0
            if new == 0.0:
                terms.pop(item.index, None)
            else:
                terms[item.index] = new
        elif isinstance(item, LinExpr):
            for idx, coef in item.terms.items():
                new = terms.get(idx, 0.0) + coef
                if new == 0.0:
                    terms.pop(idx, None)
                else:
                    terms[idx] = new
            result.constant += item.constant
        elif isinstance(item, numbers.Real):
            result.constant += float(item)
        else:
            raise TypeError(f"cannot sum {item!r} into a linear expression")
    return result
