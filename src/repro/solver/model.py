"""The :class:`Model` class: build linear/MILP models and solve with HiGHS.

The model accumulates variables and constraints built with the expression
algebra from :mod:`repro.solver.expr`, compiles them into sparse matrices,
and dispatches to :func:`scipy.optimize.milp` (when any variable is
integral) or :func:`scipy.optimize.linprog` (pure LPs; duals recovered).

This is the stand-in for Gurobi in the paper's stack.  It intentionally
exposes the two solver features the paper's evaluation leans on:

* ``time_limit`` -- MetaOpt's ``timeout`` feature (Section 6 / Figure 16);
  on expiry the incumbent is returned with :class:`SolveStatus.TIME_LIMIT`.
* ``mip_rel_gap`` -- an optional optimality-gap tolerance used to trade
  precision for runtime in large sweeps.

The hot path is array-backed: constraint coefficients live in COO
*segments* (numpy triplet arrays from :meth:`Model.add_constrs_batch`,
plus one pending Python-list segment fed by scalar :meth:`Model.add_constr`
calls), and row/variable bounds live in amortized-growth buffers.
Compilation concatenates the segments straight into a CSR matrix -- no
per-term Python loop -- and the result is cached on the model until the
next mutation, so repeated :meth:`Model.solve` /
:meth:`Model.resolve_with` calls skip matrix assembly entirely.
"""

from __future__ import annotations

import time
from collections.abc import Hashable, Iterable, Mapping
from itertools import repeat
from typing import NamedTuple

import numpy as np
from scipy import optimize, sparse

from repro.exceptions import ModelingError
from repro.obs.trace import current_tracer
from repro.resilience.faults import maybe_fire
from repro.solver.expr import Constraint, LinExpr, RangeConstraint, Var
from repro.solver.result import SolveResult, SolveStats, SolveStatus

_SCIPY_STATUS = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.TIME_LIMIT,
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}

# Row sense codes stored in the model's uint8 sense buffer.
_LE, _GE, _EQ, _RANGE = 0, 1, 2, 3
_SENSE_CODE = {"<=": _LE, ">=": _GE, "==": _EQ}

_INF = float("inf")


class _Buffer:
    """An amortized-growth typed array (the numpy analogue of list.append)."""

    __slots__ = ("_data", "n")

    def __init__(self, dtype=np.float64, capacity: int = 16):
        self._data = np.empty(capacity, dtype=dtype)
        self.n = 0

    def _reserve(self, extra: int) -> None:
        need = self.n + extra
        cap = self._data.size
        if need > cap:
            while cap < need:
                cap *= 2
            grown = np.empty(cap, dtype=self._data.dtype)
            grown[: self.n] = self._data[: self.n]
            self._data = grown

    def push(self, value) -> None:
        self._reserve(1)
        self._data[self.n] = value
        self.n += 1

    def extend(self, values) -> None:
        values = np.asarray(values)
        k = values.size
        self._reserve(k)
        self._data[self.n : self.n + k] = values
        self.n += k

    def view(self) -> np.ndarray:
        """The live prefix.  Aliases internal storage; do not mutate."""
        return self._data[: self.n]


class _Compiled(NamedTuple):
    """The matrices a solve needs, cached on the model between mutations."""

    c: np.ndarray
    a: sparse.csr_matrix
    row_lb: np.ndarray
    row_ub: np.ndarray
    var_lb: np.ndarray
    var_ub: np.ndarray
    integrality: np.ndarray
    max_abs_coef: float
    max_abs_rhs: float


class Model:
    """A linear or mixed-integer optimization model.

    Example:
        >>> m = Model("toy")
        >>> x = m.add_var(ub=4, name="x")
        >>> y = m.add_var(ub=4, name="y")
        >>> _ = m.add_constr(x + y <= 6)
        >>> m.set_objective(x + 2 * y, sense="max")
        >>> result = m.solve()
        >>> round(result.objective, 6)
        10.0
    """

    def __init__(self, name: str = "model"):
        self.name = name
        self._vars: list[Var] = []
        self._var_lb = _Buffer()
        self._var_ub = _Buffer()
        self._var_int = _Buffer(dtype=np.uint8)
        self._objective: LinExpr = LinExpr()
        self._sense: str = "min"
        self._num_integer = 0

        # Constraint matrix storage: closed numpy COO segments plus one
        # open Python-list segment that scalar add_constr() appends to.
        self._segments: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._coo_rows: list[int] = []
        self._coo_cols: list[int] = []
        self._coo_vals: list[float] = []
        self._row_lb = _Buffer()
        self._row_ub = _Buffer()
        self._row_sense = _Buffer(dtype=np.uint8)
        self._row_names: list[str] = []
        # Constraint handle per row; None for batch-added rows (materialized
        # lazily by the .constraints property when someone asks).
        self._row_cons: list[Constraint | None] = []
        self._num_batch_rows = 0

        self._compiled: _Compiled | None = None
        self._materialized: list[Constraint] | None = None
        self._created = time.monotonic()
        self._build_seconds = 0.0
        self._compile_seconds = 0.0

    # -- introspection ----------------------------------------------------
    @property
    def num_vars(self) -> int:
        """Number of variables added so far."""
        return len(self._vars)

    @property
    def num_constraints(self) -> int:
        """Number of constraint rows added so far."""
        return self._row_lb.n

    @property
    def num_integer_vars(self) -> int:
        """Number of integer (including binary) variables."""
        return self._num_integer

    @property
    def is_mip(self) -> bool:
        """Whether the model contains integer variables."""
        return self._num_integer > 0

    @property
    def variables(self) -> list[Var]:
        """The variables in column order (do not mutate)."""
        return self._vars

    @property
    def constraints(self) -> list[Constraint]:
        """The constraints in row order (do not mutate).

        Rows added through :meth:`add_constrs_batch` have no pre-built
        :class:`Constraint` objects; asking for this property materializes
        them from the compiled matrix (a debugging convenience -- the hot
        path never pays for it).
        """
        if self._num_batch_rows == 0:
            return self._row_cons  # type: ignore[return-value]
        if self._materialized is None:
            self._materialized = self._materialize_constraints()
        return self._materialized

    @property
    def objective(self) -> LinExpr:
        """The current objective expression."""
        return self._objective

    @property
    def sense(self) -> str:
        """The objective sense, ``"min"`` or ``"max"``."""
        return self._sense

    # -- building ---------------------------------------------------------
    def _invalidate(self) -> None:
        self._compiled = None
        self._materialized = None

    def add_var(
        self,
        lb: float | None = None,
        ub: float | None = None,
        name: str | None = None,
        integer: bool = False,
        binary: bool = False,
    ) -> Var:
        """Create and register a variable.

        Args:
            lb: Lower bound; defaults to zero (the natural domain of flows).
            ub: Upper bound; defaults to ``+inf``.
            name: Optional debugging name; autogenerated when omitted.
            integer: Restrict to integer values.
            binary: Shortcut for ``integer=True, lb=0, ub=1``.  Explicit
                bounds outside {0, 1} raise :class:`ModelingError` rather
                than being silently replaced (pinning to 0 or 1 is fine).
        """
        if binary:
            integer = True
            lb = 0.0 if lb is None else float(lb)
            ub = 1.0 if ub is None else float(ub)
            if lb not in (0.0, 1.0) or ub not in (0.0, 1.0):
                raise ModelingError(
                    f"variable {name!r}: bounds [{lb:g}, {ub:g}] conflict with "
                    f"binary=True (binaries live in {{0, 1}}; drop the bounds, "
                    f"or use integer=True for a general integer variable)"
                )
        else:
            lb = 0.0 if lb is None else float(lb)
            ub = _INF if ub is None else float(ub)
        if lb > ub:
            raise ModelingError(f"variable {name!r} has lb {lb} > ub {ub}")
        index = len(self._vars)
        var = Var(index, name or f"x{index}", lb=lb, ub=ub, integer=integer)
        self._vars.append(var)
        self._var_lb.push(lb)
        self._var_ub.push(ub)
        self._var_int.push(1 if integer else 0)
        if integer:
            self._num_integer += 1
        self._invalidate()
        return var

    def add_vars(
        self,
        keys: Iterable[Hashable],
        lb: float = 0.0,
        ub: float = _INF,
        name: str = "x",
        integer: bool = False,
        binary: bool = False,
    ) -> dict:
        """Create one variable per key and return them keyed by the input."""
        return {
            key: self.add_var(
                lb=lb, ub=ub, name=f"{name}[{key}]", integer=integer, binary=binary
            )
            for key in keys
        }

    def add_vars_batch(
        self,
        count: int,
        lb=None,
        ub=None,
        name: str = "x",
        integer: bool = False,
        binary: bool = False,
    ) -> list[Var]:
        """Create ``count`` variables at once; bounds may be arrays.

        Args:
            count: Number of variables to create.
            lb / ub: Scalar or length-``count`` arrays of bounds.
            name: Name stem; variables are named ``name[i]``.
            integer / binary: As in :meth:`add_var` (applied to all).

        Returns:
            The new :class:`Var` handles in column order.
        """
        count = int(count)
        if count < 0:
            raise ModelingError(f"cannot create {count} variables")
        if binary:
            integer = True
            lb = 0.0 if lb is None else lb
            ub = 1.0 if ub is None else ub
        else:
            lb = 0.0 if lb is None else lb
            ub = _INF if ub is None else ub
        try:
            lb_arr = np.broadcast_to(
                np.asarray(lb, dtype=np.float64), (count,)
            )
            ub_arr = np.broadcast_to(
                np.asarray(ub, dtype=np.float64), (count,)
            )
        except ValueError as exc:
            raise ModelingError(f"bad bound shape for {count} variables: {exc}")
        if binary and not (
            np.isin(lb_arr, (0.0, 1.0)).all()
            and np.isin(ub_arr, (0.0, 1.0)).all()
        ):
            raise ModelingError(
                f"variables {name!r}: bounds conflict with binary=True "
                f"(binaries live in {{0, 1}})"
            )
        if (lb_arr > ub_arr).any():
            bad = int(np.flatnonzero(lb_arr > ub_arr)[0])
            raise ModelingError(
                f"variable {name}[{bad}] has lb {lb_arr[bad]} > ub {ub_arr[bad]}"
            )
        base = len(self._vars)
        new_vars = [
            Var(
                base + i,
                f"{name}[{i}]",
                lb=float(lb_arr[i]),
                ub=float(ub_arr[i]),
                integer=integer,
            )
            for i in range(count)
        ]
        self._vars.extend(new_vars)
        self._var_lb.extend(lb_arr)
        self._var_ub.extend(ub_arr)
        self._var_int.extend(
            np.ones(count, dtype=np.uint8)
            if integer
            else np.zeros(count, dtype=np.uint8)
        )
        if integer:
            self._num_integer += count
        self._invalidate()
        return new_vars

    def add_constr(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built with ``<=``, ``>=`` or ``==``."""
        if not isinstance(constraint, Constraint):
            raise ModelingError(
                f"expected a Constraint (did the comparison fold to a bool?): "
                f"{constraint!r}"
            )
        if name:
            constraint.name = name
        expr = constraint.expr
        row = self._row_lb.n
        terms = expr.terms
        if terms:
            self._coo_rows.extend(repeat(row, len(terms)))
            self._coo_cols.extend(terms.keys())
            self._coo_vals.extend(terms.values())
        if isinstance(constraint, RangeConstraint):
            lo = constraint.lo - expr.constant
            hi = constraint.hi - expr.constant
            code = _RANGE
        else:
            rhs = -expr.constant
            sense = constraint.sense
            if sense == "<=":
                lo, hi, code = -_INF, rhs, _LE
            elif sense == ">=":
                lo, hi, code = rhs, _INF, _GE
            else:
                lo, hi, code = rhs, rhs, _EQ
        self._row_lb.push(lo)
        self._row_ub.push(hi)
        self._row_sense.push(code)
        self._row_names.append(constraint.name)
        self._row_cons.append(constraint)
        constraint.row = row
        self._invalidate()
        return constraint

    def add_constrs(self, constraints: Iterable[Constraint], name: str = "") -> None:
        """Register several constraints, numbering their names."""
        for i, con in enumerate(constraints):
            self.add_constr(con, name=f"{name}[{i}]" if name else "")

    def add_range_constr(
        self, expr, lo: float, hi: float, name: str = ""
    ) -> RangeConstraint:
        """Register ``lo <= expr <= hi`` as a single two-sided row."""
        con = RangeConstraint(LinExpr._coerce(expr), lo, hi, name=name)
        self.add_constr(con)
        return con

    def add_constrs_batch(
        self,
        indptr,
        columns,
        data=None,
        *,
        sense="<=",
        rhs=None,
        row_lb=None,
        row_ub=None,
        name: str = "",
    ) -> range:
        """Register many constraint rows from coefficient arrays at once.

        The rows are given in CSR-like form: row ``i`` owns the slice
        ``columns[indptr[i]:indptr[i+1]]`` / ``data[...]``.  No
        :class:`Constraint` objects are created (see :attr:`constraints`
        for lazy materialization), and no per-term Python work happens --
        this is the fast path the TE builders and the KKT embedding use.

        Args:
            indptr: ``len == n_rows + 1`` offsets into ``columns``/``data``.
            columns: Variable column indices (``Var.index``) per term.
            data: Coefficients per term; omitted means all ones.
            sense: A single sense string for every row, or a sequence of
                per-row senses.  Ignored when ``row_lb``/``row_ub`` given.
            rhs: Scalar or per-row right-hand sides (with ``sense``).
            row_lb / row_ub: Explicit two-sided row bounds (scalar or
                per-row); use these for range rows.
        Returns:
            ``range(first_row, first_row + n_rows)`` -- the row indices,
            usable as keys in :meth:`resolve_with` overrides.
        """
        indptr = np.asarray(indptr, dtype=np.intp)
        columns = np.asarray(columns, dtype=np.intp)
        if indptr.ndim != 1 or indptr.size == 0:
            raise ModelingError("indptr must be a non-empty 1-D array")
        n_new = indptr.size - 1
        lengths = np.diff(indptr)
        if indptr[0] != 0 or (lengths < 0).any() or indptr[-1] != columns.size:
            raise ModelingError(
                "indptr must start at 0, be nondecreasing, and end at "
                f"len(columns)={columns.size}; got {indptr[0]}..{indptr[-1]}"
            )
        if data is None:
            vals = np.ones(columns.size, dtype=np.float64)
        else:
            vals = np.asarray(data, dtype=np.float64)
            if vals.shape != columns.shape:
                raise ModelingError(
                    f"data shape {vals.shape} != columns shape {columns.shape}"
                )
        if columns.size and (
            int(columns.min()) < 0 or int(columns.max()) >= len(self._vars)
        ):
            raise ModelingError(
                f"column index out of range [0, {len(self._vars)})"
            )

        try:
            if row_lb is not None or row_ub is not None:
                if rhs is not None:
                    raise ModelingError(
                        "pass either rhs+sense or row_lb/row_ub, not both"
                    )
                lo = (
                    np.full(n_new, -_INF)
                    if row_lb is None
                    else np.broadcast_to(
                        np.asarray(row_lb, dtype=np.float64), (n_new,)
                    )
                )
                hi = (
                    np.full(n_new, _INF)
                    if row_ub is None
                    else np.broadcast_to(
                        np.asarray(row_ub, dtype=np.float64), (n_new,)
                    )
                )
                if (lo > hi).any():
                    bad = int(np.flatnonzero(lo > hi)[0])
                    raise ModelingError(
                        f"row {bad} has row_lb {lo[bad]} > row_ub {hi[bad]}"
                    )
                codes = np.full(n_new, _RANGE, dtype=np.uint8)
                lo_fin = np.isfinite(lo)
                hi_fin = np.isfinite(hi)
                codes[~lo_fin] = _LE
                codes[lo_fin & ~hi_fin] = _GE
                codes[lo_fin & hi_fin & (lo == hi)] = _EQ
            else:
                if rhs is None:
                    raise ModelingError(
                        "add_constrs_batch needs rhs (or row_lb/row_ub)"
                    )
                rhs_arr = np.broadcast_to(
                    np.asarray(rhs, dtype=np.float64), (n_new,)
                )
                if isinstance(sense, str):
                    if sense not in _SENSE_CODE:
                        raise ModelingError(f"unknown constraint sense {sense!r}")
                    code = _SENSE_CODE[sense]
                    codes = np.full(n_new, code, dtype=np.uint8)
                    lo = (
                        np.full(n_new, -_INF) if code == _LE else rhs_arr
                    )
                    hi = np.full(n_new, _INF) if code == _GE else rhs_arr
                else:
                    try:
                        codes = np.fromiter(
                            (_SENSE_CODE[s] for s in sense),
                            dtype=np.uint8,
                            count=n_new,
                        )
                    except KeyError as exc:
                        raise ModelingError(
                            f"unknown constraint sense {exc.args[0]!r}"
                        )
                    lo = np.where(codes != _LE, rhs_arr, -_INF)
                    hi = np.where(codes != _GE, rhs_arr, _INF)
        except ValueError as exc:
            raise ModelingError(
                f"bad rhs/bound shape for {n_new} rows: {exc}"
            )

        base = self._row_lb.n
        rows = np.repeat(
            np.arange(base, base + n_new, dtype=np.intp), lengths
        )
        self._flush_scalar()
        self._segments.append((rows, columns, vals))
        self._row_lb.extend(lo)
        self._row_ub.extend(hi)
        self._row_sense.extend(codes)
        self._row_names.extend(repeat(name, n_new))
        self._row_cons.extend(repeat(None, n_new))
        self._num_batch_rows += n_new
        self._invalidate()
        return range(base, base + n_new)

    def set_objective(self, expr, sense: str = "min") -> None:
        """Set the objective expression and sense (``"min"`` or ``"max"``)."""
        if sense not in ("min", "max"):
            raise ModelingError(f"unknown objective sense {sense!r}")
        self._objective = LinExpr._coerce(expr)
        self._sense = sense
        self._invalidate()

    # -- compilation ------------------------------------------------------
    def _flush_scalar(self) -> None:
        """Close the open scalar segment into a numpy triplet segment."""
        if self._coo_cols:
            self._segments.append(
                (
                    np.asarray(self._coo_rows, dtype=np.intp),
                    np.asarray(self._coo_cols, dtype=np.intp),
                    np.asarray(self._coo_vals, dtype=np.float64),
                )
            )
            self._coo_rows, self._coo_cols, self._coo_vals = [], [], []

    def _ensure_compiled(self) -> tuple[_Compiled, bool]:
        """Return the compiled matrices and whether the cache supplied them."""
        if self._compiled is not None:
            return self._compiled, True
        with current_tracer().span("compile", model=self.name) as span:
            compiled = self._compile_fresh()
            span.set(
                rows=compiled.a.shape[0], cols=compiled.a.shape[1],
                nnz=int(compiled.a.nnz),
                build_seconds=self._build_seconds,
                compile_seconds=self._compile_seconds,
            )
        return compiled, False

    def _compile_fresh(self) -> _Compiled:
        """The actual compile work behind :meth:`_ensure_compiled`."""
        started = time.monotonic()
        self._build_seconds = started - self._created
        self._flush_scalar()
        n = len(self._vars)
        m = self._row_lb.n
        c = np.zeros(n)
        obj_terms = self._objective.terms
        if obj_terms:
            c[
                np.fromiter(obj_terms.keys(), dtype=np.intp, count=len(obj_terms))
            ] = np.fromiter(
                obj_terms.values(), dtype=np.float64, count=len(obj_terms)
            )
        if not self._segments:
            rows = np.empty(0, dtype=np.intp)
            cols = np.empty(0, dtype=np.intp)
            vals = np.empty(0, dtype=np.float64)
        elif len(self._segments) == 1:
            rows, cols, vals = self._segments[0]
        else:
            rows = np.concatenate([s[0] for s in self._segments])
            cols = np.concatenate([s[1] for s in self._segments])
            vals = np.concatenate([s[2] for s in self._segments])
            self._segments = [(rows, cols, vals)]
        # COO -> CSR canonicalizes: duplicates summed, column indices
        # sorted, so scalar- and batch-built models with the same triplet
        # multiset compile to identical matrices.
        a_matrix = sparse.csr_matrix((vals, (rows, cols)), shape=(m, n))

        row_lb = self._row_lb.view()
        row_ub = self._row_ub.view()
        max_abs_coef = float(np.abs(a_matrix.data).max()) if a_matrix.nnz else 0.0
        max_abs_rhs = 0.0
        for arr in (row_lb, row_ub):
            finite = arr[np.isfinite(arr)]
            if finite.size:
                max_abs_rhs = max(max_abs_rhs, float(np.abs(finite).max()))
        compiled = _Compiled(
            c=c,
            a=a_matrix,
            row_lb=row_lb,
            row_ub=row_ub,
            var_lb=self._var_lb.view(),
            var_ub=self._var_ub.view(),
            integrality=self._var_int.view(),
            max_abs_coef=max_abs_coef,
            max_abs_rhs=max_abs_rhs,
        )
        self._compile_seconds = time.monotonic() - started
        self._compiled = compiled
        return compiled

    def _compile(self):
        """Build (c, A, row_lb, row_ub, bounds, integrality) matrices."""
        compiled, _ = self._ensure_compiled()
        return (
            compiled.c,
            compiled.a,
            compiled.row_lb,
            compiled.row_ub,
            compiled.var_lb,
            compiled.var_ub,
            compiled.integrality,
        )

    def _materialize_constraints(self) -> list[Constraint]:
        """Build Constraint handles for batch-added rows from the CSR."""
        compiled, _ = self._ensure_compiled()
        indptr = compiled.a.indptr
        indices = compiled.a.indices
        data = compiled.a.data
        senses = self._row_sense.view()
        out: list[Constraint] = []
        for i, existing in enumerate(self._row_cons):
            if existing is not None:
                out.append(existing)
                continue
            expr = LinExpr.from_arrays(
                indices[indptr[i] : indptr[i + 1]],
                data[indptr[i] : indptr[i + 1]],
            )
            code = senses[i]
            if code == _RANGE:
                con: Constraint = RangeConstraint(
                    expr, compiled.row_lb[i], compiled.row_ub[i],
                    name=self._row_names[i],
                )
            else:
                rhs = compiled.row_ub[i] if code == _LE else compiled.row_lb[i]
                expr.constant = -float(rhs)
                sense = "<=" if code == _LE else (">=" if code == _GE else "==")
                con = Constraint(expr, sense, name=self._row_names[i])
            con.row = i
            out.append(con)
        return out

    # -- solving ----------------------------------------------------------
    def solve(
        self,
        time_limit: float | None = None,
        mip_rel_gap: float | None = None,
        relax: bool = False,
    ) -> SolveResult:
        """Solve the model and return a :class:`SolveResult`.

        Args:
            time_limit: Wall-clock budget in seconds handed to HiGHS.  On
                expiry the best incumbent found so far (if any) is returned
                with status :class:`SolveStatus.TIME_LIMIT` -- this is the
                paper's ``timeout`` feature.  Check
                :attr:`SolveResult.has_solution`: a timeout may carry no
                incumbent at all.
            mip_rel_gap: Relative optimality gap at which branch-and-bound
                may stop early (MILPs only).
            relax: Solve the *LP relaxation* of a MILP -- integrality is
                dropped and the continuous problem is solved instead.  The
                relaxed optimum is a valid bound on the MILP optimum (an
                upper bound for maximization, lower for minimization): the
                analyzer's fallback ladder uses it to report a degradation
                bound when branch-and-bound cannot find any incumbent in
                time.  The returned ``x`` is generally *fractional*; do not
                extract scenarios from it.  No-op for pure LPs.
        """
        compiled, cached = self._ensure_compiled()
        if self.is_mip and not relax:
            return self._solve_milp(
                compiled, time_limit, mip_rel_gap,
                incremental=False, compile_cached=cached,
            )
        return self._solve_lp(
            compiled, time_limit, incremental=False, compile_cached=cached,
            relaxed=self.is_mip,
        )

    def resolve_with(
        self,
        rhs_overrides: Mapping | None = None,
        bound_overrides: Mapping | None = None,
        *,
        time_limit: float | None = None,
        mip_rel_gap: float | None = None,
    ) -> SolveResult:
        """Re-solve with patched row/variable bounds, reusing the structure.

        The compiled matrix is not rebuilt -- only copies of the bound
        arrays are patched -- so sweeping a threshold, updating demands, or
        re-pinning variables costs one array copy plus the solve.  The
        model itself is left unchanged: a later :meth:`solve` sees the
        original bounds.

        Args:
            rhs_overrides: ``{constraint_or_row_index: new_rhs}``.  Keys
                are :class:`Constraint` handles (``con.row``) or integer
                row indices (e.g. from :meth:`add_constrs_batch`).  For
                one-sided/equality rows the value is a float replacing the
                right-hand side; range rows take a ``(lo, hi)`` tuple
                (either side ``None`` to keep it).
            bound_overrides: ``{var_or_column_index: new_bounds}``.  A
                float sets the upper bound (the common "cap this flow"
                case); a ``(lb, ub)`` tuple sets both (``None`` keeps a
                side).
            time_limit / mip_rel_gap: As in :meth:`solve`.
        """
        compiled, _ = self._ensure_compiled()
        row_lb, row_ub = compiled.row_lb, compiled.row_ub
        if rhs_overrides:
            row_lb = row_lb.copy()
            row_ub = row_ub.copy()
            senses = self._row_sense.view()
            m = row_lb.size
            for key, value in rhs_overrides.items():
                if isinstance(key, Constraint):
                    i = key.row
                    if i is None:
                        raise ModelingError(
                            f"constraint {key!r} was never added to a model"
                        )
                else:
                    i = int(key)
                if not 0 <= i < m:
                    raise ModelingError(f"row index {i} out of range [0, {m})")
                if isinstance(value, tuple):
                    lo, hi = value
                    if lo is not None:
                        row_lb[i] = float(lo)
                    if hi is not None:
                        row_ub[i] = float(hi)
                else:
                    code = senses[i]
                    v = float(value)
                    if code == _LE:
                        row_ub[i] = v
                    elif code == _GE:
                        row_lb[i] = v
                    elif code == _EQ:
                        row_lb[i] = v
                        row_ub[i] = v
                    else:
                        raise ModelingError(
                            f"row {i} is a range constraint; override with a "
                            f"(lo, hi) tuple"
                        )
                if row_lb[i] > row_ub[i]:
                    raise ModelingError(
                        f"override leaves row {i} with lb {row_lb[i]} > "
                        f"ub {row_ub[i]}"
                    )
        var_lb, var_ub = compiled.var_lb, compiled.var_ub
        if bound_overrides:
            var_lb = var_lb.copy()
            var_ub = var_ub.copy()
            n = var_lb.size
            for key, value in bound_overrides.items():
                j = key.index if isinstance(key, Var) else int(key)
                if not 0 <= j < n:
                    raise ModelingError(
                        f"column index {j} out of range [0, {n})"
                    )
                if isinstance(value, tuple):
                    lo, hi = value
                    if lo is not None:
                        var_lb[j] = float(lo)
                    if hi is not None:
                        var_ub[j] = float(hi)
                else:
                    var_ub[j] = float(value)
                if var_lb[j] > var_ub[j]:
                    raise ModelingError(
                        f"override leaves column {j} with lb {var_lb[j]} > "
                        f"ub {var_ub[j]}"
                    )
        patched = compiled._replace(
            row_lb=row_lb, row_ub=row_ub, var_lb=var_lb, var_ub=var_ub
        )
        if self.is_mip:
            return self._solve_milp(
                patched, time_limit, mip_rel_gap,
                incremental=True, compile_cached=True,
            )
        return self._solve_lp(
            patched, time_limit, incremental=True, compile_cached=True
        )

    def _make_stats(
        self,
        compiled: _Compiled,
        backend: str,
        solve_seconds: float,
        dual_mode: str,
        incremental: bool,
        compile_cached: bool,
    ) -> SolveStats:
        return SolveStats(
            rows=compiled.a.shape[0],
            cols=compiled.a.shape[1],
            nnz=int(compiled.a.nnz),
            num_integer=self._num_integer,
            build_seconds=self._build_seconds,
            compile_seconds=0.0 if compile_cached else self._compile_seconds,
            solve_seconds=solve_seconds,
            backend=backend,
            max_abs_coefficient=compiled.max_abs_coef,
            max_abs_rhs=compiled.max_abs_rhs,
            dual_mode=dual_mode,
            incremental=incremental,
            compile_cached=compile_cached,
        )

    def _solve_milp(
        self, compiled, time_limit, mip_rel_gap, incremental, compile_cached
    ) -> SolveResult:
        sign = -1.0 if self._sense == "max" else 1.0
        options: dict = {}
        if time_limit is not None:
            options["time_limit"] = float(time_limit)
        if mip_rel_gap is not None:
            options["mip_rel_gap"] = float(mip_rel_gap)

        if maybe_fire("solver.time_limit", key=self.name):
            # Chaos: HiGHS expired without finding any feasible point.
            # Mirrors the real incumbent-free TIME_LIMIT shape exactly so
            # the analyzer's fallback ladder can be exercised on models
            # that would otherwise solve instantly.
            return SolveResult(
                status=SolveStatus.TIME_LIMIT,
                objective=float("nan"),
                x=None,
                duals=None,
                solve_seconds=0.0,
                message="time limit reached with no incumbent solution; "
                        "(chaos-injected)",
                stats=self._make_stats(
                    compiled, "milp", 0.0, "none", incremental,
                    compile_cached,
                ),
            )

        constraints = (
            optimize.LinearConstraint(compiled.a, compiled.row_lb, compiled.row_ub)
            if compiled.a.shape[0]
            else ()
        )
        with current_tracer().span(
            "milp_solve", model=self.name, incremental=incremental
        ) as span:
            started = time.monotonic()
            res = optimize.milp(
                sign * compiled.c,
                constraints=constraints,
                integrality=compiled.integrality,
                bounds=optimize.Bounds(compiled.var_lb, compiled.var_ub),
                options=options,
            )
            elapsed = time.monotonic() - started
            status = _SCIPY_STATUS.get(res.status, SolveStatus.ERROR)
            span.set(solve_seconds=elapsed, status=status.value)
        x = np.asarray(res.x) if res.x is not None else None
        objective = (
            float(sign * res.fun) + self._objective.constant
            if res.fun is not None
            else float("nan")
        )
        message = str(res.message)
        if status is SolveStatus.TIME_LIMIT and x is None:
            message = f"time limit reached with no incumbent solution; {message}"
        gap = getattr(res, "mip_gap", None)
        return SolveResult(
            status=status,
            objective=objective,
            x=x,
            duals=None,
            mip_gap=float(gap) if gap is not None else None,
            solve_seconds=elapsed,
            message=message,
            stats=self._make_stats(
                compiled, "milp", elapsed, "none", incremental, compile_cached
            ),
        )

    def _solve_lp(
        self, compiled, time_limit, incremental, compile_cached,
        relaxed: bool = False,
    ) -> SolveResult:
        row_lb, row_ub = compiled.row_lb, compiled.row_ub
        a_matrix = compiled.a
        sign = -1.0 if self._sense == "max" else 1.0

        # linprog wants A_ub x <= b_ub and A_eq x == b_eq; split rows.
        # Range rows (finite, unequal bounds) contribute to BOTH masks.
        eq_mask = np.isfinite(row_lb) & np.isfinite(row_ub) & (row_lb == row_ub)
        ub_mask = ~eq_mask & np.isfinite(row_ub)
        lb_mask = ~eq_mask & np.isfinite(row_lb)

        a_ub_parts, b_ub_parts = [], []
        if ub_mask.any():
            a_ub_parts.append(a_matrix[ub_mask])
            b_ub_parts.append(row_ub[ub_mask])
        if lb_mask.any():
            a_ub_parts.append(-a_matrix[lb_mask])
            b_ub_parts.append(-row_lb[lb_mask])
        a_ub = sparse.vstack(a_ub_parts) if a_ub_parts else None
        b_ub = np.concatenate(b_ub_parts) if b_ub_parts else None
        a_eq = a_matrix[eq_mask] if eq_mask.any() else None
        b_eq = row_lb[eq_mask] if eq_mask.any() else None

        options: dict = {}
        if time_limit is not None:
            options["time_limit"] = float(time_limit)
        with current_tracer().span(
            "lp_solve", model=self.name, incremental=incremental,
            relaxed=relaxed,
        ) as span:
            started = time.monotonic()
            res = optimize.linprog(
                sign * compiled.c,
                A_ub=a_ub,
                b_ub=b_ub,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=np.column_stack([compiled.var_lb, compiled.var_ub]),
                method="highs",
                options=options,
            )
            elapsed = time.monotonic() - started
            status = _SCIPY_STATUS.get(res.status, SolveStatus.ERROR)
            span.set(solve_seconds=elapsed, status=status.value)
        x = np.asarray(res.x) if res.x is not None else None
        objective = (
            float(sign * res.fun) + self._objective.constant
            if res.fun is not None
            else float("nan")
        )
        duals = self._recover_duals(
            res, eq_mask, ub_mask, lb_mask, sign, n_rows=row_lb.size
        )
        message = str(res.message)
        if relaxed:
            message = f"LP relaxation (integrality dropped); {message}"
        return SolveResult(
            status=status,
            objective=objective,
            x=x,
            duals=duals,
            solve_seconds=elapsed,
            message=message,
            stats=self._make_stats(
                compiled,
                "linprog-relaxation" if relaxed else "linprog",
                elapsed,
                "lp" if duals is not None else "none",
                incremental,
                compile_cached,
            ),
        )

    def _recover_duals(self, res, eq_mask, ub_mask, lb_mask, sign, n_rows):
        """Map linprog marginals back to original constraint order.

        We report ``duals[i] = d(objective)/d(rhs_i)`` *in the model's own
        sense*, so for a maximization a binding ``<=`` constraint has a
        nonnegative dual (the usual TE shadow-price convention), and for a
        minimization a binding ``>=`` constraint has a nonnegative dual.

        Range rows appear in both the ub and lb blocks of the matrix fed
        to linprog, so their two marginals are *summed* -- at most one
        side is binding at an optimum, and summing (rather than letting
        the lb side overwrite the ub side, the historical bug) reports the
        marginal of shifting the whole interval.
        """
        if res.x is None or not hasattr(res, "ineqlin"):
            return None
        duals = np.zeros(n_rows)
        if res.ineqlin is not None:
            # linprog's marginal is d(min objective)/d(b) of the row as fed
            # to linprog; our objective is sign * that, and flipped lb rows
            # were fed as -A x <= -b, so d/d(b) gains another minus sign.
            ineq_marginals = np.asarray(res.ineqlin.marginals)
            idx_ub = np.flatnonzero(ub_mask)
            duals[idx_ub] += sign * ineq_marginals[: idx_ub.size]
            idx_lb = np.flatnonzero(lb_mask)
            duals[idx_lb] += -sign * ineq_marginals[
                idx_ub.size : idx_ub.size + idx_lb.size
            ]
        eq_marginals = (
            np.asarray(res.eqlin.marginals)
            if getattr(res, "eqlin", None) is not None
            else None
        )
        if eq_marginals is not None:
            duals[np.flatnonzero(eq_mask)] = sign * eq_marginals
        return duals

    def __repr__(self):
        kind = "MILP" if self.is_mip else "LP"
        return (
            f"Model({self.name!r}, {kind}, {self.num_vars} vars, "
            f"{self.num_constraints} constraints)"
        )
