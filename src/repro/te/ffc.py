"""Forward Fault Correction (FFC) traffic engineering [27].

FFC (Liu et al., SIGCOMM 2014) allocates tunnel bandwidths so that each
demand keeps a *guaranteed* bandwidth ``g_k`` under **any** combination
of up to ``k`` link failures -- no re-convergence needed.  The paper
cites FFC as the canonical "resilient to up to k failures" design Raha
complements (and outperforms when more-than-k failures are probable).

The LP uses FFC's sorting-network trick: for demand ``k`` with per-LAG
allocation ``a_ke = sum of b_kp over tunnels crossing e``, the bandwidth
surviving the worst ``f`` LAG failures is at least

.. math::

    \\sum_p b_{kp} - \\max_{|E'|=f} \\sum_{e \\in E'} a_{ke}
    \\; = \\; \\sum_p b_{kp} - \\min_{t, s \\ge 0,\\; s_e \\ge a_{ke} - t}
    \\Big( f t + \\sum_e s_e \\Big),

so ``g_k <= sum_p b_kp - f t_k - sum_e s_ke`` with the auxiliary
variables chosen by the solver is exactly the guarantee.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Mapping

from repro.exceptions import ModelingError
from repro.network.demand import Pair
from repro.network.topology import LagKey, Topology
from repro.paths.ksp import Path
from repro.paths.pathset import PathSet
from repro.solver import Model, quicksum
from repro.te.base import (
    TESolution,
    effective_capacities,
    lag_loads_from_path_flows,
    validate_te_inputs,
)


class FfcTE:
    """Maximize total *guaranteed* bandwidth under up-to-f LAG failures.

    Args:
        num_failures: The ``f`` the allocation must survive (FFC's
            ``k_e``); zero reduces to the plain Eq. 2 TE.
        primary_only: Restrict tunnels to primary paths.
    """

    def __init__(self, num_failures: int = 1, primary_only: bool = False):
        if num_failures < 0:
            raise ModelingError(f"num_failures must be >= 0, got {num_failures}")
        self.num_failures = num_failures
        self.primary_only = primary_only

    def solve(
        self,
        topology: Topology,
        demands: Mapping[Pair, float],
        paths: PathSet,
        capacities: Mapping[LagKey, float] | None = None,
    ) -> TESolution:
        """Solve the FFC LP.

        Returns:
            A solution whose ``pair_flows`` are the *guarantees* ``g_k``
            and whose ``path_flows`` are the tunnel allocations ``b_kp``
            (which may sum to more than ``g_k`` -- the overhead is FFC's
            protection cost).
        """
        validate_te_inputs(topology, demands, paths)
        caps = effective_capacities(topology, capacities)

        model = Model("ffc-te")
        allocation: dict[tuple[Pair, Path], object] = {}
        guarantee: dict[Pair, object] = {}
        per_lag_total: dict[LagKey, list] = defaultdict(list)

        for pair, volume in demands.items():
            dp = paths[pair]
            tunnels = dp.primaries if self.primary_only else dp.paths
            b_vars = []
            per_lag_local: dict[LagKey, list] = defaultdict(list)
            for path in tunnels:
                b = model.add_var(name=f"b[{pair}][{'-'.join(path)}]")
                allocation[(pair, path)] = b
                b_vars.append(b)
                for lag in topology.lags_on_path(path):
                    per_lag_local[lag.key].append(b)
                    per_lag_total[lag.key].append(b)
            g = model.add_var(ub=max(volume, 0.0), name=f"g[{pair}]")
            guarantee[pair] = g
            if not b_vars:
                model.add_constr(g <= 0.0)
                continue
            if self.num_failures == 0:
                model.add_constr(g <= quicksum(b_vars))
            else:
                t = model.add_var(name=f"t[{pair}]")
                s_terms = []
                for key, local in per_lag_local.items():
                    s = model.add_var(name=f"s[{pair}][{key}]")
                    s_terms.append(s)
                    # s_e >= a_ke - t
                    model.add_constr(s >= quicksum(local) - t)
                model.add_constr(
                    g <= quicksum(b_vars) - self.num_failures * t
                    - quicksum(s_terms)
                )
        for key, vars_on_lag in per_lag_total.items():
            model.add_constr(quicksum(vars_on_lag) <= caps[key],
                             name=f"cap[{key}]")

        model.set_objective(quicksum(guarantee.values()), sense="max")
        result = model.solve()
        if not result.status.ok or result.x is None:
            return TESolution.infeasible()

        path_flows = {k: result.value(v) for k, v in allocation.items()}
        pair_flows = {p: result.value(g) for p, g in guarantee.items()}
        return TESolution(
            objective=result.objective,
            path_flows=path_flows,
            pair_flows=pair_flows,
            lag_loads=lag_loads_from_path_flows(topology, path_flows),
            solve_seconds=result.solve_seconds,
        )

    def verify_guarantee(
        self,
        topology: Topology,
        paths: PathSet,
        solution: TESolution,
        tol: float = 1e-6,
    ) -> bool:
        """Check the FFC promise by enumerating worst per-demand failures.

        For every demand, removing the allocation on the ``f`` LAGs that
        carry the most of it must still leave at least ``g_k``.
        """
        for pair, g_k in solution.pair_flows.items():
            dp = paths[pair]
            per_lag: dict[LagKey, float] = defaultdict(float)
            total = 0.0
            for path in dp.paths:
                b = solution.path_flows.get((pair, path), 0.0)
                total += b
                for lag in topology.lags_on_path(path):
                    per_lag[lag.key] += b
            worst = sum(sorted(per_lag.values(), reverse=True)
                        [: self.num_failures])
            if g_k > total - worst + tol:
                return False
        return True
