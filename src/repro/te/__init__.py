"""Traffic engineering algorithms.

Raha supports "any WAN that uses a single shot optimization for traffic
engineering".  This package implements the ones the paper names:

* :mod:`repro.te.total_flow` -- the production objective (Eq. 2):
  maximize total demand met over a configured path set (SWAN/B4-style).
* :mod:`repro.te.mlu` -- minimize the maximum link utilization
  (Appendix A).
* :mod:`repro.te.maxmin` -- single-shot max-min fairness via geometric
  binning (Appendix A; the Soroush-style binner), plus an exact
  water-filling reference implementation used in tests.
* :mod:`repro.te.edge_mcf` -- the edge formulation of multi-commodity
  flow (Appendix C), used for new-LAG capacity augments and as an upper
  bound on what any path set can route.
* :mod:`repro.te.ffc` -- Forward Fault Correction [27], the k-resilient
  TE the paper positions Raha against.
* :mod:`repro.te.teavar` -- a TeaVaR-style [6] CVaR-of-loss TE over a
  pruned probabilistic scenario set (Table 1's other baseline).

Every solver takes optional per-LAG capacity overrides and per-path caps,
which is how concrete failure scenarios are *simulated* (baselines, and
verification of the bi-level results).
"""

from repro.te.base import TESolution
from repro.te.edge_mcf import EdgeMcf
from repro.te.ffc import FfcTE
from repro.te.maxmin import (
    EquiDepthBinnerTE,
    GeometricBinnerTE,
    max_min_water_filling,
)
from repro.te.mlu import MluTE
from repro.te.teavar import TeavarTE, enumerate_scenario_set
from repro.te.total_flow import TotalFlowTE

__all__ = [
    "EdgeMcf",
    "EquiDepthBinnerTE",
    "FfcTE",
    "GeometricBinnerTE",
    "MluTE",
    "TESolution",
    "TeavarTE",
    "TotalFlowTE",
    "enumerate_scenario_set",
    "max_min_water_filling",
]
