"""The production TE objective: maximize total demand met (Eq. 2).

This is the SWAN/B4-style centralized optimization the paper's WAN runs:

.. math::

    \\max \\sum_k f_k \\quad \\text{s.t.} \\quad
    0 \\le f_k \\le d_k, \\quad
    f_k = \\sum_{p \\in P_k} f_{kp}, \\quad
    \\sum_{k, p \\in P_{ke}} f_{kp} \\le C_e .

The same class models both the healthy network (primary paths, full
capacities) and a concrete failed network (reduced capacities, path caps
from the fail-over rules) -- which is exactly how the paper's inner
problems are structured.

Constraints are assembled through :meth:`Model.add_constrs_batch` -- one
call per constraint family (path caps, demands, LAG capacities) -- so the
model compiles without per-term Python loops.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Mapping

import numpy as np

from repro.network.demand import Pair
from repro.network.topology import LagKey, Topology
from repro.paths.ksp import Path
from repro.paths.pathset import PathSet
from repro.solver import LinExpr, Model
from repro.te.base import (
    TESolution,
    effective_capacities,
    lag_loads_from_path_flows,
    usable_paths_for,
    validate_te_inputs,
)


class TotalFlowTE:
    """Maximize total routed demand over a configured path set.

    Args:
        primary_only: Route only on each demand's primary paths.  This is
            the *design point* semantics: with no failures, backup paths
            are inactive (Eq. 5's indicator is 0 for every backup when no
            higher-priority path is down), so the healthy network is
            exactly Eq. 2 over primaries.
    """

    def __init__(self, primary_only: bool = True):
        self.primary_only = primary_only

    def solve(
        self,
        topology: Topology,
        demands: Mapping[Pair, float],
        paths: PathSet,
        capacities: Mapping[LagKey, float] | None = None,
        path_caps: Mapping[tuple[Pair, Path], float] | None = None,
    ) -> TESolution:
        """Solve the LP and return routed flows.

        Args:
            topology: The WAN.
            demands: Demand volume per pair.
            paths: Configured paths (primary/backup ordered).
            capacities: Optional per-LAG capacity overrides (a failed
                network's residual capacities).
            path_caps: Optional per-path caps; zero disables a path (a
                backup whose activation precondition is unmet).  Caps on
                listed paths also bound their flow.
        """
        validate_te_inputs(topology, demands, paths)
        caps = effective_capacities(topology, capacities)

        model = Model("total-flow-te")
        flow: dict[tuple[Pair, Path], object] = {}
        per_lag: dict[LagKey, list[int]] = defaultdict(list)
        # Per-family COO accumulators, flushed in one batch call each.
        cap_cols: list[int] = []
        cap_rhs: list[float] = []
        dem_cols: list[int] = []
        dem_indptr: list[int] = [0]
        dem_rhs: list[float] = []
        for pair, volume in demands.items():
            dp = paths[pair]
            candidates = dp.primaries if self.primary_only else dp.paths
            usable = [
                p for p in usable_paths_for(dp, path_caps) if p in set(candidates)
            ]
            for path in usable:
                var = model.add_var(name=f"f[{pair}][{'-'.join(path)}]")
                flow[(pair, path)] = var
                dem_cols.append(var.index)
                if path_caps is not None and (pair, path) in path_caps:
                    cap_cols.append(var.index)
                    cap_rhs.append(path_caps[(pair, path)])
                for lag in topology.lags_on_path(path):
                    per_lag[lag.key].append(var.index)
            if len(dem_cols) > dem_indptr[-1]:
                dem_indptr.append(len(dem_cols))
                dem_rhs.append(volume)
        if cap_cols:
            model.add_constrs_batch(
                np.arange(len(cap_cols) + 1), cap_cols, rhs=cap_rhs,
                name="path_cap",
            )
        if dem_rhs:
            model.add_constrs_batch(
                dem_indptr, dem_cols, rhs=dem_rhs, name="dem"
            )
        if per_lag:
            lag_cols: list[int] = []
            lag_indptr: list[int] = [0]
            lag_rhs: list[float] = []
            for key, cols_on_lag in per_lag.items():
                lag_cols.extend(cols_on_lag)
                lag_indptr.append(len(lag_cols))
                lag_rhs.append(caps[key])
            model.add_constrs_batch(
                lag_indptr, lag_cols, rhs=lag_rhs, name="cap"
            )

        model.set_objective(
            LinExpr.from_arrays(
                np.fromiter(
                    (v.index for v in flow.values()),
                    dtype=np.intp,
                    count=len(flow),
                ),
                np.ones(len(flow)),
            ),
            sense="max",
        )
        result = model.solve()
        if not result.status.ok or result.x is None:
            return TESolution.infeasible()

        path_flows = {
            key: result.value(var) for key, var in flow.items()
        }
        pair_flows: dict[Pair, float] = defaultdict(float)
        for (pair, _), value in path_flows.items():
            pair_flows[pair] += value
        # Pairs with no usable path still routed zero.
        for pair in demands:
            pair_flows.setdefault(pair, 0.0)
        return TESolution(
            objective=result.objective,
            path_flows=path_flows,
            pair_flows=dict(pair_flows),
            lag_loads=lag_loads_from_path_flows(topology, path_flows),
            solve_seconds=result.solve_seconds,
        )
