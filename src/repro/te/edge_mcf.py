"""Edge-formulation multi-commodity flow (Appendix C).

The path formulation (Eq. 2) cannot model *new* LAGs: adding an edge
changes the path set.  The edge formulation routes per-LAG flows under
flow conservation, so it automatically uses any edge that exists:

.. math::

    \\sum_{j} f_{(j,i),k} + f_k \\cdot 1[i = s_k]
        = \\sum_{j} f_{(i,j),k} + f_k \\cdot 1[i = t_k]

Because every possible route is available, the edge form's optimum is an
*upper bound* on what a configured path set can route.  Following
Appendix C we tighten the bound by restricting each demand's usable edges
to (a) LAGs on its pre-existing paths and (b) candidate new LAGs.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Mapping

import numpy as np

from repro.network.demand import Pair
from repro.network.topology import LagKey, Topology, lag_key
from repro.paths.pathset import PathSet
from repro.solver import LinExpr, Model
from repro.te.base import TESolution, effective_capacities


class EdgeMcf:
    """Maximize total flow with per-edge variables and conservation.

    Args:
        allowed_edges: Optional map from pair to the LAG keys that demand
            may use (Appendix C's restriction); ``None`` allows every LAG
            for every demand.
    """

    def __init__(
        self,
        allowed_edges: Mapping[Pair, Iterable[LagKey]] | None = None,
    ):
        self.allowed_edges = (
            {pair: {lag_key(*k) for k in keys}
             for pair, keys in allowed_edges.items()}
            if allowed_edges is not None
            else None
        )

    @staticmethod
    def allowed_edges_from_paths(
        paths: PathSet,
        topology: Topology,
        extra_edges: Iterable[LagKey] = (),
    ) -> dict[Pair, set[LagKey]]:
        """Appendix C's edge restriction: pre-existing path LAGs + extras.

        "For each demand k, we only define the values f_(i,j,k) on those
        paths that existed before the failure happened and for new LAGs
        which didn't exist in the original topology."
        """
        extras = {lag_key(*k) for k in extra_edges}
        allowed: dict[Pair, set[LagKey]] = {}
        for pair, dp in paths.items():
            keys = set(extras)
            for path in dp.paths:
                for lag in topology.lags_on_path(path):
                    keys.add(lag.key)
            allowed[pair] = keys
        return allowed

    def solve(
        self,
        topology: Topology,
        demands: Mapping[Pair, float],
        capacities: Mapping[LagKey, float] | None = None,
    ) -> TESolution:
        """Solve the edge-form LP; ``objective`` is the total flow."""
        caps = effective_capacities(topology, capacities)

        model = Model("edge-mcf")
        # Directed flow per (pair, lag, direction); direction 0 is u->v.
        flow: dict[tuple[Pair, LagKey, int], object] = {}
        routed: dict[Pair, object] = {}
        per_lag: dict[LagKey, list[int]] = defaultdict(list)
        # Flow-conservation rows, accumulated as one COO batch.
        bal_cols: list[int] = []
        bal_data: list[float] = []
        bal_indptr: list[int] = [0]

        for pair, volume in demands.items():
            src, dst = pair
            allowed = (
                self.allowed_edges.get(pair) if self.allowed_edges is not None
                else None
            )
            f_k = model.add_var(ub=max(volume, 0.0), name=f"f[{pair}]")
            routed[pair] = f_k
            outgoing: dict[str, list[int]] = defaultdict(list)
            incoming: dict[str, list[int]] = defaultdict(list)
            for lag in topology.lags:
                if allowed is not None and lag.key not in allowed:
                    continue
                fwd = model.add_var(name=f"e[{pair}][{lag.key}]+")
                bwd = model.add_var(name=f"e[{pair}][{lag.key}]-")
                flow[(pair, lag.key, 0)] = fwd
                flow[(pair, lag.key, 1)] = bwd
                per_lag[lag.key] += [fwd.index, bwd.index]
                outgoing[lag.u].append(fwd.index)
                incoming[lag.v].append(fwd.index)
                outgoing[lag.v].append(bwd.index)
                incoming[lag.u].append(bwd.index)
            for node in topology.nodes:
                # out - in - f_k*[node==src] + f_k*[node==dst] == 0
                cols = outgoing[node]
                bal_cols.extend(cols)
                bal_data.extend([1.0] * len(cols))
                cols = incoming[node]
                bal_cols.extend(cols)
                bal_data.extend([-1.0] * len(cols))
                if node == src:
                    bal_cols.append(f_k.index)
                    bal_data.append(-1.0)
                elif node == dst:
                    bal_cols.append(f_k.index)
                    bal_data.append(1.0)
                bal_indptr.append(len(bal_cols))
        if len(bal_indptr) > 1:
            model.add_constrs_batch(
                bal_indptr, bal_cols, bal_data, sense="==", rhs=0.0,
                name="balance",
            )
        if per_lag:
            lag_cols: list[int] = []
            lag_indptr: list[int] = [0]
            lag_rhs: list[float] = []
            for key, cols_on_lag in per_lag.items():
                lag_cols.extend(cols_on_lag)
                lag_indptr.append(len(lag_cols))
                lag_rhs.append(caps[key])
            model.add_constrs_batch(
                lag_indptr, lag_cols, rhs=lag_rhs, name="cap"
            )

        model.set_objective(
            LinExpr.from_arrays(
                np.fromiter(
                    (v.index for v in routed.values()),
                    dtype=np.intp,
                    count=len(routed),
                ),
                np.ones(len(routed)),
            ),
            sense="max",
        )
        result = model.solve()
        if not result.status.ok or result.x is None:
            return TESolution.infeasible()

        pair_flows = {pair: result.value(var) for pair, var in routed.items()}
        lag_loads: dict[LagKey, float] = defaultdict(float)
        for (pair, key, _), var in flow.items():
            lag_loads[key] += result.value(var)
        return TESolution(
            objective=result.objective,
            pair_flows=pair_flows,
            lag_loads=dict(lag_loads),
            solve_seconds=result.solve_seconds,
        )
