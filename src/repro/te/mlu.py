"""MLU traffic engineering: minimize the maximum link utilization.

Appendix A's extension: replace Eq. 2's objective with a variable ``U``
minimized subject to ``U * C_e >= sum of flow crossing e``, and require
every demand to be fully routed (MLU formulations "require the network
carry the full demand").  The formulation becomes infeasible when a
source-destination pair is fully disconnected, which is why Raha forces
connected-enforced constraints in MLU mode.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Mapping

from repro.network.demand import Pair
from repro.network.topology import LagKey, Topology
from repro.paths.ksp import Path
from repro.paths.pathset import PathSet
from repro.solver import Model, quicksum
from repro.te.base import (
    TESolution,
    effective_capacities,
    lag_loads_from_path_flows,
    usable_paths_for,
    validate_te_inputs,
)


class MluTE:
    """Minimize max link utilization while routing every demand in full.

    Args:
        primary_only: Restrict to primary paths (design-point semantics).
        enforce_capacity: Also require ``U <= 1`` -- off by default; MLU
            planning usually allows reporting over-subscription (U > 1)
            rather than failing.
    """

    def __init__(self, primary_only: bool = True, enforce_capacity: bool = False):
        self.primary_only = primary_only
        self.enforce_capacity = enforce_capacity

    def solve(
        self,
        topology: Topology,
        demands: Mapping[Pair, float],
        paths: PathSet,
        capacities: Mapping[LagKey, float] | None = None,
        path_caps: Mapping[tuple[Pair, Path], float] | None = None,
    ) -> TESolution:
        """Solve; ``objective`` is the achieved MLU.

        Returns an infeasible sentinel when some demand cannot be fully
        routed on its usable paths (disconnection).
        """
        validate_te_inputs(topology, demands, paths)
        caps = effective_capacities(topology, capacities)

        model = Model("mlu-te")
        utilization = model.add_var(name="U")
        if self.enforce_capacity:
            model.add_constr(utilization <= 1.0)
        flow: dict[tuple[Pair, Path], object] = {}
        per_lag: dict[LagKey, list] = defaultdict(list)
        for pair, volume in demands.items():
            dp = paths[pair]
            candidates = dp.primaries if self.primary_only else dp.paths
            usable = [
                p for p in usable_paths_for(dp, path_caps) if p in set(candidates)
            ]
            terms = []
            for path in usable:
                var = model.add_var(name=f"f[{pair}][{'-'.join(path)}]")
                flow[(pair, path)] = var
                terms.append(var)
                if path_caps is not None and (pair, path) in path_caps:
                    model.add_constr(var <= path_caps[(pair, path)])
                for lag in topology.lags_on_path(path):
                    per_lag[lag.key].append(var)
            if not terms and volume > 0:
                return TESolution.infeasible()
            if terms:
                # MLU requires the demand be fully met.
                model.add_constr(quicksum(terms) == volume, name=f"dem[{pair}]")
        for key, vars_on_lag in per_lag.items():
            cap = caps[key]
            if cap <= 0:
                # A zero-capacity LAG cannot carry anything at finite U.
                model.add_constr(quicksum(vars_on_lag) <= 0.0)
                continue
            model.add_constr(
                quicksum(vars_on_lag) <= cap * utilization, name=f"util[{key}]"
            )

        model.set_objective(utilization, sense="min")
        result = model.solve()
        if not result.status.ok or result.x is None:
            return TESolution.infeasible()

        path_flows = {key: result.value(var) for key, var in flow.items()}
        pair_flows: dict[Pair, float] = defaultdict(float)
        for (pair, _), value in path_flows.items():
            pair_flows[pair] += value
        for pair in demands:
            pair_flows.setdefault(pair, 0.0)
        return TESolution(
            objective=result.objective,
            path_flows=path_flows,
            pair_flows=dict(pair_flows),
            lag_loads=lag_loads_from_path_flows(topology, path_flows),
            solve_seconds=result.solve_seconds,
        )
