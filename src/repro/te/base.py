"""Shared result types and helpers for TE solvers."""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.network.demand import Pair
from repro.network.topology import LagKey, Topology
from repro.paths.ksp import Path
from repro.paths.pathset import PathSet


@dataclass
class TESolution:
    """The outcome of one TE optimization.

    Attributes:
        objective: Objective value in the solver's own convention (total
            flow for Eq. 2, the utilization ``U`` for MLU, ...).
        path_flows: Flow per ``(pair, path)`` (empty for edge-form MCF).
        pair_flows: Total flow routed per demand pair.
        lag_loads: Traffic crossing each LAG.
        solve_seconds: Backend time.
        feasible: Whether a solution exists (MLU under disconnection is
            the canonical infeasible case).
    """

    objective: float
    path_flows: dict[tuple[Pair, Path], float] = field(default_factory=dict)
    pair_flows: dict[Pair, float] = field(default_factory=dict)
    lag_loads: dict[LagKey, float] = field(default_factory=dict)
    solve_seconds: float = 0.0
    feasible: bool = True

    @property
    def total_flow(self) -> float:
        """Total routed traffic over all pairs."""
        return float(sum(self.pair_flows.values()))

    def max_utilization(self, topology: Topology,
                        capacities: Mapping[LagKey, float] | None = None) -> float:
        """The max link (LAG) utilization implied by the routed loads."""
        worst = 0.0
        for lag in topology.lags:
            cap = capacities[lag.key] if capacities else lag.capacity
            load = self.lag_loads.get(lag.key, 0.0)
            if cap > 0:
                worst = max(worst, load / cap)
            elif load > 1e-9:
                return float("inf")
        return worst

    @staticmethod
    def infeasible() -> TESolution:
        """A sentinel result for infeasible models."""
        return TESolution(objective=float("nan"), feasible=False)


def effective_capacities(
    topology: Topology, overrides: Mapping[LagKey, float] | None
) -> dict[LagKey, float]:
    """Per-LAG capacities with optional overrides applied."""
    caps = {lag.key: lag.capacity for lag in topology.lags}
    if overrides:
        for key, value in overrides.items():
            if key not in caps:
                from repro.exceptions import TopologyError

                raise TopologyError(f"capacity override for unknown LAG {key}")
            caps[key] = value
    return caps


def lag_loads_from_path_flows(
    topology: Topology, path_flows: Mapping[tuple[Pair, Path], float]
) -> dict[LagKey, float]:
    """Aggregate per-path flows into per-LAG loads."""
    loads: dict[LagKey, float] = defaultdict(float)
    for (_, path), flow in path_flows.items():
        if flow <= 0:
            continue
        for lag in topology.lags_on_path(path):
            loads[lag.key] += flow
    return dict(loads)


def usable_paths_for(
    demand_paths, path_caps: Mapping[tuple[Pair, Path], float] | None
) -> list[Path]:
    """Paths a solver may route on, honoring zero path caps.

    ``path_caps`` comes from failure simulation: a cap of zero means the
    path (or its fail-over precondition) is unavailable.
    """
    if path_caps is None:
        return list(demand_paths.paths)
    out = []
    for path in demand_paths.paths:
        cap = path_caps.get((demand_paths.pair, path))
        if cap is None or cap > 0:
            out.append(path)
    return out


def validate_te_inputs(topology: Topology, demands: Mapping[Pair, float],
                       paths: PathSet) -> None:
    """Common input validation shared by the path-based TE solvers."""
    from repro.exceptions import PathError

    for pair in demands:
        if pair not in paths:
            raise PathError(f"demand {pair} has no configured paths")
    paths.validate_against(topology)
