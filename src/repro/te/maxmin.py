"""Max-min fair traffic engineering.

Appendix A: Raha supports "the single-shot max-min fair solution from
Soroush (namely their Geometric or Equi-depth binner algorithms)".

* :class:`GeometricBinnerTE` is the single-shot LP approximation: each
  demand's allocation is split into geometrically growing *bins*
  ``[0, t0], (t0, t0*alpha], ...``; the objective weights lower bins
  geometrically more, so the LP fills everyone's low bins before anyone's
  high bins -- an alpha-approximate max-min allocation in one solve.
  Because it is a single LP with capacities on the right-hand side, Raha
  can swap the constant capacities for the failure variables exactly as
  in Section 5.

* :func:`max_min_water_filling` is the classical exact (iterative)
  algorithm, used as the reference in tests: repeatedly maximize the
  common minimum, freeze saturated demands, recurse.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Mapping

from repro.exceptions import ModelingError
from repro.network.demand import Pair
from repro.network.topology import LagKey, Topology
from repro.paths.ksp import Path
from repro.paths.pathset import PathSet
from repro.solver import Model, quicksum
from repro.te.base import (
    TESolution,
    effective_capacities,
    lag_loads_from_path_flows,
    usable_paths_for,
    validate_te_inputs,
)


class GeometricBinnerTE:
    """Single-shot approximate max-min fairness via geometric binning.

    Args:
        num_bins: Number of geometric levels.
        alpha: Geometric growth of bin boundaries (> 1).
        t0: Width of the first bin; defaults to ``max demand / alpha**
            (num_bins - 1)`` so the bins cover every demand.
        primary_only: Restrict to primary paths.
    """

    def __init__(self, num_bins: int = 6, alpha: float = 2.0,
                 t0: float | None = None, primary_only: bool = True):
        if alpha <= 1.0:
            raise ModelingError(f"alpha must exceed 1, got {alpha}")
        if num_bins < 1:
            raise ModelingError(f"need at least one bin, got {num_bins}")
        self.num_bins = num_bins
        self.alpha = alpha
        self.t0 = t0
        self.primary_only = primary_only

    def bin_widths(self, max_demand: float) -> list[float]:
        """Widths of each geometric bin covering ``[0, max_demand]``."""
        t0 = self.t0
        if t0 is None:
            t0 = max(max_demand, 1e-9) / (self.alpha ** (self.num_bins - 1))
        boundaries = [t0 * self.alpha**i for i in range(self.num_bins)]
        widths = [boundaries[0]]
        widths += [boundaries[i] - boundaries[i - 1] for i in range(1, self.num_bins)]
        return widths

    def solve(
        self,
        topology: Topology,
        demands: Mapping[Pair, float],
        paths: PathSet,
        capacities: Mapping[LagKey, float] | None = None,
        path_caps: Mapping[tuple[Pair, Path], float] | None = None,
    ) -> TESolution:
        """Solve the binned LP; ``objective`` is the weighted bin value.

        The routed ``pair_flows`` approximate the max-min allocation;
        compare against :func:`max_min_water_filling` in tests.
        """
        validate_te_inputs(topology, demands, paths)
        caps = effective_capacities(topology, capacities)
        if not demands:
            return TESolution(objective=0.0)
        widths = self.bin_widths(max(demands.values()))
        weights = [self.alpha ** (-i) for i in range(self.num_bins)]

        model = Model("geometric-binner-te")
        flow: dict[tuple[Pair, Path], object] = {}
        per_lag: dict[LagKey, list] = defaultdict(list)
        objective_terms = []
        for pair, volume in demands.items():
            dp = paths[pair]
            candidates = dp.primaries if self.primary_only else dp.paths
            usable = [
                p for p in usable_paths_for(dp, path_caps) if p in set(candidates)
            ]
            terms = []
            for path in usable:
                var = model.add_var(name=f"f[{pair}][{'-'.join(path)}]")
                flow[(pair, path)] = var
                terms.append(var)
                if path_caps is not None and (pair, path) in path_caps:
                    model.add_constr(var <= path_caps[(pair, path)])
                for lag in topology.lags_on_path(path):
                    per_lag[lag.key].append(var)
            if not terms:
                continue
            # Split the pair's allocation into bins.
            bins = []
            for i, width in enumerate(widths):
                b = model.add_var(ub=width, name=f"bin[{pair}][{i}]")
                bins.append(b)
                objective_terms.append(weights[i] * b)
            model.add_constr(quicksum(terms) == quicksum(bins),
                             name=f"split[{pair}]")
            model.add_constr(quicksum(terms) <= volume, name=f"dem[{pair}]")
        for key, vars_on_lag in per_lag.items():
            model.add_constr(quicksum(vars_on_lag) <= caps[key],
                             name=f"cap[{key}]")

        model.set_objective(quicksum(objective_terms), sense="max")
        result = model.solve()
        if not result.status.ok or result.x is None:
            return TESolution.infeasible()

        path_flows = {key: result.value(var) for key, var in flow.items()}
        pair_flows: dict[Pair, float] = defaultdict(float)
        for (pair, _), value in path_flows.items():
            pair_flows[pair] += value
        for pair in demands:
            pair_flows.setdefault(pair, 0.0)
        return TESolution(
            objective=result.objective,
            path_flows=path_flows,
            pair_flows=dict(pair_flows),
            lag_loads=lag_loads_from_path_flows(topology, path_flows),
            solve_seconds=result.solve_seconds,
        )


class EquiDepthBinnerTE(GeometricBinnerTE):
    """Single-shot approximate max-min fairness with equal-width bins.

    The second of Soroush's single-shot binners the paper names
    (Section 3: "the geometric or equi-depth binning WANs in [32]").
    Bin boundaries are evenly spaced over ``[0, max_demand]`` instead of
    geometric; weights still decay geometrically so lower bins fill
    first.  Compared to the geometric binner it approximates small
    allocations more coarsely but large ones more finely.
    """

    def bin_widths(self, max_demand: float) -> list[float]:
        """Equal widths covering ``[0, max_demand]``."""
        if self.t0 is not None:
            # Honor an explicitly pinned first boundary for verification
            # consistency, spacing the rest evenly above it.
            remaining = max(max_demand, self.t0) - self.t0
            if self.num_bins == 1:
                return [self.t0 + remaining]
            step = remaining / (self.num_bins - 1)
            return [self.t0] + [step] * (self.num_bins - 1)
        width = max(max_demand, 1e-9) / self.num_bins
        return [width] * self.num_bins


def max_min_water_filling(
    topology: Topology,
    demands: Mapping[Pair, float],
    paths: PathSet,
    capacities: Mapping[LagKey, float] | None = None,
    primary_only: bool = True,
    max_rounds: int | None = None,
) -> dict[Pair, float]:
    """Exact max-min fair allocation by iterative water filling.

    Round ``r`` maximizes a common floor ``t`` subject to every unfrozen
    demand receiving at least ``t``; demands whose allocation cannot grow
    beyond the floor are frozen at it, and the process repeats.  This is
    the classical reference algorithm (not single-shot; used for testing
    the geometric binner's approximation).

    Returns:
        The max-min allocation per pair.
    """
    validate_te_inputs(topology, demands, paths)
    caps = effective_capacities(topology, capacities)
    frozen: dict[Pair, float] = {}
    active = {p for p, v in demands.items() if v > 0}
    for pair, volume in demands.items():
        if volume <= 0:
            frozen[pair] = 0.0
            active.discard(pair)
    rounds = max_rounds if max_rounds is not None else len(demands) + 1

    for _ in range(rounds):
        if not active:
            break
        model = Model("water-fill")
        t = model.add_var(name="t")
        flow: dict[tuple[Pair, Path], object] = {}
        per_lag: dict[LagKey, list] = defaultdict(list)
        totals: dict[Pair, object] = {}
        for pair in demands:
            dp = paths[pair]
            candidates = dp.primaries if primary_only else dp.paths
            terms = []
            for path in candidates:
                var = model.add_var(name=f"f[{pair}][{'-'.join(path)}]")
                flow[(pair, path)] = var
                terms.append(var)
                for lag in topology.lags_on_path(path):
                    per_lag[lag.key].append(var)
            total = quicksum(terms)
            totals[pair] = total
            if pair in frozen:
                model.add_constr(total == frozen[pair])
            else:
                model.add_constr(total <= demands[pair])
                model.add_constr(total >= t)
        for key, vars_on_lag in per_lag.items():
            model.add_constr(quicksum(vars_on_lag) <= caps[key])
        model.set_objective(t, sense="max")
        result = model.solve()
        if not result.status.ok or result.x is None:
            # No feasible floor (e.g. a disconnected active pair): pin
            # the unroutable pairs at zero and continue with the rest.
            for pair in list(active):
                dp = paths[pair]
                candidates = dp.primaries if primary_only else dp.paths
                if not candidates:
                    frozen[pair] = 0.0
                    active.discard(pair)
            if active:
                for pair in list(active):
                    frozen[pair] = 0.0
                    active.discard(pair)
            break
        floor = result.objective

        # Freeze demands that cannot exceed the floor: re-solve maximizing
        # each active demand individually with the floor held for others.
        newly_frozen = []
        for pair in list(active):
            model.set_objective(totals[pair], sense="max")
            probe = model.solve()
            best = probe.objective if probe.status.ok else floor
            if best <= floor + 1e-7 or floor >= demands[pair] - 1e-9:
                newly_frozen.append((pair, min(floor, demands[pair])))
        if not newly_frozen:
            # Guard against stalling: freeze everything at the floor.
            newly_frozen = [(p, min(floor, demands[p])) for p in active]
        for pair, value in newly_frozen:
            frozen[pair] = value
            active.discard(pair)
    for pair in demands:
        frozen.setdefault(pair, 0.0)
    return frozen
